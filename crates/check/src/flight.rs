//! Tier C over *recorded* flight spans: the same happens-before
//! discipline [`trace`](crate::trace) enforces on simulated event
//! traces, applied to what the functional engine actually did.
//!
//! The flight recorder ([`edgenn_obs::flight`]) writes fixed-size span
//! records from the execution hot paths; this module replays a drained
//! (and usually causally-sliced) batch of those records and verifies
//! three invariants, reusing the tier-C diagnostic codes so downstream
//! tooling does not care whether a finding came from a simulated or a
//! measured timeline:
//!
//! - **`EC021` — malformed record**: an interval that ends before it
//!   starts, an instant-kind record with a nonzero duration, or a
//!   record that names itself as its own causal parent.
//! - **`EC023` — causal ordering violation**: a span that starts
//!   before the parent it claims descends from (or, on the same
//!   worker, was allocated before it), or a queue-wait that extends
//!   past the start of the task run it measured the wait for.
//! - **`EC020` — occupancy overlap**: on one worker thread, execution
//!   spans (`node`, `task_run`, `pack`, `compute`, `merge`) must form
//!   a laminar family — properly nested or disjoint. A *partial*
//!   crossing means two records claim the same thread was inside two
//!   unrelated scopes at once: a torn record or a broken causal chain.
//!
//! Nesting across unrelated causal chains is deliberately legal: under
//! help-first joins a thread that blocks on a task handle picks up
//! other queued tasks, so a `task_run` parented elsewhere can sit
//! *inside* the joiner's open span. Only crossings are violations.
//! Queue-wait spans are exempt from the occupancy check entirely —
//! they measure time on the queue, which legitimately overlaps
//! whatever the destination worker was running when the task was
//! submitted.
//!
//! Diagnostic [`Span::Event`] indices point into the slice passed to
//! [`check_flight_records`].

use std::collections::HashMap;

use edgenn_obs::flight::{SpanKind, SpanRecord};

use crate::{codes, Diagnostic, Span};

/// Span kinds that represent a worker thread actually executing (as
/// opposed to waiting or marking an event): these must nest cleanly
/// per worker.
fn occupies_worker(kind: SpanKind) -> bool {
    matches!(
        kind,
        SpanKind::Node | SpanKind::TaskRun | SpanKind::Pack | SpanKind::Compute | SpanKind::Merge
    )
}

/// Verifies a batch of recorded flight spans; see the module docs for
/// the invariants. Returns one diagnostic per violation, in check
/// order (malformed, causal, occupancy).
#[must_use]
pub fn check_flight_records(records: &[SpanRecord]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    check_malformed(records, &mut out);
    let by_id: HashMap<u64, usize> = records.iter().enumerate().map(|(i, r)| (r.id, i)).collect();
    check_causal_order(records, &by_id, &mut out);
    check_queue_handoff(records, &mut out);
    check_worker_occupancy(records, &mut out);
    out
}

fn check_malformed(records: &[SpanRecord], out: &mut Vec<Diagnostic>) {
    for (i, r) in records.iter().enumerate() {
        if r.end_ns < r.start_ns {
            out.push(Diagnostic::new(
                codes::MALFORMED_EVENT,
                Span::Event(i),
                format!(
                    "{} span {} ends at {} ns, before its start {} ns",
                    r.kind.name(),
                    r.id,
                    r.end_ns,
                    r.start_ns
                ),
            ));
        }
        if r.kind.is_instant() && r.end_ns != r.start_ns {
            out.push(Diagnostic::new(
                codes::MALFORMED_EVENT,
                Span::Event(i),
                format!(
                    "instant-kind {} record {} spans {} ns instead of zero",
                    r.kind.name(),
                    r.id,
                    r.end_ns.saturating_sub(r.start_ns)
                ),
            ));
        }
        if r.parent == r.id && r.id != 0 {
            out.push(Diagnostic::new(
                codes::MALFORMED_EVENT,
                Span::Event(i),
                format!("{} span {} is its own causal parent", r.kind.name(), r.id),
            ));
        }
    }
}

fn check_causal_order(
    records: &[SpanRecord],
    by_id: &HashMap<u64, usize>,
    out: &mut Vec<Diagnostic>,
) {
    for (i, r) in records.iter().enumerate() {
        if r.parent == 0 || r.parent == r.id {
            continue;
        }
        // Parents outside the drained window (earlier requests, ring
        // overwrite) are not checkable; skip rather than guess.
        let Some(&pi) = by_id.get(&r.parent) else {
            continue;
        };
        let parent = &records[pi];
        // Ids are allocated from per-thread blocks: numeric order
        // implies allocation order only within one worker.
        if r.worker == parent.worker && r.id <= parent.id {
            out.push(Diagnostic::new(
                codes::ORDERING_HAZARD,
                Span::Events(pi, i),
                format!(
                    "{} span {} was allocated before its parent {} span {}",
                    r.kind.name(),
                    r.id,
                    parent.kind.name(),
                    parent.id
                ),
            ));
        }
        if r.start_ns < parent.start_ns {
            out.push(Diagnostic::new(
                codes::ORDERING_HAZARD,
                Span::Events(pi, i),
                format!(
                    "{} span {} starts {} ns before its parent {} span {}",
                    r.kind.name(),
                    r.id,
                    parent.start_ns - r.start_ns,
                    parent.kind.name(),
                    parent.id
                ),
            ));
        }
    }
}

/// A queue-wait span measures submit-to-pickup for exactly one task
/// run: the sibling (same parent, same worker) whose id is the next
/// one allocated after the wait was recorded. The wait must end at or
/// before that run starts — a wait that extends into the run means the
/// pickup timestamp and the run's own clock disagree about causality.
fn check_queue_handoff(records: &[SpanRecord], out: &mut Vec<Diagnostic>) {
    for (qi, q) in records.iter().enumerate() {
        if q.kind != SpanKind::QueueWait {
            continue;
        }
        let run = records
            .iter()
            .enumerate()
            .filter(|(_, r)| {
                r.kind == SpanKind::TaskRun
                    && r.parent == q.parent
                    && r.worker == q.worker
                    && r.id > q.id
            })
            .min_by_key(|(_, r)| r.id);
        let Some((ri, r)) = run else {
            continue;
        };
        if q.end_ns > r.start_ns {
            out.push(Diagnostic::new(
                codes::ORDERING_HAZARD,
                Span::Events(qi, ri),
                format!(
                    "queue wait {} ends {} ns after task run {} starts",
                    q.id,
                    q.end_ns - r.start_ns,
                    r.id
                ),
            ));
        }
    }
}

/// Per-worker laminar check: sort that worker's execution spans by
/// (start ascending, end descending) and sweep with a nesting stack.
/// Every span must be disjoint from, or fully contained in, the
/// enclosing open span. A partial crossing is an `EC020`.
fn check_worker_occupancy(records: &[SpanRecord], out: &mut Vec<Diagnostic>) {
    let mut per_worker: HashMap<u16, Vec<usize>> = HashMap::new();
    for (i, r) in records.iter().enumerate() {
        if occupies_worker(r.kind) && r.end_ns >= r.start_ns {
            per_worker.entry(r.worker).or_default().push(i);
        }
    }
    for (worker, mut idxs) in per_worker {
        idxs.sort_by(|&a, &b| {
            let (ra, rb) = (&records[a], &records[b]);
            ra.start_ns
                .cmp(&rb.start_ns)
                .then(rb.end_ns.cmp(&ra.end_ns))
        });
        let mut stack: Vec<usize> = Vec::new();
        for &i in &idxs {
            let r = &records[i];
            // Close every enclosing span that ended before this one
            // starts (half-open intervals: touching ends are disjoint).
            while let Some(&top) = stack.last() {
                if records[top].end_ns <= r.start_ns {
                    stack.pop();
                } else {
                    break;
                }
            }
            if let Some(&top) = stack.last() {
                let t = &records[top];
                if t.end_ns < r.end_ns {
                    out.push(Diagnostic::new(
                        codes::KERNEL_OVERLAP,
                        Span::Events(top, i),
                        format!(
                            "worker {} spans cross: {} {} [{}, {}) vs {} {} [{}, {})",
                            worker,
                            t.kind.name(),
                            t.id,
                            t.start_ns,
                            t.end_ns,
                            r.kind.name(),
                            r.id,
                            r.start_ns,
                            r.end_ns
                        ),
                    ));
                }
            }
            stack.push(i);
        }
    }
    // HashMap iteration order is arbitrary; keep the report stable.
    out.sort_by_key(|d| match d.span {
        Span::Events(a, b) => (a, b),
        Span::Event(e) => (e, e),
        _ => (usize::MAX, usize::MAX),
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgenn_core::plan::ExecutionConfig;
    use edgenn_core::prelude::*;
    use edgenn_obs::flight;
    use edgenn_sim::platforms::jetson_agx_xavier;
    use edgenn_tensor::Tensor;

    fn rec(
        id: u64,
        parent: u64,
        kind: SpanKind,
        worker: u16,
        start_ns: u64,
        end_ns: u64,
    ) -> SpanRecord {
        SpanRecord {
            id,
            parent,
            kind,
            node: 7,
            worker,
            start_ns,
            end_ns,
            arg: 0,
        }
    }

    #[test]
    fn clean_nested_trace_passes() {
        let records = vec![
            rec(1, 0, SpanKind::Request, 0, 0, 100),
            rec(2, 1, SpanKind::Node, 0, 10, 90),
            rec(5, 2, SpanKind::Pack, 0, 20, 40),
            rec(6, 2, SpanKind::Compute, 0, 40, 80),
            rec(3, 2, SpanKind::QueueWait, 1, 12, 30),
            rec(4, 2, SpanKind::TaskRun, 1, 30, 60),
            rec(7, 2, SpanKind::Merge, 0, 80, 88),
            rec(8, 2, SpanKind::ArenaHit, 0, 21, 21),
        ];
        let diags = check_flight_records(&records);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn malformed_intervals_and_self_parents_flag_ec021() {
        let records = vec![
            rec(1, 0, SpanKind::Node, 0, 50, 40),
            rec(2, 2, SpanKind::Compute, 0, 60, 70),
            rec(3, 0, SpanKind::Retry, 0, 80, 85),
        ];
        let diags = check_flight_records(&records);
        assert_eq!(diags.len(), 3);
        assert!(diags.iter().all(|d| d.code == codes::MALFORMED_EVENT));
        assert!(diags[0].message.contains("before its start"));
        assert!(diags
            .iter()
            .any(|d| d.message.contains("own causal parent")));
        assert!(diags.iter().any(|d| d.message.contains("instant-kind")));
    }

    #[test]
    fn crossing_spans_on_one_worker_flag_ec020() {
        let records = vec![
            rec(1, 0, SpanKind::Node, 3, 10, 50),
            rec(2, 0, SpanKind::Node, 3, 30, 70),
        ];
        let diags = check_flight_records(&records);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, codes::KERNEL_OVERLAP);
        assert_eq!(diags[0].span, Span::Events(0, 1));
        assert!(diags[0].message.contains("worker 3 spans cross"));
    }

    #[test]
    fn helped_task_nested_in_an_unrelated_scope_is_legal() {
        // Help-first join: worker 0's node span contains a task run
        // whose causal parent is elsewhere. Containment is fine;
        // different workers never conflict; touching ends are disjoint.
        let records = vec![
            rec(1, 0, SpanKind::Request, 0, 0, 100),
            rec(2, 1, SpanKind::Node, 0, 10, 90),
            rec(3, 1, SpanKind::TaskRun, 0, 20, 40),
            rec(4, 1, SpanKind::TaskRun, 1, 20, 40),
            rec(5, 1, SpanKind::Node, 0, 90, 95),
        ];
        let diags = check_flight_records(&records);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn child_starting_before_its_parent_flags_ec023() {
        let records = vec![
            rec(5, 0, SpanKind::Node, 0, 50, 90),
            rec(6, 5, SpanKind::Compute, 0, 40, 45),
            rec(3, 5, SpanKind::Merge, 0, 60, 70),
        ];
        let diags = check_flight_records(&records);
        assert_eq!(diags.len(), 2, "{diags:?}");
        assert!(diags.iter().all(|d| d.code == codes::ORDERING_HAZARD));
        assert!(diags.iter().any(|d| d.message.contains("starts")));
        assert!(diags.iter().any(|d| d.message.contains("allocated before")));
    }

    #[test]
    fn queue_wait_extending_past_its_task_run_flags_ec023() {
        let records = vec![
            rec(1, 0, SpanKind::Request, 0, 0, 100),
            rec(2, 1, SpanKind::QueueWait, 1, 5, 45),
            rec(3, 1, SpanKind::TaskRun, 1, 40, 60),
        ];
        let diags = check_flight_records(&records);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, codes::ORDERING_HAZARD);
        assert!(diags[0].message.contains("queue wait"));
    }

    #[test]
    fn unknown_parents_outside_the_window_are_skipped() {
        let records = vec![rec(9, 4, SpanKind::Node, 0, 10, 20)];
        assert!(check_flight_records(&records).is_empty());
    }

    #[test]
    fn recorded_real_run_is_causally_clean() {
        flight::enable();
        let graph = build(ModelKind::SqueezeNet, ModelScale::Tiny);
        let platform = jetson_agx_xavier();
        let runtime = Runtime::new(&platform);
        let tuner = Tuner::new(&graph, &runtime).unwrap();
        let plan = tuner
            .plan(&graph, &runtime, ExecutionConfig::edgenn())
            .unwrap();
        let input = Tensor::random(graph.input_shape().dims(), 1.0, 11);
        let marker = flight::mark();
        let outcome = edgenn_core::runtime::functional::execute(&graph, &plan, &input).unwrap();
        assert!(outcome.engine.profile.is_some());
        let records = flight::drain_since(&marker);
        let root = records
            .iter()
            .find(|r| r.kind == SpanKind::Request)
            .expect("the run records a request root span");
        let slice = flight::causal_slice(&records, root.id);
        assert!(slice.len() > 10, "real run produced {} spans", slice.len());
        let diags = check_flight_records(&slice);
        assert!(diags.is_empty(), "measured timeline must verify: {diags:?}");
    }
}
