//! Recovery-trace validation (`EC04x`).
//!
//! A resilient run produces a [`RecoveryLog`] alongside its report:
//! counters plus the decision stream in simulated-time order. This tier
//! verifies the log is self-consistent — every fault that bit was
//! answered, no node retried past its budget, the counters agree with
//! the events, and the decisions form a valid walk of the recovery
//! state machine (see `docs/resilience.md`).

use edgenn_core::runtime::resilience::RecoveryLog;
use edgenn_core::{RecoveryAction, RecoveryCause};

use crate::{codes, Diagnostic, Span};

/// Verifies one recovery log's invariants.
///
/// - **EC040**: a kernel-fault counter is positive but the log records
///   no decision (or a permanent GPU loss lacks its fallback event).
/// - **EC041**: one node logged more retries than the budget, or a
///   retry carries an attempt number past the budget.
/// - **EC042**: `retries` / `fallbacks` / `deadline_degradations`
///   disagree with the event stream, or fewer faults were injected
///   than kernel decisions taken (every retry or fallback is the
///   answer to exactly one failed launch).
/// - **EC043**: decisions out of simulated-time order, or a retry of a
///   node after that node already fell back to the CPU.
#[must_use]
pub fn check_recovery(log: &RecoveryLog) -> Vec<Diagnostic> {
    let mut out = Vec::new();

    let retry_events = log
        .events
        .iter()
        .filter(|e| e.action == RecoveryAction::Retry)
        .count() as u64;
    let fallback_events = log
        .events
        .iter()
        .filter(|e| e.action == RecoveryAction::FallbackToCpu)
        .count() as u64;
    let degrade_events = log
        .events
        .iter()
        .filter(|e| e.action == RecoveryAction::DegradeToSingleProcessor)
        .count() as u64;

    // EC040: kernel recovery work claimed by the counters must appear
    // as decisions, and a lost GPU must trace back to a permanent-fault
    // fallback.
    if (log.retries > 0 || log.fallbacks > 0) && log.events.is_empty() {
        out.push(Diagnostic::new(
            codes::FAULT_UNRECOVERED,
            Span::Global,
            format!(
                "counters record {} retries / {} fallbacks but the log has no decisions",
                log.retries, log.fallbacks
            ),
        ));
    }
    if log.gpu_lost
        && !log.events.iter().any(|e| {
            e.cause == RecoveryCause::PermanentKernel && e.action == RecoveryAction::FallbackToCpu
        })
    {
        out.push(Diagnostic::new(
            codes::FAULT_UNRECOVERED,
            Span::Global,
            "gpu_lost is set but no permanent-kernel fallback was logged".to_string(),
        ));
    }

    // EC041: per-node retry budget.
    let mut retries_per_node: std::collections::BTreeMap<usize, u64> =
        std::collections::BTreeMap::new();
    for event in &log.events {
        if event.action == RecoveryAction::Retry {
            *retries_per_node.entry(event.node).or_insert(0) += 1;
            if event.attempt > log.max_attempts {
                out.push(Diagnostic::new(
                    codes::RETRY_BUDGET_EXCEEDED,
                    Span::Node(event.node),
                    format!(
                        "retry attempt {} of node {} exceeds the budget of {}",
                        event.attempt, event.node, log.max_attempts
                    ),
                ));
            }
        }
    }
    for (node, count) in &retries_per_node {
        if *count > u64::from(log.max_attempts) {
            out.push(Diagnostic::new(
                codes::RETRY_BUDGET_EXCEEDED,
                Span::Node(*node),
                format!(
                    "node {node} logged {count} retries against a budget of {}",
                    log.max_attempts
                ),
            ));
        }
    }

    // EC042: counters vs events, and injections vs kernel decisions.
    for (name, counter, events) in [
        ("retries", log.retries, retry_events),
        ("fallbacks", log.fallbacks, fallback_events),
        (
            "deadline_degradations",
            log.deadline_degradations,
            degrade_events,
        ),
    ] {
        if counter != events {
            out.push(Diagnostic::new(
                codes::RECOVERY_ACCOUNTING_MISMATCH,
                Span::Global,
                format!("{name} counter is {counter} but the log holds {events} matching events"),
            ));
        }
    }
    if log.faults_injected < log.retries + log.fallbacks {
        out.push(Diagnostic::new(
            codes::RECOVERY_ACCOUNTING_MISMATCH,
            Span::Global,
            format!(
                "{} kernel decisions answer only {} injected faults",
                log.retries + log.fallbacks,
                log.faults_injected
            ),
        ));
    }

    // EC043: simulated-time order, and no retry after a node's fallback.
    for (idx, pair) in log.events.windows(2).enumerate() {
        if pair[1].t_us < pair[0].t_us {
            out.push(Diagnostic::new(
                codes::RECOVERY_ORDER_VIOLATION,
                Span::Global,
                format!(
                    "decision {} at t={:.3} us precedes decision {} at t={:.3} us",
                    idx + 1,
                    pair[1].t_us,
                    idx,
                    pair[0].t_us
                ),
            ));
        }
    }
    let mut fallen_back: std::collections::BTreeSet<usize> = std::collections::BTreeSet::new();
    for event in &log.events {
        match event.action {
            RecoveryAction::Retry if fallen_back.contains(&event.node) => {
                out.push(Diagnostic::new(
                    codes::RECOVERY_ORDER_VIOLATION,
                    Span::Node(event.node),
                    format!(
                        "node {} retried at t={:.3} us after it already fell back to the CPU",
                        event.node, event.t_us
                    ),
                ));
            }
            RecoveryAction::FallbackToCpu => {
                fallen_back.insert(event.node);
            }
            _ => {}
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgenn_core::runtime::resilience::RecoveryEvent;

    fn event(t_us: f64, node: usize, action: RecoveryAction, attempt: u32) -> RecoveryEvent {
        let cause = match action {
            RecoveryAction::FallbackToCpu => RecoveryCause::PermanentKernel,
            RecoveryAction::DegradeToSingleProcessor => RecoveryCause::DeadlineOverrun,
            _ => RecoveryCause::TransientKernel,
        };
        RecoveryEvent {
            t_us,
            node,
            cause,
            action,
            attempt,
        }
    }

    fn consistent_log() -> RecoveryLog {
        RecoveryLog {
            faults_injected: 4,
            retries: 3,
            fallbacks: 1,
            deadline_degradations: 0,
            max_attempts: 3,
            gpu_lost: true,
            events: vec![
                event(10.0, 2, RecoveryAction::Retry, 1),
                event(20.0, 2, RecoveryAction::Retry, 2),
                event(35.0, 2, RecoveryAction::Retry, 3),
                event(60.0, 2, RecoveryAction::FallbackToCpu, 4),
            ],
        }
    }

    #[test]
    fn clean_and_consistent_logs_pass() {
        assert!(check_recovery(&RecoveryLog::default()).is_empty());
        let diags = check_recovery(&consistent_log());
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn counters_without_events_trip_ec040() {
        let log = RecoveryLog {
            faults_injected: 1,
            retries: 1,
            ..Default::default()
        };
        let diags = check_recovery(&log);
        assert!(diags.iter().any(|d| d.code == codes::FAULT_UNRECOVERED));
    }

    #[test]
    fn gpu_loss_without_fallback_trips_ec040() {
        let mut log = consistent_log();
        log.events
            .retain(|e| e.action != RecoveryAction::FallbackToCpu);
        log.fallbacks = 0;
        log.faults_injected = 3;
        let diags = check_recovery(&log);
        assert!(diags.iter().any(|d| d.code == codes::FAULT_UNRECOVERED));
    }

    #[test]
    fn over_budget_retries_trip_ec041() {
        let mut log = consistent_log();
        log.max_attempts = 2;
        let diags = check_recovery(&log);
        assert!(diags.iter().any(|d| d.code == codes::RETRY_BUDGET_EXCEEDED));
    }

    #[test]
    fn counter_drift_trips_ec042() {
        let mut log = consistent_log();
        log.retries = 7;
        let diags = check_recovery(&log);
        assert!(diags
            .iter()
            .any(|d| d.code == codes::RECOVERY_ACCOUNTING_MISMATCH));
    }

    #[test]
    fn more_decisions_than_injections_trip_ec042() {
        let mut log = consistent_log();
        log.faults_injected = 2;
        let diags = check_recovery(&log);
        assert!(diags
            .iter()
            .any(|d| d.code == codes::RECOVERY_ACCOUNTING_MISMATCH));
    }

    #[test]
    fn resilience_docs_list_every_ec04x_code() {
        let docs = include_str!("../../../docs/resilience.md");
        for info in crate::registry() {
            if !info.code.starts_with("EC04") {
                continue;
            }
            let row = docs
                .lines()
                .find(|l| l.starts_with(&format!("| {} ", info.code)))
                .unwrap_or_else(|| panic!("{} missing from docs/resilience.md", info.code));
            let want = match info.severity {
                crate::Severity::Error => "| error |",
                crate::Severity::Warning => "| warning |",
            };
            assert!(
                row.contains(want) && row.contains(info.title),
                "{} drifted from docs/resilience.md: {row}",
                info.code
            );
        }
    }

    #[test]
    fn time_travel_and_post_fallback_retries_trip_ec043() {
        let mut log = consistent_log();
        log.events.swap(0, 1);
        let diags = check_recovery(&log);
        assert!(diags
            .iter()
            .any(|d| d.code == codes::RECOVERY_ORDER_VIOLATION));

        let mut log = consistent_log();
        log.events.push(event(70.0, 2, RecoveryAction::Retry, 5));
        log.retries = 4;
        log.faults_injected = 5;
        let diags = check_recovery(&log);
        assert!(diags
            .iter()
            .any(|d| d.code == codes::RECOVERY_ORDER_VIOLATION));
    }
}
