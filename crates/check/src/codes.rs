//! The stable diagnostic-code registry.
//!
//! Codes are grouped by tier: `EC00x` graph analysis, `EC01x` plan
//! analysis, `EC02x` trace race detection, `EC03x` report accounting,
//! `EC04x` recovery-trace validation, `EC05x` ownership/liveness
//! analysis, `EC06x` compile rewrite legality, `EC07x` admission-log
//! legality for the serving layer.
//! Codes are append-only — a released code never changes meaning, so
//! tooling (CI gates, dashboards) can match on them forever.

use crate::Severity;

/// Tier A: a node consumes a value defined at or after itself.
pub const DEF_BEFORE_USE: &str = "EC001";
/// Tier A: a node's output reaches no sink.
pub const DEAD_NODE: &str = "EC002";
/// Tier A: stored output shape disagrees with shape inference.
pub const SHAPE_MISMATCH: &str = "EC003";
/// Tier A: input count disagrees with the layer's declared arity.
pub const ARITY_MISMATCH: &str = "EC004";
/// Tier A: a `+relu`-fused layer that must not carry the fusion.
pub const ILLEGAL_FUSION: &str = "EC005";
/// Tier A: the DAG falls outside the fork-join family the planner
/// decomposes.
pub const UNDECOMPOSABLE: &str = "EC006";

/// Tier B: plan and graph disagree on node count.
pub const PLAN_SIZE_MISMATCH: &str = "EC010";
/// Tier B: a split fraction outside `(0, 1]` (or non-finite).
pub const SPLIT_FRACTION_RANGE: &str = "EC011";
/// Tier B: managed output on an input-split co-run under semantic-aware
/// policy (write-shared partial sums; `semantics.rs` prescribes
/// explicit).
pub const MANAGED_CORUN_OUTPUT: &str = "EC012";
/// Tier B: an assignment the config's hybrid mode or the layer's
/// capabilities forbid.
pub const ASSIGNMENT_FORBIDDEN: &str = "EC013";
/// Tier B: GPU work planned on a platform without a GPU.
pub const GPU_WORK_WITHOUT_GPU: &str = "EC014";
/// Tier B: a split so skewed one processor receives no whole partition
/// unit.
pub const DEGENERATE_SPLIT: &str = "EC015";
/// Tier B: a profiled time outside Eq. 1–4's domain (negative or NaN).
pub const INVALID_PROFILE_TIME: &str = "EC016";
/// Tier B: an execution-config field outside its documented range.
pub const CONFIG_FIELD_RANGE: &str = "EC017";
/// Tier B: the plan's memory footprint exceeds platform DRAM.
pub const FOOTPRINT_EXCEEDS_DRAM: &str = "EC018";

/// Tier C: two kernels overlap on one processor.
pub const KERNEL_OVERLAP: &str = "EC020";
/// Tier C: an event with non-finite timestamps or negative duration.
pub const MALFORMED_EVENT: &str = "EC021";
/// Tier C: CPU and GPU write one region concurrently.
pub const WRITE_WRITE_RACE: &str = "EC022";
/// Tier C: a DMA transfer concurrent with a kernel (or transfer) on the
/// same region.
pub const ORDERING_HAZARD: &str = "EC023";
/// Tier C: a single transfer faster than the platform's fastest link.
pub const BANDWIDTH_EXCEEDED: &str = "EC024";
/// Tier C: concurrent transfers that sum past the link capacity.
pub const AGGREGATE_BANDWIDTH: &str = "EC025";

/// Report: raw copy proportion outside `[0, 1]`.
pub const COPY_PROPORTION_OUT_OF_RANGE: &str = "EC030";
/// Report: busy time exceeds wall-clock time.
pub const BUSY_EXCEEDS_WALL: &str = "EC031";

/// Recovery: a fault bit but the log records no recovery decision.
pub const FAULT_UNRECOVERED: &str = "EC040";
/// Recovery: more retries of one node than the configured budget.
pub const RETRY_BUDGET_EXCEEDED: &str = "EC041";
/// Recovery: counters disagree with the event stream.
pub const RECOVERY_ACCOUNTING_MISMATCH: &str = "EC042";
/// Recovery: decisions out of simulated-time order, or a retry after
/// the node already fell back.
pub const RECOVERY_ORDER_VIOLATION: &str = "EC043";

/// Ownership: a node reads a slot no prior op wrote.
pub const READ_BEFORE_WRITE: &str = "EC050";
/// Ownership: a slot written twice (`OnceLock` write-once contract).
pub const DOUBLE_WRITE: &str = "EC051";
/// Ownership: two parallel branches touch one slot without ordering.
pub const CROSS_BRANCH_RACE: &str = "EC052";
/// Ownership: a read or merge of a slot whose value already moved out.
pub const USE_AFTER_MOVE: &str = "EC053";
/// Ownership: the schedule never produces the graph's output slot.
pub const OUTPUT_NEVER_PRODUCED: &str = "EC054";
/// Ownership: a slot written but never read and not the output.
pub const DEAD_WRITE: &str = "EC055";
/// Ownership: an arena buffer outlives the node that acquired it.
pub const ARENA_ESCAPE: &str = "EC056";
/// Ownership: an in-place merge target aliases another live slot.
pub const MERGE_ALIASES_LIVE_SLOT: &str = "EC057";
/// Ownership: the certified peak-memory bound exceeds platform DRAM.
pub const CERTIFIED_PEAK_EXCEEDS_DRAM: &str = "EC058";
/// Ownership: the schedule writes the borrowed network-input slot.
pub const BORROWED_INPUT_WRITTEN: &str = "EC059";

/// Compile: the compiled graph's interface (input or output shape)
/// differs from the original graph's.
pub const COMPILE_INTERFACE_CHANGED: &str = "EC060";
/// Compile: a fused node violates the partial-range contract (a `+relu`
/// node that is itself a ReLU, or supports input splits without
/// deferring its folded epilogue).
pub const COMPILE_FUSION_CONTRACT: &str = "EC061";
/// Compile: dead or orphaned nodes survive compilation (an unreachable
/// node, or a constant feeding nothing).
pub const COMPILE_ORPHANED_NODES: &str = "EC062";
/// Compile: the compile report disagrees with the graph it describes.
pub const COMPILE_REPORT_MISMATCH: &str = "EC063";

/// Serve: an admission-log event out of lifecycle order (a completion
/// for a shed, rejected, or never-admitted request; a duplicate
/// terminal; a batch member that was never enqueued).
pub const SERVE_LIFECYCLE: &str = "EC070";
/// Serve: a batch pick diverges from the weighted-fair replay (wrong
/// tenant, wrong request, oversized batch, or a logged virtual-time
/// vector the replay does not reproduce).
pub const SERVE_FAIRNESS_REPLAY: &str = "EC071";
/// Serve: deadline accounting — logged latency disagrees with the
/// event clock, or a completion landed past its deadline without the
/// SLO guard engaging.
pub const SERVE_DEADLINE_ACCOUNTING: &str = "EC072";
/// Serve: the bounded pending set's logged depth diverges from the
/// replay, exceeds capacity, or never drained.
pub const SERVE_QUEUE_BOUND: &str = "EC073";
/// Serve: admission arithmetic does not add up (admitted is not
/// completed + shed + still-pending, duplicate request ids, or
/// admitted requests that never reached the queue).
pub const SERVE_ADMISSION_ACCOUNTING: &str = "EC074";

/// Registry entry: one stable code with its default severity and a
/// one-line remediation (mirrored into `docs/diagnostics.md`).
#[derive(Debug, Clone, Copy)]
pub struct CodeInfo {
    /// The stable `EC0xx` code.
    pub code: &'static str,
    /// Short title.
    pub title: &'static str,
    /// Default severity.
    pub severity: Severity,
    /// True when `--lenient` may downgrade this error to a warning.
    ///
    /// The downgrade set is declared here, next to the code, so a new
    /// code can never slip into the lenient path by accident: codes
    /// default to strict, and codes absent from the registry entirely
    /// fail closed (stay errors).
    pub lenient: bool,
    /// One-line remediation.
    pub remediation: &'static str,
}

/// Every registered diagnostic code, in code order.
#[must_use]
pub fn registry() -> &'static [CodeInfo] {
    use Severity::{Error, Warning};
    &[
        CodeInfo {
            code: DEF_BEFORE_USE,
            title: "def-before-use violation",
            severity: Error,
            lenient: false,
            remediation: "Build graphs through GraphBuilder::add so every input id precedes its consumer.",
        },
        CodeInfo {
            code: DEAD_NODE,
            title: "dead node",
            severity: Warning,
            lenient: false,
            remediation: "Remove the unused layer or wire its output toward the sink.",
        },
        CodeInfo {
            code: SHAPE_MISMATCH,
            title: "shape inference mismatch",
            severity: Error,
            lenient: false,
            remediation: "Recompute stored output shapes with Layer::output_shape over the actual input shapes.",
        },
        CodeInfo {
            code: ARITY_MISMATCH,
            title: "arity mismatch",
            severity: Error,
            lenient: false,
            remediation: "Feed the node exactly Layer::arity() inputs.",
        },
        CodeInfo {
            code: ILLEGAL_FUSION,
            title: "illegal ReLU fusion",
            severity: Error,
            lenient: false,
            remediation: "Only fuse ReLU into a non-ReLU producer whose partial results are final (no input splits).",
        },
        CodeInfo {
            code: UNDECOMPOSABLE,
            title: "undecomposable structure",
            severity: Warning,
            lenient: false,
            remediation: "Restructure nested forks into the flat fork-join family, or accept single-processor plans.",
        },
        CodeInfo {
            code: PLAN_SIZE_MISMATCH,
            title: "plan/graph size mismatch",
            severity: Error,
            lenient: false,
            remediation: "Regenerate the plan from the same graph it will execute.",
        },
        CodeInfo {
            code: SPLIT_FRACTION_RANGE,
            title: "split fraction out of range",
            severity: Error,
            lenient: false,
            remediation: "Clamp planner output to (0, 1]; a 0-fraction split should be a plain GPU assignment.",
        },
        CodeInfo {
            code: MANAGED_CORUN_OUTPUT,
            title: "managed co-run partial sums",
            severity: Warning,
            lenient: false,
            remediation: "Allocate input-split co-run outputs explicitly (semantics.rs: CoRunOutput -> Explicit).",
        },
        CodeInfo {
            code: ASSIGNMENT_FORBIDDEN,
            title: "assignment violates mode or capability",
            severity: Error,
            lenient: false,
            remediation: "Only emit split assignments when the hybrid mode allows intra-kernel co-running and the layer supports the split axis.",
        },
        CodeInfo {
            code: GPU_WORK_WITHOUT_GPU,
            title: "GPU work on CPU-only platform",
            severity: Error,
            lenient: false,
            remediation: "Plan against the target platform: CPU-only devices take Assignment::Cpu everywhere.",
        },
        CodeInfo {
            code: DEGENERATE_SPLIT,
            title: "degenerate split",
            severity: Warning,
            lenient: false,
            remediation: "Round the fraction to at least one whole partition unit per processor, or assign the node solo.",
        },
        CodeInfo {
            code: INVALID_PROFILE_TIME,
            title: "invalid profiled time",
            severity: Error,
            lenient: false,
            remediation: "Re-profile the node; Eq. 1-4 need non-negative finite times (infinite GPU time is the no-GPU sentinel).",
        },
        CodeInfo {
            code: CONFIG_FIELD_RANGE,
            title: "config field out of range",
            severity: Error,
            lenient: false,
            remediation: "Keep sync overhead >= 0, host roundtrip fraction in [0, 1], jitter in [0, 1).",
        },
        CodeInfo {
            code: FOOTPRINT_EXCEEDS_DRAM,
            title: "footprint exceeds DRAM",
            severity: Error,
            lenient: false,
            remediation: "Shrink the model scale or prefer managed (single-copy) allocations on the biggest arrays.",
        },
        CodeInfo {
            code: KERNEL_OVERLAP,
            title: "kernel overlap on one processor",
            severity: Error,
            lenient: false,
            remediation: "Serialize kernels per processor through the timeline's free_at clock.",
        },
        CodeInfo {
            code: MALFORMED_EVENT,
            title: "malformed trace event",
            severity: Error,
            lenient: false,
            remediation: "Emit finite, non-negative-duration intervals for every event.",
        },
        CodeInfo {
            code: WRITE_WRITE_RACE,
            title: "CPU/GPU write-write race",
            severity: Error,
            lenient: false,
            remediation: "Give concurrent writers disjoint ranges (split part labels) or order them via a sync.",
        },
        CodeInfo {
            code: ORDERING_HAZARD,
            title: "kernel/DMA ordering hazard",
            severity: Error,
            lenient: false,
            remediation: "Schedule transfers of a region strictly before or after the kernels touching it.",
        },
        CodeInfo {
            code: BANDWIDTH_EXCEEDED,
            title: "transfer beats link capacity",
            severity: Error,
            lenient: false,
            remediation: "Lengthen the transfer to bytes / link bandwidth; no single stream can beat the memory system.",
        },
        CodeInfo {
            code: AGGREGATE_BANDWIDTH,
            title: "aggregate bandwidth over capacity",
            severity: Warning,
            lenient: false,
            remediation: "Serialize concurrent bus transfers or model per-stream contention.",
        },
        CodeInfo {
            code: COPY_PROPORTION_OUT_OF_RANGE,
            title: "copy proportion out of range",
            severity: Error,
            lenient: true,
            remediation: "Fix the accounting: memory time within one wall-clock interval cannot exceed that interval; use --lenient only for plotting.",
        },
        CodeInfo {
            code: BUSY_EXCEEDS_WALL,
            title: "busy time exceeds wall clock",
            severity: Error,
            lenient: true,
            remediation: "Check interval-union accounting: the busy union is bounded by total latency.",
        },
        CodeInfo {
            code: FAULT_UNRECOVERED,
            title: "injected fault without recovery",
            severity: Error,
            lenient: false,
            remediation: "Every kernel fault that bites must log a retry or fallback decision; check the injection hooks in exec_solo/exec_split.",
        },
        CodeInfo {
            code: RETRY_BUDGET_EXCEEDED,
            title: "retry budget exceeded",
            severity: Error,
            lenient: false,
            remediation: "Cap per-node retries at max_attempts, then fall back to the CPU instead of retrying forever.",
        },
        CodeInfo {
            code: RECOVERY_ACCOUNTING_MISMATCH,
            title: "recovery counters disagree with events",
            severity: Error,
            lenient: false,
            remediation: "Keep retries/fallbacks/deadline_degradations equal to the counts of matching events in the log.",
        },
        CodeInfo {
            code: RECOVERY_ORDER_VIOLATION,
            title: "recovery decisions out of order",
            severity: Error,
            lenient: false,
            remediation: "Log decisions in simulated-time order and never retry a node after it fell back to the CPU.",
        },
        CodeInfo {
            code: READ_BEFORE_WRITE,
            title: "read of unwritten slot",
            severity: Error,
            lenient: false,
            remediation: "Schedule every producer before its consumers; the slot table is write-once, never re-armed.",
        },
        CodeInfo {
            code: DOUBLE_WRITE,
            title: "slot written twice",
            severity: Error,
            lenient: false,
            remediation: "Each node owns exactly one OnceLock slot; a second write would be silently dropped at runtime.",
        },
        CodeInfo {
            code: CROSS_BRANCH_RACE,
            title: "cross-branch slot race",
            severity: Error,
            lenient: false,
            remediation: "Parallel branches may only touch slots of their own nodes; route shared values through the fork point.",
        },
        CodeInfo {
            code: USE_AFTER_MOVE,
            title: "use after move",
            severity: Error,
            lenient: false,
            remediation: "A slot's tensor moves out exactly once (into the result); schedule all reads before the move.",
        },
        CodeInfo {
            code: OUTPUT_NEVER_PRODUCED,
            title: "output never produced",
            severity: Error,
            lenient: false,
            remediation: "The schedule must write the graph's output slot; check the output node is reachable and executed.",
        },
        CodeInfo {
            code: DEAD_WRITE,
            title: "slot written but never read",
            severity: Warning,
            lenient: false,
            remediation: "Remove the node or wire its output toward the sink; its tensor is held to session end for nothing.",
        },
        CodeInfo {
            code: ARENA_ESCAPE,
            title: "arena buffer outlives its node",
            severity: Error,
            lenient: false,
            remediation: "Release scratch buffers (LIFO) before the acquiring node completes; with_scratch must not escape.",
        },
        CodeInfo {
            code: MERGE_ALIASES_LIVE_SLOT,
            title: "in-place merge aliases a live slot",
            severity: Error,
            lenient: false,
            remediation: "Merge partial results only into the owning node's own pending slot, never into another live buffer.",
        },
        CodeInfo {
            code: CERTIFIED_PEAK_EXCEEDS_DRAM,
            title: "certified peak exceeds DRAM",
            severity: Error,
            lenient: false,
            remediation: "Shrink the model scale or free reclaimable slots early; the certified bound must fit Platform::dram_bytes.",
        },
        CodeInfo {
            code: BORROWED_INPUT_WRITTEN,
            title: "borrowed input slot written",
            severity: Error,
            lenient: false,
            remediation: "Slot 0 borrows the caller's input tensor; no node may write it.",
        },
        CodeInfo {
            code: COMPILE_INTERFACE_CHANGED,
            title: "compiled interface changed",
            severity: Error,
            lenient: false,
            remediation: "Compiler rewrites must preserve the graph's input and output shapes exactly.",
        },
        CodeInfo {
            code: COMPILE_FUSION_CONTRACT,
            title: "fused node breaks partial-range contract",
            severity: Error,
            lenient: false,
            remediation: "A +relu node must wrap a non-ReLU producer and defer its epilogue when it supports input splits.",
        },
        CodeInfo {
            code: COMPILE_ORPHANED_NODES,
            title: "orphaned nodes after compilation",
            severity: Error,
            lenient: false,
            remediation: "Run the dce pass last; every compiled node must reach the sink (constants included).",
        },
        CodeInfo {
            code: COMPILE_REPORT_MISMATCH,
            title: "compile report disagrees with graph",
            severity: Error,
            lenient: false,
            remediation: "Regenerate the report from the compile call that produced the graph; do not edit either by hand.",
        },
        CodeInfo {
            code: SERVE_LIFECYCLE,
            title: "admission-log lifecycle violation",
            severity: Error,
            lenient: false,
            remediation: "Log every request's transitions in order (arrived, admitted, enqueued, batched, completed/shed) and never complete a shed or rejected request.",
        },
        CodeInfo {
            code: SERVE_FAIRNESS_REPLAY,
            title: "weighted-fair pick diverges from replay",
            severity: Error,
            lenient: false,
            remediation: "Every pick must take the minimum-virtual-time eligible tenant's oldest request and charge 1/weight; log the post-charge vtime vector the batcher actually holds.",
        },
        CodeInfo {
            code: SERVE_DEADLINE_ACCOUNTING,
            title: "deadline accounting violation",
            severity: Error,
            lenient: false,
            remediation: "Log latency as completion minus arrival on one clock, and route deadline-threatened batches through the degradation ladder before they miss.",
        },
        CodeInfo {
            code: SERVE_QUEUE_BOUND,
            title: "queue bound violated or not drained",
            severity: Error,
            lenient: false,
            remediation: "Refuse pushes at capacity (typed queue_full rejection), log the post-push depth, and drain the pending set before ending the run.",
        },
        CodeInfo {
            code: SERVE_ADMISSION_ACCOUNTING,
            title: "admission arithmetic does not add up",
            severity: Error,
            lenient: false,
            remediation: "Give every attempt a fresh request id and make every admitted request end as exactly one of completed or shed.",
        },
    ]
}

/// Looks up one code's registry entry.
#[must_use]
pub fn code_info(code: &str) -> Option<&'static CodeInfo> {
    registry().iter().find(|c| c.code == code)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_sorted_unique_and_complete() {
        let reg = registry();
        assert_eq!(reg.len(), 46);
        for pair in reg.windows(2) {
            assert!(pair[0].code < pair[1].code, "codes must stay sorted");
        }
        for info in reg {
            assert!(info.code.starts_with("EC0"));
            assert!(!info.remediation.is_empty());
        }
    }

    #[test]
    fn lookup_finds_known_and_rejects_unknown() {
        assert_eq!(code_info("EC020").unwrap().severity, Severity::Error);
        assert_eq!(code_info("EC025").unwrap().severity, Severity::Warning);
        assert_eq!(code_info("EC050").unwrap().severity, Severity::Error);
        assert_eq!(code_info("EC055").unwrap().severity, Severity::Warning);
        assert!(code_info("EC999").is_none());
    }

    #[test]
    fn lenient_set_is_exactly_the_accounting_pair() {
        let lenient: Vec<&str> = registry()
            .iter()
            .filter(|c| c.lenient)
            .map(|c| c.code)
            .collect();
        assert_eq!(lenient, ["EC030", "EC031"]);
    }

    #[test]
    fn docs_list_every_code_with_its_severity() {
        let docs = include_str!("../../../docs/diagnostics.md");
        for info in registry() {
            let row = docs
                .lines()
                .find(|l| l.starts_with(&format!("| {} ", info.code)))
                .unwrap_or_else(|| panic!("{} missing from docs/diagnostics.md", info.code));
            let want = match info.severity {
                Severity::Error => "| error |",
                Severity::Warning => "| warning |",
            };
            assert!(
                row.contains(want),
                "{} severity drifted from docs: {row}",
                info.code
            );
        }
    }
}
