//! Tier A extension: rewrite-legality verification for compiled graphs
//! (`EC06x`).
//!
//! The graph compiler (`edgenn_nn::graph::compile`) promises exact
//! rewrites; this module re-verifies the promise *independently of the
//! compiler's own bookkeeping*, over `(original, compiled, report)`:
//!
//! - **EC060** — the compiled graph must keep the original's interface:
//!   same input shape, same output shape.
//! - **EC061** — every fused `+relu` node must honor the partial-range
//!   contract: it must not itself be a ReLU, and if it supports
//!   input-channel splits it must defer its folded epilogue so the
//!   executor clamps once after the merge.
//! - **EC062** — no dead or orphaned nodes survive: every node reaches
//!   the sink (a stranded constant from folding is the canonical bug).
//! - **EC063** — the [`CompileReport`] must describe the graph it came
//!   with (node/edge counts, monotone pass deltas).
//!
//! Callers should run [`check_compiled`] *in addition to*
//! [`crate::check_graph`] on the compiled graph — this module checks the
//! rewrite, tier A checks the result as a graph in its own right.

use edgenn_nn::graph::{CompileReport, Graph};

use crate::{codes, Diagnostic, Span};

fn edge_count(graph: &Graph) -> usize {
    graph.nodes().iter().map(|n| n.inputs().len()).sum()
}

/// Verifies that `compiled` is a legal rewrite of `original` described
/// by `report`. Returns every `EC06x` finding (empty = legal).
#[must_use]
pub fn check_compiled(
    original: &Graph,
    compiled: &Graph,
    report: &CompileReport,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();

    // EC060 — interface preservation.
    if compiled.input_shape() != original.input_shape() {
        out.push(Diagnostic::new(
            codes::COMPILE_INTERFACE_CHANGED,
            Span::Node(0),
            format!(
                "input shape changed: {} -> {}",
                original.input_shape(),
                compiled.input_shape()
            ),
        ));
    }
    if compiled.output_shape() != original.output_shape() {
        out.push(Diagnostic::new(
            codes::COMPILE_INTERFACE_CHANGED,
            Span::Node(compiled.output_id().index()),
            format!(
                "output shape changed: {} -> {}",
                original.output_shape(),
                compiled.output_shape()
            ),
        ));
    }

    // EC061 — fused-node partial-range contract.
    for (idx, node) in compiled.nodes().iter().enumerate() {
        let layer = node.layer();
        if !layer.name().ends_with("+relu") {
            continue;
        }
        if layer.is_relu() {
            out.push(Diagnostic::new(
                codes::COMPILE_FUSION_CONTRACT,
                Span::Node(idx),
                format!("'{}' fuses a ReLU into a ReLU", layer.name()),
            ));
        }
        if layer.input_split_supported() && !layer.deferred_epilogue_relu() {
            out.push(Diagnostic::new(
                codes::COMPILE_FUSION_CONTRACT,
                Span::Node(idx),
                format!(
                    "'{}' supports input splits but does not defer its folded epilogue",
                    layer.name()
                ),
            ));
        }
    }

    // EC062 — no orphans: every non-input node must reach the sink.
    let n = compiled.len();
    if compiled.output_id().index() < n {
        let mut live = vec![false; n];
        let mut stack = vec![compiled.output_id()];
        while let Some(id) = stack.pop() {
            if std::mem::replace(&mut live[id.index()], true) {
                continue;
            }
            if let Ok(node) = compiled.node(id) {
                stack.extend_from_slice(node.inputs());
            }
        }
        live[compiled.input_id().index()] = true;
        for (idx, l) in live.iter().enumerate() {
            if !l {
                let name = compiled
                    .node(edgenn_nn::graph::NodeId(idx))
                    .map(|node| node.layer().name().to_string())
                    .unwrap_or_default();
                out.push(Diagnostic::new(
                    codes::COMPILE_ORPHANED_NODES,
                    Span::Node(idx),
                    format!("'{name}' does not reach the sink after compilation"),
                ));
            }
        }
    }

    // EC063 — report/graph agreement.
    let mut mismatches = Vec::new();
    if report.nodes_pre != original.len() {
        mismatches.push(format!(
            "nodes_pre {} != original nodes {}",
            report.nodes_pre,
            original.len()
        ));
    }
    if report.nodes_post != compiled.len() {
        mismatches.push(format!(
            "nodes_post {} != compiled nodes {}",
            report.nodes_post,
            compiled.len()
        ));
    }
    if report.edges_pre != edge_count(original) {
        mismatches.push(format!(
            "edges_pre {} != original edges {}",
            report.edges_pre,
            edge_count(original)
        ));
    }
    if report.edges_post != edge_count(compiled) {
        mismatches.push(format!(
            "edges_post {} != compiled edges {}",
            report.edges_post,
            edge_count(compiled)
        ));
    }
    for pair in report.passes.windows(2) {
        if pair[0].iteration == pair[1].iteration && pair[0].nodes_after != pair[1].nodes_before {
            mismatches.push(format!(
                "pass '{}' ends at {} nodes but '{}' starts at {}",
                pair[0].pass, pair[0].nodes_after, pair[1].pass, pair[1].nodes_before
            ));
        }
    }
    for p in &report.passes {
        if p.nodes_after > p.nodes_before {
            mismatches.push(format!(
                "pass '{}' grew the graph: {} -> {} nodes",
                p.pass, p.nodes_before, p.nodes_after
            ));
        }
    }
    for m in mismatches {
        out.push(Diagnostic::new(
            codes::COMPILE_REPORT_MISMATCH,
            Span::Global,
            m,
        ));
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgenn_nn::graph::{compile, CompileOptions, GraphBuilder, Node, NodeId};
    use edgenn_nn::layer::{Constant, Dense, Dropout, Relu};
    use edgenn_nn::models::{build, ModelKind, ModelScale};
    use edgenn_tensor::{Shape, Tensor};
    use std::sync::Arc;

    fn codes_of(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.code).collect()
    }

    #[test]
    fn compiled_models_pass_every_ec06x_check() {
        for kind in ModelKind::ALL {
            let graph = build(kind, ModelScale::Tiny);
            let (opt, report) = compile(&graph, &CompileOptions::default()).unwrap();
            let diags = check_compiled(&graph, &opt, &report);
            assert!(diags.is_empty(), "{kind}: {diags:?}");
            assert!(
                crate::check_graph(&opt).is_empty(),
                "{kind}: compiled graph must also pass tier A"
            );
        }
    }

    #[test]
    fn interface_change_is_flagged() {
        let graph = build(ModelKind::LeNet, ModelScale::Tiny);
        let (_, report) = compile(&graph, &CompileOptions::default()).unwrap();
        // "Compile" into a graph with a different output shape.
        let mut b = GraphBuilder::new("other", graph.input_shape().clone());
        let x = b.input_id();
        let flat = b.add(edgenn_nn::layer::Flatten::new("flat"), &[x]).unwrap();
        let elems = graph.input_shape().num_elements();
        let _ = b.add(Dense::new("fc", elems, 3, 0), &[flat]).unwrap();
        let other = b.finish().unwrap();
        let diags = check_compiled(&graph, &other, &report);
        assert!(codes_of(&diags).contains(&codes::COMPILE_INTERFACE_CHANGED));
    }

    #[test]
    fn fake_fused_relu_breaks_the_contract() {
        let mut b = GraphBuilder::new("g", Shape::new(&[4]));
        let x = b.input_id();
        let _ = b.add(Relu::new("conv1+relu"), &[x]).unwrap();
        let g = b.finish().unwrap();
        let report = CompileReport {
            model: "g".into(),
            nodes_pre: g.len(),
            nodes_post: g.len(),
            edges_pre: 1,
            edges_post: 1,
            ..CompileReport::default()
        };
        let diags = check_compiled(&g, &g, &report);
        assert!(codes_of(&diags).contains(&codes::COMPILE_FUSION_CONTRACT));
    }

    #[test]
    fn orphaned_constant_is_flagged() {
        // Assemble via from_parts: the builder would reject a second sink.
        let input = Node::new(
            Arc::new(edgenn_nn::layer::InputLayer::new(Shape::new(&[4]))),
            vec![],
            Shape::new(&[4]),
        );
        let orphan = Node::new(
            Arc::new(Constant::new("stranded", Tensor::ones(&[4]))),
            vec![],
            Shape::new(&[4]),
        );
        let sink = Node::new(
            Arc::new(Dropout::new("d")),
            vec![NodeId(0)],
            Shape::new(&[4]),
        );
        let g = Graph::from_parts("g", vec![input, orphan, sink], NodeId(2));
        let report = CompileReport {
            model: "g".into(),
            nodes_pre: 3,
            nodes_post: 3,
            edges_pre: 1,
            edges_post: 1,
            ..CompileReport::default()
        };
        let diags = check_compiled(&g, &g, &report);
        assert!(codes_of(&diags).contains(&codes::COMPILE_ORPHANED_NODES));
    }

    #[test]
    fn stale_report_is_flagged() {
        let graph = build(ModelKind::Fcnn, ModelScale::Tiny);
        let (opt, mut report) = compile(&graph, &CompileOptions::default()).unwrap();
        report.nodes_post += 1;
        let diags = check_compiled(&graph, &opt, &report);
        assert!(codes_of(&diags).contains(&codes::COMPILE_REPORT_MISMATCH));
    }

    #[test]
    fn compiler_docs_list_every_ec06x_code_with_its_severity() {
        // docs/diagnostics.md is covered by the registry-wide sync test;
        // docs/compiler.md carries its own copy of the EC06x table and
        // must not drift either.
        let docs = include_str!("../../../docs/compiler.md");
        for info in crate::codes::registry()
            .iter()
            .filter(|c| c.code.starts_with("EC06"))
        {
            let row = docs
                .lines()
                .find(|l| l.starts_with(&format!("| {} ", info.code)))
                .unwrap_or_else(|| panic!("{} missing from docs/compiler.md", info.code));
            assert!(
                row.contains("| error |"),
                "{} severity drifted from docs/compiler.md: {row}",
                info.code
            );
        }
    }
}
