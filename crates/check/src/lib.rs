//! # edgenn-check
//!
//! Static analysis for the EdgeNN reproduction: a three-tier verifier
//! that runs *without executing* the simulator and turns policy bugs —
//! the silent producers of plausible-but-wrong speedup numbers — into
//! stable, machine-readable diagnostics.
//!
//! - **Tier A — [`graph`]**: dataflow verification over `edgenn-nn`
//!   graphs (def-before-use, dead nodes, shape consistency, arity,
//!   illegal ReLU fusion, decomposability).
//! - **Tier B — [`plan`]**: legality of `edgenn-core` execution plans
//!   before simulation (placement per `semantics.rs`, split fractions,
//!   Eq. 1–4 input ranges, footprint vs. platform DRAM).
//! - **Tier C — [`trace`]**: a happens-before race detector over
//!   simulated event traces (kernel overlap, write-write races,
//!   kernel/DMA ordering, bandwidth conservation), plus [`report`]-level
//!   accounting invariants and [`recovery`]-log validation for runs
//!   executed under fault injection (`EC04x`). The same tier also
//!   verifies *measured* timelines: [`flight`] replays recorded flight
//!   spans from the functional engine and re-checks the occupancy and
//!   causal-ordering invariants against what actually ran.
//! - **Tier D — [`ownership`]**: an abstract interpreter over
//!   `(graph, plan)` proving the zero-copy dataflow contract statically
//!   (write-once slots, no cross-branch races, no use-after-move, LIFO
//!   arena discipline) and deriving a certified peak-memory bound the
//!   functional engine's measured high-water marks must stay under
//!   (`EC05x`).
//! - **Serving tier — [`serve`]**: admission-log legality (`EC07x`) —
//!   replays an `edgenn-serve` run's typed decision log and verifies
//!   the request lifecycle, the exact weighted-fair pick order, the
//!   bounded queue, deadline accounting, and admission arithmetic.
//!
//! Every diagnostic carries a stable `EC0xx` code ([`codes`]), a
//! [`Severity`], and a [`Span`] pointing at the node, event, or scope
//! that produced it.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod codes;
pub mod compile;
pub mod flight;
pub mod graph;
pub mod ownership;
pub mod plan;
pub mod recovery;
pub mod report;
pub mod serve;
pub mod trace;

use edgenn_obs::{EventSink, SinkEvent};
use serde::Serialize;

pub use codes::{code_info, registry, CodeInfo};
pub use compile::check_compiled;
pub use flight::check_flight_records;
pub use graph::check_graph;
pub use ownership::{
    analyze_schedule, check_ownership, derive_schedule, BufferLife, Op, OwnershipReport, PeakBound,
    Region, Schedule,
};
pub use plan::{check_config, check_plan, check_profile};
pub use recovery::check_recovery;
pub use report::check_report;
pub use serve::{check_admission_log, ServeCheckParams};
pub use trace::check_trace_events;

/// How bad a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize)]
pub enum Severity {
    /// Suspicious but runnable; does not fail the CI gate.
    Warning,
    /// A correctness violation; fails `edgenn check` and the CI gate.
    Error,
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Self::Warning => "warning",
            Self::Error => "error",
        })
    }
}

/// Where in the artifact a diagnostic points.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Span {
    /// A graph node / plan entry, by node index.
    Node(usize),
    /// A trace event, by index into the event slice.
    Event(usize),
    /// A pair of trace events (races and hazards).
    Events(usize, usize),
    /// The execution config, the report, or the artifact as a whole.
    Global,
}

impl std::fmt::Display for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Node(n) => write!(f, "n{n}"),
            Self::Event(e) => write!(f, "e{e}"),
            Self::Events(a, b) => write!(f, "e{a}/e{b}"),
            Self::Global => f.write_str("-"),
        }
    }
}

// The vendored serde derive does not handle tuple variants; spans
// serialize as their rendered form ("n3", "e3/e4").
impl Serialize for Span {
    fn to_value(&self) -> serde_json::Value {
        serde_json::Value::String(self.to_string())
    }
}

/// One finding: a stable code, a severity, a source span, and a message.
#[derive(Debug, Clone, Serialize)]
pub struct Diagnostic {
    /// Stable `EC0xx` code (see [`codes::registry`]).
    pub code: &'static str,
    /// Severity.
    pub severity: Severity,
    /// Source span.
    pub span: Span,
    /// Human-readable description of this specific finding.
    pub message: String,
}

impl Diagnostic {
    /// Builds a diagnostic with the code's default severity from the
    /// registry.
    #[must_use]
    pub fn new(code: &'static str, span: Span, message: impl Into<String>) -> Self {
        let severity = code_info(code).map_or(Severity::Error, |c| c.severity);
        Self {
            code,
            severity,
            span,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} [{}] {}: {}",
            self.code, self.severity, self.span, self.message
        )
    }
}

/// The result of a checker run: every diagnostic found, in tier order.
#[derive(Debug, Clone, Default, Serialize)]
pub struct CheckReport {
    /// All findings.
    pub diagnostics: Vec<Diagnostic>,
}

impl CheckReport {
    /// Wraps a list of findings.
    #[must_use]
    pub fn new(diagnostics: Vec<Diagnostic>) -> Self {
        Self { diagnostics }
    }

    /// Appends another tier's findings.
    pub fn extend(&mut self, diagnostics: Vec<Diagnostic>) {
        self.diagnostics.extend(diagnostics);
    }

    /// Number of error-severity findings.
    #[must_use]
    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of warning-severity findings.
    #[must_use]
    pub fn warning_count(&self) -> usize {
        self.diagnostics.len() - self.error_count()
    }

    /// True when no error-severity diagnostic was found (warnings are
    /// advisory and do not fail the gate).
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.error_count() == 0
    }

    /// True when a specific code fired at least once.
    #[must_use]
    pub fn has(&self, code: &str) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }

    /// Downgrades lenient-eligible codes to warnings — the `--lenient`
    /// mode kept for plotting pipelines that prefer a clamped copy
    /// proportion over a failed run.
    ///
    /// Eligibility is table-driven by [`CodeInfo::lenient`] in the
    /// registry, so a newly added code is strict unless its entry says
    /// otherwise, and a code missing from the registry fails closed
    /// (stays an error).
    pub fn downgrade_accounting(&mut self) {
        for d in &mut self.diagnostics {
            if code_info(d.code).is_some_and(|info| info.lenient) {
                d.severity = Severity::Warning;
            }
        }
    }

    /// Renders the findings as a human-readable table; `"clean"` plus a
    /// summary line when nothing fired.
    #[must_use]
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        if self.diagnostics.is_empty() {
            out.push_str("check clean: 0 errors, 0 warnings\n");
            return out;
        }
        out.push_str(&format!(
            "{:<7} {:<8} {:<8} message\n",
            "code", "severity", "span"
        ));
        for d in &self.diagnostics {
            out.push_str(&format!(
                "{:<7} {:<8} {:<8} {}\n",
                d.code,
                d.severity.to_string(),
                d.span.to_string(),
                d.message
            ));
        }
        out.push_str(&format!(
            "{} error(s), {} warning(s)\n",
            self.error_count(),
            self.warning_count()
        ));
        out
    }

    /// Serializes the report to a JSON value:
    /// `{"diagnostics": [...], "errors": n, "warnings": n, "clean": bool}`.
    #[must_use]
    pub fn to_json(&self) -> serde_json::Value {
        let mut m = serde_json::Map::new();
        m.insert(
            "diagnostics",
            serde_json::to_value(&self.diagnostics).expect("diagnostics serialize"),
        );
        m.insert("errors", serde_json::Value::from(self.error_count() as u64));
        m.insert(
            "warnings",
            serde_json::Value::from(self.warning_count() as u64),
        );
        m.insert("clean", serde_json::Value::from(self.is_clean()));
        serde_json::Value::Object(m)
    }

    /// Mirrors every finding into an observability sink as
    /// [`SinkEvent::Diagnostic`] events, so recorded sessions carry the
    /// verifier's verdict next to the trace it judged.
    pub fn emit_into(&self, sink: &dyn EventSink) {
        for d in &self.diagnostics {
            sink.emit(SinkEvent::Diagnostic {
                code: d.code.to_string(),
                severity: d.severity.to_string(),
                span: d.span.to_string(),
                message: d.message.clone(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagnostics_inherit_registry_severity() {
        let err = Diagnostic::new(codes::DEF_BEFORE_USE, Span::Node(3), "x");
        assert_eq!(err.severity, Severity::Error);
        let warn = Diagnostic::new(codes::DEAD_NODE, Span::Node(3), "x");
        assert_eq!(warn.severity, Severity::Warning);
        assert_eq!(err.to_string(), "EC001 [error] n3: x");
    }

    #[test]
    fn report_counts_and_gate() {
        let mut r = CheckReport::new(vec![Diagnostic::new(
            codes::DEAD_NODE,
            Span::Node(1),
            "dead",
        )]);
        assert!(r.is_clean(), "warnings alone keep the gate green");
        r.extend(vec![Diagnostic::new(
            codes::SHAPE_MISMATCH,
            Span::Node(2),
            "bad shape",
        )]);
        assert!(!r.is_clean());
        assert_eq!((r.error_count(), r.warning_count()), (1, 1));
        assert!(r.has(codes::SHAPE_MISMATCH));
    }

    #[test]
    fn lenient_mode_downgrades_accounting_codes_only() {
        let mut r = CheckReport::new(vec![
            Diagnostic::new(codes::COPY_PROPORTION_OUT_OF_RANGE, Span::Global, "1.5"),
            Diagnostic::new(codes::SHAPE_MISMATCH, Span::Node(2), "bad"),
        ]);
        assert_eq!(r.error_count(), 2);
        r.downgrade_accounting();
        assert_eq!(r.error_count(), 1, "EC003 stays an error");
        assert_eq!(r.diagnostics[0].severity, Severity::Warning);
    }

    #[test]
    fn lenient_mode_fails_closed_on_unknown_and_new_codes() {
        // A code outside the registry must never be downgraded, and the
        // EC05x ownership codes are strict by table entry.
        let mut r = CheckReport::new(vec![
            Diagnostic::new("EC998", Span::Global, "unregistered"),
            Diagnostic::new(codes::DOUBLE_WRITE, Span::Node(1), "double write"),
            Diagnostic::new(codes::BUSY_EXCEEDS_WALL, Span::Global, "busy"),
        ]);
        assert_eq!(r.error_count(), 3, "unknown codes default to Error");
        r.downgrade_accounting();
        assert_eq!(r.error_count(), 2, "only the lenient table entry moves");
        assert_eq!(r.diagnostics[0].severity, Severity::Error);
        assert_eq!(r.diagnostics[1].severity, Severity::Error);
        assert_eq!(r.diagnostics[2].severity, Severity::Warning);
    }

    #[test]
    fn table_and_json_round_trip_the_counts() {
        let r = CheckReport::new(vec![Diagnostic::new(
            codes::KERNEL_OVERLAP,
            Span::Events(3, 4),
            "overlap",
        )]);
        let table = r.render_table();
        assert!(table.contains("EC020") && table.contains("e3/e4"));
        assert!(table.contains("1 error(s), 0 warning(s)"));
        let json = r.to_json();
        assert_eq!(json["errors"], 1);
        assert_eq!(json["clean"], false);
        assert_eq!(json["diagnostics"][0]["code"], "EC020");

        let clean = CheckReport::default();
        assert!(clean.render_table().contains("check clean"));
        assert_eq!(clean.to_json()["clean"], true);
    }

    #[test]
    fn emit_into_mirrors_to_sink() {
        let rec = edgenn_obs::Recorder::new();
        let r = CheckReport::new(vec![Diagnostic::new(
            codes::ORDERING_HAZARD,
            Span::Events(0, 1),
            "hazard",
        )]);
        r.emit_into(&rec);
        let events = rec.events();
        assert_eq!(events.len(), 1);
        match &events[0] {
            SinkEvent::Diagnostic { code, severity, .. } => {
                assert_eq!(code, "EC023");
                assert_eq!(severity, "error");
            }
            other => panic!("unexpected event {other:?}"),
        }
    }
}
