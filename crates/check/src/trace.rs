//! Tier C: happens-before race detection over simulated traces.
//!
//! The interval algebra lives in `edgenn_sim::trace` (next to the event
//! type it judges); this module maps its violations onto the stable
//! diagnostic codes and spans.

use edgenn_sim::platforms::Platform;
use edgenn_sim::trace::{check_trace, LinkCaps, TraceViolation, TraceViolationKind};
use edgenn_sim::TraceEvent;

use crate::{codes, Diagnostic, Span};

fn code_for(kind: TraceViolationKind) -> &'static str {
    match kind {
        TraceViolationKind::MalformedEvent => codes::MALFORMED_EVENT,
        TraceViolationKind::KernelOverlap => codes::KERNEL_OVERLAP,
        TraceViolationKind::WriteWriteRace => codes::WRITE_WRITE_RACE,
        TraceViolationKind::OrderingHazard => codes::ORDERING_HAZARD,
        TraceViolationKind::BandwidthExceeded => codes::BANDWIDTH_EXCEEDED,
        TraceViolationKind::AggregateBandwidth => codes::AGGREGATE_BANDWIDTH,
    }
}

fn to_diagnostic(v: &TraceViolation) -> Diagnostic {
    let span = match v.second {
        Some(second) => Span::Events(v.first, second),
        None => Span::Event(v.first),
    };
    Diagnostic::new(code_for(v.kind), span, v.detail.clone())
}

/// Runs the happens-before race detector over one single-request trace,
/// with the bandwidth-conservation ceiling derived from `platform`'s
/// fastest physical path (EC020–EC025).
#[must_use]
pub fn check_trace_events(events: &[TraceEvent], platform: &Platform) -> Vec<Diagnostic> {
    let caps = LinkCaps::from_platform(platform);
    check_trace(events, Some(&caps))
        .iter()
        .map(to_diagnostic)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgenn_sim::platforms::jetson_agx_xavier;
    use edgenn_sim::{ProcessorKind, TraceKind};

    fn ev(
        label: &str,
        kind: TraceKind,
        proc: Option<ProcessorKind>,
        start: f64,
        end: f64,
        bytes: u64,
    ) -> TraceEvent {
        TraceEvent {
            kind,
            processor: proc,
            start_us: start,
            end_us: end,
            label: label.to_string(),
            bytes,
        }
    }

    #[test]
    fn dma_overlapping_compute_is_permitted() {
        let events = vec![
            ev(
                "conv1",
                TraceKind::Kernel,
                Some(ProcessorKind::Gpu),
                0.0,
                100.0,
                0,
            ),
            // A different region's DMA rides alongside the kernel.
            ev(
                "conv2 h2d",
                TraceKind::Copy,
                Some(ProcessorKind::Gpu),
                10.0,
                40.0,
                1 << 20,
            ),
        ];
        let diags = check_trace_events(&events, &jetson_agx_xavier());
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn overlapping_kernels_on_one_processor_are_rejected() {
        let events = vec![
            ev(
                "conv1",
                TraceKind::Kernel,
                Some(ProcessorKind::Gpu),
                0.0,
                100.0,
                0,
            ),
            ev(
                "conv2",
                TraceKind::Kernel,
                Some(ProcessorKind::Gpu),
                50.0,
                150.0,
                0,
            ),
        ];
        let diags = check_trace_events(&events, &jetson_agx_xavier());
        assert!(
            diags
                .iter()
                .any(|d| d.code == codes::KERNEL_OVERLAP && d.span == Span::Events(0, 1)),
            "{diags:?}"
        );
    }

    #[test]
    fn cross_processor_race_and_hazard_map_to_their_codes() {
        let events = vec![
            ev(
                "fc1",
                TraceKind::Kernel,
                Some(ProcessorKind::Cpu),
                0.0,
                50.0,
                0,
            ),
            ev(
                "fc1",
                TraceKind::Kernel,
                Some(ProcessorKind::Gpu),
                10.0,
                60.0,
                0,
            ),
            ev(
                "fc1 h2d",
                TraceKind::Copy,
                Some(ProcessorKind::Gpu),
                20.0,
                30.0,
                4096,
            ),
        ];
        let diags = check_trace_events(&events, &jetson_agx_xavier());
        assert!(diags.iter().any(|d| d.code == codes::WRITE_WRITE_RACE));
        assert!(diags.iter().any(|d| d.code == codes::ORDERING_HAZARD));
    }

    #[test]
    fn impossible_transfer_rate_maps_to_ec024() {
        // 1 GiB in 1 us is far beyond any preset's memory system.
        let events = vec![ev(
            "blob h2d",
            TraceKind::Copy,
            Some(ProcessorKind::Gpu),
            0.0,
            1.0,
            1 << 30,
        )];
        let diags = check_trace_events(&events, &jetson_agx_xavier());
        assert!(
            diags
                .iter()
                .any(|d| d.code == codes::BANDWIDTH_EXCEEDED && d.span == Span::Event(0)),
            "{diags:?}"
        );
    }

    #[test]
    fn malformed_event_maps_to_ec021() {
        let events = vec![ev(
            "bad",
            TraceKind::Kernel,
            Some(ProcessorKind::Cpu),
            10.0,
            5.0,
            0,
        )];
        let diags = check_trace_events(&events, &jetson_agx_xavier());
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, codes::MALFORMED_EVENT);
    }
}
