//! Tier B: legality of execution plans before simulation.
//!
//! A plan that passes here is safe to hand to the runtime: every
//! assignment is realizable on the target platform, split fractions
//! describe whole-kernel partitions, the Eq. 1–4 inputs lie in their
//! domains, and the working set fits the platform's DRAM.

use edgenn_core::footprint::footprint;
use edgenn_core::plan::{Assignment, ExecutionConfig, ExecutionPlan, HybridMode, MemoryPolicy};
use edgenn_core::tuner::NodeStats;
use edgenn_nn::graph::Graph;
use edgenn_nn::layer::LayerClass;
use edgenn_sim::memory::AllocStrategy;
use edgenn_sim::platforms::Platform;
use edgenn_tensor::Shape;

use crate::{codes, Diagnostic, Span};

/// Verifies an execution config's scalar fields against their documented
/// ranges (EC017).
#[must_use]
pub fn check_config(config: &ExecutionConfig) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut field = |name: &str, value: f64, ok: bool| {
        if !ok {
            out.push(Diagnostic::new(
                codes::CONFIG_FIELD_RANGE,
                Span::Global,
                format!("{name} = {value} is outside its valid range"),
            ));
        }
    };
    field(
        "sync_overhead_us",
        config.sync_overhead_us,
        config.sync_overhead_us.is_finite() && config.sync_overhead_us >= 0.0,
    );
    field(
        "host_roundtrip_fraction",
        config.host_roundtrip_fraction,
        config.host_roundtrip_fraction.is_finite()
            && (0.0..=1.0).contains(&config.host_roundtrip_fraction),
    );
    field(
        "jitter",
        config.jitter,
        config.jitter.is_finite() && (0.0..1.0).contains(&config.jitter),
    );
    out
}

/// Verifies the Eq. 1–4 inputs: every profiled time must be non-negative
/// and not NaN (EC016). `t_gpu_us = +inf` is the documented no-GPU
/// sentinel and passes.
#[must_use]
pub fn check_profile(stats: &[NodeStats]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let valid = |t: f64| !t.is_nan() && t >= 0.0;
    for (idx, s) in stats.iter().enumerate() {
        if !valid(s.t_cpu_us) || s.t_cpu_us == f64::INFINITY {
            out.push(Diagnostic::new(
                codes::INVALID_PROFILE_TIME,
                Span::Node(idx),
                format!("t_cpu_us = {} is outside Eq. 1-4's domain", s.t_cpu_us),
            ));
        }
        if !valid(s.t_gpu_us) {
            out.push(Diagnostic::new(
                codes::INVALID_PROFILE_TIME,
                Span::Node(idx),
                format!("t_gpu_us = {} is outside Eq. 1-4's domain", s.t_gpu_us),
            ));
        }
    }
    out
}

/// Whether `mode` permits intra-kernel (split) co-running at all.
fn allows_intra(mode: HybridMode) -> bool {
    matches!(
        mode,
        HybridMode::IntraKernelOnly | HybridMode::InterAndIntra
    )
}

/// Verifies one plan against the graph it will execute and the platform
/// it will execute on: config ranges (EC017), plan/graph agreement
/// (EC010), split-fraction validity (EC011) and alignment to whole
/// partition units (EC015), placement legality per the hybrid mode and
/// layer capabilities (EC013), GPU availability (EC014), semantic-aware
/// co-run allocation (EC012), and DRAM footprint (EC018).
#[must_use]
pub fn check_plan(graph: &Graph, plan: &ExecutionPlan, platform: &Platform) -> Vec<Diagnostic> {
    let mut out = check_config(&plan.config);

    if plan.nodes.len() != graph.len() {
        out.push(Diagnostic::new(
            codes::PLAN_SIZE_MISMATCH,
            Span::Global,
            format!(
                "plan covers {} node(s), graph '{}' has {}",
                plan.nodes.len(),
                graph.name(),
                graph.len()
            ),
        ));
        return out;
    }

    let has_gpu = platform.has_gpu();
    for (idx, node_plan) in plan.nodes.iter().enumerate() {
        let node = &graph.nodes()[idx];
        let layer = node.layer();
        let name = layer.name();
        let is_input = layer.class() == LayerClass::Input;

        let gpu_side = !matches!(node_plan.assignment, Assignment::Cpu);
        if gpu_side && !has_gpu && !is_input {
            out.push(Diagnostic::new(
                codes::GPU_WORK_WITHOUT_GPU,
                Span::Node(idx),
                format!(
                    "'{name}' is assigned {:?} but '{}' has no GPU",
                    node_plan.assignment, platform.name
                ),
            ));
        }

        match node_plan.assignment {
            Assignment::Cpu => {
                if plan.config.hybrid == HybridMode::GpuOnly && !is_input && has_gpu {
                    out.push(Diagnostic::new(
                        codes::ASSIGNMENT_FORBIDDEN,
                        Span::Node(idx),
                        format!("'{name}' runs on the CPU under the GPU-only mode"),
                    ));
                }
            }
            Assignment::Gpu => {
                if plan.config.hybrid == HybridMode::CpuOnly && !is_input {
                    out.push(Diagnostic::new(
                        codes::ASSIGNMENT_FORBIDDEN,
                        Span::Node(idx),
                        format!("'{name}' runs on the GPU under the CPU-only mode"),
                    ));
                }
            }
            Assignment::Split { cpu_fraction } | Assignment::SplitInput { cpu_fraction } => {
                let by_input = matches!(node_plan.assignment, Assignment::SplitInput { .. });
                if !allows_intra(plan.config.hybrid) {
                    out.push(Diagnostic::new(
                        codes::ASSIGNMENT_FORBIDDEN,
                        Span::Node(idx),
                        format!(
                            "'{name}' is split but mode {:?} forbids intra-kernel co-running",
                            plan.config.hybrid
                        ),
                    ));
                }
                if by_input && !layer.input_split_supported() {
                    out.push(Diagnostic::new(
                        codes::ASSIGNMENT_FORBIDDEN,
                        Span::Node(idx),
                        format!("'{name}' does not support input-channel splits"),
                    ));
                } else if !by_input && !layer.partitionable() {
                    out.push(Diagnostic::new(
                        codes::ASSIGNMENT_FORBIDDEN,
                        Span::Node(idx),
                        format!("'{name}' is not partitionable"),
                    ));
                }
                if !cpu_fraction.is_finite() || cpu_fraction <= 0.0 || cpu_fraction > 1.0 {
                    out.push(Diagnostic::new(
                        codes::SPLIT_FRACTION_RANGE,
                        Span::Node(idx),
                        format!("'{name}' splits at cpu_fraction = {cpu_fraction}, outside (0, 1]"),
                    ));
                } else if !by_input {
                    // EC015 — the fraction must carve out whole kernels:
                    // at least one partition unit for each processor.
                    let shapes: Vec<&Shape> = node
                        .inputs()
                        .iter()
                        .map(|i| graph.nodes()[i.index()].output_shape())
                        .collect();
                    if let Ok(units) = layer.partition_units(&shapes) {
                        let cpu_units = (cpu_fraction * units as f64).round();
                        if units >= 2 && (cpu_units < 1.0 || cpu_units > (units - 1) as f64) {
                            out.push(Diagnostic::new(
                                codes::DEGENERATE_SPLIT,
                                Span::Node(idx),
                                format!(
                                    "'{name}' at cpu_fraction = {cpu_fraction:.4} leaves one \
                                     processor without a whole unit ({units} units total)"
                                ),
                            ));
                        }
                    }
                }
                if by_input
                    && plan.config.memory_policy == MemoryPolicy::SemanticAware
                    && node_plan.output_alloc == AllocStrategy::Managed
                {
                    out.push(Diagnostic::new(
                        codes::MANAGED_CORUN_OUTPUT,
                        Span::Node(idx),
                        format!(
                            "'{name}' merges full-size partial sums through a managed array \
                             (semantics prescribe an explicit co-run output)"
                        ),
                    ));
                }
            }
        }
    }

    // EC018 — the working set must fit the platform's DRAM (0 = unknown
    // capacity, skip).
    if platform.dram_bytes > 0 {
        if let Ok(fp) = footprint(graph, plan) {
            if fp.peak_bytes > platform.dram_bytes {
                out.push(Diagnostic::new(
                    codes::FOOTPRINT_EXCEEDS_DRAM,
                    Span::Global,
                    format!(
                        "peak footprint {:.1} MiB exceeds '{}' DRAM ({:.1} MiB)",
                        fp.peak_bytes as f64 / (1 << 20) as f64,
                        platform.name,
                        platform.dram_bytes as f64 / (1 << 20) as f64
                    ),
                ));
            }
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgenn_core::plan::NodePlan;
    use edgenn_nn::models::{build, ModelKind, ModelScale};
    use edgenn_sim::platforms::{jetson_agx_xavier, raspberry_pi_4};

    fn gpu_plan(graph: &Graph, config: ExecutionConfig) -> ExecutionPlan {
        ExecutionPlan {
            config,
            nodes: vec![NodePlan::gpu_explicit(); graph.len()],
        }
    }

    #[test]
    fn config_presets_are_in_range() {
        for config in [
            ExecutionConfig::edgenn(),
            ExecutionConfig::baseline_gpu(),
            ExecutionConfig::cpu_only(),
            ExecutionConfig::memory_only(),
            ExecutionConfig::hybrid_only(),
            ExecutionConfig::inter_kernel_only(),
            ExecutionConfig::edgenn_energy_aware(),
        ] {
            assert!(check_config(&config).is_empty());
        }
    }

    #[test]
    fn config_range_violations_trip_ec017() {
        let mut config = ExecutionConfig::edgenn();
        config.sync_overhead_us = -1.0;
        config.host_roundtrip_fraction = 1.5;
        config.jitter = 1.0;
        let diags = check_config(&config);
        assert_eq!(diags.len(), 3);
        assert!(diags.iter().all(|d| d.code == codes::CONFIG_FIELD_RANGE));
    }

    #[test]
    fn negative_profiled_time_trips_ec016_but_inf_gpu_is_the_sentinel() {
        let stats = vec![
            NodeStats {
                t_cpu_us: 10.0,
                t_gpu_us: f64::INFINITY,
                samples: 1,
            },
            NodeStats {
                t_cpu_us: -4.0,
                t_gpu_us: f64::NAN,
                samples: 1,
            },
        ];
        let diags = check_profile(&stats);
        assert_eq!(diags.len(), 2, "{diags:?}");
        assert!(diags.iter().all(|d| d.code == codes::INVALID_PROFILE_TIME));
        assert!(diags.iter().all(|d| d.span == Span::Node(1)));
    }

    #[test]
    fn size_mismatch_short_circuits() {
        let graph = build(ModelKind::Fcnn, ModelScale::Tiny);
        let mut plan = gpu_plan(&graph, ExecutionConfig::baseline_gpu());
        plan.nodes.pop();
        let diags = check_plan(&graph, &plan, &jetson_agx_xavier());
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, codes::PLAN_SIZE_MISMATCH);
    }

    #[test]
    fn gpu_assignment_on_cpu_only_platform_trips_ec014() {
        let graph = build(ModelKind::Fcnn, ModelScale::Tiny);
        let plan = gpu_plan(&graph, ExecutionConfig::baseline_gpu());
        let diags = check_plan(&graph, &plan, &raspberry_pi_4());
        assert!(diags.iter().any(|d| d.code == codes::GPU_WORK_WITHOUT_GPU));
    }

    #[test]
    fn split_under_non_intra_mode_trips_ec013() {
        let graph = build(ModelKind::Fcnn, ModelScale::Tiny);
        let mut plan = gpu_plan(&graph, ExecutionConfig::baseline_gpu());
        plan.nodes[1].assignment = Assignment::Split { cpu_fraction: 0.5 };
        let diags = check_plan(&graph, &plan, &jetson_agx_xavier());
        assert!(
            diags.iter().any(|d| d.code == codes::ASSIGNMENT_FORBIDDEN),
            "{diags:?}"
        );
    }

    #[test]
    fn out_of_range_fraction_trips_ec011() {
        let graph = build(ModelKind::Fcnn, ModelScale::Tiny);
        for bad in [1.5, -0.2, f64::NAN] {
            let mut plan = gpu_plan(&graph, ExecutionConfig::edgenn());
            plan.nodes[1].assignment = Assignment::Split { cpu_fraction: bad };
            let diags = check_plan(&graph, &plan, &jetson_agx_xavier());
            assert!(
                diags.iter().any(|d| d.code == codes::SPLIT_FRACTION_RANGE),
                "fraction {bad}: {diags:?}"
            );
        }
    }

    #[test]
    fn footprint_beyond_dram_trips_ec018() {
        let graph = build(ModelKind::Vgg16, ModelScale::Paper);
        let plan = gpu_plan(&graph, ExecutionConfig::baseline_gpu());
        let mut tiny = jetson_agx_xavier();
        tiny.dram_bytes = 1 << 20; // 1 MiB device
        let diags = check_plan(&graph, &plan, &tiny);
        assert!(diags
            .iter()
            .any(|d| d.code == codes::FOOTPRINT_EXCEEDS_DRAM));
        // Unknown capacity skips the check.
        tiny.dram_bytes = 0;
        let diags = check_plan(&graph, &plan, &tiny);
        assert!(!diags
            .iter()
            .any(|d| d.code == codes::FOOTPRINT_EXCEEDS_DRAM));
    }
}
