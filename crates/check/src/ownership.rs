//! Tier D: static ownership/liveness analysis of the zero-copy engine.
//!
//! The functional engine (`edgenn-core::runtime::functional`) moves
//! tensors through `OnceLock` slots, merges split partials in place, and
//! draws kernel temporaries from per-thread scratch arenas. Its safety
//! contract — every slot written exactly once before any read, no
//! cross-branch slot races, no use of a moved value, arena buffers
//! released before their node completes — has so far been established
//! only by runtime tests and the tier-C trace detector. This module
//! proves it *statically*: [`derive_schedule`] lowers a `(graph, plan)`
//! pair into the exact sequence of slot/arena operations the engine
//! would perform, and [`analyze_schedule`] abstract-interprets that
//! schedule, emitting `EC05x` diagnostics for every contract violation
//! and deriving a **certified peak-memory bound** ([`PeakBound`]).
//!
//! The bound is engine-true, not merely analytic: the engine holds every
//! slot until session end, so the certified slot component equals the
//! sum of non-input output sizes, and the measured
//! `EngineStats::slot_bytes` of a fault-free run must never exceed it
//! (the conformance suite checks all 36 model × platform combos). The
//! arena component sums each node's [`Layer::scratch_bytes`] bound —
//! byte-accurate across element widths, so it covers the int8 path's
//! i8/i16 acquisitions as well as the f32 path — doubled for split
//! assignments, whose two role computations may land on two threads
//! with two arenas.
//!
//! [`Layer::scratch_bytes`]: edgenn_nn::layer::Layer::scratch_bytes

use edgenn_core::plan::{Assignment, ExecutionPlan};
use edgenn_nn::graph::{Graph, NodeId, Segment};
use edgenn_nn::layer::LayerClass;
use edgenn_sim::platforms::Platform;
use edgenn_tensor::Shape;
use serde::Serialize;

use crate::{codes, Diagnostic, Span};

/// One abstract operation of the lowered engine schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Op {
    /// Node `node` reads the tensor in `slot` by reference.
    Read {
        /// The consuming node.
        node: usize,
        /// The slot read.
        slot: usize,
    },
    /// Node `node` moves its freshly computed tensor into `slot`.
    Write {
        /// The producing node.
        node: usize,
        /// The slot written (the engine always uses the node's own).
        slot: usize,
    },
    /// Node `node` merges split partials in place into `target`'s
    /// pending buffer (before the buffer becomes the `Write`).
    Merge {
        /// The split node performing the merge.
        node: usize,
        /// The pending slot the partials merge into.
        target: usize,
    },
    /// Node `node` acquires `bytes` of scratch-arena capacity (the
    /// static bound over all its role computations).
    ArenaAcquire {
        /// The owning node.
        node: usize,
        /// Certified acquisition bound in bytes.
        bytes: u64,
    },
    /// Node `node` returns its scratch buffers to the arena (LIFO).
    ArenaRelease {
        /// The owning node.
        node: usize,
    },
    /// The session moves the tensor out of `slot` (the output handoff).
    MoveOut {
        /// The slot whose value moves out.
        slot: usize,
    },
}

/// A region of the schedule: sequential ops, or fork-join branches whose
/// op lists run concurrently on pool workers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Region {
    /// Ops executed in order on one thread.
    Serial(Vec<Op>),
    /// Per-branch op lists with no cross-branch ordering.
    Parallel(Vec<Vec<Op>>),
}

/// The lowered schedule of one `(graph, plan)` pair.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schedule {
    /// Regions in execution order.
    pub regions: Vec<Region>,
}

impl Schedule {
    /// Total op count across all regions.
    #[must_use]
    pub fn op_count(&self) -> usize {
        self.regions
            .iter()
            .map(|r| match r {
                Region::Serial(ops) => ops.len(),
                Region::Parallel(branches) => branches.iter().map(Vec::len).sum(),
            })
            .sum()
    }
}

/// Ownership and lifetime of one slot-resident buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct BufferLife {
    /// The node owning the slot.
    pub node: usize,
    /// Tensor size in bytes.
    pub bytes: u64,
    /// Op ordinal of the write that bore the buffer.
    pub born: usize,
    /// Op ordinal of the last read (equals `born` when never read).
    pub last_read: usize,
    /// True when the buffer is the session output (moved out at the end).
    pub is_output: bool,
}

/// The certified peak-memory decomposition for one plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize)]
pub struct PeakBound {
    /// The borrowed network input.
    pub input_bytes: u64,
    /// All layer parameters (resident for the whole session).
    pub weight_bytes: u64,
    /// Sum of slot-resident output tensors — the engine frees none
    /// before session end, so this is exact for a fault-free run.
    pub slot_bytes: u64,
    /// Scratch-arena capacity bound (split nodes counted twice: one
    /// arena per role thread).
    pub arena_bytes: u64,
    /// Largest transient split-partial excess beyond the final slot.
    pub partial_bytes: u64,
    /// Total certified bound (sum of the components).
    pub total_bytes: u64,
    /// What a liveness-freeing engine would peak at instead (slots freed
    /// after their last read) — the reclaimable-potential headroom for
    /// ROADMAP's weight-cache eviction, reported but not gated.
    pub liveness_peak_bytes: u64,
}

/// The tier-D verdict: diagnostics, per-buffer liveness, and the
/// certified bound.
#[derive(Debug, Clone, Serialize)]
pub struct OwnershipReport {
    /// All `EC05x` findings.
    pub diagnostics: Vec<Diagnostic>,
    /// Liveness intervals of every slot the schedule writes.
    pub lives: Vec<BufferLife>,
    /// The certified peak-memory decomposition.
    pub bound: PeakBound,
    /// Abstract ops interpreted.
    pub ops: usize,
}

impl OwnershipReport {
    /// True when no error-severity diagnostic fired.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.diagnostics
            .iter()
            .all(|d| d.severity != crate::Severity::Error)
    }

    /// Renders the liveness table plus the bound decomposition.
    #[must_use]
    pub fn render_table(&self, graph: &Graph) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<5} {:<24} {:>12} {:>8} {:>10} {:>7}\n",
            "slot", "layer", "bytes", "born", "last_read", "output"
        ));
        for life in &self.lives {
            let name = graph
                .nodes()
                .get(life.node)
                .map_or("<out of range>", |n| n.layer().name());
            out.push_str(&format!(
                "{:<5} {:<24} {:>12} {:>8} {:>10} {:>7}\n",
                life.node,
                name,
                life.bytes,
                life.born,
                life.last_read,
                if life.is_output { "yes" } else { "" }
            ));
        }
        let b = &self.bound;
        out.push_str(&format!(
            "certified peak: {} bytes (input {} + weights {} + slots {} + arena {} + partials {})\n",
            b.total_bytes, b.input_bytes, b.weight_bytes, b.slot_bytes, b.arena_bytes,
            b.partial_bytes
        ));
        out.push_str(&format!(
            "liveness-freed peak would be {} bytes ({} reclaimable)\n",
            b.liveness_peak_bytes,
            b.total_bytes.saturating_sub(b.liveness_peak_bytes)
        ));
        out
    }
}

/// Bytes of one node's output tensor (0 for out-of-range slots in
/// mutated schedules).
fn slot_bytes(graph: &Graph, slot: usize) -> u64 {
    graph
        .nodes()
        .get(slot)
        .map_or(0, |n| (n.output_shape().num_elements() * 4) as u64)
}

/// The plan's assignment for `node` (plain CPU when the plan is shorter
/// than the graph — tier B flags the size mismatch separately).
fn assignment(plan: &ExecutionPlan, node: usize) -> Assignment {
    plan.nodes
        .get(node)
        .map_or(Assignment::Cpu, |p| p.assignment)
}

/// Whether `node` is planned as an intra-kernel split (two role
/// computations, an in-place merge, and potentially two arenas).
fn is_split(plan: &ExecutionPlan, node: usize) -> bool {
    matches!(
        assignment(plan, node),
        Assignment::Split { .. } | Assignment::SplitInput { .. }
    )
}

/// Certified scratch-arena bytes for one execution of `node` (already
/// multiplied by the role count for split assignments).
fn arena_bound(graph: &Graph, plan: &ExecutionPlan, id: NodeId) -> u64 {
    let Ok(node) = graph.node(id) else { return 0 };
    let shapes: Vec<&Shape> = node
        .inputs()
        .iter()
        .filter_map(|i| graph.nodes().get(i.index()))
        .map(edgenn_nn::graph::Node::output_shape)
        .collect();
    if shapes.len() != node.inputs().len() {
        return 0; // dangling input edge; tier A diagnoses it
    }
    // `scratch_bytes` is the byte-accurate bound across every execution
    // path *and precision* (the int8 kernels' widened i16 packing can
    // exceed the f32 path's elems x 4), so one certified bound holds for
    // plans of either precision.
    let per_role = node.layer().scratch_bytes(&shapes).unwrap_or(0);
    let roles = if is_split(plan, id.index()) { 2 } else { 1 };
    per_role * roles
}

/// Lowers one node into the op sequence the engine performs for it.
fn lower_node(graph: &Graph, plan: &ExecutionPlan, id: NodeId, ops: &mut Vec<Op>) {
    let Ok(node) = graph.node(id) else { return };
    if node.layer().class() == LayerClass::Input {
        return; // resolved as the borrowed input; no slot write
    }
    let idx = id.index();
    for input in node.inputs() {
        ops.push(Op::Read {
            node: idx,
            slot: input.index(),
        });
    }
    let arena = arena_bound(graph, plan, id);
    if arena > 0 {
        ops.push(Op::ArenaAcquire {
            node: idx,
            bytes: arena,
        });
        ops.push(Op::ArenaRelease { node: idx });
    }
    if is_split(plan, idx) {
        ops.push(Op::Merge {
            node: idx,
            target: idx,
        });
    }
    ops.push(Op::Write {
        node: idx,
        slot: idx,
    });
}

/// Lowers `(graph, plan)` into the schedule the functional engine would
/// execute: the fork-join decomposition drives region structure, and an
/// undecomposable graph falls back to serial node order (what a
/// single-threaded interpreter would do — the abstract contract is the
/// same).
#[must_use]
pub fn derive_schedule(graph: &Graph, plan: &ExecutionPlan) -> Schedule {
    let mut regions = Vec::new();
    if graph.is_empty() {
        return Schedule { regions };
    }
    match graph.structure() {
        Ok(structure) => {
            for segment in structure.segments() {
                match segment {
                    Segment::Chain(nodes) => {
                        let mut ops = Vec::new();
                        for &id in nodes {
                            lower_node(graph, plan, id, &mut ops);
                        }
                        regions.push(Region::Serial(ops));
                    }
                    Segment::Parallel { branches, .. } => {
                        let lowered: Vec<Vec<Op>> = branches
                            .iter()
                            .map(|branch| {
                                let mut ops = Vec::new();
                                for &id in branch {
                                    lower_node(graph, plan, id, &mut ops);
                                }
                                ops
                            })
                            .collect();
                        regions.push(Region::Parallel(lowered));
                    }
                }
            }
        }
        Err(_) => {
            let mut ops = Vec::new();
            for id in graph.topo_order() {
                lower_node(graph, plan, id, &mut ops);
            }
            regions.push(Region::Serial(ops));
        }
    }
    regions.push(Region::Serial(vec![Op::MoveOut {
        slot: graph.output_id().index(),
    }]));
    Schedule { regions }
}

/// Abstract slot state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlotState {
    /// Never written; reading it is EC050 (slot 0 is the borrowed input
    /// and reads fine while unwritten).
    Unwritten,
    /// Holds a live tensor.
    Written,
    /// Its tensor moved out; any further use is EC053.
    Moved,
}

/// The abstract interpreter's mutable state.
struct Interp {
    slots: Vec<SlotState>,
    /// Open arena buffers, LIFO: (owner node, bytes).
    arena_stack: Vec<(usize, u64)>,
    /// Per-slot (born ordinal, last read ordinal, read count).
    lives: Vec<Option<(usize, usize, usize)>>,
    /// Running op ordinal (unique across regions and branches).
    ordinal: usize,
    diagnostics: Vec<Diagnostic>,
}

impl Interp {
    fn diag(&mut self, code: &'static str, node: usize, message: String) {
        self.diagnostics
            .push(Diagnostic::new(code, Span::Node(node), message));
    }

    /// Applies one op to the state machine, recording diagnostics.
    fn step(&mut self, op: Op) {
        self.ordinal += 1;
        let at = self.ordinal;
        match op {
            Op::Read { node, slot } => {
                match self.slots.get(slot).copied() {
                    Some(SlotState::Written) => {
                        if let Some(Some(life)) = self.lives.get_mut(slot) {
                            life.1 = at;
                            life.2 += 1;
                        }
                    }
                    Some(SlotState::Unwritten) if slot == 0 => {} // borrowed input
                    Some(SlotState::Unwritten) | None => self.diag(
                        codes::READ_BEFORE_WRITE,
                        node,
                        format!("node {node} reads slot {slot} before any write"),
                    ),
                    Some(SlotState::Moved) => self.diag(
                        codes::USE_AFTER_MOVE,
                        node,
                        format!("node {node} reads slot {slot} after its value moved out"),
                    ),
                }
            }
            Op::Write { node, slot } => {
                // A buffer still open at the node's write escaped its
                // kernel: `with_scratch` returns buffers before the
                // forward call completes.
                if self.arena_stack.iter().any(|&(owner, _)| owner == node) {
                    self.diag(
                        codes::ARENA_ESCAPE,
                        node,
                        format!("node {node} completes with its arena buffer still open"),
                    );
                    self.arena_stack.retain(|&(owner, _)| owner != node);
                }
                if slot == 0 {
                    self.diag(
                        codes::BORROWED_INPUT_WRITTEN,
                        node,
                        format!("node {node} writes slot 0, which borrows the caller's input"),
                    );
                    return;
                }
                match self.slots.get(slot).copied() {
                    Some(SlotState::Unwritten) => {
                        self.slots[slot] = SlotState::Written;
                        if let Some(life) = self.lives.get_mut(slot) {
                            *life = Some((at, at, 0));
                        }
                    }
                    Some(SlotState::Written | SlotState::Moved) => self.diag(
                        codes::DOUBLE_WRITE,
                        node,
                        format!("node {node} writes slot {slot} a second time"),
                    ),
                    None => self.diag(
                        codes::DOUBLE_WRITE,
                        node,
                        format!("node {node} writes out-of-range slot {slot}"),
                    ),
                }
            }
            Op::Merge { node, target } => {
                if target != node {
                    let state = self.slots.get(target).copied();
                    if state == Some(SlotState::Moved) {
                        self.diag(
                            codes::USE_AFTER_MOVE,
                            node,
                            format!("node {node} merges into slot {target} after its move"),
                        );
                    } else {
                        self.diag(
                            codes::MERGE_ALIASES_LIVE_SLOT,
                            node,
                            format!("node {node} merges partials into foreign slot {target}"),
                        );
                    }
                } else if self.slots.get(target).copied() == Some(SlotState::Written) {
                    self.diag(
                        codes::MERGE_ALIASES_LIVE_SLOT,
                        node,
                        format!(
                            "node {node} merges partials into slot {target}, which already \
                             holds a live tensor"
                        ),
                    );
                }
            }
            Op::ArenaAcquire { node, bytes } => self.arena_stack.push((node, bytes)),
            Op::ArenaRelease { node } => match self.arena_stack.pop() {
                Some((owner, _)) if owner == node => {}
                Some((owner, bytes)) => {
                    self.diag(
                        codes::ARENA_ESCAPE,
                        node,
                        format!(
                            "node {node} releases over node {owner}'s open buffer \
                             ({bytes} bytes) — LIFO discipline broken"
                        ),
                    );
                }
                None => self.diag(
                    codes::ARENA_ESCAPE,
                    node,
                    format!("node {node} releases scratch it never acquired"),
                ),
            },
            Op::MoveOut { slot } => match self.slots.get(slot).copied() {
                Some(SlotState::Written) => {
                    self.slots[slot] = SlotState::Moved;
                }
                Some(SlotState::Moved) => self.diag(
                    codes::USE_AFTER_MOVE,
                    slot,
                    format!("slot {slot} moved out twice"),
                ),
                Some(SlotState::Unwritten) | None => self.diag(
                    codes::OUTPUT_NEVER_PRODUCED,
                    slot,
                    format!("output slot {slot} moves out but was never written"),
                ),
            },
        }
    }
}

/// Interprets `schedule` against the zero-copy contract, returning the
/// full tier-D report. Pass the schedule from [`derive_schedule`] for
/// the engine's real behaviour, or a mutated one to test the verifier.
#[must_use]
pub fn analyze_schedule(
    graph: &Graph,
    plan: &ExecutionPlan,
    platform: &Platform,
    schedule: &Schedule,
) -> OwnershipReport {
    let len = graph.len();
    let mut interp = Interp {
        slots: vec![SlotState::Unwritten; len],
        arena_stack: Vec::new(),
        lives: vec![None; len],
        ordinal: 0,
        diagnostics: Vec::new(),
    };

    for region in &schedule.regions {
        match region {
            Region::Serial(ops) => {
                for &op in ops {
                    interp.step(op);
                }
            }
            Region::Parallel(branches) => {
                check_branch_isolation(&mut interp, branches);
                // Branches are data-disjoint when isolation holds, so
                // interpreting them in branch order is equivalent to any
                // interleaving.
                for branch in branches {
                    for &op in branch {
                        interp.step(op);
                    }
                }
            }
        }
    }

    // End-of-session facts: every open arena buffer escaped, the output
    // must exist, and unread non-output slots are dead weight.
    let open: Vec<(usize, u64)> = interp.arena_stack.drain(..).collect();
    for (owner, bytes) in open {
        interp.diag(
            codes::ARENA_ESCAPE,
            owner,
            format!("session ends with node {owner}'s {bytes}-byte arena buffer open"),
        );
    }
    let output = graph.output_id().index();
    if len == 0 || !matches!(interp.slots.get(output), Some(SlotState::Moved)) {
        let produced = matches!(interp.slots.get(output), Some(SlotState::Written));
        if !produced {
            interp.diag(
                codes::OUTPUT_NEVER_PRODUCED,
                output,
                format!("the schedule never produces output slot {output}"),
            );
        }
    }
    let mut lives = Vec::new();
    for (slot, life) in interp.lives.iter().enumerate() {
        let Some((born, last_read, reads)) = *life else {
            continue;
        };
        let is_output = slot == output;
        if reads == 0 && !is_output {
            interp.diagnostics.push(Diagnostic::new(
                codes::DEAD_WRITE,
                Span::Node(slot),
                format!("slot {slot} is written but never read and is not the output"),
            ));
        }
        lives.push(BufferLife {
            node: slot,
            bytes: slot_bytes(graph, slot),
            born,
            last_read,
            is_output,
        });
    }

    let bound = certify_bound(graph, plan, &lives);
    let mut diagnostics = interp.diagnostics;
    if platform.dram_bytes > 0 && bound.total_bytes > platform.dram_bytes {
        diagnostics.push(Diagnostic::new(
            codes::CERTIFIED_PEAK_EXCEEDS_DRAM,
            Span::Global,
            format!(
                "certified peak {:.1} MiB exceeds '{}' DRAM ({:.1} MiB)",
                bound.total_bytes as f64 / (1 << 20) as f64,
                platform.name,
                platform.dram_bytes as f64 / (1 << 20) as f64
            ),
        ));
    }
    OwnershipReport {
        diagnostics,
        lives,
        bound,
        ops: schedule.op_count(),
    }
}

/// Flags slots touched by more than one branch of a parallel region
/// (EC052): concurrent writers, or a reader of a sibling's write, race
/// without a happens-before edge.
fn check_branch_isolation(interp: &mut Interp, branches: &[Vec<Op>]) {
    let touched = |branch: &[Op]| {
        let mut writes = Vec::new();
        let mut reads = Vec::new();
        for op in branch {
            match *op {
                Op::Write { slot, .. } | Op::Merge { target: slot, .. } => writes.push(slot),
                Op::Read { slot, .. } => reads.push(slot),
                _ => {}
            }
        }
        (writes, reads)
    };
    let sets: Vec<(Vec<usize>, Vec<usize>)> = branches.iter().map(|b| touched(b)).collect();
    for (a, (writes_a, _)) in sets.iter().enumerate() {
        for (b, (writes_b, reads_b)) in sets.iter().enumerate() {
            if a == b {
                continue;
            }
            for &slot in writes_a {
                if writes_b.contains(&slot) && a < b {
                    interp.diag(
                        codes::CROSS_BRANCH_RACE,
                        slot,
                        format!("branches {a} and {b} both write slot {slot}"),
                    );
                }
                if reads_b.contains(&slot) {
                    interp.diag(
                        codes::CROSS_BRANCH_RACE,
                        slot,
                        format!(
                            "branch {b} reads slot {slot} while branch {a} writes it \
                             concurrently"
                        ),
                    );
                }
            }
        }
    }
}

/// Peak concurrent slot bytes if every buffer were freed right after its
/// last read (the output held to session end): an interval sweep over
/// the recorded lifetimes.
fn liveness_slot_peak(lives: &[BufferLife]) -> u64 {
    // (+bytes at born, -bytes after last_read); the output never ends.
    let mut events: Vec<(usize, i64)> = Vec::new();
    for life in lives {
        events.push((life.born, i64::try_from(life.bytes).unwrap_or(i64::MAX)));
        if !life.is_output {
            events.push((
                life.last_read.max(life.born) + 1,
                -i64::try_from(life.bytes).unwrap_or(i64::MAX),
            ));
        }
    }
    events.sort_unstable();
    let mut live = 0i64;
    let mut peak = 0i64;
    for (_, delta) in events {
        live += delta;
        peak = peak.max(live);
    }
    u64::try_from(peak).unwrap_or(0)
}

/// Builds the certified peak-memory decomposition.
fn certify_bound(graph: &Graph, plan: &ExecutionPlan, lives: &[BufferLife]) -> PeakBound {
    let input_bytes = graph
        .nodes()
        .first()
        .map_or(0, |n| (n.output_shape().num_elements() * 4) as u64);
    let weight_bytes = graph.param_bytes();
    let slot_total: u64 = lives.iter().map(|l| l.bytes).sum();
    let mut arena_bytes = 0u64;
    let mut partial_bytes = 0u64;
    for id in graph.topo_order() {
        arena_bytes += arena_bound(graph, plan, id);
        if is_split(plan, id.index()) {
            // Before the merge lands in the slot, both partials are
            // live: bounded by twice the output (input-split partials
            // are each full size), of which one becomes the slot.
            partial_bytes = partial_bytes.max(slot_bytes(graph, id.index()));
        }
    }
    let total_bytes = input_bytes + weight_bytes + slot_total + arena_bytes + partial_bytes;
    PeakBound {
        input_bytes,
        weight_bytes,
        slot_bytes: slot_total,
        arena_bytes,
        partial_bytes,
        total_bytes,
        liveness_peak_bytes: input_bytes + weight_bytes + liveness_slot_peak(lives),
    }
}

/// Runs the full tier-D analysis: lowers the engine schedule for
/// `(graph, plan)` and interprets it against the target `platform`.
#[must_use]
pub fn check_ownership(
    graph: &Graph,
    plan: &ExecutionPlan,
    platform: &Platform,
) -> OwnershipReport {
    let schedule = derive_schedule(graph, plan);
    analyze_schedule(graph, plan, platform, &schedule)
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgenn_core::plan::{ExecutionConfig, NodePlan};
    use edgenn_core::runtime::Runtime;
    use edgenn_core::tuner::Tuner;
    use edgenn_nn::models::{build, ModelKind, ModelScale};
    use edgenn_sim::platforms::jetson_agx_xavier;

    fn tuned(graph: &Graph) -> ExecutionPlan {
        let platform = jetson_agx_xavier();
        let runtime = Runtime::new(&platform);
        let tuner = Tuner::new(graph, &runtime).unwrap();
        tuner
            .plan(graph, &runtime, ExecutionConfig::edgenn())
            .unwrap()
    }

    #[test]
    fn tuned_plans_verify_clean_on_all_models() {
        let platform = jetson_agx_xavier();
        for kind in ModelKind::ALL {
            let graph = build(kind, ModelScale::Tiny);
            let plan = tuned(&graph);
            let report = check_ownership(&graph, &plan, &platform);
            assert!(report.is_clean(), "{kind}: {:?}", report.diagnostics);
            assert!(report.ops > 0);
            assert_eq!(report.lives.len(), graph.len() - 1, "{kind}");
        }
    }

    #[test]
    fn certified_slot_component_is_the_sum_of_non_input_outputs() {
        let platform = jetson_agx_xavier();
        let graph = build(ModelKind::SqueezeNet, ModelScale::Tiny);
        let plan = tuned(&graph);
        let report = check_ownership(&graph, &plan, &platform);
        let expected: u64 = graph
            .nodes()
            .iter()
            .skip(1)
            .map(|n| (n.output_shape().num_elements() * 4) as u64)
            .sum();
        assert_eq!(report.bound.slot_bytes, expected);
        assert!(report.bound.total_bytes >= report.bound.liveness_peak_bytes);
    }

    #[test]
    fn split_nodes_double_the_arena_bound() {
        let platform = jetson_agx_xavier();
        let graph = build(ModelKind::LeNet, ModelScale::Tiny);
        let solo = ExecutionPlan {
            config: ExecutionConfig::edgenn(),
            nodes: vec![NodePlan::gpu_explicit(); graph.len()],
        };
        let mut split = solo.clone();
        for node in &mut split.nodes {
            node.assignment = Assignment::Split { cpu_fraction: 0.5 };
        }
        let a = check_ownership(&graph, &solo, &platform).bound.arena_bytes;
        let b = check_ownership(&graph, &split, &platform).bound.arena_bytes;
        assert!(a > 0, "LeNet convs must have an arena bound");
        assert_eq!(b, 2 * a, "each split role brings its own arena");
    }

    #[test]
    fn arena_bound_is_byte_accurate_across_element_widths() {
        // The certified arena component uses `Layer::scratch_bytes` —
        // byte-accurate across precisions — so it must dominate the
        // f32-only `scratch_elems x 4` figure, and strictly exceed it
        // for models with dense layers (the f32 mat-vec touches no
        // arena, but the int8 path quantizes its input into scratch).
        let platform = jetson_agx_xavier();
        for kind in ModelKind::ALL {
            let graph = build(kind, ModelScale::Tiny);
            let plan = ExecutionPlan {
                config: ExecutionConfig::edgenn_int8(),
                nodes: vec![
                    NodePlan {
                        assignment: Assignment::Cpu,
                        ..NodePlan::gpu_explicit()
                    };
                    graph.len()
                ],
            };
            let report = check_ownership(&graph, &plan, &platform);
            let f32_only: u64 = graph
                .topo_order()
                .map(|id| {
                    let node = graph.node(id).unwrap();
                    let shapes: Vec<&Shape> = node
                        .inputs()
                        .iter()
                        .map(|i| graph.node(*i).unwrap().output_shape())
                        .collect();
                    node.layer().scratch_elems(&shapes).unwrap_or(0) * 4
                })
                .sum();
            assert!(
                report.bound.arena_bytes >= f32_only,
                "{kind}: byte-accurate bound {} must dominate the f32-only {}",
                report.bound.arena_bytes,
                f32_only
            );
            let has_fc = graph
                .nodes()
                .iter()
                .any(|n| n.layer().class() == LayerClass::Fc);
            if has_fc {
                assert!(
                    report.bound.arena_bytes > f32_only,
                    "{kind}: dense layers must widen the bound beyond f32-only {f32_only}"
                );
            }
        }
    }

    #[test]
    fn undecomposable_graph_falls_back_to_serial_order() {
        use edgenn_nn::graph::Node;
        use edgenn_nn::layer::{InputLayer, Relu};
        use std::sync::Arc;
        // input feeding two relus that never rejoin: decompose rejects
        // it (dead-end branch); the serial fallback still finds the
        // unread slot (EC055) and the missing output is fine (node 2 is
        // the declared output and is produced).
        let shape = Shape::new(&[4]);
        let nodes = vec![
            Node::new(
                Arc::new(InputLayer::new(shape.clone())),
                vec![],
                shape.clone(),
            ),
            Node::new(Arc::new(Relu::new("a")), vec![NodeId(0)], shape.clone()),
            Node::new(Arc::new(Relu::new("b")), vec![NodeId(0)], shape.clone()),
        ];
        let graph = Graph::from_parts("forked", nodes, NodeId(2));
        let plan = ExecutionPlan {
            config: ExecutionConfig::cpu_only(),
            nodes: vec![
                NodePlan {
                    assignment: Assignment::Cpu,
                    ..NodePlan::gpu_explicit()
                };
                graph.len()
            ],
        };
        let report = check_ownership(&graph, &plan, &jetson_agx_xavier());
        assert!(report.is_clean(), "{:?}", report.diagnostics);
        assert!(
            report
                .diagnostics
                .iter()
                .any(|d| d.code == codes::DEAD_WRITE),
            "node 1's unread slot must warn: {:?}",
            report.diagnostics
        );
    }

    #[test]
    fn schedule_lowering_is_deterministic() {
        let graph = build(ModelKind::ResNet18, ModelScale::Tiny);
        let plan = tuned(&graph);
        assert_eq!(
            derive_schedule(&graph, &plan),
            derive_schedule(&graph, &plan)
        );
    }
}
