//! Tier A: dataflow verification over `edgenn-nn` graphs.
//!
//! Graphs built through [`edgenn_nn::graph::GraphBuilder`] satisfy most
//! of these invariants by construction; graphs arriving through
//! [`edgenn_nn::graph::Graph::from_parts`] (deserialization, importers,
//! tests) satisfy none of them. The checker treats every graph as
//! untrusted.

use edgenn_nn::graph::Graph;
use edgenn_nn::layer::LayerClass;
use edgenn_tensor::Shape;

use crate::{codes, Diagnostic, Span};

/// Verifies dataflow well-formedness of one graph: def-before-use order,
/// reachability (dead nodes), shape-inference consistency, arity, and
/// ReLU-fusion legality, plus decomposability into the fork-join family
/// the planner handles.
#[must_use]
pub fn check_graph(graph: &Graph) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let n = graph.len();

    for (idx, node) in graph.nodes().iter().enumerate() {
        let layer = node.layer();

        // EC001 — def-before-use: insertion order is the topological
        // order, so every input must strictly precede its consumer (this
        // also catches self-loops and dangling ids).
        let mut inputs_ok = true;
        for input in node.inputs() {
            if input.index() >= idx {
                inputs_ok = false;
                out.push(Diagnostic::new(
                    codes::DEF_BEFORE_USE,
                    Span::Node(idx),
                    format!(
                        "'{}' consumes {input}, which is not defined before node n{idx}",
                        layer.name()
                    ),
                ));
            }
        }

        // EC004 — arity.
        if node.inputs().len() != layer.arity() {
            out.push(Diagnostic::new(
                codes::ARITY_MISMATCH,
                Span::Node(idx),
                format!(
                    "'{}' has {} input(s), layer arity is {}",
                    layer.name(),
                    node.inputs().len(),
                    layer.arity()
                ),
            ));
        }

        // EC003 — stored shape must agree with shape inference over the
        // actual input shapes (conv/pool/dense chains propagate here).
        if layer.class() != LayerClass::Input && inputs_ok {
            let shapes: Vec<&Shape> = node
                .inputs()
                .iter()
                .map(|i| graph.nodes()[i.index()].output_shape())
                .collect();
            match layer.output_shape(&shapes) {
                Ok(inferred) if &inferred != node.output_shape() => {
                    out.push(Diagnostic::new(
                        codes::SHAPE_MISMATCH,
                        Span::Node(idx),
                        format!(
                            "'{}' stores shape {} but inference yields {inferred}",
                            layer.name(),
                            node.output_shape()
                        ),
                    ));
                }
                Err(e) => {
                    out.push(Diagnostic::new(
                        codes::SHAPE_MISMATCH,
                        Span::Node(idx),
                        format!("'{}' fails shape inference: {e}", layer.name()),
                    ));
                }
                Ok(_) => {}
            }
        }

        // EC005 — illegal fusion: a "+relu"-named node is either ReLU
        // fused into ReLU, or a fusion over a layer whose partial sums
        // are not final *and* whose epilogue is not deferred (ReLU does
        // not distribute over partial sums; a fused node may keep input
        // splits only by declaring `deferred_epilogue_relu`, which makes
        // the executor clamp once after the merge).
        if layer.name().ends_with("+relu")
            && (layer.is_relu()
                || (layer.input_split_supported() && !layer.deferred_epilogue_relu()))
        {
            out.push(Diagnostic::new(
                codes::ILLEGAL_FUSION,
                Span::Node(idx),
                format!(
                    "'{}' carries a ReLU fusion it must not ({})",
                    layer.name(),
                    if layer.is_relu() {
                        "producer is itself a ReLU"
                    } else {
                        "producer emits non-final partial sums without a deferred epilogue"
                    }
                ),
            ));
        }
    }

    // EC002 — dead nodes: walk input edges back from the sink; anything
    // unreached contributes nothing to the output.
    if graph.output_id().index() < n {
        let mut live = vec![false; n];
        let mut stack = vec![graph.output_id()];
        while let Some(id) = stack.pop() {
            if live[id.index()] {
                continue;
            }
            live[id.index()] = true;
            for input in graph.nodes()[id.index()].inputs() {
                if input.index() < n {
                    stack.push(*input);
                }
            }
        }
        for (idx, is_live) in live.iter().enumerate() {
            if !is_live {
                out.push(Diagnostic::new(
                    codes::DEAD_NODE,
                    Span::Node(idx),
                    format!(
                        "'{}' never reaches the output",
                        graph.nodes()[idx].layer().name()
                    ),
                ));
            }
        }
    } else {
        out.push(Diagnostic::new(
            codes::DEF_BEFORE_USE,
            Span::Node(graph.output_id().index()),
            format!("output id {} is out of range", graph.output_id()),
        ));
    }

    // EC006 — the planner's chain/branch decomposition must accept the
    // topology, or hybrid planning silently degrades.
    if let Err(e) = graph.structure() {
        out.push(Diagnostic::new(
            codes::UNDECOMPOSABLE,
            Span::Global,
            format!("structure decomposition failed: {e}"),
        ));
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgenn_nn::graph::{GraphBuilder, Node, NodeId};
    use edgenn_nn::layer::{Concat, Dense, Relu};
    use std::sync::Arc;

    fn codes_of(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.code).collect()
    }

    #[test]
    fn builder_graphs_are_clean() {
        use edgenn_nn::models::{build, ModelKind, ModelScale};
        for kind in [
            ModelKind::Fcnn,
            ModelKind::LeNet,
            ModelKind::AlexNet,
            ModelKind::SqueezeNet,
            ModelKind::ResNet18,
        ] {
            let g = build(kind, ModelScale::Paper);
            let diags = check_graph(&g);
            assert!(diags.is_empty(), "{kind:?}: {diags:?}");
        }
    }

    #[test]
    fn forward_reference_is_def_before_use() {
        let mut b = GraphBuilder::new("g", Shape::new(&[4]));
        let x = b.input_id();
        let _ = b.add(Relu::new("r"), &[x]).unwrap();
        let g = b.finish().unwrap();
        // Rebuild with a forward edge: node 1 consumes node 2.
        let nodes: Vec<Node> = g
            .nodes()
            .iter()
            .enumerate()
            .map(|(i, n)| {
                let inputs = if i == 1 { vec![NodeId(2)] } else { vec![] };
                Node::new(n.layer_arc(), inputs, n.output_shape().clone())
            })
            .collect();
        let bad = Graph::from_parts("g", nodes, NodeId(1));
        assert!(codes_of(&check_graph(&bad)).contains(&codes::DEF_BEFORE_USE));
    }

    #[test]
    fn dead_node_and_shape_mismatch_are_flagged() {
        let relu: Arc<dyn edgenn_nn::layer::Layer> = Arc::new(Relu::new("r"));
        let input = Node::new(
            Arc::new(edgenn_nn::layer::InputLayer::new(Shape::new(&[4]))),
            vec![],
            Shape::new(&[4]),
        );
        let live = Node::new(Arc::clone(&relu), vec![NodeId(0)], Shape::new(&[4]));
        let dead = Node::new(Arc::clone(&relu), vec![NodeId(0)], Shape::new(&[4]));
        // A live node whose stored shape disagrees with inference.
        let misshapen = Node::new(Arc::clone(&relu), vec![NodeId(1)], Shape::new(&[7]));
        let g = Graph::from_parts("g", vec![input, live, dead, misshapen], NodeId(3));
        let diags = check_graph(&g);
        let found = codes_of(&diags);
        assert!(found.contains(&codes::DEAD_NODE), "{diags:?}");
        assert!(found.contains(&codes::SHAPE_MISMATCH), "{diags:?}");
        // The dead node is n2.
        assert!(diags
            .iter()
            .any(|d| d.code == codes::DEAD_NODE && d.span == Span::Node(2)));
    }

    #[test]
    fn arity_mismatch_is_flagged() {
        let input = Node::new(
            Arc::new(edgenn_nn::layer::InputLayer::new(Shape::new(&[4]))),
            vec![],
            Shape::new(&[4]),
        );
        // Dense has arity 1; feed it two inputs.
        let fc = Node::new(
            Arc::new(Dense::new("fc", 4, 2, 0)),
            vec![NodeId(0), NodeId(0)],
            Shape::new(&[2]),
        );
        let g = Graph::from_parts("g", vec![input, fc], NodeId(1));
        assert!(codes_of(&check_graph(&g)).contains(&codes::ARITY_MISMATCH));
    }

    #[test]
    fn relu_fused_into_relu_is_illegal() {
        let mut b = GraphBuilder::new("g", Shape::new(&[4]));
        let x = b.input_id();
        // A ReLU whose *name* claims a fusion: relu-into-relu.
        let _ = b.add(Relu::new("conv1+relu"), &[x]).unwrap();
        let g = b.finish().unwrap();
        let diags = check_graph(&g);
        assert!(
            codes_of(&diags).contains(&codes::ILLEGAL_FUSION),
            "{diags:?}"
        );
    }

    #[test]
    fn legal_fusions_pass() {
        use edgenn_nn::graph::fuse_relu;
        use edgenn_nn::models::{build, ModelKind, ModelScale};
        let g = build(ModelKind::AlexNet, ModelScale::Tiny);
        let fused = fuse_relu(&g).unwrap();
        assert!(check_graph(&fused).is_empty());
    }

    #[test]
    fn nested_forks_are_undecomposable_but_only_a_warning() {
        let mut b = GraphBuilder::new("g", Shape::new(&[2, 2, 2]));
        let x = b.input_id();
        let a1 = b.add(Relu::new("a1"), &[x]).unwrap();
        let a2 = b.add(Relu::new("a2"), &[x]).unwrap();
        let b1 = b.add(Relu::new("b1"), &[a1]).unwrap();
        let b2 = b.add(Relu::new("b2"), &[a1]).unwrap();
        let j1 = b.add(Concat::new("j1", 2), &[b1, b2]).unwrap();
        let _ = b.add(Concat::new("j2", 2), &[j1, a2]).unwrap();
        let g = b.finish().unwrap();
        let diags = check_graph(&g);
        assert!(
            codes_of(&diags).contains(&codes::UNDECOMPOSABLE),
            "{diags:?}"
        );
        assert!(
            diags.iter().all(|d| d.severity == crate::Severity::Warning),
            "undecomposable alone must not fail the gate"
        );
    }
}
