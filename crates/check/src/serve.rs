//! Admission-log legality (`EC07x`).
//!
//! A serving run (`edgenn serve` / `edgenn siege`) produces an
//! [`AdmissionLog`]: every admit, reject, enqueue, batch, degrade,
//! shed, and completion in decision order. This tier replays the log
//! against the serving layer's contracts — the request lifecycle state
//! machine, the weighted-fair pick order (decision for decision), the
//! bounded queue, deadline accounting, and admission arithmetic — so a
//! scheduler bug shows up as a stable diagnostic instead of a skewed
//! tail-latency table.
//!
//! The fairness replay (`EC071`) mirrors `edgenn-serve`'s batcher
//! exactly: per-tenant virtual time charged `1 / weight` per pick,
//! every pick the minimum-virtual-time eligible tenant (ties to the
//! lowest ordinal) taking its oldest pending request, re-entry floored
//! at the backlog's minimum virtual time (or the server virtual time
//! when the backlog is empty). Because both sides run the same `f64`
//! arithmetic over the same event order, the replayed virtual-time
//! vector must match the logged one to within `1e-9`.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use edgenn_serve::{AdmissionLog, ServeEventKind};

use crate::{codes, Diagnostic, Severity, Span};

/// The configuration a serving log was produced under — everything the
/// replay needs that the log itself does not carry.
#[derive(Debug, Clone)]
pub struct ServeCheckParams {
    /// Per-tenant scheduling weights (positive).
    pub weights: Vec<f64>,
    /// Bounded pending-set capacity.
    pub queue_capacity: usize,
    /// Maximum requests per batch.
    pub max_batch: usize,
    /// Catalog size (model ordinals are `0..models`).
    pub models: usize,
}

/// Per-request lifecycle progress, in legal order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stage {
    Arrived,
    Admitted,
    Rejected,
    Enqueued,
    Batched,
    Shed,
    Completed,
}

#[derive(Debug, Clone, Copy)]
struct ReqState {
    stage: Stage,
    arrival_us: f64,
}

/// Verifies one admission log's invariants.
///
/// - **EC070**: lifecycle legality — events per request in state-machine
///   order (arrived → admitted → enqueued → batched → completed/shed;
///   rejected terminal), no duplicate terminals, no completion of a
///   request that was shed, rejected, or never admitted.
/// - **EC071**: fairness replay — every batch pick is the
///   minimum-virtual-time eligible tenant's oldest pending request, no
///   batch exceeds `max_batch`, and the logged virtual-time vector and
///   backlogged set match the replay.
/// - **EC072**: deadline accounting — logged latency equals completion
///   time minus arrival time, and a completion past its deadline
///   without a degrade on record is an error (with a degrade it is a
///   warning: the ladder was tried and still missed).
/// - **EC073**: queue bound — every logged depth matches the replayed
///   depth and stays within capacity, and the pending set drains to
///   zero by the end of the log.
/// - **EC074**: admission accounting — request ids unique, every
///   admitted request enqueued, and admitted = completed + shed (plus
///   still-pending at end, which EC073 flags).
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn check_admission_log(log: &AdmissionLog, params: &ServeCheckParams) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let tenants = params.weights.len();

    // Replayed batcher state.
    let mut vtime = vec![0.0f64; tenants];
    let mut vfloor = 0.0f64;
    let mut pending: Vec<VecDeque<(u64, usize)>> = vec![VecDeque::new(); params.models];
    let mut tenant_pending = vec![0usize; tenants];
    let mut depth = 0usize;

    // Request and batch bookkeeping.
    let mut reqs: BTreeMap<u64, ReqState> = BTreeMap::new();
    let mut batch_members: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
    let mut admitted_total = 0u64;
    let mut completed_total = 0u64;
    let mut shed_total = 0u64;

    for (idx, event) in log.events.iter().enumerate() {
        let span = Span::Event(idx);
        match &event.kind {
            ServeEventKind::Arrived { req, tenant, model } => {
                if *tenant >= tenants || *model >= params.models {
                    out.push(Diagnostic::new(
                        codes::SERVE_LIFECYCLE,
                        span,
                        format!(
                            "request {req} arrived with tenant {tenant} / model {model} outside \
                             the configured {tenants} tenants / {} models",
                            params.models
                        ),
                    ));
                    continue;
                }
                if reqs
                    .insert(
                        *req,
                        ReqState {
                            stage: Stage::Arrived,
                            arrival_us: event.t_us,
                        },
                    )
                    .is_some()
                {
                    out.push(Diagnostic::new(
                        codes::SERVE_ADMISSION_ACCOUNTING,
                        span,
                        format!("request id {req} arrived twice; ids must be unique per run"),
                    ));
                }
            }
            ServeEventKind::Admitted { req, .. } => match reqs.get_mut(req) {
                Some(state) if state.stage == Stage::Arrived => {
                    state.stage = Stage::Admitted;
                    admitted_total += 1;
                }
                other => out.push(Diagnostic::new(
                    codes::SERVE_LIFECYCLE,
                    span,
                    format!(
                        "request {req} admitted {}",
                        stage_context(other.as_deref().copied())
                    ),
                )),
            },
            ServeEventKind::Rejected { req, .. } => match reqs.get_mut(req) {
                Some(state) if state.stage == Stage::Arrived => {
                    state.stage = Stage::Rejected;
                }
                other => out.push(Diagnostic::new(
                    codes::SERVE_LIFECYCLE,
                    span,
                    format!(
                        "request {req} rejected {}",
                        stage_context(other.as_deref().copied())
                    ),
                )),
            },
            ServeEventKind::Enqueued {
                req,
                tenant,
                model,
                depth: logged_depth,
            } => {
                match reqs.get_mut(req) {
                    Some(state) if state.stage == Stage::Admitted => {
                        state.stage = Stage::Enqueued;
                    }
                    other => {
                        out.push(Diagnostic::new(
                            codes::SERVE_LIFECYCLE,
                            span,
                            format!(
                                "request {req} enqueued {}",
                                stage_context(other.as_deref().copied())
                            ),
                        ));
                        continue;
                    }
                }
                if *tenant >= tenants || *model >= params.models {
                    out.push(Diagnostic::new(
                        codes::SERVE_LIFECYCLE,
                        span,
                        format!(
                            "request {req} enqueued with tenant {tenant} / model {model} outside \
                             the configured {tenants} tenants / {} models",
                            params.models
                        ),
                    ));
                    continue;
                }
                // Mirror Batcher::push: re-entry floor, then append.
                if tenant_pending[*tenant] == 0 {
                    let backlog_floor = (0..tenants)
                        .filter(|&t| tenant_pending[t] > 0)
                        .map(|t| vtime[t])
                        .fold(f64::INFINITY, f64::min);
                    let floor = if backlog_floor.is_finite() {
                        backlog_floor
                    } else {
                        vfloor
                    };
                    vtime[*tenant] = vtime[*tenant].max(floor);
                }
                pending[*model].push_back((*req, *tenant));
                tenant_pending[*tenant] += 1;
                depth += 1;
                if depth != *logged_depth {
                    out.push(Diagnostic::new(
                        codes::SERVE_QUEUE_BOUND,
                        span,
                        format!(
                            "enqueue of request {req} logged depth {logged_depth} but the replay \
                             holds {depth} pending requests"
                        ),
                    ));
                }
                if *logged_depth > params.queue_capacity {
                    out.push(Diagnostic::new(
                        codes::SERVE_QUEUE_BOUND,
                        span,
                        format!(
                            "enqueue of request {req} at depth {logged_depth} exceeds the \
                             configured capacity {}",
                            params.queue_capacity
                        ),
                    ));
                }
            }
            ServeEventKind::BatchFormed {
                batch,
                model,
                members,
                vtime: logged_vtime,
                backlogged: logged_backlogged,
                ..
            } => {
                if *model >= params.models {
                    out.push(Diagnostic::new(
                        codes::SERVE_LIFECYCLE,
                        span,
                        format!("batch {batch} targets model {model} outside the catalog"),
                    ));
                    continue;
                }
                if members.is_empty() || members.len() > params.max_batch {
                    out.push(Diagnostic::new(
                        codes::SERVE_FAIRNESS_REPLAY,
                        span,
                        format!(
                            "batch {batch} holds {} members against a max_batch of {}",
                            members.len(),
                            params.max_batch
                        ),
                    ));
                }
                for member in members {
                    // The fair pick: minimum virtual time among tenants
                    // pending on this model, ties to the lowest ordinal,
                    // taking that tenant's oldest pending request.
                    let winner = pending[*model]
                        .iter()
                        .map(|&(_, t)| t)
                        .collect::<BTreeSet<_>>()
                        .into_iter()
                        .min_by(|&a, &b| {
                            vtime[a]
                                .partial_cmp(&vtime[b])
                                .unwrap_or(std::cmp::Ordering::Equal)
                                .then(a.cmp(&b))
                        });
                    let expected = winner.and_then(|w| {
                        pending[*model]
                            .iter()
                            .position(|&(_, t)| t == w)
                            .map(|pos| (pos, pending[*model][pos].0))
                    });
                    let actual_pos = pending[*model].iter().position(|&(r, _)| r == *member);
                    match (expected, actual_pos) {
                        (Some((exp_pos, exp_req)), Some(act_pos)) => {
                            if exp_req != *member {
                                out.push(Diagnostic::new(
                                    codes::SERVE_FAIRNESS_REPLAY,
                                    span,
                                    format!(
                                        "batch {batch} picked request {member} but the \
                                         weighted-fair replay picks request {exp_req}"
                                    ),
                                ));
                            }
                            // Consume the logged pick (not the expected
                            // one) so one divergence does not cascade.
                            let pos = if exp_req == *member { exp_pos } else { act_pos };
                            let (_, t) = pending[*model].remove(pos).expect("position valid");
                            tenant_pending[t] -= 1;
                            depth -= 1;
                            vfloor = vfloor.max(vtime[t]);
                            vtime[t] += 1.0 / params.weights[t];
                        }
                        _ => out.push(Diagnostic::new(
                            codes::SERVE_FAIRNESS_REPLAY,
                            span,
                            format!(
                                "batch {batch} member {member} is not pending on model {model} \
                                 at formation time"
                            ),
                        )),
                    }
                    if let Some(state) = reqs.get_mut(member) {
                        if state.stage == Stage::Enqueued {
                            state.stage = Stage::Batched;
                        } else {
                            out.push(Diagnostic::new(
                                codes::SERVE_LIFECYCLE,
                                span,
                                format!(
                                    "batch {batch} member {member} {}",
                                    stage_context(Some(*state))
                                ),
                            ));
                        }
                    }
                }
                if logged_vtime.len() != tenants
                    || logged_vtime
                        .iter()
                        .zip(vtime.iter())
                        .any(|(a, b)| (a - b).abs() > 1e-9)
                {
                    out.push(Diagnostic::new(
                        codes::SERVE_FAIRNESS_REPLAY,
                        span,
                        format!(
                            "batch {batch} logged virtual times {logged_vtime:?} but the replay \
                             holds {vtime:?}"
                        ),
                    ));
                }
                let replay_backlogged: Vec<usize> =
                    (0..tenants).filter(|&t| tenant_pending[t] > 0).collect();
                if *logged_backlogged != replay_backlogged {
                    out.push(Diagnostic::new(
                        codes::SERVE_FAIRNESS_REPLAY,
                        span,
                        format!(
                            "batch {batch} logged backlogged set {logged_backlogged:?} but the \
                             replay holds {replay_backlogged:?}"
                        ),
                    ));
                }
                batch_members.insert(*batch, members.clone());
            }
            ServeEventKind::Degraded { req, batch, .. } => {
                let in_batch = batch_members.get(batch).is_some_and(|m| m.contains(req));
                if !in_batch {
                    out.push(Diagnostic::new(
                        codes::SERVE_LIFECYCLE,
                        span,
                        format!("degrade of request {req} names batch {batch} it is not in"),
                    ));
                }
            }
            ServeEventKind::Shed { req, .. } => match reqs.get_mut(req) {
                Some(state) if matches!(state.stage, Stage::Enqueued | Stage::Batched) => {
                    state.stage = Stage::Shed;
                    shed_total += 1;
                }
                other => out.push(Diagnostic::new(
                    codes::SERVE_LIFECYCLE,
                    span,
                    format!(
                        "request {req} shed {}",
                        stage_context(other.as_deref().copied())
                    ),
                )),
            },
            ServeEventKind::Completed {
                req,
                batch,
                latency_us,
                deadline_us,
                degraded,
                ..
            } => {
                let state = match reqs.get_mut(req) {
                    Some(state) if state.stage == Stage::Batched => {
                        state.stage = Stage::Completed;
                        completed_total += 1;
                        *state
                    }
                    other => {
                        out.push(Diagnostic::new(
                            codes::SERVE_LIFECYCLE,
                            span,
                            format!(
                                "request {req} completed {}",
                                stage_context(other.as_deref().copied())
                            ),
                        ));
                        continue;
                    }
                };
                if !batch_members.get(batch).is_some_and(|m| m.contains(req)) {
                    out.push(Diagnostic::new(
                        codes::SERVE_LIFECYCLE,
                        span,
                        format!("completion of request {req} names batch {batch} it is not in"),
                    ));
                }
                let measured = event.t_us - state.arrival_us;
                if (measured - latency_us).abs() > 1e-6 {
                    out.push(Diagnostic::new(
                        codes::SERVE_DEADLINE_ACCOUNTING,
                        span,
                        format!(
                            "request {req} logged latency {latency_us:.3}us but completion minus \
                             arrival is {measured:.3}us"
                        ),
                    ));
                }
                if let Some(d) = deadline_us {
                    if event.t_us > d + 1e-9 {
                        let miss = event.t_us - d;
                        if *degraded {
                            out.push(Diagnostic {
                                code: codes::SERVE_DEADLINE_ACCOUNTING,
                                severity: Severity::Warning,
                                span,
                                message: format!(
                                    "request {req} missed its deadline by {miss:.3}us despite \
                                     degradation (ladder exhausted; prediction optimistic)"
                                ),
                            });
                        } else {
                            out.push(Diagnostic::new(
                                codes::SERVE_DEADLINE_ACCOUNTING,
                                span,
                                format!(
                                    "request {req} missed its deadline by {miss:.3}us with no \
                                     degrade on record — the SLO guard never engaged"
                                ),
                            ));
                        }
                    }
                }
            }
        }
    }

    if depth != 0 {
        out.push(Diagnostic::new(
            codes::SERVE_QUEUE_BOUND,
            Span::Global,
            format!("{depth} enqueued requests never left the pending set"),
        ));
    }
    let still_pending = reqs
        .values()
        .filter(|s| matches!(s.stage, Stage::Enqueued | Stage::Batched))
        .count() as u64;
    if admitted_total != completed_total + shed_total + still_pending {
        out.push(Diagnostic::new(
            codes::SERVE_ADMISSION_ACCOUNTING,
            Span::Global,
            format!(
                "admitted {admitted_total} but completed {completed_total} + shed {shed_total} \
                 + still pending {still_pending} does not account for them all"
            ),
        ));
    }
    let admitted_never_enqueued = reqs.values().filter(|s| s.stage == Stage::Admitted).count();
    if admitted_never_enqueued > 0 {
        out.push(Diagnostic::new(
            codes::SERVE_ADMISSION_ACCOUNTING,
            Span::Global,
            format!("{admitted_never_enqueued} admitted requests were never enqueued"),
        ));
    }

    out
}

/// Renders the stage a request was actually in when an event assumed a
/// different one.
fn stage_context(state: Option<ReqState>) -> String {
    match state {
        None => "before any arrival event".to_string(),
        Some(s) => format!(
            "while {}",
            match s.stage {
                Stage::Arrived => "only arrived (not admitted)",
                Stage::Admitted => "admitted but not enqueued",
                Stage::Rejected => "already rejected",
                Stage::Enqueued => "enqueued but not batched",
                Stage::Batched => "batched",
                Stage::Shed => "already shed",
                Stage::Completed => "already completed",
            }
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgenn_serve::batcher::PlanVariant;
    use edgenn_serve::RejectReason;

    fn params() -> ServeCheckParams {
        ServeCheckParams {
            weights: vec![2.0, 1.0],
            queue_capacity: 8,
            max_batch: 4,
            models: 1,
        }
    }

    fn arrive_admit_enqueue(log: &mut AdmissionLog, t: f64, req: u64, tenant: usize, depth: usize) {
        log.push(
            t,
            ServeEventKind::Arrived {
                req,
                tenant,
                model: 0,
            },
        );
        log.push(t, ServeEventKind::Admitted { req, tenant });
        log.push(
            t,
            ServeEventKind::Enqueued {
                req,
                tenant,
                model: 0,
                depth,
            },
        );
    }

    #[test]
    fn clean_log_passes_every_tier() {
        let mut log = AdmissionLog::default();
        arrive_admit_enqueue(&mut log, 0.0, 0, 0, 1);
        arrive_admit_enqueue(&mut log, 1.0, 1, 1, 2);
        // Tenant 0 (weight 2) picked first on vtime tie (lower ordinal);
        // after its charge of 0.5 tenant 1 (vtime 0) goes next.
        log.push(
            10.0,
            ServeEventKind::BatchFormed {
                batch: 0,
                model: 0,
                variant: PlanVariant::Hybrid,
                members: vec![0, 1],
                oldest_wait_us: 10.0,
                vtime: vec![0.5, 1.0],
                backlogged: vec![],
            },
        );
        log.push(
            20.0,
            ServeEventKind::Completed {
                req: 0,
                tenant: 0,
                batch: 0,
                latency_us: 20.0,
                deadline_us: None,
                degraded: false,
            },
        );
        log.push(
            20.0,
            ServeEventKind::Completed {
                req: 1,
                tenant: 1,
                batch: 0,
                latency_us: 19.0,
                deadline_us: Some(25.0),
                degraded: false,
            },
        );
        let diags = check_admission_log(&log, &params());
        assert!(diags.is_empty(), "clean log flagged: {diags:?}");
    }

    #[test]
    fn completion_of_shed_request_is_ec070() {
        let mut log = AdmissionLog::default();
        arrive_admit_enqueue(&mut log, 0.0, 0, 0, 1);
        log.push(
            5.0,
            ServeEventKind::BatchFormed {
                batch: 0,
                model: 0,
                variant: PlanVariant::Hybrid,
                members: vec![0],
                oldest_wait_us: 5.0,
                vtime: vec![0.5, 0.0],
                backlogged: vec![],
            },
        );
        log.push(
            5.0,
            ServeEventKind::Shed {
                req: 0,
                tenant: 0,
                reason: RejectReason::DeadlineUnmeetable,
            },
        );
        log.push(
            9.0,
            ServeEventKind::Completed {
                req: 0,
                tenant: 0,
                batch: 0,
                latency_us: 9.0,
                deadline_us: None,
                degraded: false,
            },
        );
        let diags = check_admission_log(&log, &params());
        assert!(diags.iter().any(|d| d.code == codes::SERVE_LIFECYCLE));
    }

    #[test]
    fn wrong_pick_order_is_ec071() {
        let mut log = AdmissionLog::default();
        arrive_admit_enqueue(&mut log, 0.0, 0, 0, 1);
        arrive_admit_enqueue(&mut log, 1.0, 1, 1, 2);
        // The fair pick at equal vtime is tenant 0 first; logging
        // tenant 1's request first must be flagged, as must the vtime
        // vector that goes with the wrong order.
        log.push(
            10.0,
            ServeEventKind::BatchFormed {
                batch: 0,
                model: 0,
                variant: PlanVariant::Hybrid,
                members: vec![1, 0],
                oldest_wait_us: 10.0,
                vtime: vec![0.5, 1.0],
                backlogged: vec![],
            },
        );
        let diags = check_admission_log(&log, &params());
        assert!(diags.iter().any(|d| d.code == codes::SERVE_FAIRNESS_REPLAY));
    }

    #[test]
    fn depth_over_capacity_is_ec073() {
        let mut log = AdmissionLog::default();
        let p = ServeCheckParams {
            queue_capacity: 1,
            ..params()
        };
        arrive_admit_enqueue(&mut log, 0.0, 0, 0, 1);
        arrive_admit_enqueue(&mut log, 1.0, 1, 1, 2);
        let diags = check_admission_log(&log, &p);
        assert!(diags.iter().any(|d| d.code == codes::SERVE_QUEUE_BOUND));
    }

    #[test]
    fn deadline_miss_without_degrade_is_ec072_error() {
        let mut log = AdmissionLog::default();
        arrive_admit_enqueue(&mut log, 0.0, 0, 0, 1);
        log.push(
            5.0,
            ServeEventKind::BatchFormed {
                batch: 0,
                model: 0,
                variant: PlanVariant::Hybrid,
                members: vec![0],
                oldest_wait_us: 5.0,
                vtime: vec![0.5, 0.0],
                backlogged: vec![],
            },
        );
        log.push(
            50.0,
            ServeEventKind::Completed {
                req: 0,
                tenant: 0,
                batch: 0,
                latency_us: 50.0,
                deadline_us: Some(30.0),
                degraded: false,
            },
        );
        let diags = check_admission_log(&log, &params());
        let miss = diags
            .iter()
            .find(|d| d.code == codes::SERVE_DEADLINE_ACCOUNTING)
            .expect("deadline miss flagged");
        assert_eq!(miss.severity, Severity::Error);
    }

    #[test]
    fn lost_request_is_ec074() {
        let mut log = AdmissionLog::default();
        log.push(
            0.0,
            ServeEventKind::Arrived {
                req: 0,
                tenant: 0,
                model: 0,
            },
        );
        log.push(0.0, ServeEventKind::Admitted { req: 0, tenant: 0 });
        // Admitted but never enqueued, never completed, never shed.
        let diags = check_admission_log(&log, &params());
        assert!(diags
            .iter()
            .any(|d| d.code == codes::SERVE_ADMISSION_ACCOUNTING));
    }
}
