//! Report-level accounting invariants.
//!
//! These close the loop on the clamp the metrics module used to apply
//! silently: a raw copy proportion past 1.0 or a busy union past the
//! wall clock is an accounting bug, and the checker says so instead of
//! rounding it away.

use edgenn_core::metrics::InferenceReport;

use crate::{codes, Diagnostic, Span};

const TIME_TOLERANCE_US: f64 = 1e-6;
const PROPORTION_TOLERANCE: f64 = 1e-9;

/// Verifies one inference report's accounting invariants: the raw copy
/// proportion must land in `[0, 1]` (EC030) and the busy-interval union
/// cannot exceed end-to-end latency (EC031).
#[must_use]
pub fn check_report(report: &InferenceReport) -> Vec<Diagnostic> {
    let mut out = Vec::new();

    let raw = report.copy_proportion_raw();
    if !raw.is_finite() || !(0.0..=1.0 + PROPORTION_TOLERANCE).contains(&raw) {
        out.push(Diagnostic::new(
            codes::COPY_PROPORTION_OUT_OF_RANGE,
            Span::Global,
            format!(
                "{}: raw copy proportion {raw:.4} outside [0, 1] \
                 (memory {:.1} us vs total {:.1} us)",
                report.model,
                report.summary.memory_us(),
                report.total_us
            ),
        ));
    }

    if report.summary.busy_us > report.total_us + TIME_TOLERANCE_US {
        out.push(Diagnostic::new(
            codes::BUSY_EXCEEDS_WALL,
            Span::Global,
            format!(
                "{}: busy union {:.1} us exceeds end-to-end {:.1} us",
                report.model, report.summary.busy_us, report.total_us
            ),
        ));
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgenn_core::plan::{ExecutionConfig, ExecutionPlan, NodePlan};
    use edgenn_core::runtime::Runtime;
    use edgenn_nn::models::{build, ModelKind, ModelScale};
    use edgenn_sim::platforms::jetson_agx_xavier;

    fn simulated_report() -> InferenceReport {
        let graph = build(ModelKind::LeNet, ModelScale::Tiny);
        let platform = jetson_agx_xavier();
        let runtime = Runtime::new(&platform);
        let plan = ExecutionPlan {
            config: ExecutionConfig::baseline_gpu(),
            nodes: vec![NodePlan::gpu_explicit(); graph.len()],
        };
        runtime
            .simulate(&graph, &plan)
            .expect("simulation succeeds")
    }

    #[test]
    fn simulated_reports_pass() {
        let diags = check_report(&simulated_report());
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn inflated_memory_accounting_trips_ec030() {
        let mut report = simulated_report();
        report.total_us = report.summary.memory_us() / 2.0;
        let diags = check_report(&report);
        assert!(
            diags
                .iter()
                .any(|d| d.code == codes::COPY_PROPORTION_OUT_OF_RANGE),
            "{diags:?}"
        );
    }

    #[test]
    fn recovered_reports_keep_the_raw_proportion_for_ec030() {
        // A degraded re-tune must not re-introduce silent clamping: the
        // EC030 path over a recovered report sees the raw value.
        let graph = build(ModelKind::LeNet, ModelScale::Tiny);
        let platform = jetson_agx_xavier();
        let runtime = Runtime::new(&platform);
        let plan = ExecutionPlan {
            config: ExecutionConfig::baseline_gpu(),
            nodes: vec![NodePlan::gpu_explicit(); graph.len()],
        };
        let mut faults = edgenn_sim::FaultPlan::none();
        faults.kernel_faults.push(edgenn_sim::KernelFault {
            node: 1,
            fail_count: u32::MAX,
        });
        let outcome = runtime
            .simulate_with_faults(
                &graph,
                &plan,
                &faults,
                &edgenn_core::runtime::resilience::ResilienceConfig::default(),
            )
            .expect("resilient run survives");
        assert!(outcome.recovery.gpu_lost);
        let mut report = outcome.report;
        assert_eq!(
            report.copy_proportion(),
            report.copy_proportion_raw(),
            "recovered reports expose the unclamped proportion"
        );
        assert!(check_report(&report).is_empty(), "clean recovered run");
        // Inflate the accounting: the checker must see the raw value,
        // not a silently clamped 1.0.
        report.total_us = report.summary.memory_us() / 2.0;
        assert!(report.copy_proportion_raw() > 1.0);
        assert!(report
            .copy_proportion_clamped()
            .partial_cmp(&1.0)
            .is_some_and(std::cmp::Ordering::is_eq));
        let diags = check_report(&report);
        assert!(
            diags
                .iter()
                .any(|d| d.code == codes::COPY_PROPORTION_OUT_OF_RANGE),
            "{diags:?}"
        );
    }

    #[test]
    fn busy_past_wall_clock_trips_ec031() {
        let mut report = simulated_report();
        report.summary.busy_us = report.total_us * 2.0 + 1.0;
        let diags = check_report(&report);
        assert!(diags.iter().any(|d| d.code == codes::BUSY_EXCEEDS_WALL));
    }
}
