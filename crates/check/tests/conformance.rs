//! Measured-vs-certified conformance: on every bundled model x platform
//! combination, tier D's statically certified peak-memory bound must
//! dominate the functional engine's measured high-water marks.
//!
//! This is deliberately ONE test function: the engine reports arena
//! reuse through process-global counters, so running combinations
//! concurrently in separate #[test]s would interleave their deltas.

use edgenn_check::check_ownership;
use edgenn_core::plan::{ExecutionConfig, Precision};
use edgenn_core::runtime::{functional, Runtime};
use edgenn_core::tuner::Tuner;
use edgenn_nn::models::{build, ModelKind, ModelScale};
use edgenn_sim::platforms;
use edgenn_tensor::Tensor;

const MODELS: [ModelKind; 6] = [
    ModelKind::Fcnn,
    ModelKind::LeNet,
    ModelKind::AlexNet,
    ModelKind::Vgg16,
    ModelKind::SqueezeNet,
    ModelKind::ResNet18,
];

#[test]
fn certified_bound_dominates_measured_on_all_36_combos() {
    let platforms = [
        platforms::jetson_agx_xavier(),
        platforms::raspberry_pi_4(),
        platforms::dimensity_8100(),
        platforms::rtx_2080ti_server(),
        platforms::amd_embedded_apu(),
        platforms::apple_silicon_m1(),
    ];
    let mut combos = 0;
    for model in MODELS {
        let graph = build(model, ModelScale::Tiny);
        for platform in &platforms {
            // The certified bound must dominate in both precisions: the
            // int8 kernels acquire i8/i16 scratch the f32 path never
            // touches, and `Layer::scratch_bytes` claims to cover both.
            for precision in [Precision::F32, Precision::Int8] {
                // GPU-less platforms take the CPU-only config, mirroring
                // the CI matrix: the tuner refuses GPU work for them.
                let mut config = if platform.has_gpu() {
                    ExecutionConfig::edgenn()
                } else {
                    ExecutionConfig::cpu_only()
                };
                config.precision = precision;
                let runtime = Runtime::new(platform);
                let tuner = Tuner::new(&graph, &runtime).expect("tuner");
                let plan = tuner.plan(&graph, &runtime, config).expect("plan");

                let report = check_ownership(&graph, &plan, platform);
                assert!(
                    report.is_clean(),
                    "{} on {} ({precision}): tier D not clean: {:?}",
                    graph.name(),
                    platform.name,
                    report.diagnostics
                );

                let input = Tensor::random(graph.input_shape().dims(), 1.0, 7);
                let outcome = functional::execute(&graph, &plan, &input).expect("execute");
                let measured_slot = outcome.engine.slot_bytes;
                let measured_arena = outcome.engine.arena_fresh_bytes;
                assert!(
                    measured_slot <= report.bound.slot_bytes,
                    "{} on {} ({precision}): measured slot bytes {} exceed certified {}",
                    graph.name(),
                    platform.name,
                    measured_slot,
                    report.bound.slot_bytes
                );
                assert!(
                    measured_arena <= report.bound.arena_bytes,
                    "{} on {} ({precision}): measured arena bytes {} exceed certified {}",
                    graph.name(),
                    platform.name,
                    measured_arena,
                    report.bound.arena_bytes
                );
                combos += 1;
            }
        }
    }
    assert_eq!(combos, 72);
}
