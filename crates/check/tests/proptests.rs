//! Randomized (seeded, deterministic) tests for the checker.
//!
//! The contract under test: tuner-produced plans over builder-built
//! graphs pass every tier, and a single targeted mutation of a valid
//! artifact trips exactly the diagnostic code registered for that
//! defect class.

use edgenn_check::{
    check_config, check_graph, check_plan, check_profile, codes, CheckReport, Severity,
};
use edgenn_core::plan::{Assignment, ExecutionConfig, ExecutionPlan, HybridMode, NodePlan};
use edgenn_core::runtime::Runtime;
use edgenn_core::tuner::{NodeStats, Tuner};
use edgenn_nn::models::{build, ModelKind, ModelScale};
use edgenn_sim::platforms::{self, Platform};
use rand::{Rng, SeedableRng};

const CASES: usize = 32;

fn arb_model(rng: &mut rand::rngs::StdRng) -> ModelKind {
    match rng.gen_range(0u32..6) {
        0 => ModelKind::Fcnn,
        1 => ModelKind::LeNet,
        2 => ModelKind::AlexNet,
        3 => ModelKind::Vgg16,
        4 => ModelKind::SqueezeNet,
        _ => ModelKind::ResNet18,
    }
}

fn arb_gpu_platform(rng: &mut rand::rngs::StdRng) -> Platform {
    match rng.gen_range(0u32..4) {
        0 => platforms::jetson_agx_xavier(),
        1 => platforms::rtx_2080ti_server(),
        2 => platforms::amd_embedded_apu(),
        _ => platforms::apple_silicon_m1(),
    }
}

fn arb_config(rng: &mut rand::rngs::StdRng) -> ExecutionConfig {
    match rng.gen_range(0u32..6) {
        0 => ExecutionConfig::edgenn(),
        1 => ExecutionConfig::baseline_gpu(),
        2 => ExecutionConfig::memory_only(),
        3 => ExecutionConfig::hybrid_only(),
        4 => ExecutionConfig::inter_kernel_only(),
        _ => ExecutionConfig::edgenn_energy_aware(),
    }
}

/// Tuner-produced plans over builder-built graphs pass tiers A and B on
/// the platform they were planned for.
#[test]
fn random_valid_plans_pass_the_checker() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xC0DE_0001);
    for _ in 0..CASES {
        let graph = build(arb_model(&mut rng), ModelScale::Tiny);
        let platform = arb_gpu_platform(&mut rng);
        let config = arb_config(&mut rng);
        let runtime = Runtime::new(&platform);
        let tuner = Tuner::new(&graph, &runtime).expect("profile");
        let plan = tuner.plan(&graph, &runtime, config).expect("plan");

        let mut report = CheckReport::new(check_graph(&graph));
        report.extend(check_profile(tuner.stats()));
        report.extend(check_plan(&graph, &plan, &platform));
        assert!(
            report.is_clean(),
            "{:?} on {}: {}",
            graph.name(),
            platform.name,
            report.render_table()
        );
    }
}

/// Negating one profiled time trips EC016 and nothing in tier A.
#[test]
fn negative_profile_time_mutation_trips_ec016() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xC0DE_0002);
    for _ in 0..CASES {
        let graph = build(arb_model(&mut rng), ModelScale::Tiny);
        let platform = platforms::jetson_agx_xavier();
        let runtime = Runtime::new(&platform);
        let tuner = Tuner::new(&graph, &runtime).expect("profile");
        let mut stats: Vec<NodeStats> = tuner.stats().to_vec();
        let victim = rng.gen_range(0usize..stats.len());
        if rng.gen_range(0u32..2) == 0 {
            stats[victim].t_cpu_us = -stats[victim].t_cpu_us.max(1.0);
        } else {
            stats[victim].t_gpu_us = f64::NAN;
        }
        let diags = check_profile(&stats);
        assert!(
            diags.iter().any(|d| d.code == codes::INVALID_PROFILE_TIME),
            "mutated node {victim} not caught: {diags:?}"
        );
        assert!(diags.iter().all(|d| d.severity == Severity::Error));
    }
}

/// Pushing one split fraction outside (0, 1] trips EC011.
#[test]
fn out_of_range_fraction_mutation_trips_ec011() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xC0DE_0003);
    for _ in 0..CASES {
        let graph = build(arb_model(&mut rng), ModelScale::Tiny);
        let platform = platforms::jetson_agx_xavier();
        let runtime = Runtime::new(&platform);
        let tuner = Tuner::new(&graph, &runtime).expect("profile");
        let mut plan = tuner
            .plan(&graph, &runtime, ExecutionConfig::edgenn())
            .expect("plan");
        let victim = rng.gen_range(1usize..plan.nodes.len());
        let bad = if rng.gen_range(0u32..2) == 0 {
            rng.gen_range(1.001f64..10.0)
        } else {
            -rng.gen_range(0.001f64..10.0)
        };
        plan.nodes[victim].assignment = Assignment::Split { cpu_fraction: bad };
        let diags = check_plan(&graph, &plan, &platform);
        assert!(
            diags.iter().any(|d| d.code == codes::SPLIT_FRACTION_RANGE),
            "fraction {bad} on n{victim} not caught: {diags:?}"
        );
    }
}

/// Swapping a placement against the platform or mode trips EC013/EC014.
#[test]
fn swapped_placement_mutation_trips_ec013_or_ec014() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xC0DE_0004);
    for _ in 0..CASES {
        let graph = build(arb_model(&mut rng), ModelScale::Tiny);

        // GPU work planned onto a GPU-less platform: EC014.
        let cpu_only_platform = platforms::raspberry_pi_4();
        let plan = ExecutionPlan {
            config: ExecutionConfig::baseline_gpu(),
            nodes: vec![NodePlan::gpu_explicit(); graph.len()],
        };
        let diags = check_plan(&graph, &plan, &cpu_only_platform);
        assert!(
            diags.iter().any(|d| d.code == codes::GPU_WORK_WITHOUT_GPU),
            "{diags:?}"
        );

        // A split under a mode that forbids intra-kernel co-running: EC013.
        let platform = arb_gpu_platform(&mut rng);
        let mut plan = ExecutionPlan {
            config: ExecutionConfig::baseline_gpu(),
            nodes: vec![NodePlan::gpu_explicit(); graph.len()],
        };
        assert_eq!(plan.config.hybrid, HybridMode::GpuOnly);
        let victim = rng.gen_range(1usize..plan.nodes.len());
        plan.nodes[victim].assignment = Assignment::Split { cpu_fraction: 0.5 };
        let diags = check_plan(&graph, &plan, &platform);
        assert!(
            diags.iter().any(|d| d.code == codes::ASSIGNMENT_FORBIDDEN),
            "split on n{victim} under GpuOnly not caught: {diags:?}"
        );
    }
}

/// Random config mutations outside the documented ranges trip EC017.
#[test]
fn config_field_mutations_trip_ec017() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xC0DE_0005);
    for _ in 0..CASES {
        let mut config = arb_config(&mut rng);
        match rng.gen_range(0u32..3) {
            0 => config.sync_overhead_us = -rng.gen_range(0.001f64..100.0),
            1 => config.host_roundtrip_fraction = rng.gen_range(1.001f64..5.0),
            _ => config.jitter = rng.gen_range(1.0f64..4.0),
        }
        let diags = check_config(&config);
        assert!(
            diags.iter().any(|d| d.code == codes::CONFIG_FIELD_RANGE),
            "{config:?}: {diags:?}"
        );
    }
}

// ---------------------------------------------------------------------------
// Tier D: one surgical schedule mutation per EC05x code.
// ---------------------------------------------------------------------------

use edgenn_check::{analyze_schedule, check_ownership, derive_schedule, Op, Region, Schedule};

/// A tuned tiny-scale `(graph, plan)` pair whose derived schedule is
/// clean — the fixed point every mutation below perturbs.
fn tier_d_subject(
    rng: &mut rand::rngs::StdRng,
) -> (edgenn_nn::graph::Graph, ExecutionPlan, Platform) {
    let graph = build(arb_model(rng), ModelScale::Tiny);
    let platform = platforms::jetson_agx_xavier();
    let runtime = Runtime::new(&platform);
    let tuner = Tuner::new(&graph, &runtime).expect("profile");
    let plan = tuner
        .plan(&graph, &runtime, ExecutionConfig::edgenn())
        .expect("plan");
    (graph, plan, platform)
}

/// Asserts `code` fires on `schedule` and did not fire pre-mutation.
fn assert_trips(
    code: &str,
    graph: &edgenn_nn::graph::Graph,
    plan: &ExecutionPlan,
    platform: &Platform,
    schedule: &Schedule,
) {
    let clean = check_ownership(graph, plan, platform);
    assert!(
        clean.diagnostics.iter().all(|d| d.code != code),
        "{code} already fires without the mutation: {:?}",
        clean.diagnostics
    );
    let report = analyze_schedule(graph, plan, platform, schedule);
    assert!(
        report.diagnostics.iter().any(|d| d.code == code),
        "mutation did not trip {code}: {:?}",
        report.diagnostics
    );
}

/// A read injected before the producing write trips EC050.
#[test]
fn premature_read_mutation_trips_ec050() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xC0DE_0050);
    for _ in 0..CASES {
        let (graph, plan, platform) = tier_d_subject(&mut rng);
        let mut schedule = derive_schedule(&graph, &plan);
        let victim = rng.gen_range(1usize..graph.len());
        schedule.regions.insert(
            0,
            Region::Serial(vec![Op::Read {
                node: victim,
                slot: victim,
            }]),
        );
        assert_trips(
            codes::READ_BEFORE_WRITE,
            &graph,
            &plan,
            &platform,
            &schedule,
        );
    }
}

/// A duplicated write to an already-live slot trips EC051.
#[test]
fn double_write_mutation_trips_ec051() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xC0DE_0051);
    for _ in 0..CASES {
        let (graph, plan, platform) = tier_d_subject(&mut rng);
        let mut schedule = derive_schedule(&graph, &plan);
        let victim = rng.gen_range(1usize..graph.len());
        let at = schedule.regions.len() - 1; // before the MoveOut region
        schedule.regions.insert(
            at,
            Region::Serial(vec![Op::Write {
                node: victim,
                slot: victim,
            }]),
        );
        assert_trips(codes::DOUBLE_WRITE, &graph, &plan, &platform, &schedule);
    }
}

/// Two parallel branches touching the same slot trip EC052.
#[test]
fn cross_branch_race_mutation_trips_ec052() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xC0DE_0052);
    for _ in 0..CASES {
        let (graph, plan, platform) = tier_d_subject(&mut rng);
        let mut schedule = derive_schedule(&graph, &plan);
        let victim = rng.gen_range(1usize..graph.len());
        let write = Op::Write {
            node: victim,
            slot: victim,
        };
        let race = if rng.gen_range(0u32..2) == 0 {
            // Writer/writer race.
            vec![vec![write], vec![write]]
        } else {
            // Writer/reader race.
            vec![
                vec![write],
                vec![Op::Read {
                    node: victim,
                    slot: victim,
                }],
            ]
        };
        schedule.regions.insert(0, Region::Parallel(race));
        assert_trips(
            codes::CROSS_BRANCH_RACE,
            &graph,
            &plan,
            &platform,
            &schedule,
        );
    }
}

/// A read appended after the output moved out trips EC053.
#[test]
fn use_after_move_mutation_trips_ec053() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xC0DE_0053);
    for _ in 0..CASES {
        let (graph, plan, platform) = tier_d_subject(&mut rng);
        let mut schedule = derive_schedule(&graph, &plan);
        let out = graph.output_id().index();
        schedule.regions.push(Region::Serial(vec![Op::Read {
            node: out,
            slot: out,
        }]));
        assert_trips(codes::USE_AFTER_MOVE, &graph, &plan, &platform, &schedule);
    }
}

/// Deleting the output's producing write trips EC054.
#[test]
fn missing_output_write_mutation_trips_ec054() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xC0DE_0054);
    for _ in 0..CASES {
        let (graph, plan, platform) = tier_d_subject(&mut rng);
        let mut schedule = derive_schedule(&graph, &plan);
        let out = graph.output_id().index();
        for region in &mut schedule.regions {
            let drop_write = |ops: &mut Vec<Op>| {
                ops.retain(|op| !matches!(op, Op::Write { slot, .. } if *slot == out));
            };
            match region {
                Region::Serial(ops) => drop_write(ops),
                Region::Parallel(branches) => branches.iter_mut().for_each(drop_write),
            }
        }
        assert_trips(
            codes::OUTPUT_NEVER_PRODUCED,
            &graph,
            &plan,
            &platform,
            &schedule,
        );
    }
}

/// Deleting every read of an interior slot trips the EC055 warning.
#[test]
fn dead_write_mutation_trips_ec055() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xC0DE_0055);
    for _ in 0..CASES {
        let (graph, plan, platform) = tier_d_subject(&mut rng);
        let mut schedule = derive_schedule(&graph, &plan);
        // Node 1's output always has at least one consumer in the
        // builder models, and is never the output.
        let victim = 1usize;
        assert_ne!(victim, graph.output_id().index());
        for region in &mut schedule.regions {
            let drop_reads = |ops: &mut Vec<Op>| {
                ops.retain(|op| !matches!(op, Op::Read { slot, .. } if *slot == victim));
            };
            match region {
                Region::Serial(ops) => drop_reads(ops),
                Region::Parallel(branches) => branches.iter_mut().for_each(drop_reads),
            }
        }
        let report = analyze_schedule(&graph, &plan, &platform, &schedule);
        let ec055: Vec<_> = report
            .diagnostics
            .iter()
            .filter(|d| d.code == codes::DEAD_WRITE)
            .collect();
        assert!(!ec055.is_empty(), "no EC055: {:?}", report.diagnostics);
        assert!(
            ec055.iter().all(|d| d.severity == Severity::Warning),
            "EC055 must stay a warning: {ec055:?}"
        );
    }
}

/// Deleting an arena release (leaking the buffer past the node's write)
/// trips EC056.
#[test]
fn leaked_arena_buffer_mutation_trips_ec056() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xC0DE_0056);
    for _ in 0..CASES {
        // LeNet always has convolutions, hence arena acquisitions.
        let graph = build(ModelKind::LeNet, ModelScale::Tiny);
        let platform = platforms::jetson_agx_xavier();
        let runtime = Runtime::new(&platform);
        let tuner = Tuner::new(&graph, &runtime).expect("profile");
        let plan = tuner
            .plan(&graph, &runtime, arb_config(&mut rng))
            .expect("plan");
        let mut schedule = derive_schedule(&graph, &plan);
        let mut dropped = false;
        for region in &mut schedule.regions {
            if dropped {
                break;
            }
            if let Region::Serial(ops) = region {
                if let Some(pos) = ops
                    .iter()
                    .position(|op| matches!(op, Op::ArenaRelease { .. }))
                {
                    ops.remove(pos);
                    dropped = true;
                }
            }
        }
        assert!(dropped, "LeNet schedule must contain an arena release");
        assert_trips(codes::ARENA_ESCAPE, &graph, &plan, &platform, &schedule);
    }
}

/// A merge retargeted at a foreign live slot trips EC057.
#[test]
fn aliased_merge_mutation_trips_ec057() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xC0DE_0057);
    for _ in 0..CASES {
        let (graph, plan, platform) = tier_d_subject(&mut rng);
        let mut schedule = derive_schedule(&graph, &plan);
        // Merge node 2's partials into node 1's already-live buffer.
        let at = schedule.regions.len() - 1;
        schedule
            .regions
            .insert(at, Region::Serial(vec![Op::Merge { node: 2, target: 1 }]));
        assert_trips(
            codes::MERGE_ALIASES_LIVE_SLOT,
            &graph,
            &plan,
            &platform,
            &schedule,
        );
    }
}

/// Shrinking the platform's DRAM under the certified bound trips EC058.
#[test]
fn tiny_dram_mutation_trips_ec058() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xC0DE_0058);
    for _ in 0..CASES {
        let (graph, plan, mut platform) = tier_d_subject(&mut rng);
        platform.dram_bytes = rng.gen_range(1u64..1024);
        let report = check_ownership(&graph, &plan, &platform);
        assert!(
            report
                .diagnostics
                .iter()
                .any(|d| d.code == codes::CERTIFIED_PEAK_EXCEEDS_DRAM),
            "bound {} vs dram {} not caught: {:?}",
            report.bound.total_bytes,
            platform.dram_bytes,
            report.diagnostics
        );
    }
}

/// A write aimed at the borrowed input slot trips EC059.
#[test]
fn borrowed_input_write_mutation_trips_ec059() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xC0DE_0059);
    for _ in 0..CASES {
        let (graph, plan, platform) = tier_d_subject(&mut rng);
        let mut schedule = derive_schedule(&graph, &plan);
        let writer = rng.gen_range(1usize..graph.len());
        schedule.regions.insert(
            0,
            Region::Serial(vec![Op::Write {
                node: writer,
                slot: 0,
            }]),
        );
        assert_trips(
            codes::BORROWED_INPUT_WRITTEN,
            &graph,
            &plan,
            &platform,
            &schedule,
        );
    }
}

/// Quantize→dequantize round-trip error stays within half a code step
/// (`scale / 2`) for any in-range value under random affine parameters.
#[test]
fn random_quantize_round_trip_within_half_scale() {
    use edgenn_tensor::{quantize_into, QuantParams};
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xC0DE_1808);
    for _ in 0..CASES {
        // A random calibration range that straddles zero (the affine
        // scheme always keeps 0.0 exactly representable).
        let lo = -rng.gen_range(0.01f32..100.0);
        let hi = rng.gen_range(0.01f32..100.0);
        let p = QuantParams::from_min_max(lo, hi);
        let src: Vec<f32> = (0..256).map(|_| rng.gen_range(lo..hi)).collect();
        let mut q = vec![0i8; src.len()];
        quantize_into(&src, &mut q, p);
        for (&v, &code) in src.iter().zip(&q) {
            let back = p.dequantize_one(code);
            assert!(
                (v - back).abs() <= p.scale / 2.0 + 1e-6,
                "v={v} back={back} scale={}",
                p.scale
            );
        }
    }
}

/// The packed int8 GEMM tracks the f32 GEMM within the analytic
/// per-element quantization bound on random shapes and operands:
/// each operand contributes at most half a code step per factor, so
/// `|err[i][j]| <= Σ_p (|w|·εx + |x|·εw + εw·εx)` with
/// `εw = s_w[i]/2`, `εx = s_x/2`.
#[test]
fn random_int8_gemm_tracks_f32_within_quantization_bound() {
    use edgenn_tensor::{
        gemm_into, min_max, qgemm_requant_into, quantize_into, row_sums, QTensor, QuantParams,
        Quantization, Requant, Tensor,
    };
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xC0DE_1811);
    for _ in 0..CASES {
        let m = rng.gen_range(1usize..24);
        let k = rng.gen_range(1usize..96);
        let n = rng.gen_range(1usize..48);
        let w = Tensor::random(&[m, k], 1.0, rng.gen_range(0u64..u64::MAX));
        let x = Tensor::random(&[k, n], 1.0, rng.gen_range(0u64..u64::MAX));
        let qw = QTensor::quantize_per_channel(&w).unwrap();
        let Quantization::PerChannel(wp) = qw.quant().clone() else {
            unreachable!()
        };
        let w_scales: Vec<f32> = wp.iter().map(|p| p.scale).collect();
        let rsums = row_sums(qw.as_slice(), m, k);
        let (lo, hi) = min_max(x.as_slice());
        let act = QuantParams::from_min_max(lo, hi);
        let mut qx = vec![0i8; k * n];
        quantize_into(x.as_slice(), &mut qx, act);
        let rq = Requant {
            w_scales: &w_scales,
            act,
            row_sums: &rsums,
            bias: None,
            relu: false,
        };
        let mut got = vec![0.0f32; m * n];
        qgemm_requant_into(qw.as_slice(), &qx, &mut got, m, k, n, &rq);
        let mut want = vec![0.0f32; m * n];
        gemm_into(w.as_slice(), x.as_slice(), &mut want, m, k, n);
        for i in 0..m {
            let ew = w_scales[i] / 2.0;
            let ex = act.scale / 2.0;
            for j in 0..n {
                let bound: f32 = (0..k)
                    .map(|p| {
                        let wv = w.as_slice()[i * k + p].abs();
                        let xv = x.as_slice()[p * n + j].abs();
                        wv * ex + xv * ew + ew * ex
                    })
                    .sum::<f32>()
                    + 1e-4;
                let err = (got[i * n + j] - want[i * n + j]).abs();
                assert!(
                    err <= bound,
                    "({m},{k},{n}) [{i},{j}]: err {err} > bound {bound}"
                );
            }
        }
    }
}
