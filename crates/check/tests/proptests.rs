//! Randomized (seeded, deterministic) tests for the checker.
//!
//! The contract under test: tuner-produced plans over builder-built
//! graphs pass every tier, and a single targeted mutation of a valid
//! artifact trips exactly the diagnostic code registered for that
//! defect class.

use edgenn_check::{
    check_config, check_graph, check_plan, check_profile, codes, CheckReport, Severity,
};
use edgenn_core::plan::{Assignment, ExecutionConfig, ExecutionPlan, HybridMode, NodePlan};
use edgenn_core::runtime::Runtime;
use edgenn_core::tuner::{NodeStats, Tuner};
use edgenn_nn::models::{build, ModelKind, ModelScale};
use edgenn_sim::platforms::{self, Platform};
use rand::{Rng, SeedableRng};

const CASES: usize = 32;

fn arb_model(rng: &mut rand::rngs::StdRng) -> ModelKind {
    match rng.gen_range(0u32..6) {
        0 => ModelKind::Fcnn,
        1 => ModelKind::LeNet,
        2 => ModelKind::AlexNet,
        3 => ModelKind::Vgg16,
        4 => ModelKind::SqueezeNet,
        _ => ModelKind::ResNet18,
    }
}

fn arb_gpu_platform(rng: &mut rand::rngs::StdRng) -> Platform {
    match rng.gen_range(0u32..4) {
        0 => platforms::jetson_agx_xavier(),
        1 => platforms::rtx_2080ti_server(),
        2 => platforms::amd_embedded_apu(),
        _ => platforms::apple_silicon_m1(),
    }
}

fn arb_config(rng: &mut rand::rngs::StdRng) -> ExecutionConfig {
    match rng.gen_range(0u32..6) {
        0 => ExecutionConfig::edgenn(),
        1 => ExecutionConfig::baseline_gpu(),
        2 => ExecutionConfig::memory_only(),
        3 => ExecutionConfig::hybrid_only(),
        4 => ExecutionConfig::inter_kernel_only(),
        _ => ExecutionConfig::edgenn_energy_aware(),
    }
}

/// Tuner-produced plans over builder-built graphs pass tiers A and B on
/// the platform they were planned for.
#[test]
fn random_valid_plans_pass_the_checker() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xC0DE_0001);
    for _ in 0..CASES {
        let graph = build(arb_model(&mut rng), ModelScale::Tiny);
        let platform = arb_gpu_platform(&mut rng);
        let config = arb_config(&mut rng);
        let runtime = Runtime::new(&platform);
        let tuner = Tuner::new(&graph, &runtime).expect("profile");
        let plan = tuner.plan(&graph, &runtime, config).expect("plan");

        let mut report = CheckReport::new(check_graph(&graph));
        report.extend(check_profile(tuner.stats()));
        report.extend(check_plan(&graph, &plan, &platform));
        assert!(
            report.is_clean(),
            "{:?} on {}: {}",
            graph.name(),
            platform.name,
            report.render_table()
        );
    }
}

/// Negating one profiled time trips EC016 and nothing in tier A.
#[test]
fn negative_profile_time_mutation_trips_ec016() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xC0DE_0002);
    for _ in 0..CASES {
        let graph = build(arb_model(&mut rng), ModelScale::Tiny);
        let platform = platforms::jetson_agx_xavier();
        let runtime = Runtime::new(&platform);
        let tuner = Tuner::new(&graph, &runtime).expect("profile");
        let mut stats: Vec<NodeStats> = tuner.stats().to_vec();
        let victim = rng.gen_range(0usize..stats.len());
        if rng.gen_range(0u32..2) == 0 {
            stats[victim].t_cpu_us = -stats[victim].t_cpu_us.max(1.0);
        } else {
            stats[victim].t_gpu_us = f64::NAN;
        }
        let diags = check_profile(&stats);
        assert!(
            diags.iter().any(|d| d.code == codes::INVALID_PROFILE_TIME),
            "mutated node {victim} not caught: {diags:?}"
        );
        assert!(diags.iter().all(|d| d.severity == Severity::Error));
    }
}

/// Pushing one split fraction outside (0, 1] trips EC011.
#[test]
fn out_of_range_fraction_mutation_trips_ec011() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xC0DE_0003);
    for _ in 0..CASES {
        let graph = build(arb_model(&mut rng), ModelScale::Tiny);
        let platform = platforms::jetson_agx_xavier();
        let runtime = Runtime::new(&platform);
        let tuner = Tuner::new(&graph, &runtime).expect("profile");
        let mut plan = tuner
            .plan(&graph, &runtime, ExecutionConfig::edgenn())
            .expect("plan");
        let victim = rng.gen_range(1usize..plan.nodes.len());
        let bad = if rng.gen_range(0u32..2) == 0 {
            rng.gen_range(1.001f64..10.0)
        } else {
            -rng.gen_range(0.001f64..10.0)
        };
        plan.nodes[victim].assignment = Assignment::Split { cpu_fraction: bad };
        let diags = check_plan(&graph, &plan, &platform);
        assert!(
            diags.iter().any(|d| d.code == codes::SPLIT_FRACTION_RANGE),
            "fraction {bad} on n{victim} not caught: {diags:?}"
        );
    }
}

/// Swapping a placement against the platform or mode trips EC013/EC014.
#[test]
fn swapped_placement_mutation_trips_ec013_or_ec014() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xC0DE_0004);
    for _ in 0..CASES {
        let graph = build(arb_model(&mut rng), ModelScale::Tiny);

        // GPU work planned onto a GPU-less platform: EC014.
        let cpu_only_platform = platforms::raspberry_pi_4();
        let plan = ExecutionPlan {
            config: ExecutionConfig::baseline_gpu(),
            nodes: vec![NodePlan::gpu_explicit(); graph.len()],
        };
        let diags = check_plan(&graph, &plan, &cpu_only_platform);
        assert!(
            diags.iter().any(|d| d.code == codes::GPU_WORK_WITHOUT_GPU),
            "{diags:?}"
        );

        // A split under a mode that forbids intra-kernel co-running: EC013.
        let platform = arb_gpu_platform(&mut rng);
        let mut plan = ExecutionPlan {
            config: ExecutionConfig::baseline_gpu(),
            nodes: vec![NodePlan::gpu_explicit(); graph.len()],
        };
        assert_eq!(plan.config.hybrid, HybridMode::GpuOnly);
        let victim = rng.gen_range(1usize..plan.nodes.len());
        plan.nodes[victim].assignment = Assignment::Split { cpu_fraction: 0.5 };
        let diags = check_plan(&graph, &plan, &platform);
        assert!(
            diags.iter().any(|d| d.code == codes::ASSIGNMENT_FORBIDDEN),
            "split on n{victim} under GpuOnly not caught: {diags:?}"
        );
    }
}

/// Random config mutations outside the documented ranges trip EC017.
#[test]
fn config_field_mutations_trip_ec017() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xC0DE_0005);
    for _ in 0..CASES {
        let mut config = arb_config(&mut rng);
        match rng.gen_range(0u32..3) {
            0 => config.sync_overhead_us = -rng.gen_range(0.001f64..100.0),
            1 => config.host_roundtrip_fraction = rng.gen_range(1.001f64..5.0),
            _ => config.jitter = rng.gen_range(1.0f64..4.0),
        }
        let diags = check_config(&config);
        assert!(
            diags.iter().any(|d| d.code == codes::CONFIG_FIELD_RANGE),
            "{config:?}: {diags:?}"
        );
    }
}
