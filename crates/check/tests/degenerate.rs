//! Degenerate-graph robustness: every checker tier must terminate with a
//! sensible verdict — never a panic — on the pathological inputs a
//! hand-built graph (or a fuzzer) can produce: the empty DAG, the
//! input-only graph, disconnected components, and zero-byte tensors.

use std::sync::Arc;

use edgenn_check::{check_graph, check_ownership, check_plan, codes, Severity};
use edgenn_core::plan::{Assignment, ExecutionConfig, ExecutionPlan, NodePlan};
use edgenn_nn::graph::{Graph, Node, NodeId};
use edgenn_nn::layer::{InputLayer, Relu};
use edgenn_sim::platforms::{jetson_agx_xavier, raspberry_pi_4};
use edgenn_tensor::Shape;

/// A plan placing every node on the CPU (legal on any platform).
fn cpu_plan(len: usize) -> ExecutionPlan {
    ExecutionPlan {
        config: ExecutionConfig::cpu_only(),
        nodes: vec![
            NodePlan {
                assignment: Assignment::Cpu,
                ..NodePlan::gpu_explicit()
            };
            len
        ],
    }
}

#[test]
fn empty_dag_terminates_in_every_tier() {
    let graph = Graph::from_parts("empty", Vec::new(), NodeId(0));
    let plan = cpu_plan(0);
    let platform = jetson_agx_xavier();

    // Tier A and B complete without panicking.
    let _ = check_graph(&graph);
    let _ = check_plan(&graph, &plan, &platform);

    // Tier D: nothing is written, so the output cannot exist.
    let report = check_ownership(&graph, &plan, &platform);
    assert!(
        report
            .diagnostics
            .iter()
            .any(|d| d.code == codes::OUTPUT_NEVER_PRODUCED),
        "{:?}",
        report.diagnostics
    );
    assert!(report.lives.is_empty());
    assert_eq!(report.bound.slot_bytes, 0);
    assert_eq!(report.bound.weight_bytes, 0);
}

#[test]
fn input_only_graph_flags_the_unproduced_output() {
    let shape = Shape::new(&[4]);
    let graph = Graph::from_parts(
        "input-only",
        vec![Node::new(
            Arc::new(InputLayer::new(shape.clone())),
            vec![],
            shape,
        )],
        NodeId(0),
    );
    let plan = cpu_plan(graph.len());
    for platform in [jetson_agx_xavier(), raspberry_pi_4()] {
        let report = check_ownership(&graph, &plan, &platform);
        // The "output" is the borrowed input: no node ever writes it, so
        // the session has nothing of its own to hand back.
        assert!(
            report
                .diagnostics
                .iter()
                .any(|d| d.code == codes::OUTPUT_NEVER_PRODUCED),
            "{}: {:?}",
            platform.name,
            report.diagnostics
        );
        assert!(report.lives.is_empty());
    }
}

#[test]
fn disconnected_component_is_dead_in_tier_a_and_unread_in_tier_d() {
    let shape = Shape::new(&[8]);
    // 0:input -> 1:relu(out)   2:relu reads the input but nobody reads 2.
    let nodes = vec![
        Node::new(
            Arc::new(InputLayer::new(shape.clone())),
            vec![],
            shape.clone(),
        ),
        Node::new(Arc::new(Relu::new("live")), vec![NodeId(0)], shape.clone()),
        Node::new(Arc::new(Relu::new("orphan")), vec![NodeId(0)], shape),
    ];
    let graph = Graph::from_parts("disconnected", nodes, NodeId(1));
    let plan = cpu_plan(graph.len());
    let platform = jetson_agx_xavier();

    let tier_a = check_graph(&graph);
    assert!(
        tier_a.iter().any(|d| d.code == codes::DEAD_NODE),
        "tier A must flag the orphan: {tier_a:?}"
    );

    let report = check_ownership(&graph, &plan, &platform);
    let ec055: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| d.code == codes::DEAD_WRITE)
        .collect();
    assert!(
        !ec055.is_empty(),
        "tier D must flag the orphan's unread slot: {:?}",
        report.diagnostics
    );
    assert!(ec055.iter().all(|d| d.severity == Severity::Warning));
    // The orphan still executes, so its buffer still counts toward the
    // certified bound and the liveness table.
    assert_eq!(report.lives.len(), 2);
}

#[test]
fn zero_byte_tensors_analyze_without_dividing_or_panicking() {
    let shape = Shape::new(&[0]);
    let nodes = vec![
        Node::new(
            Arc::new(InputLayer::new(shape.clone())),
            vec![],
            shape.clone(),
        ),
        Node::new(Arc::new(Relu::new("zero")), vec![NodeId(0)], shape),
    ];
    let graph = Graph::from_parts("zero-bytes", nodes, NodeId(1));
    let plan = cpu_plan(graph.len());
    let platform = jetson_agx_xavier();

    let _ = check_graph(&graph);
    let _ = check_plan(&graph, &plan, &platform);
    let report = check_ownership(&graph, &plan, &platform);
    assert!(report.is_clean(), "{:?}", report.diagnostics);
    assert_eq!(report.bound.slot_bytes, 0);
    assert_eq!(report.bound.input_bytes, 0);
    assert_eq!(report.bound.total_bytes, 0);
    // A zero-byte buffer still has a well-formed liveness interval.
    assert_eq!(report.lives.len(), 1);
    assert!(report.lives[0].last_read >= report.lives[0].born);
}
