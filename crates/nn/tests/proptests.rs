//! Randomized (seeded, deterministic) tests for layer and graph invariants.
//!
//! These were originally property-based tests; they now draw cases from a
//! fixed-seed RNG so the suite is reproducible and dependency-free.

use std::ops::Range;

use edgenn_nn::graph::{compile, CompileOptions, GraphBuilder, Segment};
use edgenn_nn::layer::{
    AddResidual, AvgPool2d, BatchNorm2d, Concat, Conv2d, Dense, Dropout, Layer, LocalResponseNorm,
    MaxPool2d, Relu, Slice,
};
use edgenn_nn::models::{build, ModelKind, ModelScale};
use edgenn_tensor::{Shape, Tensor};
use rand::{Rng, SeedableRng};

const CASES: usize = 48;

fn random_cuts(rng: &mut rand::rngs::StdRng, upper: usize) -> Vec<usize> {
    let n = rng.gen_range(0usize..3);
    (0..n).map(|_| rng.gen_range(1usize..upper)).collect()
}

/// Checks `concat(partials over cuts) == forward` for an arbitrary set of
/// cut points.
fn check_merge(layer: &dyn Layer, inputs: &[&Tensor], cuts: &[usize]) {
    let shapes: Vec<&Shape> = inputs.iter().map(|t| t.shape()).collect();
    let units = layer.partition_units(&shapes).unwrap();
    let full = layer.forward(inputs).unwrap();

    let mut bounds: Vec<usize> = vec![0];
    bounds.extend(cuts.iter().map(|c| c % units).filter(|&c| c > 0));
    bounds.push(units);
    bounds.sort_unstable();
    bounds.dedup();

    let mut parts = Vec::new();
    for w in bounds.windows(2) {
        let range: Range<usize> = w[0]..w[1];
        parts.push(layer.forward_partial(inputs, range).unwrap());
    }
    let refs: Vec<&Tensor> = parts.iter().collect();
    let merged = Tensor::concat_axis0(&refs)
        .unwrap()
        .reshape(full.dims())
        .unwrap();
    assert!(
        merged.approx_eq(&full, 1e-4),
        "merge invariant broken for {} with bounds {bounds:?}",
        layer.name()
    );
}

#[test]
fn conv_merge_invariant_over_random_geometry() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xA11E_0001);
    let mut checked = 0usize;
    while checked < CASES {
        let in_c = rng.gen_range(1usize..4);
        let out_c = rng.gen_range(2usize..9);
        let hw = rng.gen_range(4usize..10);
        let k = rng.gen_range(1usize..4);
        let stride = rng.gen_range(1usize..3);
        let pad = rng.gen_range(0usize..2);
        let seed = rng.gen_range(0u64..500);
        let cuts = random_cuts(&mut rng, 64);
        if hw + 2 * pad < k {
            continue;
        }
        checked += 1;
        let conv = Conv2d::new("c", in_c, out_c, k, stride, pad, seed);
        let x = Tensor::random(&[in_c, hw, hw], 1.0, seed + 1);
        check_merge(&conv, &[&x], &cuts);
    }
}

#[test]
fn dense_merge_invariant() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xA11E_0002);
    for _ in 0..CASES {
        let inf = rng.gen_range(1usize..32);
        let outf = rng.gen_range(2usize..32);
        let seed = rng.gen_range(0u64..500);
        let cuts = random_cuts(&mut rng, 64);
        let dense = Dense::new("fc", inf, outf, seed);
        let x = Tensor::random(&[inf], 1.0, seed + 1);
        check_merge(&dense, &[&x], &cuts);
    }
}

#[test]
fn pool_and_norm_merge_invariants() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xA11E_0003);
    for _ in 0..CASES {
        let c = rng.gen_range(2usize..8);
        let hw = rng.gen_range(4usize..10);
        let seed = rng.gen_range(0u64..500);
        let cuts = random_cuts(&mut rng, 64);
        let x = Tensor::random(&[c, hw, hw], 1.0, seed);
        check_merge(&MaxPool2d::new("mp", 2, 2), &[&x], &cuts);
        check_merge(&AvgPool2d::new("ap", 2, 1), &[&x], &cuts);
        check_merge(&Relu::new("r"), &[&x], &cuts);
        check_merge(&LocalResponseNorm::alexnet_default("lrn"), &[&x], &cuts);
        check_merge(&BatchNorm2d::new("bn", c, seed), &[&x], &cuts);
    }
}

#[test]
fn concat_merge_invariant() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xA11E_0004);
    for _ in 0..CASES {
        let c1 = rng.gen_range(1usize..5);
        let c2 = rng.gen_range(1usize..5);
        let hw = rng.gen_range(2usize..6);
        let seed = rng.gen_range(0u64..500);
        let cuts = random_cuts(&mut rng, 32);
        let a = Tensor::random(&[c1, hw, hw], 1.0, seed);
        let b = Tensor::random(&[c2, hw, hw], 1.0, seed + 1);
        check_merge(&Concat::new("cat", 2), &[&a, &b], &cuts);
    }
}

#[test]
fn random_chain_graphs_are_consistent() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xA11E_0005);
    for _ in 0..CASES {
        let n_layers = rng.gen_range(1usize..5);
        let widths: Vec<usize> = (0..n_layers).map(|_| rng.gen_range(2usize..16)).collect();
        let seed = rng.gen_range(0u64..500);
        // Build a random MLP chain; forward twice must agree, and the
        // structure must decompose to a single chain covering every node.
        let input_dim = 8usize;
        let mut b = GraphBuilder::new("rand-mlp", Shape::new(&[input_dim]));
        let mut prev = b.input_id();
        let mut in_dim = input_dim;
        for (i, &w) in widths.iter().enumerate() {
            prev = b
                .add(
                    Dense::new(format!("fc{i}"), in_dim, w, seed + i as u64),
                    &[prev],
                )
                .unwrap();
            prev = b.add(Relu::new(format!("r{i}")), &[prev]).unwrap();
            in_dim = w;
        }
        let graph = b.finish().unwrap();
        let x = Tensor::random(&[input_dim], 1.0, seed);
        let y1 = graph.forward(&x).unwrap();
        let y2 = graph.forward(&x).unwrap();
        assert_eq!(&y1, &y2);
        assert_eq!(y1.dims(), &[*widths.last().unwrap()]);

        let s = graph.structure().unwrap();
        assert!(s.is_pure_chain());
        let covered: usize = s.segments().iter().map(|seg| seg.nodes().len()).sum();
        assert_eq!(covered, graph.len());
    }
}

#[test]
fn random_forkjoin_graphs_decompose() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xA11E_0006);
    for _ in 0..CASES {
        let branch_a = rng.gen_range(1usize..4);
        let branch_b = rng.gen_range(1usize..4);
        let c = rng.gen_range(2usize..6);
        let seed = rng.gen_range(0u64..300);
        // input -> relu (fork) -> two relu chains -> concat.
        let mut b = GraphBuilder::new("rand-fork", Shape::new(&[c, 4, 4]));
        let fork = b.add(Relu::new("fork"), &[b.input_id()]).unwrap();
        let mut a_tip = fork;
        for i in 0..branch_a {
            a_tip = b.add(Relu::new(format!("a{i}")), &[a_tip]).unwrap();
        }
        let mut b_tip = fork;
        for i in 0..branch_b {
            b_tip = b.add(Relu::new(format!("b{i}")), &[b_tip]).unwrap();
        }
        let _ = b.add(Concat::new("join", 2), &[a_tip, b_tip]).unwrap();
        let graph = b.finish().unwrap();

        let s = graph.structure().unwrap();
        assert_eq!(s.parallel_segment_count(), 1);
        let parallel = s
            .segments()
            .iter()
            .find_map(|seg| match seg {
                Segment::Parallel { branches, .. } => Some(branches.clone()),
                _ => None,
            })
            .unwrap();
        let mut lens: Vec<usize> = parallel.iter().map(Vec::len).collect();
        lens.sort_unstable();
        let mut expected = vec![branch_a, branch_b];
        expected.sort_unstable();
        assert_eq!(lens, expected);

        // Functional execution still matches across runs.
        let x = Tensor::random(&[c, 4, 4], 1.0, seed);
        let y = graph.forward(&x).unwrap();
        assert_eq!(y.dims()[0], 2 * c);
    }
}

#[test]
fn workload_partial_is_monotone_in_range() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xA11E_0007);
    for _ in 0..CASES {
        let out_c = rng.gen_range(4usize..12);
        let seed = rng.gen_range(0u64..200);
        let conv = Conv2d::new("c", 3, out_c, 3, 1, 1, seed);
        let shape = Shape::new(&[3usize, 8, 8]);
        let shapes = [&shape];
        let mut prev = 0u64;
        for end in 1..=out_c {
            let w = conv.workload_partial(&shapes, 0..end).unwrap();
            assert!(w.flops >= prev, "flops must grow with the range");
            prev = w.flops;
        }
        let full = conv.workload(&shapes).unwrap();
        let whole = conv.workload_partial(&shapes, 0..out_c).unwrap();
        assert_eq!(whole.flops, full.flops);
    }
}

#[test]
fn compiled_random_dags_are_bitwise_identical() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xA11E_0008);
    for case in 0..CASES {
        let mut c = rng.gen_range(2usize..6);
        let hw = rng.gen_range(4usize..8);
        let seed = rng.gen_range(0u64..500);
        // Random DAGs built from the structures every compiler pass
        // rewrites: dropout identities, conv/dense + relu fusion
        // candidates, covering slice→concat round-trips, and residual
        // forks — compiled output must match the raw graph bit for bit.
        let mut b = GraphBuilder::new("rand-compile", Shape::new(&[c, hw, hw]));
        let mut tip = b.input_id();
        for i in 0..rng.gen_range(1usize..4) {
            match rng.gen_range(0u32..5) {
                0 => {
                    let out_c = rng.gen_range(2usize..6);
                    tip = b
                        .add(
                            Conv2d::new(format!("conv{i}"), c, out_c, 3, 1, 1, seed + i as u64),
                            &[tip],
                        )
                        .unwrap();
                    tip = b.add(Relu::new(format!("cr{i}")), &[tip]).unwrap();
                    c = out_c;
                }
                1 => {
                    tip = b.add(Dropout::new(format!("drop{i}")), &[tip]).unwrap();
                    tip = b.add(Relu::new(format!("dr{i}")), &[tip]).unwrap();
                }
                2 => {
                    // Redundant activation pair: the second ReLU is a
                    // no-op the fuser must leave semantically intact.
                    tip = b.add(Relu::new(format!("r{i}a")), &[tip]).unwrap();
                    tip = b.add(Relu::new(format!("r{i}b")), &[tip]).unwrap();
                }
                3 => {
                    // Covering slice pair re-joined in order: cancels to
                    // the producer under simplify-slices.
                    let m = rng.gen_range(1usize..c);
                    let lo = b.add(Slice::new(format!("slo{i}"), 0, m), &[tip]).unwrap();
                    let hi = b.add(Slice::new(format!("shi{i}"), m, c), &[tip]).unwrap();
                    tip = b.add(Concat::new(format!("cat{i}"), 2), &[lo, hi]).unwrap();
                }
                _ => {
                    tip = b
                        .add(AddResidual::new(format!("res{i}")), &[tip, tip])
                        .unwrap();
                    tip = b.add(Relu::new(format!("rr{i}")), &[tip]).unwrap();
                }
            }
        }
        let raw = b.finish().unwrap();
        let (compiled, report) = compile(&raw, &CompileOptions::default()).unwrap();
        assert!(
            compiled.len() <= raw.len(),
            "case {case}: compile grew the graph ({} -> {})",
            raw.len(),
            compiled.len()
        );
        assert_eq!(report.nodes_pre, raw.len());
        assert_eq!(report.nodes_post, compiled.len());

        let x = Tensor::random(raw.input_shape().dims(), 1.0, seed + 7);
        let want = raw.forward(&x).unwrap();
        let got = compiled.forward(&x).unwrap();
        assert_eq!(
            want.as_slice(),
            got.as_slice(),
            "case {case}: compiled output diverged bitwise"
        );

        // The pipeline runs to fixpoint: compiling the compiled graph
        // again must find nothing left to rewrite.
        let (again, re) = compile(&compiled, &CompileOptions::default()).unwrap();
        assert_eq!(again.len(), compiled.len(), "case {case}: not a fixpoint");
        assert_eq!(re.passes_applied(), 0, "case {case}: not a fixpoint");
    }
}

#[test]
fn compiled_models_are_bitwise_identical_over_random_inputs() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xA11E_0009);
    for kind in ModelKind::ALL {
        let raw = build(kind, ModelScale::Tiny);
        let (compiled, report) = compile(&raw, &CompileOptions::default()).unwrap();
        assert!(
            compiled.len() < raw.len(),
            "{}: compiler removed nothing ({} nodes)",
            kind.name(),
            raw.len()
        );
        assert_eq!(report.nodes_post, compiled.len());
        for _ in 0..4 {
            let seed = rng.gen_range(0u64..10_000);
            let x = Tensor::random(raw.input_shape().dims(), 1.0, seed);
            let want = raw.forward(&x).unwrap();
            let got = compiled.forward(&x).unwrap();
            assert_eq!(
                want.as_slice(),
                got.as_slice(),
                "{}: compiled output diverged bitwise (seed {seed})",
                kind.name()
            );
        }
    }
}
