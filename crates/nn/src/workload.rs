//! Analytic per-layer workload model.

/// Static cost profile of one layer execution.
///
/// The EdgeNN simulator turns this into kernel time with a roofline model:
/// compute time from `flops`, memory time from the byte traffic. The
/// semantic memory planner additionally uses the byte fields to size
/// copies/migrations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Workload {
    /// Floating-point operations (multiply-accumulate counted as 2).
    pub flops: u64,
    /// Bytes of activation input read.
    pub input_bytes: u64,
    /// Bytes of activation output written.
    pub output_bytes: u64,
    /// Bytes of parameters (weights + biases) read.
    pub weight_bytes: u64,
}

impl Workload {
    /// Total bytes moved through memory by the kernel.
    pub fn total_bytes(&self) -> u64 {
        self.input_bytes + self.output_bytes + self.weight_bytes
    }

    /// Arithmetic intensity in FLOPs per byte (0 when no bytes move).
    pub fn arithmetic_intensity(&self) -> f64 {
        let bytes = self.total_bytes();
        if bytes == 0 {
            0.0
        } else {
            self.flops as f64 / bytes as f64
        }
    }

    /// Sums two workloads (used when aggregating a chain of layers).
    pub fn merged(&self, other: &Workload) -> Workload {
        Workload {
            flops: self.flops + other.flops,
            input_bytes: self.input_bytes + other.input_bytes,
            output_bytes: self.output_bytes + other.output_bytes,
            weight_bytes: self.weight_bytes + other.weight_bytes,
        }
    }

    /// Scales the workload to a fraction of its partition units.
    ///
    /// A layer computing `part` of `total` output channels performs
    /// proportionally fewer FLOPs, writes proportionally fewer output
    /// bytes, and (for weight-bearing layers) reads proportionally fewer
    /// weights; the *input* is read in full by both partitions, which is
    /// exactly why intra-kernel co-running stresses unified-memory
    /// bandwidth on the integrated device.
    pub fn scaled(&self, part: usize, total: usize) -> Workload {
        if total == 0 {
            return *self;
        }
        let f = |v: u64| ((v as u128 * part as u128) / total as u128) as u64;
        Workload {
            flops: f(self.flops),
            input_bytes: self.input_bytes,
            output_bytes: f(self.output_bytes),
            weight_bytes: f(self.weight_bytes),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Workload {
        Workload {
            flops: 1000,
            input_bytes: 100,
            output_bytes: 60,
            weight_bytes: 40,
        }
    }

    #[test]
    fn totals_and_intensity() {
        let w = sample();
        assert_eq!(w.total_bytes(), 200);
        assert!((w.arithmetic_intensity() - 5.0).abs() < 1e-9);
        assert_eq!(Workload::default().arithmetic_intensity(), 0.0);
    }

    #[test]
    fn merged_adds_fields() {
        let w = sample().merged(&sample());
        assert_eq!(w.flops, 2000);
        assert_eq!(w.total_bytes(), 400);
    }

    #[test]
    fn scaled_keeps_full_input_reads() {
        let w = sample().scaled(1, 4);
        assert_eq!(w.flops, 250);
        assert_eq!(w.output_bytes, 15);
        assert_eq!(w.weight_bytes, 10);
        assert_eq!(w.input_bytes, 100, "both partitions read the whole input");
    }

    #[test]
    fn scaled_handles_zero_total() {
        let w = sample().scaled(1, 0);
        assert_eq!(w, sample());
    }

    #[test]
    fn scaled_partitions_cover_whole_workload() {
        let w = sample();
        let a = w.scaled(1, 4);
        let b = w.scaled(3, 4);
        assert_eq!(a.flops + b.flops, w.flops);
        assert_eq!(a.output_bytes + b.output_bytes, w.output_bytes);
    }
}
