//! # edgenn-nn
//!
//! Neural-network substrate for the EdgeNN reproduction: layer kernels with
//! **partition-aware** forward passes, a DAG graph representation with the
//! chain/branch decomposition the paper's tuner reasons about
//! (Section IV-D), and builders for the six benchmark networks evaluated in
//! the paper — FCNN, LeNet-5, AlexNet, VGG-16, SqueezeNet v1.0 and
//! ResNet-18.
//!
//! Every layer exposes three faces:
//!
//! 1. [`layer::Layer::forward`] — the reference forward pass (real arithmetic).
//! 2. [`layer::Layer::forward_partial`] — computes only an output-channel (or
//!    output-neuron) range. This is the primitive EdgeNN's *intra-kernel
//!    CPU-GPU co-running* is built on: the GPU computes channels
//!    `0..k`, the CPU computes `k..n`, and the runtime concatenates.
//! 3. [`layer::Layer::workload`] — an analytic FLOP/byte model that feeds the
//!    device simulator in `edgenn-sim`.
//!
//! ```
//! use edgenn_nn::models::{build, ModelKind, ModelScale};
//! use edgenn_tensor::Tensor;
//!
//! let model = build(ModelKind::LeNet, ModelScale::Tiny);
//! let input = Tensor::random(model.input_shape().dims(), 1.0, 42);
//! let output = model.forward(&input).unwrap();
//! assert_eq!(output.len(), 10); // class scores
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod error;
pub mod graph;
pub mod layer;
pub mod models;
mod workload;

pub use error::NnError;
pub use workload::Workload;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, NnError>;
