//! Post-training calibration: observes activation ranges over a sample
//! batch and stamps quantization parameters onto int8-capable layers.
//!
//! Dynamic quantization (per-call min/max of the live input) works but
//! pays a full scan of every activation tensor on every inference, and
//! its parameters wander with each input. Calibration runs a handful of
//! representative samples through the f32 reference pass once, records
//! the min/max each int8-capable layer actually sees, and freezes
//! per-layer [`QuantParams`] covering the *union* of the observed
//! ranges. After stamping, the quantized executor skips the scan and
//! every inference uses identical parameters — partition merges stay
//! bitwise reproducible across runs.

use edgenn_tensor::{min_max, QuantParams, Tensor};

use crate::graph::Graph;
use crate::{NnError, Result};

/// Runs `samples` through `graph`'s f32 reference pass, accumulating the
/// observed input range of every int8-capable layer, then stamps the
/// resulting activation parameters ([`crate::layer::Layer::stamp_activation`]).
///
/// Returns the number of layers that accepted a stamp. Layers stamped by
/// an earlier call keep their original parameters (stamps are
/// write-once) and are not counted again. An empty sample batch stamps
/// nothing.
///
/// # Errors
/// Returns [`NnError::InvalidGraph`] when a sample mismatches the
/// graph's input shape; propagates layer execution failures.
pub fn calibrate(graph: &Graph, samples: &[Tensor]) -> Result<usize> {
    let mut ranges: Vec<Option<(f32, f32)>> = vec![None; graph.len()];
    for input in samples {
        if input.shape() != graph.input_shape() {
            return Err(NnError::InvalidGraph {
                reason: format!(
                    "calibration sample shape {} does not match graph input {}",
                    input.shape(),
                    graph.input_shape()
                ),
            });
        }
        let mut outputs: Vec<Option<Tensor>> = vec![None; graph.len()];
        outputs[0] = Some(graph.nodes()[0].layer().forward(&[input])?);
        for id in graph.topo_order().skip(1) {
            let node = graph.node(id)?;
            let inputs: Vec<&Tensor> = node
                .inputs()
                .iter()
                .map(|i| outputs[i.index()].as_ref().expect("topological order"))
                .collect();
            if node.layer().int8_ready() {
                // The quantized kernels quantize their first input; the
                // range of interest is what that input spans across the
                // whole batch.
                let (lo, hi) = min_max(inputs[0].as_slice());
                let entry = ranges[id.index()].get_or_insert((lo, hi));
                entry.0 = entry.0.min(lo);
                entry.1 = entry.1.max(hi);
            }
            outputs[id.index()] = Some(node.layer().forward(&inputs)?);
        }
    }
    let mut stamped = 0;
    for id in graph.topo_order() {
        if let Some((lo, hi)) = ranges[id.index()] {
            if graph
                .node(id)?
                .layer()
                .stamp_activation(QuantParams::from_min_max(lo, hi))
            {
                stamped += 1;
            }
        }
    }
    Ok(stamped)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{build, ModelKind, ModelScale};

    #[test]
    fn stamps_every_conv_and_dense_once() {
        let graph = build(ModelKind::LeNet, ModelScale::Tiny);
        let samples: Vec<Tensor> = (0..3)
            .map(|i| Tensor::random(graph.input_shape().dims(), 1.0, 100 + i))
            .collect();
        let stamped = calibrate(&graph, &samples).unwrap();
        // Tiny LeNet: 2 conv + 2 fc layers accept activation parameters.
        assert_eq!(stamped, 4);
        // Stamps are write-once: a second pass changes nothing.
        assert_eq!(calibrate(&graph, &samples).unwrap(), 0);
    }

    #[test]
    fn empty_batch_stamps_nothing() {
        let graph = build(ModelKind::Fcnn, ModelScale::Tiny);
        assert_eq!(calibrate(&graph, &[]).unwrap(), 0);
    }

    #[test]
    fn rejects_mismatched_samples() {
        let graph = build(ModelKind::Fcnn, ModelScale::Tiny);
        let bad = Tensor::zeros(&[3]);
        assert!(matches!(
            calibrate(&graph, &[bad]),
            Err(NnError::InvalidGraph { .. })
        ));
    }

    #[test]
    fn calibrated_params_cover_the_sample_union() {
        use crate::layer::Dense;
        use edgenn_tensor::Shape;

        // One dense layer; feed two samples with known disjoint ranges and
        // verify the stamped parameters cover both (checked indirectly:
        // after stamping, a partial on either extreme sample still lands
        // within the quantization error bound of the f32 output).
        let mut b = crate::graph::GraphBuilder::new("d", Shape::new(&[8]));
        let x = b.input_id();
        b.add(Dense::new("fc", 8, 4, 3), &[x]).unwrap();
        let graph = b.finish().unwrap();
        let lo_sample = Tensor::random(&[8], 0.5, 1);
        let hi_sample = Tensor::random(&[8], 4.0, 2);
        assert_eq!(
            calibrate(&graph, &[lo_sample, hi_sample.clone()]).unwrap(),
            1
        );
        let layer = graph.node(crate::graph::NodeId(1)).unwrap().layer_arc();
        let full = layer.forward(&[&hi_sample]).unwrap();
        let quant = layer
            .forward_partial_int8(&[&hi_sample], 0..4, false)
            .unwrap();
        // Coarse sanity bound: 8-element dot over |x| <= 4, |w| <~ 0.5.
        assert!(
            quant.approx_eq(&full, 0.2),
            "stamped params must cover the wide sample"
        );
    }
}
