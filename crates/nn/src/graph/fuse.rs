//! ReLU fusion: an optimization pass folding activation nodes into their
//! producers.
//!
//! Every kernel launch on the integrated GPU costs ~10 µs of dispatch
//! (paper Challenge 2 territory: LeNet's latency is dominated by such
//! overheads). Since `relu(concat(a, b)) == concat(relu(a), relu(b))`,
//! a producer's output-range partials stay valid after fusion, so the
//! fused layer remains fully compatible with EdgeNN's intra-kernel
//! co-running. Input-channel splitting stays available too: the fused
//! node hands out *raw* partial sums (ReLU does not distribute over
//! them) and declares `deferred_epilogue_relu`, so the executor clamps
//! exactly once after merging the CPU and GPU halves.
//!
//! Since PR 9 this is a thin wrapper over the graph compiler's fusion
//! pass (`graph::compile`); it remains exported for the ablation bench
//! and for callers that want fusion without the full pass pipeline.

use std::ops::Range;
use std::sync::Arc;

use edgenn_tensor::{QuantParams, Shape, Tensor};

use crate::graph::Graph;
use crate::layer::{Layer, LayerClass};
use crate::{Result, Workload};

/// A producer layer with a ReLU folded into its epilogue.
pub struct FusedRelu {
    name: String,
    inner: Arc<dyn Layer>,
}

impl FusedRelu {
    /// Fuses a ReLU into `inner`.
    pub fn new(inner: Arc<dyn Layer>) -> Self {
        Self {
            name: format!("{}+relu", inner.name()),
            inner,
        }
    }
}

impl Layer for FusedRelu {
    fn name(&self) -> &str {
        &self.name
    }

    fn class(&self) -> LayerClass {
        self.inner.class()
    }

    fn arity(&self) -> usize {
        self.inner.arity()
    }

    fn output_shape(&self, inputs: &[&Shape]) -> Result<Shape> {
        self.inner.output_shape(inputs)
    }

    fn partitionable(&self) -> bool {
        self.inner.partitionable()
    }

    fn partition_units(&self, inputs: &[&Shape]) -> Result<usize> {
        self.inner.partition_units(inputs)
    }

    fn forward_partial(&self, inputs: &[&Tensor], range: Range<usize>) -> Result<Tensor> {
        // The fused producers clamp in their write-back epilogue — the
        // activation never makes a second pass over memory.
        self.inner.forward_partial_fused(inputs, range, true)
    }

    fn forward_partial_fused(
        &self,
        inputs: &[&Tensor],
        range: Range<usize>,
        _relu: bool,
    ) -> Result<Tensor> {
        // relu(relu(x)) == relu(x): the folded activation subsumes any
        // further request.
        self.inner.forward_partial_fused(inputs, range, true)
    }

    fn int8_ready(&self) -> bool {
        self.inner.int8_ready()
    }

    fn forward_partial_int8(
        &self,
        inputs: &[&Tensor],
        range: Range<usize>,
        _relu: bool,
    ) -> Result<Tensor> {
        self.inner.forward_partial_int8(inputs, range, true)
    }

    fn stamp_activation(&self, p: QuantParams) -> bool {
        self.inner.stamp_activation(p)
    }

    fn int8_worthwhile(&self) -> bool {
        self.inner.int8_worthwhile()
    }

    fn prepack(&self, int8: bool) -> u64 {
        self.inner.prepack(int8)
    }

    fn input_split_supported(&self) -> bool {
        self.inner.input_split_supported()
    }

    fn input_channels(&self, inputs: &[&Shape]) -> Result<usize> {
        self.inner.input_channels(inputs)
    }

    fn forward_partial_inputs(&self, inputs: &[&Tensor], range: Range<usize>) -> Result<Tensor> {
        // Raw partial sums: clamping here would be wrong, because
        // relu(a) + relu(b) != relu(a + b). The executor applies the folded
        // ReLU exactly once after merging — see `deferred_epilogue_relu`.
        self.inner.forward_partial_inputs(inputs, range)
    }

    fn deferred_epilogue_relu(&self) -> bool {
        true
    }

    fn workload(&self, inputs: &[&Shape]) -> Result<Workload> {
        let mut w = self.inner.workload(inputs)?;
        // The fused epilogue clamps each output element in registers: one
        // extra op per element, no extra memory traffic.
        w.flops += w.output_bytes / 4;
        Ok(w)
    }

    fn working_set_bytes(&self, inputs: &[&Shape]) -> Result<u64> {
        self.inner.working_set_bytes(inputs)
    }

    fn scratch_elems(&self, inputs: &[&Shape]) -> Result<u64> {
        self.inner.scratch_elems(inputs)
    }

    fn scratch_bytes(&self, inputs: &[&Shape]) -> Result<u64> {
        self.inner.scratch_bytes(inputs)
    }
}

/// Folds every ReLU whose producer has no other consumer into that
/// producer, returning the optimized graph.
///
/// The pass preserves semantics exactly (tests assert bit-level output
/// agreement) and the fork-join structure: a ReLU acting as a fork node
/// (multiple consumers) is left alone.
///
/// # Errors
/// Propagates graph-construction failures.
pub fn fuse_relu(graph: &Graph) -> Result<Graph> {
    crate::graph::compile::pass_fuse_activations(graph).map(|(g, _)| g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{build, ModelKind, ModelScale};

    #[test]
    fn fusion_preserves_outputs_for_all_models() {
        for kind in ModelKind::ALL {
            let graph = build(kind, ModelScale::Tiny);
            let fused = fuse_relu(&graph).unwrap();
            assert!(
                fused.len() < graph.len(),
                "{kind}: fusion should remove nodes"
            );
            let input = Tensor::random(graph.input_shape().dims(), 1.0, 77);
            let a = graph.forward(&input).unwrap();
            let b = fused.forward(&input).unwrap();
            assert!(
                a.approx_eq(&b, 1e-5),
                "{kind}: fusion changed the output by {}",
                a.max_abs_diff(&b).unwrap()
            );
        }
    }

    #[test]
    fn fusion_counts_match_relu_topology() {
        // AlexNet: 7 conv/fc-adjacent ReLUs fuse (conv1..conv5, fc6, fc7);
        // the dropout/norm interleavings don't block them because the ReLU
        // directly follows its conv/fc producer in our builder.
        let graph = build(ModelKind::AlexNet, ModelScale::Paper);
        let fused = fuse_relu(&graph).unwrap();
        let removed = graph.len() - fused.len();
        assert_eq!(removed, 7, "AlexNet has 7 fusible ReLUs");
        assert!(fused
            .nodes()
            .iter()
            .any(|n| n.layer().name() == "conv1+relu"));
    }

    #[test]
    fn fork_join_structure_survives_fusion() {
        // SqueezeNet's squeeze ReLU is the fork node; fusing it into the
        // squeeze conv makes the fused node the fork — the fork-join
        // structure must survive intact.
        let graph = build(ModelKind::SqueezeNet, ModelScale::Paper);
        let fused = fuse_relu(&graph).unwrap();
        assert!(
            fused
                .nodes()
                .iter()
                .any(|n| n.layer().name() == "fire2_squeeze+relu"),
            "the fork ReLU fuses into the squeeze conv"
        );
        assert!(fused
            .nodes()
            .iter()
            .any(|n| n.layer().name() == "fire2_e1+relu"));
        // Structure survives: still 8 fork-join regions.
        assert_eq!(fused.structure().unwrap().parallel_segment_count(), 8);
    }

    #[test]
    fn fused_layers_keep_the_merge_invariant() {
        use crate::layer::Conv2d;
        let conv = Arc::new(Conv2d::new("c", 3, 6, 3, 1, 1, 9));
        let fused = FusedRelu::new(conv);
        let x = Tensor::random(&[3, 6, 6], 1.0, 10);
        let full = fused.forward(&[&x]).unwrap();
        assert!(full.as_slice().iter().all(|&v| v >= 0.0), "relu applied");
        for cut in 1..6 {
            let a = fused.forward_partial(&[&x], 0..cut).unwrap();
            let b = fused.forward_partial(&[&x], cut..6).unwrap();
            let merged = Tensor::concat_axis0(&[&a, &b]).unwrap();
            assert!(merged.approx_eq(&full, 1e-5), "cut {cut}");
        }
    }

    #[test]
    fn fused_int8_path_keeps_the_folded_relu() {
        use crate::layer::Conv2d;
        let conv = Arc::new(Conv2d::new("c", 3, 6, 3, 1, 1, 9));
        let fused = FusedRelu::new(Arc::clone(&conv) as Arc<dyn Layer>);
        assert!(fused.int8_ready());
        let x = Tensor::random(&[3, 6, 6], 1.0, 10);
        // Even when the caller does not request a ReLU, the folded one
        // applies — relu(relu(x)) == relu(x).
        let q = fused.forward_partial_int8(&[&x], 0..6, false).unwrap();
        assert!(q.as_slice().iter().all(|&v| v >= 0.0));
        let f = fused.forward_partial(&[&x], 0..6).unwrap();
        assert!(q.approx_eq(&f, 0.05));
        // Scratch accounting passes through to the producer.
        let shape = Shape::new(&[3, 6, 6]);
        assert_eq!(
            fused.scratch_elems(&[&shape]).unwrap(),
            conv.scratch_elems(&[&shape]).unwrap()
        );
        assert_eq!(
            fused.scratch_bytes(&[&shape]).unwrap(),
            conv.scratch_bytes(&[&shape]).unwrap()
        );
    }

    #[test]
    fn fusion_reduces_flop_double_counting_but_keeps_totals_close() {
        let graph = build(ModelKind::Vgg16, ModelScale::Paper);
        let fused = fuse_relu(&graph).unwrap();
        let ratio = fused.total_flops() as f64 / graph.total_flops() as f64;
        assert!(
            (0.99..=1.01).contains(&ratio),
            "flops preserved, got {ratio}"
        );
    }
}
