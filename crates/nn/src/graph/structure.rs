//! Chain/branch decomposition of the inference DAG.
//!
//! EdgeNN's fine-grained tuner (paper Section IV-D) distinguishes two
//! structural cases:
//!
//! - **Chain** segments ("input → conv → relu → squeeze" in the paper's
//!   Figure 5) must run in sequence; the only co-running opportunity is
//!   *intra-kernel* — splitting each layer's output units between CPU and
//!   GPU at proportion `p_cpu`.
//! - **Parallel** segments (the fire module's `expand1x1` / `expand3x3`
//!   branches, or a ResNet block's residual pair) contain independent
//!   branch chains between a fork and a join; here *inter-kernel*
//!   co-running assigns whole branches to different processors.
//!
//! The decomposition handles the fork-join family that covers all six
//! benchmark networks (branches are simple chains; forks do not nest) and
//! reports [`NnError::InvalidGraph`] otherwise.

use crate::graph::{Graph, NodeId};
use crate::{NnError, Result};

/// One structural segment of the DAG, in execution order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Segment {
    /// A maximal sequence of nodes each feeding exactly the next.
    Chain(Vec<NodeId>),
    /// Independent branch chains between a fork (last node of the previous
    /// chain) and `join` (first node of the following chain). A branch may
    /// be empty: a direct fork→join edge (ResNet identity shortcut).
    Parallel {
        /// Per-branch node lists, each a chain.
        branches: Vec<Vec<NodeId>>,
        /// The node where the branches reconverge.
        join: NodeId,
    },
}

impl Segment {
    /// Nodes contained in this segment (join nodes belong to the segment
    /// that follows, forks to the one before).
    pub fn nodes(&self) -> Vec<NodeId> {
        match self {
            Self::Chain(nodes) => nodes.clone(),
            Self::Parallel { branches, .. } => branches.iter().flatten().copied().collect(),
        }
    }
}

/// The ordered decomposition of a graph.
#[derive(Debug, Clone)]
pub struct Structure {
    segments: Vec<Segment>,
}

impl Structure {
    /// The segments in execution order.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// True when the whole network is a single chain (FCNN, LeNet,
    /// AlexNet, VGG in the paper's benchmark set).
    pub fn is_pure_chain(&self) -> bool {
        self.segments.iter().all(|s| matches!(s, Segment::Chain(_)))
    }

    /// Number of parallel (fork-join) segments (SqueezeNet fire modules,
    /// ResNet blocks).
    pub fn parallel_segment_count(&self) -> usize {
        self.segments
            .iter()
            .filter(|s| matches!(s, Segment::Parallel { .. }))
            .count()
    }
}

/// Decomposes `graph` into chains and fork-join parallel segments.
///
/// # Errors
/// Returns [`NnError::InvalidGraph`] for nested forks, branches that
/// dead-end, or branches that reconverge at different joins.
pub fn decompose(graph: &Graph) -> Result<Structure> {
    if graph.is_empty() {
        // Nothing to schedule: the empty decomposition, not a panic on
        // the missing input node.
        return Ok(Structure {
            segments: Vec::new(),
        });
    }
    let in_degree: Vec<usize> = graph.nodes().iter().map(|n| n.inputs().len()).collect();
    let mut segments = Vec::new();
    let mut chain: Vec<NodeId> = Vec::new();
    let mut cur = graph.input_id();

    loop {
        chain.push(cur);
        let succ = graph.successors(cur);
        match succ.len() {
            0 => break,
            1 => {
                let next = succ[0];
                if in_degree[next.index()] > 1 {
                    return Err(NnError::InvalidGraph {
                        reason: format!(
                            "node {next} joins multiple inputs outside a fork-join region"
                        ),
                    });
                }
                cur = next;
            }
            _ => {
                segments.push(Segment::Chain(std::mem::take(&mut chain)));
                let mut join: Option<NodeId> = None;
                let mut branches = Vec::with_capacity(succ.len());
                for &start in succ {
                    let (nodes, branch_join) = walk_branch(graph, &in_degree, start)?;
                    match join {
                        None => join = Some(branch_join),
                        Some(j) if j == branch_join => {}
                        Some(j) => {
                            return Err(NnError::InvalidGraph {
                                reason: format!(
                                    "branches reconverge at different joins {j} and {branch_join}"
                                ),
                            });
                        }
                    }
                    branches.push(nodes);
                }
                let join = join.expect("fork has at least two successors");
                segments.push(Segment::Parallel { branches, join });
                cur = join;
            }
        }
    }
    segments.push(Segment::Chain(chain));
    // Drop empty chains (possible when a join is immediately followed by a fork).
    let segments: Vec<Segment> = segments
        .into_iter()
        .filter(|s| !matches!(s, Segment::Chain(v) if v.is_empty()))
        .collect();
    Ok(Structure { segments })
}

/// Walks one branch from `start` until a join node (in-degree > 1).
///
/// Returns the branch's interior nodes (empty for a direct fork→join edge)
/// and the join id.
fn walk_branch(graph: &Graph, in_degree: &[usize], start: NodeId) -> Result<(Vec<NodeId>, NodeId)> {
    let mut nodes = Vec::new();
    let mut cur = start;
    loop {
        if in_degree[cur.index()] > 1 {
            return Ok((nodes, cur));
        }
        nodes.push(cur);
        let succ = graph.successors(cur);
        match succ.len() {
            0 => {
                return Err(NnError::InvalidGraph {
                    reason: format!("branch starting at {start} dead-ends at {cur}"),
                })
            }
            1 => cur = succ[0],
            _ => {
                return Err(NnError::InvalidGraph {
                    reason: format!("nested fork at {cur} is not supported"),
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;
    use crate::layer::{AddResidual, Concat, Conv2d, Relu};
    use edgenn_tensor::Shape;

    fn chain_graph() -> Graph {
        let mut b = GraphBuilder::new("chain", Shape::new(&[2, 8, 8]));
        let x = b.input_id();
        let a = b.add(Conv2d::new("c1", 2, 4, 3, 1, 1, 0), &[x]).unwrap();
        let a = b.add(Relu::new("r1"), &[a]).unwrap();
        let _ = b.add(Conv2d::new("c2", 4, 4, 3, 1, 1, 1), &[a]).unwrap();
        b.finish().unwrap()
    }

    fn fire_graph() -> Graph {
        // input -> squeeze -> {e1, e3} -> concat -> relu
        let mut b = GraphBuilder::new("fire", Shape::new(&[4, 8, 8]));
        let x = b.input_id();
        let s = b
            .add(Conv2d::new("squeeze", 4, 2, 1, 1, 0, 0), &[x])
            .unwrap();
        let e1 = b.add(Conv2d::new("e1", 2, 4, 1, 1, 0, 1), &[s]).unwrap();
        let e3 = b.add(Conv2d::new("e3", 2, 4, 3, 1, 1, 2), &[s]).unwrap();
        let c = b.add(Concat::new("cat", 2), &[e1, e3]).unwrap();
        let _ = b.add(Relu::new("r"), &[c]).unwrap();
        b.finish().unwrap()
    }

    fn residual_graph() -> Graph {
        // input -> conv -> {conv-relu chain, identity} -> add -> relu
        let mut b = GraphBuilder::new("res", Shape::new(&[4, 8, 8]));
        let x = b.input_id();
        let stem = b.add(Conv2d::new("stem", 4, 4, 3, 1, 1, 0), &[x]).unwrap();
        let c1 = b.add(Conv2d::new("c1", 4, 4, 3, 1, 1, 1), &[stem]).unwrap();
        let r1 = b.add(Relu::new("r1"), &[c1]).unwrap();
        let add = b.add(AddResidual::new("add"), &[r1, stem]).unwrap();
        let _ = b.add(Relu::new("r2"), &[add]).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn pure_chain_is_one_segment() {
        let s = chain_graph().structure().unwrap();
        assert!(s.is_pure_chain());
        assert_eq!(s.segments().len(), 1);
        assert_eq!(s.segments()[0].nodes().len(), 4);
    }

    #[test]
    fn fire_module_decomposes_into_fork_join() {
        let g = fire_graph();
        let s = g.structure().unwrap();
        assert_eq!(s.parallel_segment_count(), 1);
        assert_eq!(s.segments().len(), 3);
        match &s.segments()[1] {
            Segment::Parallel { branches, join } => {
                assert_eq!(branches.len(), 2);
                assert_eq!(branches[0].len(), 1);
                assert_eq!(branches[1].len(), 1);
                assert_eq!(g.node(*join).unwrap().layer().name(), "cat");
            }
            other => panic!("expected parallel segment, got {other:?}"),
        }
        // Join starts the trailing chain.
        match &s.segments()[2] {
            Segment::Chain(nodes) => {
                assert_eq!(g.node(nodes[0]).unwrap().layer().name(), "cat");
            }
            other => panic!("expected chain, got {other:?}"),
        }
    }

    #[test]
    fn identity_shortcut_becomes_empty_branch() {
        let s = residual_graph().structure().unwrap();
        match &s.segments()[1] {
            Segment::Parallel { branches, .. } => {
                let lens: Vec<usize> = branches.iter().map(Vec::len).collect();
                assert!(
                    lens.contains(&0),
                    "identity branch should be empty: {lens:?}"
                );
                assert!(lens.contains(&2));
            }
            other => panic!("expected parallel segment, got {other:?}"),
        }
    }

    #[test]
    fn segments_cover_every_node_exactly_once() {
        for graph in [chain_graph(), fire_graph(), residual_graph()] {
            let s = graph.structure().unwrap();
            let mut seen = vec![0usize; graph.len()];
            for seg in s.segments() {
                for id in seg.nodes() {
                    seen[id.index()] += 1;
                }
            }
            assert!(
                seen.iter().all(|&c| c == 1),
                "{}: coverage {seen:?}",
                graph.name()
            );
        }
    }

    #[test]
    fn nested_fork_is_rejected() {
        // input -> {a -> {b, c} -> cat2, d} -> cat1 : fork inside a branch.
        let mut bld = GraphBuilder::new("nested", Shape::new(&[2, 4, 4]));
        let x = bld.input_id();
        let a = bld.add(Relu::new("a"), &[x]).unwrap();
        let b = bld.add(Relu::new("b"), &[a]).unwrap();
        let c = bld.add(Relu::new("c"), &[a]).unwrap();
        let cat2 = bld.add(Concat::new("cat2", 2), &[b, c]).unwrap();
        let d = bld.add(Relu::new("d"), &[x]).unwrap();
        let _ = bld.add(Concat::new("cat1", 2), &[cat2, d]).unwrap();
        let g = bld.finish().unwrap();
        assert!(matches!(g.structure(), Err(NnError::InvalidGraph { .. })));
    }
}
