//! The inference DAG: nodes, shape inference, execution, and the
//! chain/branch decomposition used by EdgeNN's tuner.

mod calibrate;
mod compile;
mod fuse;
mod structure;

use std::sync::Arc;

use edgenn_tensor::{Shape, Tensor};

use crate::layer::{InputLayer, Layer};
use crate::{NnError, Result};

pub use calibrate::calibrate;
pub use compile::{compile, CompileOptions, CompileReport, PassDelta, PASS_NAMES};
pub use fuse::{fuse_relu, FusedRelu};
pub use structure::{decompose, Segment, Structure};

/// Identifier of a node within one [`Graph`].
///
/// Ids are dense indices assigned in insertion order, which is always a
/// valid topological order because a node may only reference
/// already-inserted nodes as inputs (the graph is acyclic by construction).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

impl NodeId {
    /// The underlying index.
    #[inline]
    pub fn index(&self) -> usize {
        self.0
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// One node of the DAG: a layer plus its input edges.
pub struct Node {
    layer: Arc<dyn Layer>,
    inputs: Vec<NodeId>,
    output_shape: Shape,
}

impl Node {
    /// Assembles a node directly, with no shape inference or input
    /// validation. Exists for analysis tooling (`edgenn-check`) and tests
    /// that need to represent *malformed* graphs; inference paths should
    /// always go through [`GraphBuilder::add`].
    pub fn new(layer: Arc<dyn Layer>, inputs: Vec<NodeId>, output_shape: Shape) -> Self {
        Self {
            layer,
            inputs,
            output_shape,
        }
    }

    /// The layer kernel.
    pub fn layer(&self) -> &dyn Layer {
        self.layer.as_ref()
    }

    /// Shared handle to the layer kernel.
    pub fn layer_arc(&self) -> Arc<dyn Layer> {
        Arc::clone(&self.layer)
    }

    /// Input edges.
    pub fn inputs(&self) -> &[NodeId] {
        &self.inputs
    }

    /// Inferred output shape.
    pub fn output_shape(&self) -> &Shape {
        &self.output_shape
    }
}

impl std::fmt::Debug for Node {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Node")
            .field("layer", &self.layer.name())
            .field("inputs", &self.inputs)
            .field("output_shape", &self.output_shape)
            .finish()
    }
}

/// An immutable inference DAG with pre-inferred shapes.
///
/// Node 0 is always the input pseudo-node; the unique sink is the output.
#[derive(Debug)]
pub struct Graph {
    name: String,
    nodes: Vec<Node>,
    successors: Vec<Vec<NodeId>>,
    output: NodeId,
}

impl Graph {
    /// Assembles a graph from raw parts without any of the
    /// [`GraphBuilder::finish`] invariant checks (single sink, backward
    /// edges, inferred shapes). Successor lists are still derived, with
    /// out-of-range input ids skipped rather than rejected.
    ///
    /// This is the ingestion point for graphs whose invariants are *not*
    /// trusted — the static verifier in `edgenn-check` diagnoses such
    /// graphs instead of panicking on them. Executing a graph built this
    /// way is undefined unless it passes the checker.
    pub fn from_parts(name: impl Into<String>, nodes: Vec<Node>, output: NodeId) -> Self {
        let mut successors: Vec<Vec<NodeId>> = vec![Vec::new(); nodes.len()];
        for (idx, node) in nodes.iter().enumerate() {
            for input in &node.inputs {
                if input.index() < successors.len() {
                    successors[input.index()].push(NodeId(idx));
                }
            }
        }
        Self {
            name: name.into(),
            nodes,
            successors,
            output,
        }
    }

    /// The model name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All nodes, indexable by [`NodeId::index`].
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Number of nodes (including the input pseudo-node).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True for a graph with no nodes (never produced by the builder).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Accesses one node.
    ///
    /// # Errors
    /// Returns [`NnError::UnknownNode`] for an out-of-range id.
    pub fn node(&self, id: NodeId) -> Result<&Node> {
        self.nodes
            .get(id.index())
            .ok_or(NnError::UnknownNode { id: id.index() })
    }

    /// The input pseudo-node id (always `NodeId(0)`).
    pub fn input_id(&self) -> NodeId {
        NodeId(0)
    }

    /// The unique sink node id.
    pub fn output_id(&self) -> NodeId {
        self.output
    }

    /// Shape the graph consumes.
    pub fn input_shape(&self) -> &Shape {
        self.nodes[0].output_shape()
    }

    /// Shape the graph produces.
    pub fn output_shape(&self) -> &Shape {
        self.nodes[self.output.index()].output_shape()
    }

    /// Successor (consumer) node ids of `id`.
    pub fn successors(&self, id: NodeId) -> &[NodeId] {
        &self.successors[id.index()]
    }

    /// Nodes in topological order (insertion order by construction).
    pub fn topo_order(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).map(NodeId)
    }

    /// Runs the full reference forward pass.
    ///
    /// # Errors
    /// Propagates layer execution failures; returns
    /// [`NnError::InvalidGraph`] if the input tensor mismatches the
    /// declared input shape.
    pub fn forward(&self, input: &Tensor) -> Result<Tensor> {
        if input.shape() != self.input_shape() {
            return Err(NnError::InvalidGraph {
                reason: format!(
                    "input shape {} does not match graph input {}",
                    input.shape(),
                    self.input_shape()
                ),
            });
        }
        let mut outputs: Vec<Option<Tensor>> = vec![None; self.nodes.len()];
        outputs[0] = Some(self.nodes[0].layer.forward(&[input])?);
        for (idx, node) in self.nodes.iter().enumerate().skip(1) {
            let inputs: Vec<&Tensor> = node
                .inputs
                .iter()
                .map(|id| outputs[id.index()].as_ref().expect("topological order"))
                .collect();
            outputs[idx] = Some(node.layer.forward(&inputs)?);
        }
        Ok(outputs[self.output.index()]
            .take()
            .expect("output computed"))
    }

    /// Chain/branch decomposition of the DAG (paper Section IV-D).
    ///
    /// # Errors
    /// Returns [`NnError::InvalidGraph`] for structures outside the
    /// fork-join family the decomposition supports (e.g. nested forks).
    pub fn structure(&self) -> Result<Structure> {
        decompose(self)
    }

    /// Renders a per-layer summary table (name, class, output shape,
    /// MFLOPs, parameter count) — the `model.summary()` convention.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{} — {} layers, {:.2} GFLOPs, {:.2} M params
",
            self.name,
            self.len() - 1,
            self.total_flops() as f64 / 1e9,
            self.param_bytes() as f64 / 4e6,
        ));
        out.push_str(&format!(
            "{:<24} {:<8} {:<18} {:>12} {:>12}
",
            "layer", "class", "output", "MFLOPs", "params"
        ));
        for id in self.topo_order().skip(1) {
            let node = &self.nodes[id.index()];
            let shapes: Vec<&Shape> = node
                .inputs
                .iter()
                .map(|i| self.nodes[i.index()].output_shape())
                .collect();
            let workload = node.layer.workload(&shapes).unwrap_or_default();
            out.push_str(&format!(
                "{:<24} {:<8} {:<18} {:>12.3} {:>12}
",
                node.layer.name(),
                node.layer.class().tag(),
                node.output_shape.to_string(),
                workload.flops as f64 / 1e6,
                workload.weight_bytes / 4,
            ));
        }
        out
    }

    /// Total parameter bytes across all nodes.
    pub fn param_bytes(&self) -> u64 {
        self.topo_order()
            .map(|id| {
                let node = &self.nodes[id.index()];
                let shapes: Vec<&Shape> = node
                    .inputs
                    .iter()
                    .map(|i| self.nodes[i.index()].output_shape())
                    .collect();
                node.layer.workload(&shapes).map_or(0, |w| w.weight_bytes)
            })
            .sum()
    }

    /// Total FLOPs of one forward pass.
    pub fn total_flops(&self) -> u64 {
        self.topo_order()
            .map(|id| {
                let node = &self.nodes[id.index()];
                let shapes: Vec<&Shape> = node
                    .inputs
                    .iter()
                    .map(|i| self.nodes[i.index()].output_shape())
                    .collect();
                node.layer.workload(&shapes).map_or(0, |w| w.flops)
            })
            .sum()
    }
}

/// Incremental DAG builder.
///
/// ```
/// use edgenn_nn::graph::GraphBuilder;
/// use edgenn_nn::layer::{Dense, Relu};
/// use edgenn_tensor::Shape;
///
/// let mut b = GraphBuilder::new("mlp", Shape::new(&[4]));
/// let x = b.input_id();
/// let h = b.add(Dense::new("fc1", 4, 8, 0), &[x]).unwrap();
/// let h = b.add(Relu::new("relu1"), &[h]).unwrap();
/// let _ = b.add(Dense::new("fc2", 8, 2, 1), &[h]).unwrap();
/// let graph = b.finish().unwrap();
/// assert_eq!(graph.output_shape().dims(), &[2]);
/// ```
pub struct GraphBuilder {
    name: String,
    nodes: Vec<Node>,
}

impl GraphBuilder {
    /// Starts a graph consuming tensors of `input_shape`.
    pub fn new(name: impl Into<String>, input_shape: Shape) -> Self {
        let input = InputLayer::new(input_shape.clone());
        Self {
            name: name.into(),
            nodes: vec![Node {
                layer: Arc::new(input),
                inputs: vec![],
                output_shape: input_shape,
            }],
        }
    }

    /// Id of the input pseudo-node.
    pub fn input_id(&self) -> NodeId {
        NodeId(0)
    }

    /// Appends a layer fed by `inputs`, returning its id.
    ///
    /// # Errors
    /// Returns [`NnError::UnknownNode`] for dangling input ids and
    /// propagates shape-inference failures from the layer.
    pub fn add(&mut self, layer: impl Layer + 'static, inputs: &[NodeId]) -> Result<NodeId> {
        self.add_arc(Arc::new(layer), inputs)
    }

    /// Appends a shared layer handle fed by `inputs`, returning its id.
    ///
    /// # Errors
    /// Same contract as [`GraphBuilder::add`].
    pub fn add_arc(&mut self, layer: Arc<dyn Layer>, inputs: &[NodeId]) -> Result<NodeId> {
        for id in inputs {
            if id.index() >= self.nodes.len() {
                return Err(NnError::UnknownNode { id: id.index() });
            }
        }
        let shapes: Vec<&Shape> = inputs
            .iter()
            .map(|id| self.nodes[id.index()].output_shape())
            .collect();
        let output_shape = layer.output_shape(&shapes)?;
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node {
            layer,
            inputs: inputs.to_vec(),
            output_shape,
        });
        Ok(id)
    }

    /// Finalizes the graph.
    ///
    /// # Errors
    /// Returns [`NnError::InvalidGraph`] when the graph has no layer nodes
    /// or more than one sink.
    pub fn finish(self) -> Result<Graph> {
        if self.nodes.len() < 2 {
            return Err(NnError::InvalidGraph {
                reason: "graph has no layers".to_string(),
            });
        }
        let mut successors: Vec<Vec<NodeId>> = vec![Vec::new(); self.nodes.len()];
        for (idx, node) in self.nodes.iter().enumerate() {
            for input in &node.inputs {
                successors[input.index()].push(NodeId(idx));
            }
        }
        let sinks: Vec<NodeId> = successors
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_empty())
            .map(|(i, _)| NodeId(i))
            .collect();
        if sinks.len() != 1 {
            return Err(NnError::InvalidGraph {
                reason: format!("expected exactly one sink, found {}", sinks.len()),
            });
        }
        Ok(Graph {
            name: self.name,
            nodes: self.nodes,
            successors,
            output: sinks[0],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{Concat, Dense, Relu};

    fn mlp() -> Graph {
        let mut b = GraphBuilder::new("mlp", Shape::new(&[4]));
        let x = b.input_id();
        let h = b.add(Dense::new("fc1", 4, 8, 0), &[x]).unwrap();
        let h = b.add(Relu::new("relu"), &[h]).unwrap();
        let _ = b.add(Dense::new("fc2", 8, 2, 1), &[h]).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn builder_assigns_dense_ids_and_shapes() {
        let g = mlp();
        assert_eq!(g.len(), 4);
        assert_eq!(g.input_shape().dims(), &[4]);
        assert_eq!(g.output_shape().dims(), &[2]);
        assert_eq!(g.node(NodeId(1)).unwrap().layer().name(), "fc1");
        assert!(g.node(NodeId(9)).is_err());
    }

    #[test]
    fn forward_runs_end_to_end() {
        let g = mlp();
        let x = Tensor::random(&[4], 1.0, 3);
        let y = g.forward(&x).unwrap();
        assert_eq!(y.dims(), &[2]);
        // deterministic weights: repeated runs agree
        assert_eq!(g.forward(&x).unwrap(), y);
    }

    #[test]
    fn forward_rejects_wrong_input_shape() {
        let g = mlp();
        assert!(matches!(
            g.forward(&Tensor::zeros(&[5])),
            Err(NnError::InvalidGraph { .. })
        ));
    }

    #[test]
    fn builder_rejects_dangling_inputs() {
        let mut b = GraphBuilder::new("g", Shape::new(&[4]));
        assert!(matches!(
            b.add(Relu::new("r"), &[NodeId(7)]),
            Err(NnError::UnknownNode { id: 7 })
        ));
    }

    #[test]
    fn finish_rejects_empty_and_multi_sink_graphs() {
        let b = GraphBuilder::new("g", Shape::new(&[4]));
        assert!(matches!(b.finish(), Err(NnError::InvalidGraph { .. })));

        let mut b = GraphBuilder::new("g", Shape::new(&[4]));
        let x = b.input_id();
        b.add(Relu::new("a"), &[x]).unwrap();
        b.add(Relu::new("b"), &[x]).unwrap();
        assert!(matches!(b.finish(), Err(NnError::InvalidGraph { .. })));
    }

    #[test]
    fn successors_are_reverse_edges() {
        let mut b = GraphBuilder::new("g", Shape::new(&[2, 2, 2]));
        let x = b.input_id();
        let a = b.add(Relu::new("a"), &[x]).unwrap();
        let c = b.add(Relu::new("c"), &[x]).unwrap();
        let _ = b.add(Concat::new("cat", 2), &[a, c]).unwrap();
        let g = b.finish().unwrap();
        assert_eq!(g.successors(x), &[a, c]);
        assert_eq!(g.successors(a), &[NodeId(3)]);
        assert!(g.successors(NodeId(3)).is_empty());
    }

    #[test]
    fn summary_lists_every_layer() {
        let g = mlp();
        let summary = g.summary();
        assert!(summary.contains("fc1"));
        assert!(summary.contains("relu"));
        assert!(summary.contains("fc2"));
        assert!(summary.contains("GFLOPs"));
        // One header + meta line plus one line per layer (input excluded).
        assert_eq!(summary.lines().count(), 2 + g.len() - 1);
    }

    #[test]
    fn flops_and_params_are_positive_for_mlp() {
        let g = mlp();
        assert!(g.total_flops() > 0);
        assert!(g.param_bytes() > 0);
    }
}
