//! The graph compiler: a multi-pass optimizer that runs between model
//! construction and plan generation.
//!
//! The committed benches showed F32 hybrid trailing the single-processor
//! reference on every model even after the microkernel work: per-node
//! dispatch, full-tensor activation sweeps, and first-call weight packing
//! ate the kernel wins. The fix is the classic one — compile the graph
//! before tuning it ("A Unified Optimization Approach for CNN Model
//! Inference on Integrated GPUs" reports operator fusion + layout
//! selection as the dominant wins on exactly this hardware class):
//!
//! 1. **identity-elim** — inference-time identities (dropout, full-range
//!    slices, ReLU after an already-clamped output) vanish.
//! 2. **fuse-activations** — a ReLU whose producer has no other consumer
//!    folds into that producer's write-back epilogue ([`FusedRelu`]),
//!    removing a full pass over memory and a dispatch per activation.
//! 3. **fold-constants** — nodes whose inputs are all compile-time
//!    constants are evaluated once, here, into [`Constant`] nodes.
//! 4. **simplify-slices** — a concat of in-order slices covering one
//!    producer cancels to the producer itself.
//! 5. **dce** — nodes no longer reachable from the sink are dropped.
//!
//! The pipeline iterates to a fixpoint (each pass can expose work for the
//! others), then a **prepack** step materializes every surviving layer's
//! weights into the GEMM/qgemm panel layouts so steady-state inference
//! does zero packing work.
//!
//! Every rewrite is *exact* for f32: fused epilogues clamp in registers
//! with the same operation order as the separate activation pass, so the
//! compiled graph's forward output is bitwise identical to the original
//! (the proptests assert `==`, not approx). Rewrite legality is
//! re-verified downstream by `edgenn-check` tier A plus the EC06x codes.

use std::ops::Range;
use std::sync::Arc;

use edgenn_tensor::Shape;

use crate::graph::{fuse::FusedRelu, Graph, Node, NodeId};
use crate::layer::{Constant, Layer};
use crate::{NnError, Result};

/// Which passes run, and which precisions get weights prepacked.
#[derive(Debug, Clone)]
pub struct CompileOptions {
    /// Remove inference-time identity nodes.
    pub identity_elim: bool,
    /// Fold sole-consumer ReLUs into their producers' epilogues.
    pub fuse: bool,
    /// Evaluate all-constant subgraphs at compile time.
    pub fold_constants: bool,
    /// Cancel slice/concat round-trips.
    pub simplify_slices: bool,
    /// Drop nodes unreachable from the sink.
    pub dce: bool,
    /// Prepack f32 weights into GEMM panel layout.
    pub prepack_f32: bool,
    /// Quantize + prepack int8 weights into qgemm panel layout.
    pub prepack_int8: bool,
    /// Fixpoint guard: maximum pipeline iterations.
    pub max_iterations: usize,
}

impl Default for CompileOptions {
    fn default() -> Self {
        Self {
            identity_elim: true,
            fuse: true,
            fold_constants: true,
            simplify_slices: true,
            dce: true,
            prepack_f32: true,
            prepack_int8: false,
            max_iterations: 10,
        }
    }
}

impl CompileOptions {
    /// Options for an int8 deployment: everything on, both packings.
    #[must_use]
    pub fn int8() -> Self {
        Self {
            prepack_int8: true,
            ..Self::default()
        }
    }

    /// All rewrite passes off; only prepacking runs.
    #[must_use]
    pub fn prepack_only() -> Self {
        Self {
            identity_elim: false,
            fuse: false,
            fold_constants: false,
            simplify_slices: false,
            dce: false,
            ..Self::default()
        }
    }
}

/// Node/edge delta recorded for one pass execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PassDelta {
    /// Stable pass name (`identity-elim`, `fuse-activations`, ...).
    pub pass: &'static str,
    /// Fixpoint iteration this execution belongs to (1-based).
    pub iteration: usize,
    /// Node count before the pass ran.
    pub nodes_before: usize,
    /// Node count after.
    pub nodes_after: usize,
    /// Edge count before.
    pub edges_before: usize,
    /// Edge count after.
    pub edges_after: usize,
    /// Individual rewrites applied (0 = the pass was a no-op).
    pub rewrites: usize,
}

/// What [`compile`] did to a graph.
#[derive(Debug, Clone, Default)]
pub struct CompileReport {
    /// Model name.
    pub model: String,
    /// Node count before compilation (including the input pseudo-node).
    pub nodes_pre: usize,
    /// Node count after.
    pub nodes_post: usize,
    /// Edge count before.
    pub edges_pre: usize,
    /// Edge count after.
    pub edges_post: usize,
    /// Every pass execution, in order.
    pub passes: Vec<PassDelta>,
    /// Fixpoint iterations run.
    pub iterations: usize,
    /// Weight bytes packed at compile time (f32 + int8).
    pub prepacked_bytes: u64,
    /// Nodes whose weights were prepacked.
    pub prepacked_nodes: usize,
}

impl CompileReport {
    /// Nodes removed across the whole pipeline.
    #[must_use]
    pub fn nodes_eliminated(&self) -> usize {
        self.nodes_pre.saturating_sub(self.nodes_post)
    }

    /// Pass executions that changed the graph.
    #[must_use]
    pub fn passes_applied(&self) -> usize {
        self.passes.iter().filter(|p| p.rewrites > 0).count()
    }
}

/// Per-node rewrite decision, in old-graph id space.
enum Decision {
    /// Copy the node (inputs remapped, shape re-inferred).
    Keep,
    /// The node vanishes; consumers are rewired to `target` (an old id
    /// that must resolve earlier in topological order).
    Redirect(NodeId),
    /// Swap the layer; `inputs` overrides the edge list when `Some`.
    Replace {
        layer: Arc<dyn Layer>,
        inputs: Option<Vec<NodeId>>,
    },
    /// Remove the node and its edges entirely (dce only — the caller
    /// guarantees no live consumer references it).
    Drop,
}

fn edge_count(graph: &Graph) -> usize {
    graph.nodes().iter().map(|n| n.inputs().len()).sum()
}

/// Applies a decision vector, producing the rewritten graph.
///
/// Shapes are re-inferred from the (remapped) input shapes rather than
/// copied, so an illegal rewrite fails here instead of at execution time.
/// The result is assembled with [`Graph::from_parts`]: passes are allowed
/// to orphan nodes (constant folding strands the folded subgraph) and the
/// dce pass sweeps them before the compiled graph leaves [`compile`].
fn apply(graph: &Graph, decisions: &[Decision]) -> Result<Graph> {
    debug_assert_eq!(decisions.len(), graph.len());
    let mut remap: Vec<Option<NodeId>> = vec![None; graph.len()];
    let mut nodes: Vec<Node> = Vec::with_capacity(graph.len());
    for id in graph.topo_order() {
        let node = graph.node(id)?;
        if id == graph.input_id() {
            remap[id.index()] = Some(NodeId(0));
            nodes.push(Node::new(
                node.layer_arc(),
                vec![],
                node.output_shape().clone(),
            ));
            continue;
        }
        let (layer, old_inputs): (Arc<dyn Layer>, &[NodeId]) = match &decisions[id.index()] {
            Decision::Drop => continue,
            Decision::Redirect(target) => {
                remap[id.index()] = remap[target.index()];
                if remap[id.index()].is_none() {
                    return Err(NnError::InvalidGraph {
                        reason: format!(
                            "compiler redirected node {} to unresolved node {}",
                            id.index(),
                            target.index()
                        ),
                    });
                }
                continue;
            }
            Decision::Keep => (node.layer_arc(), node.inputs()),
            Decision::Replace { layer, inputs } => (
                Arc::clone(layer),
                inputs.as_deref().unwrap_or(node.inputs()),
            ),
        };
        let mut inputs = Vec::with_capacity(old_inputs.len());
        for old in old_inputs {
            inputs.push(remap[old.index()].ok_or_else(|| NnError::InvalidGraph {
                reason: format!(
                    "compiler rewired node {} to a dropped input {}",
                    id.index(),
                    old.index()
                ),
            })?);
        }
        let shapes: Vec<&Shape> = inputs
            .iter()
            .map(|i| nodes[i.index()].output_shape())
            .collect();
        let output_shape = layer.output_shape(&shapes)?;
        remap[id.index()] = Some(NodeId(nodes.len()));
        nodes.push(Node::new(layer, inputs, output_shape));
    }
    let output = remap[graph.output_id().index()].ok_or_else(|| NnError::InvalidGraph {
        reason: "compiler removed the output node".to_string(),
    })?;
    Ok(Graph::from_parts(graph.name(), nodes, output))
}

/// Removes inference-time identities: [`Layer::is_identity`] nodes
/// (dropout), full-range slices, and a ReLU whose producer's output is
/// already clamped (a preceding ReLU or a fused `+relu` epilogue).
fn pass_identity_elim(graph: &Graph) -> Result<(Graph, usize)> {
    let mut decisions: Vec<Decision> = graph.topo_order().map(|_| Decision::Keep).collect();
    let mut rewrites = 0;
    for id in graph.topo_order().skip(1) {
        let node = graph.node(id)?;
        let layer = node.layer();
        let redundant_relu = layer.is_relu() && {
            let producer = graph.node(node.inputs()[0])?.layer();
            producer.is_relu() || producer.deferred_epilogue_relu()
        };
        let full_slice = layer.slice_range().is_some_and(|r| {
            r.start == 0
                && graph
                    .node(node.inputs()[0])
                    .is_ok_and(|p| p.output_shape().dim(0).is_ok_and(|d| d == r.end))
        });
        if (layer.is_identity() || redundant_relu || full_slice) && node.inputs().len() == 1 {
            // Identities are arity-1 and shape-preserving, so consumers
            // can take the producer's tensor directly. The one forbidden
            // elision: an identity that is the sink AND fed by the input
            // pseudo-node — removing it would leave a layer-less graph.
            let producer = node.inputs()[0];
            if !(id == graph.output_id() && producer == graph.input_id()) {
                decisions[id.index()] = Decision::Redirect(producer);
                rewrites += 1;
            }
        }
    }
    Ok((apply(graph, &decisions)?, rewrites))
}

/// Folds a ReLU into its sole-consumer producer's epilogue.
///
/// This is the generalized successor of the ad-hoc `fuse_relu` pass: it
/// handles any producer with a fused epilogue — conv and dense clamp in
/// the GEMM write-back, residual adds clamp in the same elementwise loop,
/// and everything else falls back to an in-place clamp on the partial
/// (still one fewer node, dispatch, and intermediate).
pub(crate) fn pass_fuse_activations(graph: &Graph) -> Result<(Graph, usize)> {
    let mut decisions: Vec<Decision> = graph.topo_order().map(|_| Decision::Keep).collect();
    let mut fused_into: Vec<Option<NodeId>> = vec![None; graph.len()];
    let mut rewrites = 0;
    for id in graph.topo_order().skip(1) {
        let node = graph.node(id)?;
        if !node.layer().is_relu() {
            continue;
        }
        let producer = node.inputs()[0];
        if producer == graph.input_id() {
            continue;
        }
        let player = graph.node(producer)?.layer();
        // The producer must feed only this ReLU, must not itself be (or
        // already carry) a ReLU, and must not be a constant — folding an
        // activation into a constant is the constant-folder's job.
        if graph.successors(producer).len() == 1
            && !player.is_relu()
            && !player.deferred_epilogue_relu()
            && player.constant_value().is_none()
            && fused_into[producer.index()].is_none()
        {
            fused_into[id.index()] = Some(producer);
            decisions[id.index()] = Decision::Redirect(producer);
            decisions[producer.index()] = Decision::Replace {
                layer: Arc::new(FusedRelu::new(graph.node(producer)?.layer_arc())),
                inputs: None,
            };
            rewrites += 1;
        }
    }
    Ok((apply(graph, &decisions)?, rewrites))
}

/// Evaluates every node whose inputs are all compile-time constants,
/// replacing it with a [`Constant`] holding the result.
fn pass_fold_constants(graph: &Graph) -> Result<(Graph, usize)> {
    let mut decisions: Vec<Decision> = graph.topo_order().map(|_| Decision::Keep).collect();
    // Constness propagates in topo order: a node folded earlier in this
    // sweep counts as constant for its consumers.
    let mut folded: Vec<bool> = graph
        .nodes()
        .iter()
        .map(|n| n.layer().constant_value().is_some())
        .collect();
    let mut values: Vec<Option<edgenn_tensor::Tensor>> = graph
        .nodes()
        .iter()
        .map(|n| n.layer().constant_value().cloned())
        .collect();
    let mut rewrites = 0;
    for id in graph.topo_order().skip(1) {
        let node = graph.node(id)?;
        if folded[id.index()] || node.inputs().is_empty() {
            continue;
        }
        if !node.inputs().iter().all(|i| folded[i.index()]) {
            continue;
        }
        let inputs: Vec<&edgenn_tensor::Tensor> = node
            .inputs()
            .iter()
            .map(|i| values[i.index()].as_ref().expect("folded input has value"))
            .collect();
        let result = node.layer().forward(&inputs)?;
        decisions[id.index()] = Decision::Replace {
            layer: Arc::new(Constant::new(
                format!("{}#folded", node.layer().name()),
                result.clone(),
            )),
            inputs: Some(vec![]),
        };
        folded[id.index()] = true;
        values[id.index()] = Some(result);
        rewrites += 1;
    }
    Ok((apply(graph, &decisions)?, rewrites))
}

/// Cancels a concat of in-order slices that exactly covers one producer:
/// `concat(x[0..a], x[a..b], ..., x[c..n]) == x`.
fn pass_simplify_slices(graph: &Graph) -> Result<(Graph, usize)> {
    let mut decisions: Vec<Decision> = graph.topo_order().map(|_| Decision::Keep).collect();
    let mut rewrites = 0;
    'nodes: for id in graph.topo_order().skip(1) {
        let node = graph.node(id)?;
        // Only a *pure* concat is the identity over a covering split —
        // a fused `concat+relu` transforms its inputs and must survive.
        if node.inputs().len() < 2 || !node.layer().is_concat() {
            continue;
        }
        // All inputs must be slices of one common producer...
        let mut producer: Option<NodeId> = None;
        let mut ranges: Vec<Range<usize>> = Vec::with_capacity(node.inputs().len());
        for &slice_id in node.inputs() {
            let slice = graph.node(slice_id)?;
            let Some(range) = slice.layer().slice_range() else {
                continue 'nodes;
            };
            match producer {
                None => producer = Some(slice.inputs()[0]),
                Some(p) if p == slice.inputs()[0] => {}
                Some(_) => continue 'nodes,
            }
            ranges.push(range);
        }
        let producer = producer.expect("arity >= 2 checked");
        // ...and cover it, in order, without gaps or overlap.
        let Ok(units) = graph.node(producer)?.output_shape().dim(0) else {
            continue;
        };
        let mut cursor = 0;
        for r in &ranges {
            if r.start != cursor {
                continue 'nodes;
            }
            cursor = r.end;
        }
        if cursor != units {
            continue;
        }
        // The concat result must really be the producer tensor: the
        // concat's output shape equals the producer's.
        if node.output_shape() != graph.node(producer)?.output_shape() {
            continue;
        }
        decisions[id.index()] = Decision::Redirect(producer);
        rewrites += 1;
    }
    Ok((apply(graph, &decisions)?, rewrites))
}

/// Drops every node unreachable by walking the sink's ancestry.
fn pass_dce(graph: &Graph) -> Result<(Graph, usize)> {
    let mut live = vec![false; graph.len()];
    let mut stack = vec![graph.output_id()];
    while let Some(id) = stack.pop() {
        if std::mem::replace(&mut live[id.index()], true) {
            continue;
        }
        stack.extend_from_slice(graph.node(id)?.inputs());
    }
    live[graph.input_id().index()] = true;
    let decisions: Vec<Decision> = live
        .iter()
        .map(|&l| if l { Decision::Keep } else { Decision::Drop })
        .collect();
    let rewrites = live.iter().filter(|&&l| !l).count();
    Ok((apply(graph, &decisions)?, rewrites))
}

type Pass = fn(&Graph) -> Result<(Graph, usize)>;

/// Rewrite pass names in pipeline order. Mirrored by the pass table in
/// `docs/compiler.md` (a doc-sync test keeps the two aligned) and by the
/// `edgenn_compiler_*` observability counters' `pass` dimension.
pub const PASS_NAMES: [&str; 5] = [
    "identity-elim",
    "simplify-slices",
    "fuse-activations",
    "fold-constants",
    "dce",
];

/// Compiles `graph`: runs the rewrite pipeline to a fixpoint, then
/// prepacks surviving weights, returning the optimized graph and a
/// [`CompileReport`] of everything that happened.
///
/// # Errors
/// Propagates shape-inference failures from illegal rewrites (which
/// indicate a compiler bug — the checker's EC06x tier re-verifies the
/// output independently) and graph access errors.
pub fn compile(graph: &Graph, options: &CompileOptions) -> Result<(Graph, CompileReport)> {
    let mut report = CompileReport {
        model: graph.name().to_string(),
        nodes_pre: graph.len(),
        edges_pre: edge_count(graph),
        ..CompileReport::default()
    };
    // simplify-slices runs before fusion so a cancellable concat is gone
    // before an activation could fuse into it and pin it in place.
    let passes: Vec<(&'static str, Pass, bool)> = vec![
        (
            PASS_NAMES[0],
            pass_identity_elim as Pass,
            options.identity_elim,
        ),
        (
            PASS_NAMES[1],
            pass_simplify_slices as Pass,
            options.simplify_slices,
        ),
        (PASS_NAMES[2], pass_fuse_activations as Pass, options.fuse),
        (
            PASS_NAMES[3],
            pass_fold_constants as Pass,
            options.fold_constants,
        ),
        (PASS_NAMES[4], pass_dce as Pass, options.dce),
    ];

    let mut current = apply(
        graph,
        &graph
            .topo_order()
            .map(|_| Decision::Keep)
            .collect::<Vec<_>>(),
    )?;
    for iteration in 1..=options.max_iterations.max(1) {
        report.iterations = iteration;
        let mut changed = false;
        for (name, pass, enabled) in &passes {
            if !enabled {
                continue;
            }
            let nodes_before = current.len();
            let edges_before = edge_count(&current);
            let (next, rewrites) = pass(&current)?;
            report.passes.push(PassDelta {
                pass: name,
                iteration,
                nodes_before,
                nodes_after: next.len(),
                edges_before,
                edges_after: edge_count(&next),
                rewrites,
            });
            changed |= rewrites > 0;
            current = next;
        }
        if !changed {
            break;
        }
    }

    if options.prepack_f32 || options.prepack_int8 {
        for node in current.nodes() {
            let mut bytes = 0;
            if options.prepack_f32 {
                bytes += node.layer().prepack(false);
            }
            if options.prepack_int8 {
                bytes += node.layer().prepack(true);
            }
            if bytes > 0 {
                report.prepacked_nodes += 1;
                report.prepacked_bytes += bytes;
            }
        }
    }

    report.nodes_post = current.len();
    report.edges_post = edge_count(&current);
    Ok((current, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;
    use crate::layer::{AddResidual, Concat, Conv2d, Dense, Dropout, Relu, Slice};
    use crate::models::{build, ModelKind, ModelScale};
    use edgenn_tensor::Tensor;

    fn compiled(graph: &Graph) -> (Graph, CompileReport) {
        compile(graph, &CompileOptions::default()).unwrap()
    }

    #[test]
    fn docs_list_every_pass_in_pipeline_order() {
        let docs = include_str!("../../../../docs/compiler.md");
        let rows: Vec<usize> = PASS_NAMES
            .iter()
            .map(|name| {
                docs.lines()
                    .position(|l| l.starts_with(&format!("| {name} |")))
                    .unwrap_or_else(|| panic!("pass {name} missing from docs/compiler.md"))
            })
            .collect();
        assert!(
            rows.windows(2).all(|w| w[0] < w[1]),
            "docs/compiler.md pass table is out of pipeline order"
        );
    }

    #[test]
    fn compiled_models_are_bitwise_identical_and_smaller() {
        for kind in ModelKind::ALL {
            let graph = build(kind, ModelScale::Tiny);
            let (opt, report) = compiled(&graph);
            assert!(
                opt.len() < graph.len(),
                "{kind}: compile should remove nodes ({} -> {})",
                graph.len(),
                opt.len()
            );
            assert_eq!(report.nodes_pre, graph.len());
            assert_eq!(report.nodes_post, opt.len());
            assert_eq!(opt.output_shape(), graph.output_shape());
            let input = Tensor::random(graph.input_shape().dims(), 1.0, 99);
            let a = graph.forward(&input).unwrap();
            let b = opt.forward(&input).unwrap();
            assert_eq!(
                a.as_slice(),
                b.as_slice(),
                "{kind}: compiled forward must be bitwise identical"
            );
        }
    }

    #[test]
    fn dropout_and_redundant_relu_are_eliminated() {
        let mut b = GraphBuilder::new("ident", Shape::new(&[4]));
        let x = b.input_id();
        let d = b.add(Dense::new("fc", 4, 8, 0), &[x]).unwrap();
        let r1 = b.add(Relu::new("r1"), &[d]).unwrap();
        let r2 = b.add(Relu::new("r2"), &[r1]).unwrap();
        let dr = b.add(Dropout::new("drop"), &[r2]).unwrap();
        let _ = b.add(Dense::new("out", 8, 2, 1), &[dr]).unwrap();
        let graph = b.finish().unwrap();
        let (opt, report) = compiled(&graph);
        // fc+relu, out: 2 layer nodes + input.
        assert_eq!(opt.len(), 3);
        assert!(report.passes_applied() >= 2);
        assert!(opt.nodes().iter().any(|n| n.layer().name() == "fc+relu"));
        let input = Tensor::random(&[4], 1.0, 3);
        assert_eq!(
            graph.forward(&input).unwrap().as_slice(),
            opt.forward(&input).unwrap().as_slice()
        );
    }

    #[test]
    fn residual_relu_fuses_into_the_add() {
        let mut b = GraphBuilder::new("res", Shape::new(&[3, 4, 4]));
        let x = b.input_id();
        let c1 = b.add(Conv2d::new("c1", 3, 3, 3, 1, 1, 0), &[x]).unwrap();
        let add = b.add(AddResidual::new("add"), &[c1, x]).unwrap();
        let _ = b.add(Relu::new("r"), &[add]).unwrap();
        let graph = b.finish().unwrap();
        let (opt, _) = compiled(&graph);
        assert!(
            opt.nodes().iter().any(|n| n.layer().name() == "add+relu"),
            "post-residual relu fuses into the add"
        );
        let input = Tensor::random(&[3, 4, 4], 1.0, 5);
        assert_eq!(
            graph.forward(&input).unwrap().as_slice(),
            opt.forward(&input).unwrap().as_slice()
        );
    }

    #[test]
    fn constant_subgraphs_fold_and_dce_sweeps_them() {
        use crate::layer::Constant;
        let mut b = GraphBuilder::new("fold", Shape::new(&[4]));
        let x = b.input_id();
        let k1 = b
            .add(Constant::new("k1", Tensor::filled(&[4], 1.5)), &[])
            .unwrap();
        let k2 = b
            .add(Constant::new("k2", Tensor::filled(&[4], -1.0)), &[])
            .unwrap();
        let ksum = b.add(AddResidual::new("ksum"), &[k1, k2]).unwrap();
        let krelu = b.add(Relu::new("krelu"), &[ksum]).unwrap();
        let _ = b.add(AddResidual::new("mix"), &[x, krelu]).unwrap();
        let graph = b.finish().unwrap();
        let (opt, report) = compiled(&graph);
        // input, folded constant, mix.
        assert_eq!(opt.len(), 3, "constant subgraph folds to one node");
        assert!(report.nodes_eliminated() >= 2);
        let folded = opt
            .nodes()
            .iter()
            .find_map(|n| n.layer().constant_value())
            .expect("a folded constant survives");
        assert_eq!(folded.as_slice(), &[0.5; 4]);
        let input = Tensor::random(&[4], 1.0, 8);
        assert_eq!(
            graph.forward(&input).unwrap().as_slice(),
            opt.forward(&input).unwrap().as_slice()
        );
    }

    #[test]
    fn covering_slice_concat_cancels() {
        let mut b = GraphBuilder::new("sc", Shape::new(&[6, 2, 2]));
        let x = b.input_id();
        let c = b.add(Conv2d::new("c", 6, 6, 3, 1, 1, 0), &[x]).unwrap();
        let lo = b.add(Slice::new("lo", 0, 2), &[c]).unwrap();
        let mid = b.add(Slice::new("mid", 2, 5), &[c]).unwrap();
        let hi = b.add(Slice::new("hi", 5, 6), &[c]).unwrap();
        let cat = b.add(Concat::new("cat", 3), &[lo, mid, hi]).unwrap();
        let _ = b.add(Relu::new("r"), &[cat]).unwrap();
        let graph = b.finish().unwrap();
        let (opt, _) = compiled(&graph);
        // input + c+relu: the slices, concat, and relu all vanish.
        assert_eq!(opt.len(), 2);
        assert!(opt.nodes().iter().any(|n| n.layer().name() == "c+relu"));
        let input = Tensor::random(&[6, 2, 2], 1.0, 11);
        assert_eq!(
            graph.forward(&input).unwrap().as_slice(),
            opt.forward(&input).unwrap().as_slice()
        );
    }

    #[test]
    fn non_covering_or_reordered_slices_do_not_cancel() {
        for (ranges, label) in [
            (vec![(0usize, 2usize), (3, 6)], "gap"),
            (vec![(2, 6), (0, 2)], "reordered"),
            (vec![(0, 2), (2, 5)], "short"),
        ] {
            let mut b = GraphBuilder::new("sc", Shape::new(&[6, 2, 2]));
            let x = b.input_id();
            let parts: Vec<NodeId> = ranges
                .iter()
                .enumerate()
                .map(|(i, &(s, e))| b.add(Slice::new(format!("s{i}"), s, e), &[x]).unwrap())
                .collect();
            let _ = b.add(Concat::new("cat", parts.len()), &parts).unwrap();
            let graph = b.finish().unwrap();
            let (opt, _) = compiled(&graph);
            assert!(
                opt.nodes().iter().any(|n| n.layer().name() == "cat"),
                "{label}: concat must survive"
            );
            let input = Tensor::random(&[6, 2, 2], 1.0, 13);
            assert_eq!(
                graph.forward(&input).unwrap().as_slice(),
                opt.forward(&input).unwrap().as_slice()
            );
        }
    }

    #[test]
    fn full_range_slice_is_removed_as_identity() {
        let mut b = GraphBuilder::new("fs", Shape::new(&[4, 2, 2]));
        let x = b.input_id();
        let c = b.add(Conv2d::new("c", 4, 4, 3, 1, 1, 0), &[x]).unwrap();
        let s = b.add(Slice::new("full", 0, 4), &[c]).unwrap();
        let _ = b.add(Relu::new("r"), &[s]).unwrap();
        let graph = b.finish().unwrap();
        let (opt, _) = compiled(&graph);
        assert_eq!(opt.len(), 2);
        let input = Tensor::random(&[4, 2, 2], 1.0, 17);
        assert_eq!(
            graph.forward(&input).unwrap().as_slice(),
            opt.forward(&input).unwrap().as_slice()
        );
    }

    #[test]
    fn prepack_reports_bytes_once_and_is_idempotent() {
        let graph = build(ModelKind::AlexNet, ModelScale::Tiny);
        let (_, first) = compile(&graph, &CompileOptions::default()).unwrap();
        assert!(first.prepacked_bytes > 0, "convs pack panel weights");
        assert!(first.prepacked_nodes > 0);
        // Layers are shared Arcs: compiling the same graph again finds
        // everything already packed.
        let (_, second) = compile(&graph, &CompileOptions::default()).unwrap();
        assert_eq!(second.prepacked_bytes, 0, "prepack is idempotent");
    }

    #[test]
    fn int8_options_pack_quantized_weights_too() {
        let graph = build(ModelKind::LeNet, ModelScale::Tiny);
        let (_, f32_only) = compile(&graph, &CompileOptions::default()).unwrap();
        let graph2 = build(ModelKind::LeNet, ModelScale::Tiny);
        let (_, both) = compile(&graph2, &CompileOptions::int8()).unwrap();
        assert!(both.prepacked_bytes > f32_only.prepacked_bytes);
    }

    #[test]
    fn disabled_passes_leave_the_graph_alone() {
        let graph = build(ModelKind::Vgg16, ModelScale::Tiny);
        let opts = CompileOptions {
            prepack_f32: false,
            ..CompileOptions::prepack_only()
        };
        let (opt, report) = compile(&graph, &opts).unwrap();
        assert_eq!(opt.len(), graph.len());
        assert_eq!(report.nodes_eliminated(), 0);
        assert!(report.passes.is_empty());
        assert_eq!(report.prepacked_bytes, 0);
    }

    #[test]
    fn fixpoint_terminates_and_second_compile_is_a_noop() {
        let graph = build(ModelKind::ResNet18, ModelScale::Tiny);
        let (opt, report) = compiled(&graph);
        assert!(report.iterations <= CompileOptions::default().max_iterations);
        let (opt2, report2) = compiled(&opt);
        assert_eq!(opt2.len(), opt.len(), "compile is idempotent");
        assert_eq!(report2.nodes_eliminated(), 0);
    }

    #[test]
    fn report_passes_carry_consistent_deltas() {
        let graph = build(ModelKind::SqueezeNet, ModelScale::Tiny);
        let (_, report) = compiled(&graph);
        for pair in report.passes.windows(2) {
            if pair[0].iteration == pair[1].iteration {
                assert_eq!(pair[0].nodes_after, pair[1].nodes_before);
                assert_eq!(pair[0].edges_after, pair[1].edges_before);
            }
        }
        for p in &report.passes {
            assert!(p.nodes_after <= p.nodes_before);
        }
        assert_eq!(
            report.passes.first().unwrap().nodes_before,
            report.nodes_pre
        );
        assert_eq!(report.passes.last().unwrap().nodes_after, report.nodes_post);
    }
}
