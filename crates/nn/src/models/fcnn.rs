//! Fully connected neural network (paper benchmark 1).
//!
//! The paper specifies "three hidden layers" (Section V-A); width choices
//! follow common MLP-on-MNIST practice (784-inputs, wide hidden layers)
//! and are documented here because the paper does not publish them.

use edgenn_tensor::Shape;

use crate::graph::Graph;
use crate::layer::{Dense, Relu, Softmax};
use crate::models::{ModelCtx, ModelScale};
use crate::Result;

/// Builds the FCNN benchmark.
pub(crate) fn build(scale: ModelScale) -> Result<Graph> {
    let (input, hidden, classes) = match scale {
        ModelScale::Paper => (784usize, [4096usize, 4096, 1024], 10usize),
        ModelScale::Tiny => (64, [48, 48, 24], 10),
    };
    let mut ctx = ModelCtx::new("FCNN", Shape::new(&[input]), 0xFC_00);
    let mut in_features = input;
    for (i, &width) in hidden.iter().enumerate() {
        let seed = ctx.next_seed();
        ctx.push(Dense::new(format!("fc{}", i + 1), in_features, width, seed))?;
        ctx.push(Relu::new(format!("relu{}", i + 1)))?;
        in_features = width;
    }
    let seed = ctx.next_seed();
    ctx.push(Dense::new("fc_out", in_features, classes, seed))?;
    ctx.push(Softmax::new("softmax"))?;
    ctx.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::LayerClass;

    #[test]
    fn paper_fcnn_has_three_hidden_layers() {
        let g = build(ModelScale::Paper).unwrap();
        let dense_count = g
            .nodes()
            .iter()
            .filter(|n| n.layer().class() == LayerClass::Fc)
            .count();
        assert_eq!(dense_count, 4, "3 hidden + 1 output dense layers");
        assert_eq!(g.input_shape().dims(), &[784]);
        assert_eq!(g.output_shape().dims(), &[10]);
    }

    #[test]
    fn fcnn_is_fc_dominated() {
        // Sanity for the simulator: nearly all FLOPs should be in fc layers.
        let g = build(ModelScale::Paper).unwrap();
        assert!(g.total_flops() > 40_000_000);
        assert!(
            g.param_bytes() > g.total_flops() / 2,
            "fc nets are weight-dominated"
        );
    }
}
