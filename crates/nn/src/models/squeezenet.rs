//! SqueezeNet v1.0 (paper benchmark 5).
//!
//! The fire module is the paper's running example of *independent
//! execution chains* (Figure 5): after the squeeze convolution, the
//! `expand1x1` and `expand3x3` paths have no mutual dependency and can be
//! assigned to different processors (inter-kernel co-running) before
//! reconverging at the concat layer.

use edgenn_tensor::Shape;

use crate::graph::{Graph, NodeId};
use crate::layer::{Concat, Conv2d, Dropout, GlobalAvgPool, MaxPool2d, Relu, Softmax};
use crate::models::{ModelCtx, ModelScale};
use crate::Result;

/// Appends one fire module after `ctx.cursor()`; returns the concat node.
fn fire(
    ctx: &mut ModelCtx,
    name: &str,
    in_ch: usize,
    squeeze: usize,
    expand: usize,
) -> Result<NodeId> {
    let seed = ctx.next_seed();
    ctx.push(Conv2d::new(
        format!("{name}_squeeze"),
        in_ch,
        squeeze,
        1,
        1,
        0,
        seed,
    ))?;
    let fork = ctx.push(Relu::new(format!("{name}_squeeze_relu")))?;

    let seed = ctx.next_seed();
    ctx.add(
        Conv2d::new(format!("{name}_e1"), squeeze, expand, 1, 1, 0, seed),
        &[fork],
    )?;
    let e1 = ctx.push(Relu::new(format!("{name}_e1_relu")))?;

    let seed = ctx.next_seed();
    ctx.add(
        Conv2d::new(format!("{name}_e3"), squeeze, expand, 3, 1, 1, seed),
        &[fork],
    )?;
    let e3 = ctx.push(Relu::new(format!("{name}_e3_relu")))?;

    ctx.add(Concat::new(format!("{name}_concat"), 2), &[e1, e3])
}

/// Builds SqueezeNet v1.0.
pub(crate) fn build(scale: ModelScale) -> Result<Graph> {
    match scale {
        ModelScale::Paper => build_paper(),
        ModelScale::Tiny => build_tiny(),
    }
}

fn build_paper() -> Result<Graph> {
    let mut ctx = ModelCtx::new("SqueezeNet", Shape::new(&[3, 224, 224]), 0x5EE2);
    ctx.conv_relu("conv1", 3, 96, 7, 2, 2)?; // 96x111x111
    ctx.push(MaxPool2d::new("pool1", 3, 2))?; // 96x55x55
    fire(&mut ctx, "fire2", 96, 16, 64)?;
    fire(&mut ctx, "fire3", 128, 16, 64)?;
    fire(&mut ctx, "fire4", 128, 32, 128)?;
    ctx.push(MaxPool2d::new("pool4", 3, 2))?; // 256x27x27
    fire(&mut ctx, "fire5", 256, 32, 128)?;
    fire(&mut ctx, "fire6", 256, 48, 192)?;
    fire(&mut ctx, "fire7", 384, 48, 192)?;
    fire(&mut ctx, "fire8", 384, 64, 256)?;
    ctx.push(MaxPool2d::new("pool8", 3, 2))?; // 512x13x13
    fire(&mut ctx, "fire9", 512, 64, 256)?;
    ctx.push(Dropout::new("drop9"))?;
    let seed = ctx.next_seed();
    ctx.push(Conv2d::new("conv10", 512, 1000, 1, 1, 0, seed))?;
    ctx.push(Relu::new("conv10_relu"))?;
    ctx.push(GlobalAvgPool::new("gap"))?;
    ctx.push(Softmax::new("softmax"))?;
    ctx.finish()
}

fn build_tiny() -> Result<Graph> {
    let mut ctx = ModelCtx::new("SqueezeNet", Shape::new(&[3, 32, 32]), 0x5EE2);
    ctx.conv_relu("conv1", 3, 8, 3, 2, 1)?; // 8x16x16
    ctx.push(MaxPool2d::new("pool1", 2, 2))?; // 8x8x8
    fire(&mut ctx, "fire2", 8, 4, 8)?;
    fire(&mut ctx, "fire3", 16, 4, 8)?;
    ctx.push(MaxPool2d::new("pool3", 2, 2))?; // 16x4x4
    fire(&mut ctx, "fire4", 16, 8, 16)?;
    ctx.push(Dropout::new("drop"))?;
    let seed = ctx.next_seed();
    ctx.push(Conv2d::new("conv10", 32, 10, 1, 1, 0, seed))?;
    ctx.push(Relu::new("conv10_relu"))?;
    ctx.push(GlobalAvgPool::new("gap"))?;
    ctx.push(Softmax::new("softmax"))?;
    ctx.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Segment;

    #[test]
    fn paper_squeezenet_has_eight_fire_modules() {
        let g = build(ModelScale::Paper).unwrap();
        let s = g.structure().unwrap();
        assert_eq!(s.parallel_segment_count(), 8);
        // Paper: "SqueezeNet has more than 60 layers" (Section III-B).
        assert!(g.len() - 1 > 60, "got {} layers", g.len() - 1);
    }

    #[test]
    fn fire_branches_are_expand_paths() {
        let g = build(ModelScale::Paper).unwrap();
        let s = g.structure().unwrap();
        let first_parallel = s
            .segments()
            .iter()
            .find_map(|seg| match seg {
                Segment::Parallel { branches, join } => Some((branches.clone(), *join)),
                _ => None,
            })
            .unwrap();
        let (branches, join) = first_parallel;
        assert_eq!(branches.len(), 2);
        for branch in &branches {
            assert_eq!(branch.len(), 2, "expand conv + relu");
        }
        assert!(g.node(join).unwrap().layer().name().ends_with("concat"));
    }

    #[test]
    fn paper_squeezenet_is_parameter_frugal() {
        // SqueezeNet's design goal: AlexNet accuracy with 50x fewer params
        // (~1.25M params ~ 5MB fp32).
        let g = build(ModelScale::Paper).unwrap();
        let mb = g.param_bytes() as f64 / 1e6;
        assert!(
            (3.0..8.0).contains(&mb),
            "expected ~5 MB of fp32 params, got {mb:.1} MB"
        );
    }

    #[test]
    fn paper_feature_maps_match_published_sizes() {
        let g = build(ModelScale::Paper).unwrap();
        let shape_of = |name: &str| {
            g.nodes()
                .iter()
                .find(|n| n.layer().name() == name)
                .unwrap()
                .output_shape()
                .dims()
                .to_vec()
        };
        assert_eq!(shape_of("pool1"), vec![96, 55, 55]);
        assert_eq!(shape_of("fire2_concat"), vec![128, 55, 55]);
        assert_eq!(shape_of("pool8"), vec![512, 13, 13]);
        assert_eq!(shape_of("gap"), vec![1000]);
    }
}
