//! AlexNet (paper benchmark 3).
//!
//! Figures 10-11 and Table I of the paper analyze AlexNet layer by layer,
//! so the builder reproduces the published Caffe topology exactly:
//! 5 convolutions (conv1..conv5, with LRN after conv1/conv2 and max-pool
//! after conv1/conv2/conv5) followed by three fully-connected layers with
//! dropout. Counting the data (input) node, the graph has the 25 layers
//! the paper quotes for AlexNet.

use edgenn_tensor::Shape;

use crate::graph::Graph;
use crate::layer::{Dense, Dropout, Flatten, LocalResponseNorm, MaxPool2d, Relu, Softmax};
use crate::models::{ModelCtx, ModelScale};
use crate::Result;

/// Builds AlexNet.
pub(crate) fn build(scale: ModelScale) -> Result<Graph> {
    match scale {
        ModelScale::Paper => build_paper(),
        ModelScale::Tiny => build_tiny(),
    }
}

fn build_paper() -> Result<Graph> {
    let mut ctx = ModelCtx::new("AlexNet", Shape::new(&[3, 227, 227]), 0xA1E);
    ctx.conv_relu("conv1", 3, 96, 11, 4, 0)?; // 96x55x55
    ctx.push(LocalResponseNorm::alexnet_default("norm1"))?;
    ctx.push(MaxPool2d::new("pool1", 3, 2))?; // 96x27x27
    ctx.conv_relu("conv2", 96, 256, 5, 1, 2)?; // 256x27x27
    ctx.push(LocalResponseNorm::alexnet_default("norm2"))?;
    ctx.push(MaxPool2d::new("pool2", 3, 2))?; // 256x13x13
    ctx.conv_relu("conv3", 256, 384, 3, 1, 1)?;
    ctx.conv_relu("conv4", 384, 384, 3, 1, 1)?;
    ctx.conv_relu("conv5", 384, 256, 3, 1, 1)?;
    ctx.push(MaxPool2d::new("pool5", 3, 2))?; // 256x6x6
    ctx.push(Flatten::new("flatten"))?; // 9216
    let seed = ctx.next_seed();
    ctx.push(Dense::new("fc6", 9216, 4096, seed))?;
    ctx.push(Relu::new("fc6_relu"))?;
    ctx.push(Dropout::new("drop6"))?;
    let seed = ctx.next_seed();
    ctx.push(Dense::new("fc7", 4096, 4096, seed))?;
    ctx.push(Relu::new("fc7_relu"))?;
    ctx.push(Dropout::new("drop7"))?;
    let seed = ctx.next_seed();
    ctx.push(Dense::new("fc8", 4096, 1000, seed))?;
    ctx.push(Softmax::new("softmax"))?;
    ctx.finish()
}

fn build_tiny() -> Result<Graph> {
    let mut ctx = ModelCtx::new("AlexNet", Shape::new(&[3, 32, 32]), 0xA1E);
    ctx.conv_relu("conv1", 3, 8, 3, 1, 1)?; // 8x32x32
    ctx.push(LocalResponseNorm::alexnet_default("norm1"))?;
    ctx.push(MaxPool2d::new("pool1", 2, 2))?; // 8x16x16
    ctx.conv_relu("conv2", 8, 16, 3, 1, 1)?;
    ctx.push(LocalResponseNorm::alexnet_default("norm2"))?;
    ctx.push(MaxPool2d::new("pool2", 2, 2))?; // 16x8x8
    ctx.conv_relu("conv3", 16, 16, 3, 1, 1)?;
    ctx.conv_relu("conv4", 16, 16, 3, 1, 1)?;
    ctx.conv_relu("conv5", 16, 8, 3, 1, 1)?;
    ctx.push(MaxPool2d::new("pool5", 2, 2))?; // 8x4x4
    ctx.push(Flatten::new("flatten"))?; // 128
    let seed = ctx.next_seed();
    ctx.push(Dense::new("fc6", 128, 64, seed))?;
    ctx.push(Relu::new("fc6_relu"))?;
    ctx.push(Dropout::new("drop6"))?;
    let seed = ctx.next_seed();
    ctx.push(Dense::new("fc7", 64, 32, seed))?;
    ctx.push(Relu::new("fc7_relu"))?;
    ctx.push(Dropout::new("drop7"))?;
    let seed = ctx.next_seed();
    ctx.push(Dense::new("fc8", 32, 10, seed))?;
    ctx.push(Softmax::new("softmax"))?;
    ctx.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::LayerClass;

    #[test]
    fn paper_alexnet_feature_map_sizes() {
        let g = build(ModelScale::Paper).unwrap();
        let shape_of = |name: &str| {
            g.nodes()
                .iter()
                .find(|n| n.layer().name() == name)
                .unwrap_or_else(|| panic!("missing {name}"))
                .output_shape()
                .dims()
                .to_vec()
        };
        assert_eq!(shape_of("conv1"), vec![96, 55, 55]);
        assert_eq!(shape_of("pool1"), vec![96, 27, 27]);
        assert_eq!(shape_of("conv2"), vec![256, 27, 27]);
        assert_eq!(shape_of("pool2"), vec![256, 13, 13]);
        assert_eq!(shape_of("conv5"), vec![256, 13, 13]);
        assert_eq!(shape_of("pool5"), vec![256, 6, 6]);
        assert_eq!(shape_of("flatten"), vec![9216]);
        assert_eq!(shape_of("fc8"), vec![1000]);
    }

    #[test]
    fn alexnet_mixes_conv_and_fc_flops() {
        // Figure 11's analysis depends on AlexNet having heavyweight conv
        // layers AND heavyweight fc layers; both should be substantial.
        let g = build(ModelScale::Paper).unwrap();
        let mut conv = 0u64;
        let mut fc = 0u64;
        for id in g.topo_order() {
            let node = g.node(id).unwrap();
            let shapes: Vec<_> = node
                .inputs()
                .iter()
                .map(|i| g.node(*i).unwrap().output_shape())
                .collect();
            let flops = node.layer().workload(&shapes).map_or(0, |w| w.flops);
            match node.layer().class() {
                LayerClass::Conv => conv += flops,
                LayerClass::Fc => fc += flops,
                _ => {}
            }
        }
        assert!(conv > 1_000_000_000, "conv flops {conv}");
        assert!(fc > 100_000_000, "fc flops {fc}");
        // fc params dominate: the memory-bound behavior Figure 11 exploits.
        assert!(g.param_bytes() > 200_000_000);
    }
}
