//! Synthetic network generator: deterministic, structurally valid random
//! CNNs for stress-testing the planner beyond the six paper benchmarks.
//!
//! The generator emits the same structural vocabulary the benchmarks use
//! — conv/relu chains, pooling, normalization, fire-style fork-joins, and
//! residual blocks — so every network a fuzzer draws is a network the
//! chain/branch decomposition, the tuner, and both runtimes must handle.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use edgenn_tensor::Shape;

use crate::graph::Graph;
use crate::layer::{
    AddResidual, AvgPool2d, BatchNorm2d, Concat, Conv2d, Dense, Flatten, GlobalAvgPool,
    LocalResponseNorm, MaxPool2d, Relu, Softmax,
};
use crate::models::ModelCtx;
use crate::Result;

/// Tuning knobs for the generator.
#[derive(Debug, Clone, Copy)]
pub struct SyntheticSpec {
    /// Number of body stages (each a chain block, fire module, or
    /// residual block).
    pub stages: usize,
    /// Input spatial resolution (square).
    pub resolution: usize,
    /// Initial channel count.
    pub base_channels: usize,
    /// Number of output classes.
    pub classes: usize,
}

impl Default for SyntheticSpec {
    fn default() -> Self {
        Self {
            stages: 6,
            resolution: 32,
            base_channels: 8,
            classes: 10,
        }
    }
}

/// Builds a deterministic pseudo-random CNN from `seed`.
///
/// The same seed always produces the same graph; different seeds vary the
/// stage mix, channel growth, kernel sizes and pooling placement.
///
/// # Errors
/// Never fails for valid specs (`stages >= 1`, `resolution >= 8`); errors
/// surface only on degenerate inputs.
pub fn random_cnn(seed: u64, spec: SyntheticSpec) -> Result<Graph> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ctx = ModelCtx::new(
        &format!("Synthetic-{seed:x}"),
        Shape::new(&[3, spec.resolution, spec.resolution]),
        seed,
    );

    // Stem.
    let mut channels = spec.base_channels;
    let mut hw = spec.resolution;
    ctx.conv_relu("stem", 3, channels, 3, 1, 1)?;

    for stage in 0..spec.stages {
        match rng.gen_range(0..4u32) {
            // Plain conv block, sometimes growing channels.
            0 => {
                let out = if rng.gen_bool(0.5) {
                    channels * 2
                } else {
                    channels
                };
                let kernel = if rng.gen_bool(0.3) { 5 } else { 3 };
                if hw + 2 < kernel {
                    continue;
                }
                ctx.conv_relu(
                    &format!("s{stage}_conv"),
                    channels,
                    out,
                    kernel,
                    1,
                    kernel / 2,
                )?;
                if rng.gen_bool(0.4) {
                    let seed = ctx.next_seed();
                    ctx.push(BatchNorm2d::new(format!("s{stage}_bn"), out, seed))?;
                } else if rng.gen_bool(0.3) {
                    ctx.push(LocalResponseNorm::alexnet_default(format!("s{stage}_lrn")))?;
                }
                channels = out;
            }
            // Fire-style fork-join.
            1 => {
                let squeeze = (channels / 2).max(1);
                let expand = channels.max(2);
                let seed = ctx.next_seed();
                ctx.push(Conv2d::new(
                    format!("s{stage}_squeeze"),
                    channels,
                    squeeze,
                    1,
                    1,
                    0,
                    seed,
                ))?;
                let fork = ctx.push(Relu::new(format!("s{stage}_squeeze_relu")))?;
                let seed = ctx.next_seed();
                ctx.add(
                    Conv2d::new(format!("s{stage}_e1"), squeeze, expand, 1, 1, 0, seed),
                    &[fork],
                )?;
                let e1 = ctx.push(Relu::new(format!("s{stage}_e1_relu")))?;
                let seed = ctx.next_seed();
                ctx.add(
                    Conv2d::new(format!("s{stage}_e3"), squeeze, expand, 3, 1, 1, seed),
                    &[fork],
                )?;
                let e3 = ctx.push(Relu::new(format!("s{stage}_e3_relu")))?;
                ctx.add(Concat::new(format!("s{stage}_concat"), 2), &[e1, e3])?;
                channels = expand * 2;
            }
            // Residual block (identity shortcut).
            2 => {
                let entry = ctx.cursor();
                let seed = ctx.next_seed();
                ctx.add(
                    Conv2d::new(
                        format!("s{stage}_rconv1"),
                        channels,
                        channels,
                        3,
                        1,
                        1,
                        seed,
                    ),
                    &[entry],
                )?;
                ctx.push(Relu::new(format!("s{stage}_rrelu1")))?;
                let seed = ctx.next_seed();
                let main = ctx.push(Conv2d::new(
                    format!("s{stage}_rconv2"),
                    channels,
                    channels,
                    3,
                    1,
                    1,
                    seed,
                ))?;
                ctx.add(AddResidual::new(format!("s{stage}_add")), &[main, entry])?;
                ctx.push(Relu::new(format!("s{stage}_rrelu2")))?;
            }
            // Pooling (only while the map stays comfortably large).
            _ => {
                if hw >= 8 {
                    if rng.gen_bool(0.5) {
                        ctx.push(MaxPool2d::new(format!("s{stage}_pool"), 2, 2))?;
                    } else {
                        ctx.push(AvgPool2d::new(format!("s{stage}_pool"), 2, 2))?;
                    }
                    hw /= 2;
                }
            }
        }
    }

    // Head.
    ctx.push(GlobalAvgPool::new("gap"))?;
    ctx.push(Flatten::new("flatten"))?;
    let seed = ctx.next_seed();
    ctx.push(Dense::new("fc", channels, spec.classes, seed))?;
    ctx.push(Softmax::new("softmax"))?;
    ctx.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgenn_tensor::Tensor;

    #[test]
    fn generator_is_deterministic() {
        let a = random_cnn(42, SyntheticSpec::default()).unwrap();
        let b = random_cnn(42, SyntheticSpec::default()).unwrap();
        assert_eq!(a.len(), b.len());
        for (na, nb) in a.nodes().iter().zip(b.nodes().iter()) {
            assert_eq!(na.layer().name(), nb.layer().name());
            assert_eq!(na.output_shape(), nb.output_shape());
        }
    }

    #[test]
    fn many_seeds_build_and_run() {
        for seed in 0..24 {
            let graph = random_cnn(seed, SyntheticSpec::default())
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert!(graph.len() > 6, "seed {seed}");
            // Structure decomposes (no nested forks by construction).
            let structure = graph
                .structure()
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            let covered: usize = structure.segments().iter().map(|s| s.nodes().len()).sum();
            assert_eq!(covered, graph.len(), "seed {seed}: coverage");
            // A real forward pass works and is a probability vector.
            let input = Tensor::random(graph.input_shape().dims(), 1.0, seed);
            let out = graph
                .forward(&input)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert!((out.sum() - 1.0).abs() < 1e-4, "seed {seed}");
        }
    }

    #[test]
    fn spec_controls_size() {
        let small = random_cnn(
            7,
            SyntheticSpec {
                stages: 2,
                ..SyntheticSpec::default()
            },
        )
        .unwrap();
        let large = random_cnn(
            7,
            SyntheticSpec {
                stages: 12,
                ..SyntheticSpec::default()
            },
        )
        .unwrap();
        assert!(large.len() > small.len());
        assert!(large.total_flops() > small.total_flops());
    }
}
