//! Builders for the six benchmark networks the paper evaluates
//! (Section V-A): FCNN, LeNet-5, AlexNet, VGG-16, SqueezeNet v1.0 and
//! ResNet-18.
//!
//! Every network comes in two scales:
//!
//! - [`ModelScale::Paper`] — the published architecture at its published
//!   input resolution. Used by the simulator-driven experiments (analytic
//!   workloads only; no tensor math required).
//! - [`ModelScale::Tiny`] — a structurally identical reduction (same layer
//!   types, same chain/branch topology) small enough for real forward
//!   passes in tests and examples.

mod alexnet;
mod fcnn;
mod lenet;
mod resnet;
mod squeezenet;
pub mod synthetic;
mod vgg;

use crate::graph::{Graph, GraphBuilder, NodeId};
use crate::layer::{Conv2d, Relu};
use crate::Result;
use edgenn_tensor::Shape;

/// Which benchmark network to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// Fully connected neural network with three hidden layers.
    Fcnn,
    /// LeNet-5 convolutional network.
    LeNet,
    /// AlexNet (ImageNet classification CNN).
    AlexNet,
    /// VGG-16.
    Vgg16,
    /// SqueezeNet v1.0 with fire modules.
    SqueezeNet,
    /// ResNet-18 with basic residual blocks.
    ResNet18,
}

impl ModelKind {
    /// All six benchmarks, in the order the paper's figures list them.
    pub const ALL: [ModelKind; 6] = [
        ModelKind::Fcnn,
        ModelKind::LeNet,
        ModelKind::AlexNet,
        ModelKind::Vgg16,
        ModelKind::SqueezeNet,
        ModelKind::ResNet18,
    ];

    /// Display name used in reports (matches the paper's figure labels).
    pub fn name(&self) -> &'static str {
        match self {
            Self::Fcnn => "FCNN",
            Self::LeNet => "LeNet",
            Self::AlexNet => "AlexNet",
            Self::Vgg16 => "VGG",
            Self::SqueezeNet => "SqueezeNet",
            Self::ResNet18 => "ResNet",
        }
    }

    /// True for networks whose DAG contains independent branches
    /// (the paper notes only SqueezeNet and ResNet have them, Section V-F).
    pub fn has_parallel_branches(&self) -> bool {
        matches!(self, Self::SqueezeNet | Self::ResNet18)
    }
}

impl std::fmt::Display for ModelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Build scale: published architecture vs. test-sized reduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelScale {
    /// Published architecture and input resolution.
    Paper,
    /// Structurally identical, drastically smaller variant for fast
    /// functional execution in tests and examples.
    Tiny,
}

/// Builds one benchmark network.
///
/// # Panics
/// Never panics for the shipped architectures; construction errors in the
/// hand-written builders are programming bugs and are unwrapped internally.
pub fn build(kind: ModelKind, scale: ModelScale) -> Graph {
    let result = match kind {
        ModelKind::Fcnn => fcnn::build(scale),
        ModelKind::LeNet => lenet::build(scale),
        ModelKind::AlexNet => alexnet::build(scale),
        ModelKind::Vgg16 => vgg::build(scale),
        ModelKind::SqueezeNet => squeezenet::build(scale),
        ModelKind::ResNet18 => resnet::build(scale),
    };
    result.expect("benchmark model builders construct valid graphs")
}

/// Convenience wrapper used by the model builders: a [`GraphBuilder`]
/// extended with a running layer counter (for unique names and
/// deterministic per-layer weight seeds) and a cursor over the last node.
pub(crate) struct ModelCtx {
    builder: GraphBuilder,
    cursor: NodeId,
    seed: u64,
}

impl ModelCtx {
    pub(crate) fn new(name: &str, input_shape: Shape, seed: u64) -> Self {
        let builder = GraphBuilder::new(name, input_shape);
        let cursor = builder.input_id();
        Self {
            builder,
            cursor,
            seed,
        }
    }

    /// Current tip of the chain being built.
    pub(crate) fn cursor(&self) -> NodeId {
        self.cursor
    }

    /// Fresh deterministic seed for the next parameterized layer.
    pub(crate) fn next_seed(&mut self) -> u64 {
        self.seed = self
            .seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.seed
    }

    /// Appends a layer fed by explicit inputs and moves the cursor to it.
    pub(crate) fn add(
        &mut self,
        layer: impl crate::layer::Layer + 'static,
        inputs: &[NodeId],
    ) -> Result<NodeId> {
        let id = self.builder.add(layer, inputs)?;
        self.cursor = id;
        Ok(id)
    }

    /// Appends a layer fed by the cursor and advances it.
    pub(crate) fn push(&mut self, layer: impl crate::layer::Layer + 'static) -> Result<NodeId> {
        let cursor = self.cursor;
        self.add(layer, &[cursor])
    }

    /// Appends `conv -> relu` fed by the cursor.
    pub(crate) fn conv_relu(
        &mut self,
        name: &str,
        in_ch: usize,
        out_ch: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
    ) -> Result<NodeId> {
        let seed = self.next_seed();
        self.push(Conv2d::new(
            name.to_string(),
            in_ch,
            out_ch,
            kernel,
            stride,
            pad,
            seed,
        ))?;
        self.push(Relu::new(format!("{name}_relu")))
    }

    pub(crate) fn finish(self) -> Result<Graph> {
        self.builder.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgenn_tensor::Tensor;

    #[test]
    fn all_models_build_at_both_scales() {
        for kind in ModelKind::ALL {
            for scale in [ModelScale::Paper, ModelScale::Tiny] {
                let g = build(kind, scale);
                assert!(g.len() > 3, "{kind} {scale:?} suspiciously small");
                assert!(g.total_flops() > 0, "{kind} {scale:?} has zero flops");
            }
        }
    }

    #[test]
    fn tiny_models_run_functionally() {
        for kind in ModelKind::ALL {
            let g = build(kind, ModelScale::Tiny);
            let input = Tensor::random(g.input_shape().dims(), 1.0, 11);
            let out = g.forward(&input).unwrap_or_else(|e| panic!("{kind}: {e}"));
            assert_eq!(out.dims(), g.output_shape().dims(), "{kind}");
            assert!(
                out.as_slice().iter().all(|x| x.is_finite()),
                "{kind} produced non-finite outputs"
            );
        }
    }

    #[test]
    fn classifier_outputs_are_probability_vectors() {
        for kind in ModelKind::ALL {
            let g = build(kind, ModelScale::Tiny);
            let input = Tensor::random(g.input_shape().dims(), 1.0, 3);
            let out = g.forward(&input).unwrap();
            let sum = out.sum();
            assert!((sum - 1.0).abs() < 1e-4, "{kind}: softmax sum {sum}");
            assert!(
                out.as_slice().iter().all(|&p| (0.0..=1.0).contains(&p)),
                "{kind}"
            );
        }
    }

    #[test]
    fn structure_matches_paper_claims() {
        for kind in ModelKind::ALL {
            for scale in [ModelScale::Paper, ModelScale::Tiny] {
                let s = build(kind, scale).structure().unwrap();
                if kind.has_parallel_branches() {
                    assert!(
                        s.parallel_segment_count() > 0,
                        "{kind} {scale:?} should have independent branches"
                    );
                } else {
                    assert!(s.is_pure_chain(), "{kind} {scale:?} should be a chain");
                }
            }
        }
    }

    #[test]
    fn paper_scale_flop_ordering_is_sane() {
        // VGG-16 is by far the heaviest network; LeNet and FCNN the lightest.
        let flops: Vec<(ModelKind, u64)> = ModelKind::ALL
            .iter()
            .map(|&k| (k, build(k, ModelScale::Paper).total_flops()))
            .collect();
        let get = |k: ModelKind| flops.iter().find(|(m, _)| *m == k).unwrap().1;
        assert!(get(ModelKind::Vgg16) > get(ModelKind::AlexNet));
        assert!(get(ModelKind::AlexNet) > get(ModelKind::LeNet));
        assert!(
            get(ModelKind::Vgg16) > 1e10 as u64,
            "VGG-16 is ~15.5 GFLOPs/inference"
        );
        assert!(get(ModelKind::ResNet18) > get(ModelKind::SqueezeNet));
    }

    #[test]
    fn names_match_paper_labels() {
        let names: Vec<&str> = ModelKind::ALL.iter().map(super::ModelKind::name).collect();
        assert_eq!(
            names,
            ["FCNN", "LeNet", "AlexNet", "VGG", "SqueezeNet", "ResNet"]
        );
    }

    #[test]
    fn paper_alexnet_has_25_layers() {
        // The paper states "AlexNet has 25 layers" (Section III-B); the
        // Caffe topology it refers to counts the data layer, which maps to
        // our input pseudo-node, so the whole graph has 25 nodes.
        let g = build(ModelKind::AlexNet, ModelScale::Paper);
        assert_eq!(g.len(), 25);
    }
}
