//! VGG-16 (paper benchmark 4): 13 convolutions in five blocks plus three
//! fully-connected layers — the heaviest network in the paper's suite and
//! the one where cloud offload beats EdgeNN (Figure 12).

use edgenn_tensor::Shape;

use crate::graph::Graph;
use crate::layer::{Dense, Dropout, Flatten, MaxPool2d, Relu, Softmax};
use crate::models::{ModelCtx, ModelScale};
use crate::Result;

/// Builds VGG-16.
pub(crate) fn build(scale: ModelScale) -> Result<Graph> {
    let (input_hw, blocks, fc_widths, classes): (usize, Vec<Vec<usize>>, [usize; 2], usize) =
        match scale {
            ModelScale::Paper => (
                224,
                vec![
                    vec![64, 64],
                    vec![128, 128],
                    vec![256, 256, 256],
                    vec![512, 512, 512],
                    vec![512, 512, 512],
                ],
                [4096, 4096],
                1000,
            ),
            ModelScale::Tiny => (
                32,
                vec![
                    vec![4, 4],
                    vec![8, 8],
                    vec![8, 8, 8],
                    vec![16, 16, 16],
                    vec![16, 16, 16],
                ],
                [32, 32],
                10,
            ),
        };

    let mut ctx = ModelCtx::new("VGG", Shape::new(&[3, input_hw, input_hw]), 0x7667);
    let mut in_ch = 3usize;
    let mut hw = input_hw;
    for (b, widths) in blocks.iter().enumerate() {
        for (i, &out_ch) in widths.iter().enumerate() {
            ctx.conv_relu(&format!("conv{}_{}", b + 1, i + 1), in_ch, out_ch, 3, 1, 1)?;
            in_ch = out_ch;
        }
        ctx.push(MaxPool2d::new(format!("pool{}", b + 1), 2, 2))?;
        hw /= 2;
    }
    ctx.push(Flatten::new("flatten"))?;
    let mut in_features = in_ch * hw * hw;
    for (i, &width) in fc_widths.iter().enumerate() {
        let seed = ctx.next_seed();
        ctx.push(Dense::new(format!("fc{}", i + 6), in_features, width, seed))?;
        ctx.push(Relu::new(format!("fc{}_relu", i + 6)))?;
        ctx.push(Dropout::new(format!("drop{}", i + 6)))?;
        in_features = width;
    }
    let seed = ctx.next_seed();
    ctx.push(Dense::new("fc8", in_features, classes, seed))?;
    ctx.push(Softmax::new("softmax"))?;
    ctx.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_vgg16_has_16_weight_layers_and_40_total() {
        let g = build(ModelScale::Paper).unwrap();
        let weight_layers = g
            .nodes()
            .iter()
            .filter(|n| {
                matches!(
                    n.layer().class(),
                    crate::layer::LayerClass::Conv | crate::layer::LayerClass::Fc
                )
            })
            .count();
        assert_eq!(weight_layers, 16, "VGG-16 means 16 weight layers");
        // The paper quotes "VGG has 40 layers" (Section III-B): 13 conv +
        // 13 relu + 5 pool + flatten + 3 fc + 2 fc-relu + 2 dropout +
        // softmax = 40 (excluding the input pseudo-node).
        assert_eq!(g.len() - 1, 40);
    }

    #[test]
    fn paper_vgg_flops_are_about_15_gflops() {
        let g = build(ModelScale::Paper).unwrap();
        let gflops = g.total_flops() as f64 / 1e9;
        assert!(
            (25.0..36.0).contains(&gflops),
            "VGG-16 is ~30.9 GFLOPs with MACs counted as 2 ops, got {gflops}"
        );
    }

    #[test]
    fn spatial_resolution_halves_per_block() {
        let g = build(ModelScale::Paper).unwrap();
        let shape_of = |name: &str| {
            g.nodes()
                .iter()
                .find(|n| n.layer().name() == name)
                .unwrap()
                .output_shape()
                .dims()
                .to_vec()
        };
        assert_eq!(shape_of("pool1"), vec![64, 112, 112]);
        assert_eq!(shape_of("pool5"), vec![512, 7, 7]);
        assert_eq!(shape_of("flatten"), vec![25088]);
    }
}
