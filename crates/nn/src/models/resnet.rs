//! ResNet-18 (paper benchmark 6): basic residual blocks whose shortcut
//! edge gives the DAG its second source of independent branches
//! (Section V-F notes only SqueezeNet and ResNet have them).

use edgenn_tensor::Shape;

use crate::graph::{Graph, NodeId};
use crate::layer::{
    AddResidual, BatchNorm2d, Conv2d, Dense, Flatten, GlobalAvgPool, MaxPool2d, Relu, Softmax,
};
use crate::models::{ModelCtx, ModelScale};
use crate::Result;

/// Appends one basic residual block; returns the post-activation node.
///
/// `stride > 1` (or a channel change) adds the projection shortcut
/// (1x1 conv + batch norm) on the identity path.
fn basic_block(
    ctx: &mut ModelCtx,
    name: &str,
    in_ch: usize,
    out_ch: usize,
    stride: usize,
) -> Result<NodeId> {
    let entry = ctx.cursor();

    let seed = ctx.next_seed();
    ctx.add(
        Conv2d::new(format!("{name}_conv1"), in_ch, out_ch, 3, stride, 1, seed),
        &[entry],
    )?;
    let seed = ctx.next_seed();
    ctx.push(BatchNorm2d::new(format!("{name}_bn1"), out_ch, seed))?;
    ctx.push(Relu::new(format!("{name}_relu1")))?;
    let seed = ctx.next_seed();
    ctx.push(Conv2d::new(
        format!("{name}_conv2"),
        out_ch,
        out_ch,
        3,
        1,
        1,
        seed,
    ))?;
    let seed = ctx.next_seed();
    let main = ctx.push(BatchNorm2d::new(format!("{name}_bn2"), out_ch, seed))?;

    let shortcut = if stride != 1 || in_ch != out_ch {
        let seed = ctx.next_seed();
        ctx.add(
            Conv2d::new(format!("{name}_down"), in_ch, out_ch, 1, stride, 0, seed),
            &[entry],
        )?;
        let seed = ctx.next_seed();
        ctx.push(BatchNorm2d::new(format!("{name}_down_bn"), out_ch, seed))?
    } else {
        entry
    };

    ctx.add(AddResidual::new(format!("{name}_add")), &[main, shortcut])?;
    ctx.push(Relu::new(format!("{name}_relu2")))
}

/// Builds ResNet-18.
pub(crate) fn build(scale: ModelScale) -> Result<Graph> {
    match scale {
        ModelScale::Paper => build_paper(),
        ModelScale::Tiny => build_tiny(),
    }
}

fn build_paper() -> Result<Graph> {
    let mut ctx = ModelCtx::new("ResNet", Shape::new(&[3, 224, 224]), 0x2E5);
    let seed = ctx.next_seed();
    ctx.push(Conv2d::new("conv1", 3, 64, 7, 2, 3, seed))?; // 64x112x112
    let seed = ctx.next_seed();
    ctx.push(BatchNorm2d::new("bn1", 64, seed))?;
    ctx.push(Relu::new("relu1"))?;
    ctx.push(MaxPool2d::with_pad("pool1", 3, 2, 1))?; // 64x56x56

    let stages: [(usize, usize); 4] = [(64, 1), (128, 2), (256, 2), (512, 2)];
    let mut in_ch = 64usize;
    for (stage, &(out_ch, stride)) in stages.iter().enumerate() {
        for block in 0..2 {
            let s = if block == 0 { stride } else { 1 };
            basic_block(
                &mut ctx,
                &format!("layer{}_{}", stage + 1, block + 1),
                in_ch,
                out_ch,
                s,
            )?;
            in_ch = out_ch;
        }
    }

    ctx.push(GlobalAvgPool::new("gap"))?; // 512
    ctx.push(Flatten::new("flatten"))?;
    let seed = ctx.next_seed();
    ctx.push(Dense::new("fc", 512, 1000, seed))?;
    ctx.push(Softmax::new("softmax"))?;
    ctx.finish()
}

fn build_tiny() -> Result<Graph> {
    let mut ctx = ModelCtx::new("ResNet", Shape::new(&[3, 16, 16]), 0x2E5);
    let seed = ctx.next_seed();
    ctx.push(Conv2d::new("conv1", 3, 8, 3, 1, 1, seed))?;
    let seed = ctx.next_seed();
    ctx.push(BatchNorm2d::new("bn1", 8, seed))?;
    ctx.push(Relu::new("relu1"))?;
    basic_block(&mut ctx, "layer1_1", 8, 8, 1)?;
    basic_block(&mut ctx, "layer2_1", 8, 16, 2)?;
    ctx.push(GlobalAvgPool::new("gap"))?;
    ctx.push(Flatten::new("flatten"))?;
    let seed = ctx.next_seed();
    ctx.push(Dense::new("fc", 16, 10, seed))?;
    ctx.push(Softmax::new("softmax"))?;
    ctx.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Segment;

    #[test]
    fn paper_resnet18_has_eight_blocks() {
        let g = build(ModelScale::Paper).unwrap();
        let s = g.structure().unwrap();
        assert_eq!(s.parallel_segment_count(), 8, "2 blocks x 4 stages");
    }

    #[test]
    fn identity_blocks_have_empty_shortcut_branch() {
        let g = build(ModelScale::Paper).unwrap();
        let s = g.structure().unwrap();
        let mut empty_shortcuts = 0;
        let mut projection_shortcuts = 0;
        for seg in s.segments() {
            if let Segment::Parallel { branches, .. } = seg {
                let min = branches.iter().map(Vec::len).min().unwrap();
                if min == 0 {
                    empty_shortcuts += 1;
                } else {
                    projection_shortcuts += 1;
                }
            }
        }
        // Stage 1 has two identity blocks; stages 2-4 start with a
        // projection block followed by an identity block.
        assert_eq!(empty_shortcuts, 5);
        assert_eq!(projection_shortcuts, 3);
    }

    #[test]
    fn paper_shapes_match_published_resnet18() {
        let g = build(ModelScale::Paper).unwrap();
        let shape_of = |name: &str| {
            g.nodes()
                .iter()
                .find(|n| n.layer().name() == name)
                .unwrap()
                .output_shape()
                .dims()
                .to_vec()
        };
        assert_eq!(shape_of("pool1"), vec![64, 56, 56]);
        assert_eq!(shape_of("layer1_2_relu2"), vec![64, 56, 56]);
        assert_eq!(shape_of("layer2_1_relu2"), vec![128, 28, 28]);
        assert_eq!(shape_of("layer4_2_relu2"), vec![512, 7, 7]);
        assert_eq!(shape_of("gap"), vec![512]);
    }

    #[test]
    fn paper_resnet_flops_in_expected_band() {
        let g = build(ModelScale::Paper).unwrap();
        let gflops = g.total_flops() as f64 / 1e9;
        assert!(
            (3.0..5.0).contains(&gflops),
            "ResNet-18 is ~3.6 GFLOPs, got {gflops}"
        );
    }
}
