//! LeNet-5 (paper benchmark 2): the classic 7-layer CNN of LeCun et al.

use edgenn_tensor::Shape;

use crate::graph::Graph;
use crate::layer::{Dense, Flatten, MaxPool2d, Relu, Softmax};
use crate::models::{ModelCtx, ModelScale};
use crate::Result;

/// Builds LeNet-5.
///
/// Paper scale follows the published architecture on 1x32x32 inputs:
/// conv(6@5x5) -> pool -> conv(16@5x5) -> pool -> fc120 -> fc84 -> fc10.
/// ReLU replaces the historical tanh, matching the paper's CUDA benchmark
/// implementations.
pub(crate) fn build(scale: ModelScale) -> Result<Graph> {
    match scale {
        ModelScale::Paper => build_paper(),
        ModelScale::Tiny => build_tiny(),
    }
}

fn build_paper() -> Result<Graph> {
    let mut ctx = ModelCtx::new("LeNet", Shape::new(&[1, 32, 32]), 0x1E_5E7);
    ctx.conv_relu("conv1", 1, 6, 5, 1, 0)?; // 6x28x28
    ctx.push(MaxPool2d::new("pool1", 2, 2))?; // 6x14x14
    ctx.conv_relu("conv2", 6, 16, 5, 1, 0)?; // 16x10x10
    ctx.push(MaxPool2d::new("pool2", 2, 2))?; // 16x5x5
    ctx.push(Flatten::new("flatten"))?; // 400
    let seed = ctx.next_seed();
    ctx.push(Dense::new("fc1", 400, 120, seed))?;
    ctx.push(Relu::new("fc1_relu"))?;
    let seed = ctx.next_seed();
    ctx.push(Dense::new("fc2", 120, 84, seed))?;
    ctx.push(Relu::new("fc2_relu"))?;
    let seed = ctx.next_seed();
    ctx.push(Dense::new("fc3", 84, 10, seed))?;
    ctx.push(Softmax::new("softmax"))?;
    ctx.finish()
}

fn build_tiny() -> Result<Graph> {
    let mut ctx = ModelCtx::new("LeNet", Shape::new(&[1, 16, 16]), 0x1E_5E7);
    ctx.conv_relu("conv1", 1, 4, 3, 1, 0)?; // 4x14x14
    ctx.push(MaxPool2d::new("pool1", 2, 2))?; // 4x7x7
    ctx.conv_relu("conv2", 4, 8, 3, 1, 0)?; // 8x5x5
    ctx.push(MaxPool2d::new("pool2", 2, 2))?; // 8x2x2
    ctx.push(Flatten::new("flatten"))?; // 32
    let seed = ctx.next_seed();
    ctx.push(Dense::new("fc1", 32, 16, seed))?;
    ctx.push(Relu::new("fc1_relu"))?;
    let seed = ctx.next_seed();
    ctx.push(Dense::new("fc2", 16, 10, seed))?;
    ctx.push(Softmax::new("softmax"))?;
    ctx.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_lenet_shapes_follow_lecun_1998() {
        let g = build(ModelScale::Paper).unwrap();
        assert_eq!(g.input_shape().dims(), &[1, 32, 32]);
        assert_eq!(g.output_shape().dims(), &[10]);
        // conv1 output: 6x28x28, conv2 output: 16x10x10.
        let conv1 = g
            .nodes()
            .iter()
            .find(|n| n.layer().name() == "conv1")
            .unwrap();
        assert_eq!(conv1.output_shape().dims(), &[6, 28, 28]);
        let conv2 = g
            .nodes()
            .iter()
            .find(|n| n.layer().name() == "conv2")
            .unwrap();
        assert_eq!(conv2.output_shape().dims(), &[16, 10, 10]);
    }

    #[test]
    fn lenet_is_light() {
        // LeNet is the paper's smallest CNN; ~0.5-1 MFLOPs per inference.
        let g = build(ModelScale::Paper).unwrap();
        assert!(g.total_flops() < 10_000_000);
    }
}
