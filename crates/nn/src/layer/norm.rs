//! Normalization layers: local response normalization and batch norm.

use std::ops::Range;

use edgenn_tensor::{Shape, Tensor};

use crate::layer::params::LazyParam;
use crate::layer::{check_arity, validate_range, Layer, LayerClass};
use crate::{NnError, Result, Workload};

/// AlexNet-style local response normalization (across channels).
///
/// `y[c] = x[c] / (k + alpha/n * sum_{c' in window} x[c']^2)^beta`
///
/// Computing an output channel needs its neighboring *input* channels, so
/// partial execution reads the whole input but writes only its range —
/// the same access pattern as convolution, which keeps the unified-memory
/// traffic model consistent.
#[derive(Debug, Clone)]
pub struct LocalResponseNorm {
    name: String,
    size: usize,
    alpha: f32,
    beta: f32,
    k: f32,
}

impl LocalResponseNorm {
    /// Creates an LRN layer with AlexNet's published constants.
    pub fn alexnet_default(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            size: 5,
            alpha: 1e-4,
            beta: 0.75,
            k: 2.0,
        }
    }

    /// Creates an LRN layer with explicit constants.
    pub fn new(name: impl Into<String>, size: usize, alpha: f32, beta: f32, k: f32) -> Self {
        Self {
            name: name.into(),
            size,
            alpha,
            beta,
            k,
        }
    }

    fn check_input(&self, input: &Shape) -> Result<()> {
        if input.rank() != 3 {
            return Err(NnError::BadInputShape {
                layer: self.name.clone(),
                reason: format!("expected CHW input, got rank {}", input.rank()),
            });
        }
        Ok(())
    }
}

impl Layer for LocalResponseNorm {
    fn name(&self) -> &str {
        &self.name
    }

    fn class(&self) -> LayerClass {
        LayerClass::Norm
    }

    fn output_shape(&self, inputs: &[&Shape]) -> Result<Shape> {
        check_arity(&self.name, 1, inputs)?;
        self.check_input(inputs[0])?;
        Ok(inputs[0].clone())
    }

    fn forward_partial(&self, inputs: &[&Tensor], range: Range<usize>) -> Result<Tensor> {
        check_arity(&self.name, 1, inputs)?;
        self.check_input(inputs[0].shape())?;
        let channels = inputs[0].shape().dim(0)?;
        validate_range(&self.name, &range, channels)?;
        let plane = inputs[0].shape().dim(1)? * inputs[0].shape().dim(2)?;
        let src = inputs[0].as_slice();
        let half = self.size / 2;
        let mut data = Vec::with_capacity(range.len() * plane);
        for c in range.clone() {
            let lo = c.saturating_sub(half);
            let hi = (c + half).min(channels - 1);
            for p in 0..plane {
                let mut sq = 0.0f32;
                for cc in lo..=hi {
                    let v = src[cc * plane + p];
                    sq += v * v;
                }
                let denom = (self.k + self.alpha / self.size as f32 * sq).powf(self.beta);
                data.push(src[c * plane + p] / denom);
            }
        }
        let dims = [
            range.len(),
            inputs[0].shape().dim(1)?,
            inputs[0].shape().dim(2)?,
        ];
        Ok(Tensor::from_vec(data, &dims)?)
    }

    fn workload(&self, inputs: &[&Shape]) -> Result<Workload> {
        check_arity(&self.name, 1, inputs)?;
        self.check_input(inputs[0])?;
        let elems = inputs[0].num_elements() as u64;
        Ok(Workload {
            // window of squares + pow + divide per element
            flops: elems * (2 * self.size as u64 + 10),
            input_bytes: elems * 4 * self.size.min(3) as u64,
            output_bytes: elems * 4,
            weight_bytes: 0,
        })
    }
}

/// Inference-mode batch normalization over channels of a CHW map.
///
/// Folds the running statistics into per-channel scale/shift:
/// `y = x * gamma_hat[c] + beta_hat[c]`.
#[derive(Debug, Clone)]
pub struct BatchNorm2d {
    name: String,
    scale: LazyParam,
    shift: LazyParam,
}

impl BatchNorm2d {
    /// Creates a batch-norm layer with deterministic pseudo-random folded
    /// parameters (scale near 1, shift near 0), materialized lazily.
    pub fn new(name: impl Into<String>, channels: usize, seed: u64) -> Self {
        let scale = LazyParam::new(&[channels], 0.1, seed, 1.0);
        let shift = LazyParam::new(&[channels], 0.1, seed.wrapping_add(1), 0.0);
        Self {
            name: name.into(),
            scale,
            shift,
        }
    }

    /// Creates a batch-norm layer from explicit folded parameters.
    ///
    /// # Errors
    /// Returns [`NnError::BadInputShape`] when scale and shift differ in length.
    pub fn from_params(name: impl Into<String>, scale: Tensor, shift: Tensor) -> Result<Self> {
        let name = name.into();
        if scale.dims() != shift.dims() || scale.shape().rank() != 1 {
            return Err(NnError::BadInputShape {
                layer: name,
                reason: format!(
                    "scale {:?} and shift {:?} must be equal-length vectors",
                    scale.dims(),
                    shift.dims()
                ),
            });
        }
        Ok(Self {
            name,
            scale: LazyParam::from_tensor(scale),
            shift: LazyParam::from_tensor(shift),
        })
    }

    fn channels(&self) -> usize {
        self.scale.len()
    }

    fn check_input(&self, input: &Shape) -> Result<()> {
        if input.rank() != 3 || input.dim(0)? != self.channels() {
            return Err(NnError::BadInputShape {
                layer: self.name.clone(),
                reason: format!("expected [{}, H, W] input, got {}", self.channels(), input),
            });
        }
        Ok(())
    }
}

impl Layer for BatchNorm2d {
    fn name(&self) -> &str {
        &self.name
    }

    fn class(&self) -> LayerClass {
        LayerClass::Norm
    }

    fn output_shape(&self, inputs: &[&Shape]) -> Result<Shape> {
        check_arity(&self.name, 1, inputs)?;
        self.check_input(inputs[0])?;
        Ok(inputs[0].clone())
    }

    fn forward_partial(&self, inputs: &[&Tensor], range: Range<usize>) -> Result<Tensor> {
        check_arity(&self.name, 1, inputs)?;
        self.check_input(inputs[0].shape())?;
        validate_range(&self.name, &range, self.channels())?;
        let plane = inputs[0].shape().dim(1)? * inputs[0].shape().dim(2)?;
        let src = inputs[0].as_slice();
        let mut data = Vec::with_capacity(range.len() * plane);
        let (scale, shift) = (self.scale.get(), self.shift.get());
        for c in range.clone() {
            let (g, b) = (scale.as_slice()[c], shift.as_slice()[c]);
            data.extend(src[c * plane..(c + 1) * plane].iter().map(|&x| x * g + b));
        }
        let dims = [
            range.len(),
            inputs[0].shape().dim(1)?,
            inputs[0].shape().dim(2)?,
        ];
        Ok(Tensor::from_vec(data, &dims)?)
    }

    fn workload(&self, inputs: &[&Shape]) -> Result<Workload> {
        check_arity(&self.name, 1, inputs)?;
        self.check_input(inputs[0])?;
        let elems = inputs[0].num_elements() as u64;
        Ok(Workload {
            flops: 2 * elems,
            input_bytes: elems * 4,
            output_bytes: elems * 4,
            weight_bytes: (self.channels() * 2 * 4) as u64,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::test_support::assert_merge_invariant;

    #[test]
    fn lrn_is_identity_when_alpha_zero() {
        let lrn = LocalResponseNorm::new("lrn", 5, 0.0, 0.75, 1.0);
        let x = Tensor::random(&[4, 3, 3], 1.0, 1);
        let y = lrn.forward(&[&x]).unwrap();
        assert!(y.approx_eq(&x, 1e-6));
    }

    #[test]
    fn lrn_hand_checked_single_pixel() {
        // 3 channels, 1x1 planes, window 3, alpha=3 (so alpha/n = 1), beta=1, k=0.
        let lrn = LocalResponseNorm::new("lrn", 3, 3.0, 1.0, 0.0);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3, 1, 1]).unwrap();
        let y = lrn.forward(&[&x]).unwrap();
        // channel 0 window {0,1}: denom = 1+4 = 5
        // channel 1 window {0,1,2}: denom = 1+4+9 = 14
        // channel 2 window {1,2}: denom = 4+9 = 13
        assert!((y.as_slice()[0] - 1.0 / 5.0).abs() < 1e-6);
        assert!((y.as_slice()[1] - 2.0 / 14.0).abs() < 1e-6);
        assert!((y.as_slice()[2] - 3.0 / 13.0).abs() < 1e-6);
    }

    #[test]
    fn lrn_merge_invariant_despite_cross_channel_window() {
        let lrn = LocalResponseNorm::alexnet_default("lrn");
        let x = Tensor::random(&[8, 4, 4], 1.0, 5);
        assert_merge_invariant(&lrn, &[&x]);
    }

    #[test]
    fn batchnorm_applies_folded_affine() {
        let bn = BatchNorm2d::from_params(
            "bn",
            Tensor::from_vec(vec![2.0, 0.5], &[2]).unwrap(),
            Tensor::from_vec(vec![1.0, -1.0], &[2]).unwrap(),
        )
        .unwrap();
        let x = Tensor::ones(&[2, 2, 2]);
        let y = bn.forward(&[&x]).unwrap();
        assert_eq!(&y.as_slice()[0..4], &[3.0; 4]);
        assert_eq!(&y.as_slice()[4..8], &[-0.5; 4]);
    }

    #[test]
    fn batchnorm_merge_invariant() {
        let bn = BatchNorm2d::new("bn", 6, 7);
        let x = Tensor::random(&[6, 3, 3], 1.0, 8);
        assert_merge_invariant(&bn, &[&x]);
    }

    #[test]
    fn batchnorm_validates_params_and_input() {
        assert!(BatchNorm2d::from_params("bn", Tensor::zeros(&[2]), Tensor::zeros(&[3])).is_err());
        let bn = BatchNorm2d::new("bn", 4, 0);
        assert!(bn.output_shape(&[&Shape::new(&[5, 2, 2])]).is_err());
        assert!(bn.output_shape(&[&Shape::new(&[4, 2])]).is_err());
    }

    #[test]
    fn norm_workloads_have_positive_flops() {
        let shape = Shape::new(&[4, 8, 8]);
        assert!(
            LocalResponseNorm::alexnet_default("l")
                .workload(&[&shape])
                .unwrap()
                .flops
                > 0
        );
        assert!(
            BatchNorm2d::new("b", 4, 0)
                .workload(&[&shape])
                .unwrap()
                .flops
                > 0
        );
    }
}
