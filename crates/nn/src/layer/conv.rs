//! 2-D convolution via im2col + GEMM.

use std::ops::Range;
use std::sync::OnceLock;

use edgenn_tensor::{
    gemm_into, gemm_into_fused, gemm_pack_a, im2col_into, im2col_into_panels_i16, min_max,
    qgemm_panel_elems, qgemm_requant_prepacked_into, quantize_into, quantize_into_panels_i16,
    with_scratch, with_scratch_i16, with_scratch_i8, Conv2dGeometry, Epilogue, QuantParams,
    Requant, Shape, Tensor,
};

use crate::layer::params::{LazyParam, QuantizedWeights};
use crate::layer::{check_arity, validate_range, Layer, LayerClass};
use crate::{NnError, Result, Workload};

/// A 2-D convolution layer over CHW feature maps.
///
/// Weights are stored pre-flattened as `(out_channels, in_channels*kh*kw)`
/// so that intra-kernel partitioning is a row-range GEMM — exactly the way
/// the paper splits "the convolution results of the first k input channels"
/// between GPU and CPU (Section IV-D uses output-channel partitioning of
/// the first convolutional layer as its running example).
#[derive(Debug, Clone)]
pub struct Conv2d {
    name: String,
    out_channels: usize,
    kernel: usize,
    stride: usize,
    pad: usize,
    weight: LazyParam,
    bias: LazyParam,
    in_channels: usize,
    /// Int8 weight codes, derived from `weight` on first int8 use.
    qweight: OnceLock<QuantizedWeights>,
    /// Calibrated activation parameters ([`Layer::stamp_activation`]);
    /// absent means dynamic per-call min/max quantization.
    act_quant: OnceLock<QuantParams>,
    /// The weight matrix in the f32 GEMM's padded A layout, built by
    /// [`Layer::prepack`]. Padding past the last row-panel lets any
    /// output-channel range run the full microkernel without a
    /// per-row tail — and without per-call packing work.
    pweight: OnceLock<Vec<f32>>,
}

impl Conv2d {
    /// Creates a convolution with deterministic pseudo-random parameters.
    ///
    /// `seed` keeps weights reproducible across runs; magnitude is scaled
    /// by fan-in (He-style) so deep paper-scale nets stay numerically
    /// tame. Parameters materialize lazily on first functional use — the
    /// simulator-driven experiments never pay for them.
    pub fn new(
        name: impl Into<String>,
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        seed: u64,
    ) -> Self {
        let fan_in = (in_channels * kernel * kernel) as f32;
        let bound = (2.0 / fan_in).sqrt();
        let weight = LazyParam::new(
            &[out_channels, in_channels * kernel * kernel],
            bound,
            seed,
            0.0,
        );
        let bias = LazyParam::new(&[out_channels], 0.01, seed.wrapping_add(1), 0.0);
        Self {
            name: name.into(),
            out_channels,
            kernel,
            stride,
            pad,
            weight,
            bias,
            in_channels,
            qweight: OnceLock::new(),
            act_quant: OnceLock::new(),
            pweight: OnceLock::new(),
        }
    }

    /// Replaces the parameters with explicit tensors.
    ///
    /// # Errors
    /// Returns [`NnError::BadInputShape`] when the tensors do not match
    /// the declared geometry (`weight: [out_c, in_c*k*k]`, `bias: [out_c]`).
    pub fn with_params(mut self, weight: Tensor, bias: Tensor) -> Result<Self> {
        let taps = self.in_channels * self.kernel * self.kernel;
        if weight.dims() != [self.out_channels, taps] || bias.dims() != [self.out_channels] {
            return Err(NnError::BadInputShape {
                layer: self.name.clone(),
                reason: format!(
                    "weight {:?} / bias {:?} incompatible with [{}, {}] / [{}]",
                    weight.dims(),
                    bias.dims(),
                    self.out_channels,
                    taps,
                    self.out_channels
                ),
            });
        }
        self.weight = LazyParam::from_tensor(weight);
        self.bias = LazyParam::from_tensor(bias);
        self.qweight = OnceLock::new();
        self.pweight = OnceLock::new();
        Ok(self)
    }

    /// Output channel count.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// Kernel side length.
    pub fn kernel(&self) -> usize {
        self.kernel
    }

    fn geometry(&self, input: &Shape) -> Result<Conv2dGeometry> {
        if input.rank() != 3 {
            return Err(NnError::BadInputShape {
                layer: self.name.clone(),
                reason: format!("expected CHW input, got rank {}", input.rank()),
            });
        }
        if input.dim(0)? != self.in_channels {
            return Err(NnError::BadInputShape {
                layer: self.name.clone(),
                reason: format!(
                    "expected {} input channels, got {}",
                    self.in_channels,
                    input.dim(0)?
                ),
            });
        }
        let g = Conv2dGeometry {
            in_channels: self.in_channels,
            in_h: input.dim(1)?,
            in_w: input.dim(2)?,
            kernel_h: self.kernel,
            kernel_w: self.kernel,
            stride_h: self.stride,
            stride_w: self.stride,
            pad_h: self.pad,
            pad_w: self.pad,
        };
        g.validate()?;
        Ok(g)
    }
}

impl Layer for Conv2d {
    fn name(&self) -> &str {
        &self.name
    }

    fn class(&self) -> LayerClass {
        LayerClass::Conv
    }

    fn output_shape(&self, inputs: &[&Shape]) -> Result<Shape> {
        check_arity(&self.name, 1, inputs)?;
        let g = self.geometry(inputs[0])?;
        Ok(Shape::new(&[self.out_channels, g.out_h(), g.out_w()]))
    }

    fn forward_partial(&self, inputs: &[&Tensor], range: Range<usize>) -> Result<Tensor> {
        self.forward_partial_fused(inputs, range, false)
    }

    fn forward_partial_fused(
        &self,
        inputs: &[&Tensor],
        range: Range<usize>,
        relu: bool,
    ) -> Result<Tensor> {
        check_arity(&self.name, 1, inputs)?;
        validate_range(&self.name, &range, self.out_channels)?;
        let g = self.geometry(inputs[0].shape())?;
        let (oh, ow) = (g.out_h(), g.out_w());
        let patch = self.in_channels * self.kernel * self.kernel;
        let cols = oh * ow;
        // The weight matrix is pre-flattened row-major, so an output-channel
        // range is a contiguous sub-slice — no copy, unlike `slice_axis0`.
        // A prepacked weight keeps the trailing row-panel padding in the
        // slice so the GEMM runs full microkernel blocks on the tail.
        let w_part: &[f32] = if let Some(p) = self.pweight.get() {
            &p[range.start * patch..]
        } else {
            &self.weight.get().as_slice()[range.start * patch..range.end * patch]
        };
        let bias_full = self.bias.get();
        let bias = &bias_full.as_slice()[range.clone()];
        // Bias (and the fused ReLU) ride in the GEMM's write-back
        // epilogue — each output element is touched exactly once.
        let ep = if relu {
            Epilogue::BiasRelu { bias }
        } else {
            Epilogue::Bias { bias }
        };
        let mut out = vec![0.0f32; range.len() * cols];
        with_scratch(patch * cols, |col_buf| {
            im2col_into(inputs[0], &g, col_buf)?;
            gemm_into_fused(w_part, col_buf, &mut out, range.len(), patch, cols, ep);
            Ok::<(), edgenn_tensor::TensorError>(())
        })?;
        Ok(Tensor::from_vec(out, &[range.len(), oh, ow])?)
    }

    fn int8_ready(&self) -> bool {
        true
    }

    fn forward_partial_int8(
        &self,
        inputs: &[&Tensor],
        range: Range<usize>,
        relu: bool,
    ) -> Result<Tensor> {
        check_arity(&self.name, 1, inputs)?;
        validate_range(&self.name, &range, self.out_channels)?;
        let g = self.geometry(inputs[0].shape())?;
        let (oh, ow) = (g.out_h(), g.out_w());
        let patch = self.in_channels * self.kernel * self.kernel;
        let cols = oh * ow;
        let qw = self
            .qweight
            .get_or_init(|| QuantizedWeights::from_weight(self.weight.get()));
        let act = self.act_quant.get().copied().unwrap_or_else(|| {
            let (lo, hi) = min_max(inputs[0].as_slice());
            QuantParams::from_min_max(lo, hi)
        });
        let bias_full = self.bias.get();
        let rq = Requant {
            w_scales: &qw.scales[range.clone()],
            act,
            row_sums: &qw.row_sums[range.clone()],
            bias: Some(&bias_full.as_slice()[range.clone()]),
            relu,
        };
        // The output-channel range is a row-range slice of the prepacked
        // A (rows of stride `kp`, padded so any range leaves a full
        // microtile block readable).
        let kp = patch + (patch & 1);
        let awide = &qw.awide[range.start * kp..];
        let zero = i8::try_from(act.zero_point).unwrap_or(0);
        let mut out = vec![0.0f32; range.len() * cols];
        if self.kernel == 1 && self.stride == 1 && self.pad == 0 {
            // 1x1/stride-1: im2col is the identity, so quantize the
            // feature map straight into the GEMM's B panels — one pass
            // over the activation, no intermediate i8 buffer at all.
            with_scratch_i16(qgemm_panel_elems(patch, cols), |panels| {
                quantize_into_panels_i16(inputs[0].as_slice(), act, patch, cols, panels);
                qgemm_requant_prepacked_into(
                    awide,
                    panels,
                    &mut out,
                    range.len(),
                    patch,
                    cols,
                    &rq,
                );
            });
            return Ok(Tensor::from_vec(out, &[range.len(), oh, ow])?);
        }
        // Quantize the input feature map once, gather int8 patches
        // straight into the GEMM's pair-interleaved B panels (padding
        // taps carry the activation zero-point), then the prepacked GEMM
        // requantizes from its register accumulators. Two passes total
        // over activation-sized data — the weights were packed at init.
        with_scratch_i8(inputs[0].len(), |qx| {
            quantize_into(inputs[0].as_slice(), qx, act);
            with_scratch_i16(qgemm_panel_elems(patch, cols), |panels| {
                im2col_into_panels_i16(qx, &g, zero, panels)?;
                qgemm_requant_prepacked_into(
                    awide,
                    panels,
                    &mut out,
                    range.len(),
                    patch,
                    cols,
                    &rq,
                );
                Ok::<(), edgenn_tensor::TensorError>(())
            })
        })?;
        Ok(Tensor::from_vec(out, &[range.len(), oh, ow])?)
    }

    fn stamp_activation(&self, p: QuantParams) -> bool {
        self.act_quant.set(p).is_ok()
    }

    fn prepack(&self, int8: bool) -> u64 {
        let patch = self.in_channels * self.kernel * self.kernel;
        if int8 {
            if self.qweight.get().is_some() {
                return 0;
            }
            let qw = self
                .qweight
                .get_or_init(|| QuantizedWeights::from_weight(self.weight.get()));
            (qw.awide.len() * 2
                + qw.q.as_slice().len()
                + qw.scales.len() * 4
                + qw.row_sums.len() * 4) as u64
        } else {
            if self.pweight.get().is_some() {
                return 0;
            }
            let packed = self.pweight.get_or_init(|| {
                gemm_pack_a(self.weight.get().as_slice(), self.out_channels, patch)
            });
            let _ = self.bias.get();
            (packed.len() * 4) as u64
        }
    }

    fn input_split_supported(&self) -> bool {
        true
    }

    fn input_channels(&self, inputs: &[&Shape]) -> Result<usize> {
        check_arity(&self.name, 1, inputs)?;
        self.geometry(inputs[0])?;
        Ok(self.in_channels)
    }

    fn forward_partial_inputs(&self, inputs: &[&Tensor], range: Range<usize>) -> Result<Tensor> {
        check_arity(&self.name, 1, inputs)?;
        validate_range(&self.name, &range, self.in_channels)?;
        let g = self.geometry(inputs[0].shape())?;
        // Slice the input channels and gather the matching weight columns
        // (strided in the flattened weight matrix, so they do need a
        // gather — into scratch, not a fresh Vec); the result is a
        // full-size partial sum over this channel subset.
        let input_part = inputs[0].slice_axis0(range.start, range.end)?;
        let part_geometry = Conv2dGeometry {
            in_channels: range.len(),
            ..g
        };
        let (oh, ow) = (g.out_h(), g.out_w());
        let cols = oh * ow;
        let taps_per_channel = self.kernel * self.kernel;
        let part_taps = range.len() * taps_per_channel;
        let full_taps = self.in_channels * taps_per_channel;
        let w = self.weight.get().as_slice();
        let mut out = vec![0.0f32; self.out_channels * cols];
        with_scratch(part_taps * cols, |col_buf| {
            im2col_into(&input_part, &part_geometry, col_buf)?;
            with_scratch(self.out_channels * part_taps, |w_buf| {
                for (oc, dst) in w_buf.chunks_mut(part_taps).enumerate() {
                    let row = &w[oc * full_taps..(oc + 1) * full_taps];
                    dst.copy_from_slice(
                        &row[range.start * taps_per_channel..range.end * taps_per_channel],
                    );
                }
                gemm_into(w_buf, col_buf, &mut out, self.out_channels, part_taps, cols);
            });
            Ok::<(), edgenn_tensor::TensorError>(())
        })?;
        if range.start == 0 {
            // The bias is contributed exactly once, by the first partial.
            let bias_full = self.bias.get();
            let bias = bias_full.as_slice();
            for (c, chunk) in out.chunks_mut(cols).enumerate() {
                let b = bias[c];
                for v in chunk {
                    *v += b;
                }
            }
        }
        Ok(Tensor::from_vec(out, &[self.out_channels, oh, ow])?)
    }

    fn workload(&self, inputs: &[&Shape]) -> Result<Workload> {
        check_arity(&self.name, 1, inputs)?;
        let g = self.geometry(inputs[0])?;
        let out_elems = (self.out_channels * g.out_h() * g.out_w()) as u64;
        let taps = (self.in_channels * self.kernel * self.kernel) as u64;
        Ok(Workload {
            flops: 2 * out_elems * taps,
            input_bytes: (inputs[0].num_elements() * 4) as u64,
            output_bytes: out_elems * 4,
            weight_bytes: (self.weight.len() + self.bias.len()) as u64 * 4,
        })
    }

    fn working_set_bytes(&self, inputs: &[&Shape]) -> Result<u64> {
        check_arity(&self.name, 1, inputs)?;
        let g = self.geometry(inputs[0])?;
        // im2col patch matrix + the weight matrix streamed against it.
        let taps = (self.in_channels * self.kernel * self.kernel) as u64;
        let cols = (g.out_h() * g.out_w()) as u64;
        Ok((taps * cols + self.weight.len() as u64) * 4)
    }

    fn scratch_elems(&self, inputs: &[&Shape]) -> Result<u64> {
        check_arity(&self.name, 1, inputs)?;
        let g = self.geometry(inputs[0])?;
        let cols = g.out_h() * g.out_w();
        let taps = self.in_channels * self.kernel * self.kernel;
        // The worst path is `forward_partial_inputs` over all channels:
        // im2col buffer + gathered weight columns, plus the GEMM's packed-B
        // panels nested inside both. A full-range `forward_partial` needs
        // only the first and third terms, so this dominates every path.
        let im2col = taps * cols;
        let gathered_w = self.out_channels * taps;
        let packing = edgenn_tensor::gemm_pack_elems(self.out_channels, taps, cols);
        Ok((im2col + gathered_w + packing) as u64)
    }

    fn scratch_bytes(&self, inputs: &[&Shape]) -> Result<u64> {
        // Whichever precision's peak is larger bounds the arena: the f32
        // paths acquire `scratch_elems * 4` bytes; the int8 path holds
        // the quantized input (1 byte each) plus the GEMM's
        // pair-interleaved i16 B panels simultaneously (A is prepacked
        // at init, outside the arena).
        let f32_bytes = self.scratch_elems(inputs)? * 4;
        let g = self.geometry(inputs[0])?;
        let cols = g.out_h() * g.out_w();
        let taps = self.in_channels * self.kernel * self.kernel;
        let int8_bytes = (inputs[0].num_elements() + 2 * qgemm_panel_elems(taps, cols)) as u64;
        Ok(f32_bytes.max(int8_bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::test_support::assert_merge_invariant;

    fn input(c: usize, hw: usize, seed: u64) -> Tensor {
        Tensor::random(&[c, hw, hw], 1.0, seed)
    }

    #[test]
    fn output_shape_follows_conv_arithmetic() {
        let conv = Conv2d::new("c", 3, 96, 11, 4, 0, 0);
        let shape = conv.output_shape(&[&Shape::new(&[3, 227, 227])]).unwrap();
        assert_eq!(shape.dims(), &[96, 55, 55]);
    }

    #[test]
    fn rejects_wrong_rank_and_channels() {
        let conv = Conv2d::new("c", 3, 8, 3, 1, 1, 0);
        assert!(matches!(
            conv.output_shape(&[&Shape::new(&[3, 8])]),
            Err(NnError::BadInputShape { .. })
        ));
        assert!(matches!(
            conv.output_shape(&[&Shape::new(&[4, 8, 8])]),
            Err(NnError::BadInputShape { .. })
        ));
        assert!(matches!(
            conv.output_shape(&[]),
            Err(NnError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn identity_1x1_conv_reproduces_input_channel() {
        // A 1x1 conv whose weight row selects channel 0 with bias 0.
        let conv = Conv2d::new("c", 2, 1, 1, 1, 0, 0)
            .with_params(
                Tensor::from_vec(vec![1.0, 0.0], &[1, 2]).unwrap(),
                Tensor::zeros(&[1]),
            )
            .unwrap();
        let x = Tensor::arange(&[2, 3, 3]);
        let y = conv.forward(&[&x]).unwrap();
        assert_eq!(y.dims(), &[1, 3, 3]);
        assert_eq!(y.as_slice(), &x.as_slice()[0..9]);
    }

    #[test]
    fn hand_checked_2x2_convolution() {
        // 1-channel 3x3 input, single 2x2 all-ones kernel, bias 10:
        // each output = window sum + 10.
        let conv = Conv2d::new("c", 1, 1, 2, 1, 0, 0)
            .with_params(Tensor::ones(&[1, 4]), Tensor::filled(&[1], 10.0))
            .unwrap();
        let x = Tensor::arange(&[1, 3, 3]);
        let y = conv.forward(&[&x]).unwrap();
        assert_eq!(y.as_slice(), &[18.0, 22.0, 30.0, 34.0]);
    }

    #[test]
    fn bias_is_applied_per_output_channel() {
        let conv = Conv2d::new("c", 1, 2, 1, 1, 0, 0)
            .with_params(
                Tensor::zeros(&[2, 1]),
                Tensor::from_vec(vec![1.5, -2.5], &[2]).unwrap(),
            )
            .unwrap();
        let x = Tensor::ones(&[1, 2, 2]);
        let y = conv.forward(&[&x]).unwrap();
        assert_eq!(&y.as_slice()[0..4], &[1.5; 4]);
        assert_eq!(&y.as_slice()[4..8], &[-2.5; 4]);
    }

    #[test]
    fn merge_invariant_holds() {
        let conv = Conv2d::new("c", 3, 7, 3, 1, 1, 9);
        let x = input(3, 6, 1);
        assert_merge_invariant(&conv, &[&x]);
    }

    #[test]
    fn merge_invariant_holds_with_stride_and_pad() {
        let conv = Conv2d::new("c", 2, 5, 3, 2, 1, 4);
        let x = input(2, 9, 2);
        assert_merge_invariant(&conv, &[&x]);
    }

    #[test]
    fn partial_bias_uses_global_channel_index() {
        let conv = Conv2d::new("c", 1, 3, 1, 1, 0, 0)
            .with_params(
                Tensor::zeros(&[3, 1]),
                Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).unwrap(),
            )
            .unwrap();
        let x = Tensor::ones(&[1, 2, 2]);
        let part = conv.forward_partial(&[&x], 1..3).unwrap();
        assert_eq!(&part.as_slice()[0..4], &[2.0; 4]);
        assert_eq!(&part.as_slice()[4..8], &[3.0; 4]);
    }

    #[test]
    fn input_split_sum_invariant() {
        // Adding the partials of disjoint input-channel ranges must equal
        // the full forward pass (the paper's Section IV-D split).
        let conv = Conv2d::new("c", 6, 5, 3, 1, 1, 21);
        let x = input(6, 7, 22);
        let full = conv.forward(&[&x]).unwrap();
        for cut in 1..6 {
            let a = conv.forward_partial_inputs(&[&x], 0..cut).unwrap();
            let b = conv.forward_partial_inputs(&[&x], cut..6).unwrap();
            let merged = a.add(&b).unwrap();
            assert!(
                merged.approx_eq(&full, 1e-4),
                "cut {cut}: max diff {}",
                merged.max_abs_diff(&full).unwrap()
            );
        }
        assert!(conv.input_split_supported());
        assert_eq!(conv.input_channels(&[x.shape()]).unwrap(), 6);
    }

    #[test]
    fn input_split_three_way_sum() {
        let conv = Conv2d::new("c", 9, 4, 3, 2, 1, 31);
        let x = input(9, 8, 32);
        let full = conv.forward(&[&x]).unwrap();
        let p1 = conv.forward_partial_inputs(&[&x], 0..3).unwrap();
        let p2 = conv.forward_partial_inputs(&[&x], 3..7).unwrap();
        let p3 = conv.forward_partial_inputs(&[&x], 7..9).unwrap();
        let merged = p1.add(&p2).unwrap().add(&p3).unwrap();
        assert!(merged.approx_eq(&full, 1e-4));
    }

    #[test]
    fn input_split_bias_counted_once() {
        let conv = Conv2d::new("c", 2, 1, 1, 1, 0, 0)
            .with_params(Tensor::zeros(&[1, 2]), Tensor::filled(&[1], 5.0))
            .unwrap();
        let x = Tensor::ones(&[2, 2, 2]);
        let a = conv.forward_partial_inputs(&[&x], 0..1).unwrap();
        let b = conv.forward_partial_inputs(&[&x], 1..2).unwrap();
        assert_eq!(a.as_slice(), &[5.0; 4], "first partial carries the bias");
        assert_eq!(b.as_slice(), &[0.0; 4], "second partial must not re-add it");
    }

    #[test]
    fn input_split_validates_range() {
        let conv = Conv2d::new("c", 4, 2, 3, 1, 1, 0);
        let x = input(4, 6, 1);
        assert!(matches!(
            conv.forward_partial_inputs(&[&x], 2..2),
            Err(NnError::BadPartition { .. })
        ));
        assert!(matches!(
            conv.forward_partial_inputs(&[&x], 0..5),
            Err(NnError::BadPartition { .. })
        ));
    }

    #[test]
    fn scratch_bound_dominates_every_execution_path() {
        let conv = Conv2d::new("c", 6, 5, 3, 1, 1, 21);
        let shape = Shape::new(&[6, 7, 7]);
        let bound = conv.scratch_elems(&[&shape]).unwrap();
        let cols = 7 * 7; // stride 1 pad 1 preserves the 7x7 extent
        let taps = 6 * 3 * 3;
        let pack = edgenn_tensor::gemm_pack_elems(5, taps, cols) as u64;
        // forward / forward_partial acquire im2col + packed panels.
        assert!(bound >= (taps * cols) as u64 + pack);
        // forward_partial_inputs additionally gathers weight columns; the
        // acquisition is largest over the full channel range.
        assert!(bound >= (taps * cols + 5 * taps) as u64 + pack);
        // Layers without arena use must report zero.
        let dense = crate::layer::Dense::new("d", 4, 2, 0);
        assert_eq!(dense.scratch_elems(&[&Shape::new(&[4])]).unwrap(), 0);
    }

    #[test]
    fn int8_partials_merge_bitwise() {
        // Requantization is per output row, so channel-range partials are
        // *bitwise* identical to the full pass — integer accumulation has
        // no order sensitivity and the dynamic activation parameters
        // derive from the same input either way.
        let conv = Conv2d::new("c", 3, 6, 3, 1, 1, 9);
        let x = input(3, 6, 1);
        let full = conv.forward_partial_int8(&[&x], 0..6, false).unwrap();
        for cut in 1..6 {
            let a = conv.forward_partial_int8(&[&x], 0..cut, false).unwrap();
            let b = conv.forward_partial_int8(&[&x], cut..6, false).unwrap();
            let merged = Tensor::concat_axis0(&[&a, &b]).unwrap();
            assert_eq!(merged.as_slice(), full.as_slice(), "cut {cut}");
        }
    }

    #[test]
    fn int8_tracks_the_f32_reference() {
        let conv = Conv2d::new("c", 3, 8, 3, 1, 1, 5);
        let x = input(3, 8, 6);
        let f = conv.forward(&[&x]).unwrap();
        let q = conv.forward_partial_int8(&[&x], 0..8, false).unwrap();
        assert!(
            q.approx_eq(&f, 0.05),
            "max diff {}",
            q.max_abs_diff(&f).unwrap()
        );
        assert!(conv.int8_ready());
    }

    #[test]
    fn int8_fused_relu_clamps_like_f32() {
        let conv = Conv2d::new("c", 2, 4, 3, 1, 0, 7);
        let x = input(2, 6, 8);
        let q = conv.forward_partial_int8(&[&x], 0..4, true).unwrap();
        assert!(q.as_slice().iter().all(|&v| v >= 0.0));
        let f = conv.forward_partial_fused(&[&x], 0..4, true).unwrap();
        assert!(q.approx_eq(&f, 0.05));
    }

    #[test]
    fn fused_epilogue_is_bitwise_identical_to_separate_bias() {
        // The epilogue computes `acc + bias` exactly like the historical
        // separate bias loop did; fusing must not change a single bit.
        let conv = Conv2d::new("c", 3, 7, 3, 1, 1, 11);
        let x = input(3, 6, 12);
        let plain = conv.forward_partial(&[&x], 0..7).unwrap();
        let mut manual = conv.forward_partial_fused(&[&x], 0..7, true).unwrap();
        // Un-clamp: wherever the fused output is positive it must equal
        // the plain output bitwise.
        for (m, p) in manual.as_mut_slice().iter_mut().zip(plain.as_slice()) {
            if *m > 0.0 {
                assert_eq!(*m, *p);
                *m = *p;
            } else {
                assert!(*p <= 0.0, "fused relu zeroed a positive value");
            }
        }
    }

    #[test]
    fn stamped_activation_params_override_dynamic() {
        let conv = Conv2d::new("c", 2, 3, 3, 1, 1, 13);
        let x = input(2, 5, 14);
        let dynamic = conv.forward_partial_int8(&[&x], 0..3, false).unwrap();
        // Stamp a much wider range: coarser codes, different output.
        assert!(conv.stamp_activation(QuantParams::from_min_max(-64.0, 64.0)));
        assert!(!conv.stamp_activation(QuantParams::from_min_max(-1.0, 1.0)));
        let stamped = conv.forward_partial_int8(&[&x], 0..3, false).unwrap();
        assert_ne!(dynamic.as_slice(), stamped.as_slice());
    }

    #[test]
    fn workload_counts_macs() {
        let conv = Conv2d::new("c", 3, 4, 3, 1, 1, 0);
        let w = conv.workload(&[&Shape::new(&[3, 8, 8])]).unwrap();
        // out elems = 4*8*8 = 256; taps = 27; flops = 2*256*27.
        assert_eq!(w.flops, 2 * 256 * 27);
        assert_eq!(w.input_bytes, 3 * 8 * 8 * 4);
        assert_eq!(w.output_bytes, 256 * 4);
        assert_eq!(w.weight_bytes, (4 * 27 + 4) * 4);
    }

    #[test]
    fn workload_partial_scales_with_channels() {
        let conv = Conv2d::new("c", 3, 4, 3, 1, 1, 0);
        let shape = Shape::new(&[3, 8, 8]);
        let full = conv.workload(&[&shape]).unwrap();
        let half = conv.workload_partial(&[&shape], 0..2).unwrap();
        assert_eq!(half.flops, full.flops / 2);
        assert_eq!(half.input_bytes, full.input_bytes);
    }
}
