//! Structural layers: channel concatenation, residual addition, flatten.

use std::ops::Range;

use edgenn_tensor::{Shape, Tensor};

use crate::layer::{check_arity, require_full_range, validate_range, Layer, LayerClass};
use crate::{NnError, Result, Workload};

/// Channel-axis concatenation of two or more CHW maps.
///
/// This is SqueezeNet's fire-module join (`concat` in the paper's Figure 5)
/// and the synchronization point where EdgeNN's inter-kernel co-running
/// merges independent CPU and GPU branches.
#[derive(Debug, Clone)]
pub struct Concat {
    name: String,
    arity: usize,
}

impl Concat {
    /// Creates a concat layer joining `arity` inputs.
    pub fn new(name: impl Into<String>, arity: usize) -> Self {
        Self {
            name: name.into(),
            arity,
        }
    }

    fn check_shapes(&self, inputs: &[&Shape]) -> Result<()> {
        check_arity(&self.name, self.arity, inputs)?;
        let first = inputs[0];
        for s in inputs.iter().skip(1) {
            if s.rank() != first.rank() || s.dims()[1..] != first.dims()[1..] {
                return Err(NnError::BadInputShape {
                    layer: self.name.clone(),
                    reason: format!("trailing dims differ: {first} vs {s}"),
                });
            }
        }
        Ok(())
    }
}

impl Layer for Concat {
    fn name(&self) -> &str {
        &self.name
    }

    fn class(&self) -> LayerClass {
        LayerClass::Combine
    }

    fn arity(&self) -> usize {
        self.arity
    }

    fn is_concat(&self) -> bool {
        true
    }

    fn output_shape(&self, inputs: &[&Shape]) -> Result<Shape> {
        self.check_shapes(inputs)?;
        let axis0 = inputs.iter().map(|s| s.dims()[0]).sum();
        inputs[0].with_dim(0, axis0).map_err(Into::into)
    }

    fn forward_partial(&self, inputs: &[&Tensor], range: Range<usize>) -> Result<Tensor> {
        let shapes: Vec<&Shape> = inputs.iter().map(|t| t.shape()).collect();
        self.check_shapes(&shapes)?;
        let total: usize = shapes.iter().map(|s| s.dims()[0]).sum();
        validate_range(&self.name, &range, total)?;
        // Map the global output range onto per-input sub-ranges.
        let mut parts: Vec<Tensor> = Vec::new();
        let mut offset = 0usize;
        for input in inputs {
            let len = input.shape().dim(0)?;
            let lo = range.start.max(offset);
            let hi = range.end.min(offset + len);
            if lo < hi {
                parts.push(input.slice_axis0(lo - offset, hi - offset)?);
            }
            offset += len;
        }
        let refs: Vec<&Tensor> = parts.iter().collect();
        Tensor::concat_axis0(&refs).map_err(Into::into)
    }

    fn workload(&self, inputs: &[&Shape]) -> Result<Workload> {
        self.check_shapes(inputs)?;
        let bytes: u64 = inputs.iter().map(|s| (s.num_elements() * 4) as u64).sum();
        Ok(Workload {
            flops: 0,
            input_bytes: bytes,
            output_bytes: bytes,
            weight_bytes: 0,
        })
    }
}

/// Element-wise residual addition of two equal-shape maps (ResNet).
#[derive(Debug, Clone)]
pub struct AddResidual {
    name: String,
}

impl AddResidual {
    /// Creates a residual-add layer.
    pub fn new(name: impl Into<String>) -> Self {
        Self { name: name.into() }
    }
}

impl Layer for AddResidual {
    fn name(&self) -> &str {
        &self.name
    }

    fn class(&self) -> LayerClass {
        LayerClass::Combine
    }

    fn arity(&self) -> usize {
        2
    }

    fn output_shape(&self, inputs: &[&Shape]) -> Result<Shape> {
        check_arity(&self.name, 2, inputs)?;
        if inputs[0] != inputs[1] {
            return Err(NnError::BadInputShape {
                layer: self.name.clone(),
                reason: format!("residual shapes differ: {} vs {}", inputs[0], inputs[1]),
            });
        }
        Ok(inputs[0].clone())
    }

    fn forward_partial(&self, inputs: &[&Tensor], range: Range<usize>) -> Result<Tensor> {
        self.forward_partial_fused(inputs, range, false)
    }

    fn forward_partial_fused(
        &self,
        inputs: &[&Tensor],
        range: Range<usize>,
        relu: bool,
    ) -> Result<Tensor> {
        check_arity(&self.name, 2, inputs)?;
        let shape = self.output_shape(&[inputs[0].shape(), inputs[1].shape()])?;
        let units = shape.dim(0)?;
        validate_range(&self.name, &range, units)?;
        let a = inputs[0].slice_axis0(range.start, range.end)?;
        let b = inputs[1].slice_axis0(range.start, range.end)?;
        let mut out = a.add(&b)?;
        // ResNet's post-residual ReLU rides in the same elementwise pass
        // when fused: `max(a + b, 0)` is exactly add-then-clamp, so the
        // compiled graph matches the uncompiled one bitwise.
        if relu {
            edgenn_tensor::ops::relu_in_place(out.as_mut_slice());
        }
        Ok(out)
    }

    fn workload(&self, inputs: &[&Shape]) -> Result<Workload> {
        check_arity(&self.name, 2, inputs)?;
        let elems = inputs[0].num_elements() as u64;
        Ok(Workload {
            flops: elems,
            input_bytes: 2 * elems * 4,
            output_bytes: elems * 4,
            weight_bytes: 0,
        })
    }
}

/// A compile-time constant: a zero-arity node holding a fixed tensor.
///
/// Model builders never emit these; they come from the graph compiler's
/// constant-folding pass (an all-constant subgraph collapses into one
/// `Constant`) and from tests that exercise it.
#[derive(Debug, Clone)]
pub struct Constant {
    name: String,
    value: Tensor,
}

impl Constant {
    /// Creates a constant node producing `value`.
    pub fn new(name: impl Into<String>, value: Tensor) -> Self {
        Self {
            name: name.into(),
            value,
        }
    }
}

impl Layer for Constant {
    fn name(&self) -> &str {
        &self.name
    }

    fn class(&self) -> LayerClass {
        LayerClass::Combine
    }

    fn arity(&self) -> usize {
        0
    }

    fn output_shape(&self, inputs: &[&Shape]) -> Result<Shape> {
        check_arity(&self.name, 0, inputs)?;
        Ok(self.value.shape().clone())
    }

    fn partitionable(&self) -> bool {
        false
    }

    fn partition_units(&self, _inputs: &[&Shape]) -> Result<usize> {
        Ok(1)
    }

    fn constant_value(&self) -> Option<&Tensor> {
        Some(&self.value)
    }

    fn forward_partial(&self, inputs: &[&Tensor], range: Range<usize>) -> Result<Tensor> {
        require_full_range(&self.name, &range, 1)?;
        check_arity(&self.name, 0, inputs)?;
        Ok(self.value.clone())
    }

    fn workload(&self, inputs: &[&Shape]) -> Result<Workload> {
        check_arity(&self.name, 0, inputs)?;
        Ok(Workload {
            output_bytes: (self.value.len() * 4) as u64,
            ..Workload::default()
        })
    }
}

/// An axis-0 slice `input[start..end]` of its single input.
///
/// The structural counterpart of [`Concat`]: a split emitted as explicit
/// slice nodes. The compiler's split/concat simplification cancels a
/// concat of slices that covers its producer in order, and removes
/// full-range slices as identities.
#[derive(Debug, Clone)]
pub struct Slice {
    name: String,
    start: usize,
    end: usize,
}

impl Slice {
    /// Creates a slice keeping axis-0 units `start..end`.
    pub fn new(name: impl Into<String>, start: usize, end: usize) -> Self {
        Self {
            name: name.into(),
            start,
            end,
        }
    }

    /// The kept axis-0 range.
    pub fn range(&self) -> Range<usize> {
        self.start..self.end
    }

    fn check_input(&self, input: &Shape) -> Result<()> {
        if self.start >= self.end || self.end > input.dim(0)? {
            return Err(NnError::BadInputShape {
                layer: self.name.clone(),
                reason: format!(
                    "slice {}..{} out of bounds for {input}",
                    self.start, self.end
                ),
            });
        }
        Ok(())
    }

    /// True when the slice covers its whole input (an identity).
    pub fn covers(&self, input: &Shape) -> bool {
        self.start == 0 && input.dim(0).is_ok_and(|d| d == self.end)
    }
}

impl Layer for Slice {
    fn name(&self) -> &str {
        &self.name
    }

    fn class(&self) -> LayerClass {
        LayerClass::Combine
    }

    fn output_shape(&self, inputs: &[&Shape]) -> Result<Shape> {
        check_arity(&self.name, 1, inputs)?;
        self.check_input(inputs[0])?;
        inputs[0]
            .with_dim(0, self.end - self.start)
            .map_err(Into::into)
    }

    fn slice_range(&self) -> Option<Range<usize>> {
        Some(self.start..self.end)
    }

    fn forward_partial(&self, inputs: &[&Tensor], range: Range<usize>) -> Result<Tensor> {
        check_arity(&self.name, 1, inputs)?;
        self.check_input(inputs[0].shape())?;
        validate_range(&self.name, &range, self.end - self.start)?;
        inputs[0]
            .slice_axis0(self.start + range.start, self.start + range.end)
            .map_err(Into::into)
    }

    fn workload(&self, inputs: &[&Shape]) -> Result<Workload> {
        check_arity(&self.name, 1, inputs)?;
        self.check_input(inputs[0])?;
        let out = self.output_shape(inputs)?;
        Ok(Workload {
            flops: 0,
            input_bytes: (inputs[0].num_elements() * 4) as u64,
            output_bytes: (out.num_elements() * 4) as u64,
            weight_bytes: 0,
        })
    }
}

/// Flattens any tensor to rank 1.
///
/// Pure data movement with no reordering (tensors are already contiguous
/// row-major), so it is modelled as zero-FLOP. Not partitionable: it sits
/// between conv and fc stages where the partition axis changes meaning.
#[derive(Debug, Clone)]
pub struct Flatten {
    name: String,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new(name: impl Into<String>) -> Self {
        Self { name: name.into() }
    }
}

impl Layer for Flatten {
    fn name(&self) -> &str {
        &self.name
    }

    fn class(&self) -> LayerClass {
        LayerClass::Combine
    }

    fn output_shape(&self, inputs: &[&Shape]) -> Result<Shape> {
        check_arity(&self.name, 1, inputs)?;
        Ok(Shape::new(&[inputs[0].num_elements()]))
    }

    fn partitionable(&self) -> bool {
        false
    }

    fn partition_units(&self, _inputs: &[&Shape]) -> Result<usize> {
        Ok(1)
    }

    fn forward_partial(&self, inputs: &[&Tensor], range: Range<usize>) -> Result<Tensor> {
        check_arity(&self.name, 1, inputs)?;
        require_full_range(&self.name, &range, 1)?;
        inputs[0].reshape(&[inputs[0].len()]).map_err(Into::into)
    }

    fn workload(&self, inputs: &[&Shape]) -> Result<Workload> {
        check_arity(&self.name, 1, inputs)?;
        let bytes = (inputs[0].num_elements() * 4) as u64;
        Ok(Workload {
            flops: 0,
            input_bytes: bytes,
            output_bytes: bytes,
            weight_bytes: 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::test_support::assert_merge_invariant;

    #[test]
    fn concat_joins_channels() {
        let a = Tensor::filled(&[2, 2, 2], 1.0);
        let b = Tensor::filled(&[3, 2, 2], 2.0);
        let cat = Concat::new("cat", 2);
        let y = cat.forward(&[&a, &b]).unwrap();
        assert_eq!(y.dims(), &[5, 2, 2]);
        assert_eq!(y.as_slice()[0], 1.0);
        assert_eq!(y.as_slice()[8], 2.0);
    }

    #[test]
    fn concat_partial_spans_input_boundary() {
        let a = Tensor::arange(&[2, 1, 1]);
        let b = Tensor::arange(&[2, 1, 1]).scale(10.0);
        let cat = Concat::new("cat", 2);
        let part = cat.forward_partial(&[&a, &b], 1..3).unwrap();
        assert_eq!(part.as_slice(), &[1.0, 0.0]);
        assert_merge_invariant(&cat, &[&a, &b]);
    }

    #[test]
    fn concat_validates_trailing_dims_and_arity() {
        let a = Tensor::zeros(&[2, 2, 2]);
        let b = Tensor::zeros(&[2, 3, 2]);
        let cat = Concat::new("cat", 2);
        assert!(matches!(
            cat.forward(&[&a, &b]),
            Err(NnError::BadInputShape { .. })
        ));
        assert!(matches!(
            cat.forward(&[&a]),
            Err(NnError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn residual_adds_elementwise() {
        let a = Tensor::arange(&[2, 2, 2]);
        let b = Tensor::ones(&[2, 2, 2]);
        let add = AddResidual::new("add");
        let y = add.forward(&[&a, &b]).unwrap();
        assert_eq!(y.as_slice()[3], 4.0);
        assert_merge_invariant(&add, &[&a, &b]);
    }

    #[test]
    fn residual_requires_equal_shapes() {
        let add = AddResidual::new("add");
        assert!(add
            .output_shape(&[&Shape::new(&[2, 2, 2]), &Shape::new(&[2, 2, 3])])
            .is_err());
    }

    #[test]
    fn flatten_reshapes_without_reordering() {
        let x = Tensor::arange(&[2, 3, 4]);
        let f = Flatten::new("flat");
        let y = f.forward(&[&x]).unwrap();
        assert_eq!(y.dims(), &[24]);
        assert_eq!(y.as_slice(), x.as_slice());
        assert!(!f.partitionable());
    }

    #[test]
    fn combine_workloads_are_pure_traffic() {
        let s = Shape::new(&[4, 4, 4]);
        assert_eq!(Concat::new("c", 2).workload(&[&s, &s]).unwrap().flops, 0);
        assert_eq!(Flatten::new("f").workload(&[&s]).unwrap().flops, 0);
        assert!(AddResidual::new("a").workload(&[&s, &s]).unwrap().flops > 0);
    }

    #[test]
    fn residual_fused_relu_matches_add_then_clamp_bitwise() {
        let a = Tensor::random(&[6, 3, 3], 1.0, 7);
        let b = Tensor::random(&[6, 3, 3], 1.0, 8);
        let add = AddResidual::new("add");
        let mut reference = add.forward(&[&a, &b]).unwrap();
        edgenn_tensor::ops::relu_in_place(reference.as_mut_slice());
        let fused = add.forward_partial_fused(&[&a, &b], 0..6, true).unwrap();
        assert_eq!(fused.as_slice(), reference.as_slice());
        // Partial fused ranges tile to the same result.
        let lo = add.forward_partial_fused(&[&a, &b], 0..2, true).unwrap();
        let hi = add.forward_partial_fused(&[&a, &b], 2..6, true).unwrap();
        assert_eq!(lo.as_slice(), &reference.as_slice()[..lo.len()]);
        assert_eq!(hi.as_slice(), &reference.as_slice()[lo.len()..]);
    }

    #[test]
    fn constant_produces_its_value() {
        let v = Tensor::arange(&[3, 2]);
        let c = Constant::new("k", v.clone());
        assert_eq!(c.arity(), 0);
        assert!(!c.partitionable());
        assert_eq!(c.constant_value().unwrap(), &v);
        assert_eq!(c.output_shape(&[]).unwrap(), *v.shape());
        assert_eq!(c.forward(&[]).unwrap(), v);
        assert_eq!(c.workload(&[]).unwrap().flops, 0);
        assert!(matches!(
            c.forward(&[&v]),
            Err(NnError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn slice_extracts_axis0_range() {
        let x = Tensor::arange(&[5, 2]);
        let s = Slice::new("s", 1, 4);
        let y = s.forward(&[&x]).unwrap();
        assert_eq!(y.dims(), &[3, 2]);
        assert_eq!(y.as_slice(), &x.as_slice()[2..8]);
        // Partial ranges offset into the kept window.
        let part = s.forward_partial(&[&x], 1..3).unwrap();
        assert_eq!(part.as_slice(), &x.as_slice()[4..8]);
        assert_merge_invariant(&s, &[&x]);
        assert!(Slice::new("full", 0, 5).covers(x.shape()));
        assert!(!s.covers(x.shape()));
    }

    #[test]
    fn slice_rejects_out_of_bounds() {
        let x = Tensor::arange(&[4, 2]);
        assert!(matches!(
            Slice::new("s", 2, 2).forward(&[&x]),
            Err(NnError::BadInputShape { .. })
        ));
        assert!(matches!(
            Slice::new("s", 0, 5).forward(&[&x]),
            Err(NnError::BadInputShape { .. })
        ));
    }
}
