//! Structural layers: channel concatenation, residual addition, flatten.

use std::ops::Range;

use edgenn_tensor::{Shape, Tensor};

use crate::layer::{check_arity, require_full_range, validate_range, Layer, LayerClass};
use crate::{NnError, Result, Workload};

/// Channel-axis concatenation of two or more CHW maps.
///
/// This is SqueezeNet's fire-module join (`concat` in the paper's Figure 5)
/// and the synchronization point where EdgeNN's inter-kernel co-running
/// merges independent CPU and GPU branches.
#[derive(Debug, Clone)]
pub struct Concat {
    name: String,
    arity: usize,
}

impl Concat {
    /// Creates a concat layer joining `arity` inputs.
    pub fn new(name: impl Into<String>, arity: usize) -> Self {
        Self {
            name: name.into(),
            arity,
        }
    }

    fn check_shapes(&self, inputs: &[&Shape]) -> Result<()> {
        check_arity(&self.name, self.arity, inputs)?;
        let first = inputs[0];
        for s in inputs.iter().skip(1) {
            if s.rank() != first.rank() || s.dims()[1..] != first.dims()[1..] {
                return Err(NnError::BadInputShape {
                    layer: self.name.clone(),
                    reason: format!("trailing dims differ: {first} vs {s}"),
                });
            }
        }
        Ok(())
    }
}

impl Layer for Concat {
    fn name(&self) -> &str {
        &self.name
    }

    fn class(&self) -> LayerClass {
        LayerClass::Combine
    }

    fn arity(&self) -> usize {
        self.arity
    }

    fn output_shape(&self, inputs: &[&Shape]) -> Result<Shape> {
        self.check_shapes(inputs)?;
        let axis0 = inputs.iter().map(|s| s.dims()[0]).sum();
        inputs[0].with_dim(0, axis0).map_err(Into::into)
    }

    fn forward_partial(&self, inputs: &[&Tensor], range: Range<usize>) -> Result<Tensor> {
        let shapes: Vec<&Shape> = inputs.iter().map(|t| t.shape()).collect();
        self.check_shapes(&shapes)?;
        let total: usize = shapes.iter().map(|s| s.dims()[0]).sum();
        validate_range(&self.name, &range, total)?;
        // Map the global output range onto per-input sub-ranges.
        let mut parts: Vec<Tensor> = Vec::new();
        let mut offset = 0usize;
        for input in inputs {
            let len = input.shape().dim(0)?;
            let lo = range.start.max(offset);
            let hi = range.end.min(offset + len);
            if lo < hi {
                parts.push(input.slice_axis0(lo - offset, hi - offset)?);
            }
            offset += len;
        }
        let refs: Vec<&Tensor> = parts.iter().collect();
        Tensor::concat_axis0(&refs).map_err(Into::into)
    }

    fn workload(&self, inputs: &[&Shape]) -> Result<Workload> {
        self.check_shapes(inputs)?;
        let bytes: u64 = inputs.iter().map(|s| (s.num_elements() * 4) as u64).sum();
        Ok(Workload {
            flops: 0,
            input_bytes: bytes,
            output_bytes: bytes,
            weight_bytes: 0,
        })
    }
}

/// Element-wise residual addition of two equal-shape maps (ResNet).
#[derive(Debug, Clone)]
pub struct AddResidual {
    name: String,
}

impl AddResidual {
    /// Creates a residual-add layer.
    pub fn new(name: impl Into<String>) -> Self {
        Self { name: name.into() }
    }
}

impl Layer for AddResidual {
    fn name(&self) -> &str {
        &self.name
    }

    fn class(&self) -> LayerClass {
        LayerClass::Combine
    }

    fn arity(&self) -> usize {
        2
    }

    fn output_shape(&self, inputs: &[&Shape]) -> Result<Shape> {
        check_arity(&self.name, 2, inputs)?;
        if inputs[0] != inputs[1] {
            return Err(NnError::BadInputShape {
                layer: self.name.clone(),
                reason: format!("residual shapes differ: {} vs {}", inputs[0], inputs[1]),
            });
        }
        Ok(inputs[0].clone())
    }

    fn forward_partial(&self, inputs: &[&Tensor], range: Range<usize>) -> Result<Tensor> {
        check_arity(&self.name, 2, inputs)?;
        let shape = self.output_shape(&[inputs[0].shape(), inputs[1].shape()])?;
        let units = shape.dim(0)?;
        validate_range(&self.name, &range, units)?;
        let a = inputs[0].slice_axis0(range.start, range.end)?;
        let b = inputs[1].slice_axis0(range.start, range.end)?;
        a.add(&b).map_err(Into::into)
    }

    fn workload(&self, inputs: &[&Shape]) -> Result<Workload> {
        check_arity(&self.name, 2, inputs)?;
        let elems = inputs[0].num_elements() as u64;
        Ok(Workload {
            flops: elems,
            input_bytes: 2 * elems * 4,
            output_bytes: elems * 4,
            weight_bytes: 0,
        })
    }
}

/// Flattens any tensor to rank 1.
///
/// Pure data movement with no reordering (tensors are already contiguous
/// row-major), so it is modelled as zero-FLOP. Not partitionable: it sits
/// between conv and fc stages where the partition axis changes meaning.
#[derive(Debug, Clone)]
pub struct Flatten {
    name: String,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new(name: impl Into<String>) -> Self {
        Self { name: name.into() }
    }
}

impl Layer for Flatten {
    fn name(&self) -> &str {
        &self.name
    }

    fn class(&self) -> LayerClass {
        LayerClass::Combine
    }

    fn output_shape(&self, inputs: &[&Shape]) -> Result<Shape> {
        check_arity(&self.name, 1, inputs)?;
        Ok(Shape::new(&[inputs[0].num_elements()]))
    }

    fn partitionable(&self) -> bool {
        false
    }

    fn partition_units(&self, _inputs: &[&Shape]) -> Result<usize> {
        Ok(1)
    }

    fn forward_partial(&self, inputs: &[&Tensor], range: Range<usize>) -> Result<Tensor> {
        check_arity(&self.name, 1, inputs)?;
        require_full_range(&self.name, &range, 1)?;
        inputs[0].reshape(&[inputs[0].len()]).map_err(Into::into)
    }

    fn workload(&self, inputs: &[&Shape]) -> Result<Workload> {
        check_arity(&self.name, 1, inputs)?;
        let bytes = (inputs[0].num_elements() * 4) as u64;
        Ok(Workload {
            flops: 0,
            input_bytes: bytes,
            output_bytes: bytes,
            weight_bytes: 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::test_support::assert_merge_invariant;

    #[test]
    fn concat_joins_channels() {
        let a = Tensor::filled(&[2, 2, 2], 1.0);
        let b = Tensor::filled(&[3, 2, 2], 2.0);
        let cat = Concat::new("cat", 2);
        let y = cat.forward(&[&a, &b]).unwrap();
        assert_eq!(y.dims(), &[5, 2, 2]);
        assert_eq!(y.as_slice()[0], 1.0);
        assert_eq!(y.as_slice()[8], 2.0);
    }

    #[test]
    fn concat_partial_spans_input_boundary() {
        let a = Tensor::arange(&[2, 1, 1]);
        let b = Tensor::arange(&[2, 1, 1]).scale(10.0);
        let cat = Concat::new("cat", 2);
        let part = cat.forward_partial(&[&a, &b], 1..3).unwrap();
        assert_eq!(part.as_slice(), &[1.0, 0.0]);
        assert_merge_invariant(&cat, &[&a, &b]);
    }

    #[test]
    fn concat_validates_trailing_dims_and_arity() {
        let a = Tensor::zeros(&[2, 2, 2]);
        let b = Tensor::zeros(&[2, 3, 2]);
        let cat = Concat::new("cat", 2);
        assert!(matches!(
            cat.forward(&[&a, &b]),
            Err(NnError::BadInputShape { .. })
        ));
        assert!(matches!(
            cat.forward(&[&a]),
            Err(NnError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn residual_adds_elementwise() {
        let a = Tensor::arange(&[2, 2, 2]);
        let b = Tensor::ones(&[2, 2, 2]);
        let add = AddResidual::new("add");
        let y = add.forward(&[&a, &b]).unwrap();
        assert_eq!(y.as_slice()[3], 4.0);
        assert_merge_invariant(&add, &[&a, &b]);
    }

    #[test]
    fn residual_requires_equal_shapes() {
        let add = AddResidual::new("add");
        assert!(add
            .output_shape(&[&Shape::new(&[2, 2, 2]), &Shape::new(&[2, 2, 3])])
            .is_err());
    }

    #[test]
    fn flatten_reshapes_without_reordering() {
        let x = Tensor::arange(&[2, 3, 4]);
        let f = Flatten::new("flat");
        let y = f.forward(&[&x]).unwrap();
        assert_eq!(y.dims(), &[24]);
        assert_eq!(y.as_slice(), x.as_slice());
        assert!(!f.partitionable());
    }

    #[test]
    fn combine_workloads_are_pure_traffic() {
        let s = Shape::new(&[4, 4, 4]);
        assert_eq!(Concat::new("c", 2).workload(&[&s, &s]).unwrap().flops, 0);
        assert_eq!(Flatten::new("f").workload(&[&s]).unwrap().flops, 0);
        assert!(AddResidual::new("a").workload(&[&s, &s]).unwrap().flops > 0);
    }
}
