//! Lazily materialized layer parameters.
//!
//! Paper-scale models (VGG-16 carries ~552 MB of fp32 weights) are used by
//! the simulator for *analytic* workloads only — no tensor math ever runs
//! on them. Materializing weights eagerly would make model construction
//! cost hundreds of megabytes and seconds of RNG for nothing, so
//! parameters are generated on first functional use and cached.

use std::sync::OnceLock;

use edgenn_tensor::{qgemm_pack_a, row_sums, QTensor, Quantization, Tensor};

/// A deterministic pseudo-random parameter tensor, materialized on first
/// access.
#[derive(Debug)]
pub(crate) struct LazyParam {
    dims: Vec<usize>,
    bound: f32,
    seed: u64,
    /// Offset added to every element after sampling (used by batch-norm
    /// scales centred at 1.0).
    offset: f32,
    cell: OnceLock<Tensor>,
}

impl LazyParam {
    /// Declares a parameter of `dims` drawn uniformly from
    /// `offset + [-bound, bound)` with a fixed seed.
    pub(crate) fn new(dims: &[usize], bound: f32, seed: u64, offset: f32) -> Self {
        Self {
            dims: dims.to_vec(),
            bound,
            seed,
            offset,
            cell: OnceLock::new(),
        }
    }

    /// Declares a parameter pre-set to an explicit tensor.
    pub(crate) fn from_tensor(tensor: Tensor) -> Self {
        let dims = tensor.dims().to_vec();
        let cell = OnceLock::new();
        cell.set(tensor).expect("fresh cell");
        Self {
            dims,
            bound: 0.0,
            seed: 0,
            offset: 0.0,
            cell,
        }
    }

    /// Element count (available without materializing).
    pub(crate) fn len(&self) -> usize {
        self.dims.iter().product()
    }

    /// Materializes (if needed) and returns the tensor.
    pub(crate) fn get(&self) -> &Tensor {
        self.cell.get_or_init(|| {
            let t = Tensor::random(&self.dims, self.bound, self.seed);
            if self.offset == 0.0 {
                t
            } else {
                let offset = self.offset;
                t.map(|x| x + offset)
            }
        })
    }

    /// True when the tensor has already been materialized.
    pub(crate) fn is_materialized(&self) -> bool {
        self.cell.get().is_some()
    }
}

/// Int8 weight codes plus everything the requantize epilogue needs,
/// derived once per layer from the f32 weights (symmetric per-channel,
/// axis 0 = output channel / dense unit) and cached beside them.
#[derive(Debug, Clone)]
pub(crate) struct QuantizedWeights {
    /// Per-channel symmetric int8 codes, same layout as the f32 matrix.
    pub(crate) q: QTensor,
    /// Per-row scales (`zero_point` is 0 by construction).
    pub(crate) scales: Vec<f32>,
    /// Per-row code sums for the activation zero-point correction.
    pub(crate) row_sums: Vec<i32>,
    /// The codes pre-widened into the packed GEMM's A layout
    /// ([`qgemm_pack_a`]): weights never change, so conv layers slice a
    /// row range out of this instead of re-packing A on every call.
    pub(crate) awide: Vec<i16>,
}

impl QuantizedWeights {
    /// Quantizes a `(rows, k)` weight matrix.
    pub(crate) fn from_weight(w: &Tensor) -> Self {
        let rows = w.dims()[0];
        let k = w.len() / rows.max(1);
        let q = QTensor::quantize_per_channel(w).expect("weight matrices are rank 2");
        let Quantization::PerChannel(params) = q.quant() else {
            unreachable!("quantize_per_channel returns per-channel params")
        };
        let scales = params.iter().map(|p| p.scale).collect();
        let row_sums = row_sums(q.as_slice(), rows, k);
        let awide = qgemm_pack_a(q.as_slice(), rows, k);
        Self {
            q,
            scales,
            row_sums,
            awide,
        }
    }
}

impl Clone for LazyParam {
    fn clone(&self) -> Self {
        // Cloning drops the cache; the clone regenerates identically on
        // demand because the seed is preserved.
        Self {
            dims: self.dims.clone(),
            bound: self.bound,
            seed: self.seed,
            offset: self.offset,
            cell: match self.cell.get() {
                Some(t) if self.bound == 0.0 => {
                    // Explicit tensors cannot be regenerated; keep them.
                    let cell = OnceLock::new();
                    let _ = cell.set(t.clone());
                    cell
                }
                _ => OnceLock::new(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn materializes_lazily_and_deterministically() {
        let p = LazyParam::new(&[8], 1.0, 42, 0.0);
        assert!(!p.is_materialized());
        assert_eq!(p.len(), 8);
        let first = p.get().clone();
        assert!(p.is_materialized());
        assert_eq!(p.get(), &first);
        let q = LazyParam::new(&[8], 1.0, 42, 0.0);
        assert_eq!(q.get(), &first, "same seed, same tensor");
    }

    #[test]
    fn offset_shifts_samples() {
        let p = LazyParam::new(&[64], 0.1, 7, 1.0);
        assert!(p.get().as_slice().iter().all(|&x| (0.9..1.1).contains(&x)));
    }

    #[test]
    fn explicit_tensor_survives_clone() {
        let p = LazyParam::from_tensor(Tensor::arange(&[4]));
        let c = p.clone();
        assert_eq!(c.get(), p.get());
    }

    #[test]
    fn random_clone_regenerates_identically() {
        let p = LazyParam::new(&[16], 1.0, 5, 0.0);
        let _ = p.get();
        let c = p.clone();
        assert!(!c.is_materialized());
        assert_eq!(c.get(), p.get());
    }
}
