//! Pooling layers (max, average, global average).

use std::ops::Range;

use edgenn_tensor::{Conv2dGeometry, Shape, Tensor};

use crate::layer::{check_arity, validate_range, Layer, LayerClass};
use crate::{NnError, Result, Workload};

/// Pooling reduction applied within each window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolKind {
    /// Maximum over the window.
    Max,
    /// Arithmetic mean over the window (out-of-bounds taps excluded).
    Avg,
}

/// Windowed 2-D pooling over CHW feature maps.
///
/// Channels are independent, so the partition unit is a channel. The paper
/// observes (Figure 10) that pooling layers *slow down* under zero-copy —
/// they are pure memory traffic, so the managed-memory access penalty is
/// not amortized by any compute; the simulator reproduces that effect via
/// this layer's low arithmetic intensity.
#[derive(Debug, Clone)]
pub struct Pool2d {
    name: String,
    kind: PoolKind,
    kernel: usize,
    stride: usize,
    pad: usize,
}

/// Max pooling constructor alias.
pub struct MaxPool2d;

#[allow(clippy::new_ret_no_self)] // constructor aliases intentionally build `Pool2d`
impl MaxPool2d {
    /// Creates a max-pooling layer.
    pub fn new(name: impl Into<String>, kernel: usize, stride: usize) -> Pool2d {
        Pool2d {
            name: name.into(),
            kind: PoolKind::Max,
            kernel,
            stride,
            pad: 0,
        }
    }

    /// Creates a padded max-pooling layer.
    pub fn with_pad(name: impl Into<String>, kernel: usize, stride: usize, pad: usize) -> Pool2d {
        Pool2d {
            name: name.into(),
            kind: PoolKind::Max,
            kernel,
            stride,
            pad,
        }
    }
}

/// Average pooling constructor alias.
pub struct AvgPool2d;

#[allow(clippy::new_ret_no_self)] // constructor aliases intentionally build `Pool2d`
impl AvgPool2d {
    /// Creates an average-pooling layer.
    pub fn new(name: impl Into<String>, kernel: usize, stride: usize) -> Pool2d {
        Pool2d {
            name: name.into(),
            kind: PoolKind::Avg,
            kernel,
            stride,
            pad: 0,
        }
    }
}

impl Pool2d {
    fn geometry(&self, input: &Shape) -> Result<Conv2dGeometry> {
        if input.rank() != 3 {
            return Err(NnError::BadInputShape {
                layer: self.name.clone(),
                reason: format!("expected CHW input, got rank {}", input.rank()),
            });
        }
        let g = Conv2dGeometry {
            in_channels: input.dim(0)?,
            in_h: input.dim(1)?,
            in_w: input.dim(2)?,
            kernel_h: self.kernel,
            kernel_w: self.kernel,
            stride_h: self.stride,
            stride_w: self.stride,
            pad_h: self.pad,
            pad_w: self.pad,
        };
        g.validate()?;
        Ok(g)
    }

    fn pool_channel(&self, src: &[f32], g: &Conv2dGeometry, dst: &mut Vec<f32>) {
        let (out_h, out_w) = (g.out_h(), g.out_w());
        for oy in 0..out_h {
            for ox in 0..out_w {
                let mut acc = match self.kind {
                    PoolKind::Max => f32::NEG_INFINITY,
                    PoolKind::Avg => 0.0,
                };
                let mut taps = 0usize;
                for ky in 0..g.kernel_h {
                    let iy = (oy * g.stride_h + ky) as isize - g.pad_h as isize;
                    if iy < 0 || iy >= g.in_h as isize {
                        continue;
                    }
                    for kx in 0..g.kernel_w {
                        let ix = (ox * g.stride_w + kx) as isize - g.pad_w as isize;
                        if ix < 0 || ix >= g.in_w as isize {
                            continue;
                        }
                        let v = src[iy as usize * g.in_w + ix as usize];
                        match self.kind {
                            PoolKind::Max => acc = acc.max(v),
                            PoolKind::Avg => acc += v,
                        }
                        taps += 1;
                    }
                }
                dst.push(match self.kind {
                    PoolKind::Max => acc,
                    PoolKind::Avg => {
                        if taps == 0 {
                            0.0
                        } else {
                            acc / taps as f32
                        }
                    }
                });
            }
        }
    }
}

impl Layer for Pool2d {
    fn name(&self) -> &str {
        &self.name
    }

    fn class(&self) -> LayerClass {
        LayerClass::Pool
    }

    fn output_shape(&self, inputs: &[&Shape]) -> Result<Shape> {
        check_arity(&self.name, 1, inputs)?;
        let g = self.geometry(inputs[0])?;
        Ok(Shape::new(&[g.in_channels, g.out_h(), g.out_w()]))
    }

    fn forward_partial(&self, inputs: &[&Tensor], range: Range<usize>) -> Result<Tensor> {
        check_arity(&self.name, 1, inputs)?;
        let g = self.geometry(inputs[0].shape())?;
        validate_range(&self.name, &range, g.in_channels)?;
        let plane = g.in_h * g.in_w;
        let (out_h, out_w) = (g.out_h(), g.out_w());
        let mut data = Vec::with_capacity(range.len() * out_h * out_w);
        for c in range.clone() {
            let src = &inputs[0].as_slice()[c * plane..(c + 1) * plane];
            self.pool_channel(src, &g, &mut data);
        }
        Ok(Tensor::from_vec(data, &[range.len(), out_h, out_w])?)
    }

    fn workload(&self, inputs: &[&Shape]) -> Result<Workload> {
        check_arity(&self.name, 1, inputs)?;
        let g = self.geometry(inputs[0])?;
        let out_elems = (g.in_channels * g.out_h() * g.out_w()) as u64;
        Ok(Workload {
            // one compare/add per tap
            flops: out_elems * (self.kernel * self.kernel) as u64,
            input_bytes: (inputs[0].num_elements() * 4) as u64,
            output_bytes: out_elems * 4,
            weight_bytes: 0,
        })
    }
}

/// Global average pooling: CHW -> C (mean of each channel plane).
#[derive(Debug, Clone)]
pub struct GlobalAvgPool {
    name: String,
}

impl GlobalAvgPool {
    /// Creates a global average pooling layer.
    pub fn new(name: impl Into<String>) -> Self {
        Self { name: name.into() }
    }
}

impl Layer for GlobalAvgPool {
    fn name(&self) -> &str {
        &self.name
    }

    fn class(&self) -> LayerClass {
        LayerClass::Pool
    }

    fn output_shape(&self, inputs: &[&Shape]) -> Result<Shape> {
        check_arity(&self.name, 1, inputs)?;
        if inputs[0].rank() != 3 {
            return Err(NnError::BadInputShape {
                layer: self.name.clone(),
                reason: format!("expected CHW input, got rank {}", inputs[0].rank()),
            });
        }
        Ok(Shape::new(&[inputs[0].dim(0)?]))
    }

    fn forward_partial(&self, inputs: &[&Tensor], range: Range<usize>) -> Result<Tensor> {
        check_arity(&self.name, 1, inputs)?;
        let shape = inputs[0].shape();
        let channels = self.output_shape(&[shape])?.dim(0)?;
        validate_range(&self.name, &range, channels)?;
        let plane = shape.dim(1)? * shape.dim(2)?;
        let data: Vec<f32> = range
            .clone()
            .map(|c| {
                let src = &inputs[0].as_slice()[c * plane..(c + 1) * plane];
                src.iter().sum::<f32>() / plane as f32
            })
            .collect();
        Ok(Tensor::from_vec(data, &[range.len()])?)
    }

    fn workload(&self, inputs: &[&Shape]) -> Result<Workload> {
        check_arity(&self.name, 1, inputs)?;
        let elems = inputs[0].num_elements() as u64;
        let channels = inputs[0].dim(0)? as u64;
        Ok(Workload {
            flops: elems,
            input_bytes: elems * 4,
            output_bytes: channels * 4,
            weight_bytes: 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::test_support::assert_merge_invariant;

    #[test]
    fn max_pool_hand_checked() {
        // 4x4 plane, 2x2 window stride 2.
        let x = Tensor::arange(&[1, 4, 4]);
        let pool = MaxPool2d::new("p", 2, 2);
        let y = pool.forward(&[&x]).unwrap();
        assert_eq!(y.dims(), &[1, 2, 2]);
        assert_eq!(y.as_slice(), &[5.0, 7.0, 13.0, 15.0]);
    }

    #[test]
    fn avg_pool_hand_checked() {
        let x = Tensor::arange(&[1, 4, 4]);
        let pool = AvgPool2d::new("p", 2, 2);
        let y = pool.forward(&[&x]).unwrap();
        assert_eq!(y.as_slice(), &[2.5, 4.5, 10.5, 12.5]);
    }

    #[test]
    fn padded_max_pool_ignores_out_of_bounds() {
        let x = Tensor::ones(&[1, 2, 2]);
        let pool = MaxPool2d::with_pad("p", 3, 2, 1);
        let y = pool.forward(&[&x]).unwrap();
        assert_eq!(y.dims(), &[1, 1, 1]);
        assert_eq!(y.as_slice(), &[1.0]);
    }

    #[test]
    fn avg_pool_padding_excludes_taps_from_denominator() {
        // All-ones input with padding: averages must stay exactly 1.0
        // because padded taps are excluded, not counted as zeros.
        let x = Tensor::ones(&[1, 3, 3]);
        let pool = Pool2d {
            name: "p".into(),
            kind: PoolKind::Avg,
            kernel: 3,
            stride: 2,
            pad: 1,
        };
        let y = pool.forward(&[&x]).unwrap();
        assert!(y.as_slice().iter().all(|&v| (v - 1.0).abs() < 1e-6));
    }

    #[test]
    fn pool_channels_are_independent() {
        let x = Tensor::random(&[5, 6, 6], 1.0, 3);
        let pool = MaxPool2d::new("p", 2, 2);
        assert_merge_invariant(&pool, &[&x]);
        let pool = AvgPool2d::new("p", 3, 1);
        assert_merge_invariant(&pool, &[&x]);
    }

    #[test]
    fn global_avg_pool_means_planes() {
        let x = Tensor::from_vec(vec![1.0, 3.0, 5.0, 7.0, 2.0, 2.0, 2.0, 2.0], &[2, 2, 2]).unwrap();
        let gap = GlobalAvgPool::new("gap");
        let y = gap.forward(&[&x]).unwrap();
        assert_eq!(y.as_slice(), &[4.0, 2.0]);
        assert_merge_invariant(&gap, &[&x]);
    }

    #[test]
    fn pool_rejects_bad_rank() {
        let pool = MaxPool2d::new("p", 2, 2);
        assert!(pool.output_shape(&[&Shape::new(&[4, 4])]).is_err());
        let gap = GlobalAvgPool::new("g");
        assert!(gap.output_shape(&[&Shape::new(&[4, 4])]).is_err());
    }

    #[test]
    fn pool_workload_is_memory_bound() {
        let pool = MaxPool2d::new("p", 3, 2);
        let w = pool.workload(&[&Shape::new(&[64, 32, 32])]).unwrap();
        assert!(w.arithmetic_intensity() < 3.0);
        assert_eq!(w.weight_bytes, 0);
    }
}
