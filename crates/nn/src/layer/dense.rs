//! Fully-connected layer.

use std::ops::Range;
use std::sync::OnceLock;

use edgenn_tensor::{
    dot, dot_i8, min_max, quantize_into, with_scratch_i8, QuantParams, Requant, Shape, Tensor,
};

use crate::layer::params::{LazyParam, QuantizedWeights};
use crate::layer::{check_arity, validate_range, Layer, LayerClass};
use crate::{NnError, Result, Workload};

/// A fully-connected (dense) layer: `y = W x + b` over a rank-1 input.
///
/// With batch size 1 (the paper's inference setting) this is a mat-vec.
/// Fully-connected layers are the ones the paper finds benefit most from
/// CPU-GPU co-running (Table I: AlexNet fc layers improve 53.8% on average
/// with hybrid execution + zero-copy) because they are memory-bound on the
/// integrated GPU, so partition units here are output neurons.
#[derive(Debug, Clone)]
pub struct Dense {
    name: String,
    in_features: usize,
    out_features: usize,
    weight: LazyParam,
    bias: LazyParam,
    /// Int8 weight codes, derived from `weight` on first int8 use.
    qweight: OnceLock<QuantizedWeights>,
    /// Calibrated activation parameters ([`Layer::stamp_activation`]);
    /// absent means dynamic per-call min/max quantization.
    act_quant: OnceLock<QuantParams>,
}

impl Dense {
    /// Creates a dense layer with deterministic pseudo-random parameters.
    ///
    /// Parameters materialize lazily on first functional use, so building
    /// paper-scale models (AlexNet's fc layers alone hold ~58M weights)
    /// for analytic simulation costs nothing.
    pub fn new(
        name: impl Into<String>,
        in_features: usize,
        out_features: usize,
        seed: u64,
    ) -> Self {
        let bound = (2.0 / in_features as f32).sqrt();
        let weight = LazyParam::new(&[out_features, in_features], bound, seed, 0.0);
        let bias = LazyParam::new(&[out_features], 0.01, seed.wrapping_add(1), 0.0);
        Self {
            name: name.into(),
            in_features,
            out_features,
            weight,
            bias,
            qweight: OnceLock::new(),
            act_quant: OnceLock::new(),
        }
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// Replaces the parameters (test/doc support).
    ///
    /// # Errors
    /// Returns [`NnError::BadInputShape`] when the shapes do not match the
    /// declared feature counts.
    pub fn with_params(mut self, weight: Tensor, bias: Tensor) -> Result<Self> {
        if weight.dims() != [self.out_features, self.in_features]
            || bias.dims() != [self.out_features]
        {
            return Err(NnError::BadInputShape {
                layer: self.name.clone(),
                reason: format!(
                    "weight {:?} / bias {:?} incompatible with {}x{}",
                    weight.dims(),
                    bias.dims(),
                    self.out_features,
                    self.in_features
                ),
            });
        }
        self.weight = LazyParam::from_tensor(weight);
        self.bias = LazyParam::from_tensor(bias);
        self.qweight = OnceLock::new();
        Ok(self)
    }

    fn check_input(&self, input: &Shape) -> Result<()> {
        if input.rank() != 1 || input.dim(0)? != self.in_features {
            return Err(NnError::BadInputShape {
                layer: self.name.clone(),
                reason: format!("expected [{}] input, got {}", self.in_features, input),
            });
        }
        Ok(())
    }
}

impl Layer for Dense {
    fn name(&self) -> &str {
        &self.name
    }

    fn class(&self) -> LayerClass {
        LayerClass::Fc
    }

    fn output_shape(&self, inputs: &[&Shape]) -> Result<Shape> {
        check_arity(&self.name, 1, inputs)?;
        self.check_input(inputs[0])?;
        Ok(Shape::new(&[self.out_features]))
    }

    fn forward_partial(&self, inputs: &[&Tensor], range: Range<usize>) -> Result<Tensor> {
        self.forward_partial_fused(inputs, range, false)
    }

    fn forward_partial_fused(
        &self,
        inputs: &[&Tensor],
        range: Range<usize>,
        relu: bool,
    ) -> Result<Tensor> {
        check_arity(&self.name, 1, inputs)?;
        self.check_input(inputs[0].shape())?;
        validate_range(&self.name, &range, self.out_features)?;
        // Weight rows for an output range are contiguous — dot against
        // them directly instead of copying a sub-matrix out. The optional
        // ReLU clamps each neuron as it is produced.
        let w = self.weight.get().as_slice();
        let bias_full = self.bias.get();
        let bias = bias_full.as_slice();
        let x = inputs[0].as_slice();
        let k = self.in_features;
        let data: Vec<f32> = range
            .clone()
            .map(|o| {
                let v = dot(&w[o * k..(o + 1) * k], x) + bias[o];
                if relu {
                    v.max(0.0)
                } else {
                    v
                }
            })
            .collect();
        Ok(Tensor::from_vec(data, &[range.len()])?)
    }

    fn int8_ready(&self) -> bool {
        true
    }

    fn forward_partial_int8(
        &self,
        inputs: &[&Tensor],
        range: Range<usize>,
        relu: bool,
    ) -> Result<Tensor> {
        check_arity(&self.name, 1, inputs)?;
        self.check_input(inputs[0].shape())?;
        validate_range(&self.name, &range, self.out_features)?;
        let qw = self
            .qweight
            .get_or_init(|| QuantizedWeights::from_weight(self.weight.get()));
        let act = self.act_quant.get().copied().unwrap_or_else(|| {
            let (lo, hi) = min_max(inputs[0].as_slice());
            QuantParams::from_min_max(lo, hi)
        });
        let bias_full = self.bias.get();
        let rq = Requant {
            w_scales: &qw.scales[range.clone()],
            act,
            row_sums: &qw.row_sums[range.clone()],
            bias: Some(&bias_full.as_slice()[range.clone()]),
            relu,
        };
        let codes = qw.q.as_slice();
        let k = self.in_features;
        // Quantize the input vector once; each neuron is then one int8
        // dot requantized through the shared epilogue math. This is where
        // int8 pays at the model level: the dominant traffic here is the
        // weight matrix, read at a quarter of the f32 width.
        let data: Vec<f32> = with_scratch_i8(k, |qx| {
            quantize_into(inputs[0].as_slice(), qx, act);
            range
                .clone()
                .map(|o| {
                    let acc = dot_i8(&codes[o * k..(o + 1) * k], qx);
                    rq.apply(acc, o - range.start)
                })
                .collect()
        });
        Ok(Tensor::from_vec(data, &[range.len()])?)
    }

    fn stamp_activation(&self, p: QuantParams) -> bool {
        self.act_quant.set(p).is_ok()
    }

    fn int8_worthwhile(&self) -> bool {
        // Mat-vec is memory-bound on the weight matrix, and the int8
        // path pays a per-call quantize of the input plus a requant of
        // the output. Below ~32k weights (the FCNN-Tiny stack) those
        // fixed costs exceed the halved weight traffic, and the
        // committed bench showed int8 *losing* to f32 there — so the
        // executor keeps small dense layers in f32 even under int8 plans.
        self.out_features * self.in_features >= 32 * 1024
    }

    fn prepack(&self, int8: bool) -> u64 {
        if int8 {
            if !self.int8_worthwhile() || self.qweight.get().is_some() {
                return 0;
            }
            let qw = self
                .qweight
                .get_or_init(|| QuantizedWeights::from_weight(self.weight.get()));
            (qw.awide.len() * 2
                + qw.q.as_slice().len()
                + qw.scales.len() * 4
                + qw.row_sums.len() * 4) as u64
        } else {
            // Mat-vec reads weight rows in their stored layout — there
            // is no panel format to build, but materializing the lazy
            // parameters here moves the one-time generation cost out of
            // the first timed inference.
            if self.weight.is_materialized() {
                return 0;
            }
            let _ = self.weight.get();
            let _ = self.bias.get();
            ((self.weight.len() + self.bias.len()) * 4) as u64
        }
    }

    fn scratch_bytes(&self, inputs: &[&Shape]) -> Result<u64> {
        // The f32 mat-vec uses no arena scratch; the int8 path holds one
        // quantized copy of the input vector.
        check_arity(&self.name, 1, inputs)?;
        self.check_input(inputs[0])?;
        Ok(self.in_features as u64)
    }

    fn input_split_supported(&self) -> bool {
        true
    }

    fn input_channels(&self, inputs: &[&Shape]) -> Result<usize> {
        check_arity(&self.name, 1, inputs)?;
        self.check_input(inputs[0])?;
        Ok(self.in_features)
    }

    fn forward_partial_inputs(&self, inputs: &[&Tensor], range: Range<usize>) -> Result<Tensor> {
        check_arity(&self.name, 1, inputs)?;
        self.check_input(inputs[0].shape())?;
        validate_range(&self.name, &range, self.in_features)?;
        let x = &inputs[0].as_slice()[range.clone()];
        let w = self.weight.get().as_slice();
        let bias_full = self.bias.get();
        let bias = bias_full.as_slice();
        let data: Vec<f32> = (0..self.out_features)
            .map(|o| {
                let row = &w[o * self.in_features + range.start..o * self.in_features + range.end];
                let partial = dot(row, x);
                if range.start == 0 {
                    partial + bias[o]
                } else {
                    partial
                }
            })
            .collect();
        Ok(Tensor::from_vec(data, &[self.out_features])?)
    }

    fn workload(&self, inputs: &[&Shape]) -> Result<Workload> {
        check_arity(&self.name, 1, inputs)?;
        self.check_input(inputs[0])?;
        Ok(Workload {
            flops: 2 * (self.out_features as u64) * (self.in_features as u64),
            input_bytes: (self.in_features * 4) as u64,
            output_bytes: (self.out_features * 4) as u64,
            weight_bytes: ((self.out_features * self.in_features + self.out_features) * 4) as u64,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::test_support::assert_merge_invariant;

    #[test]
    fn hand_checked_matvec() {
        let dense = Dense::new("fc", 2, 2, 0)
            .with_params(
                Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap(),
                Tensor::from_vec(vec![0.5, -0.5], &[2]).unwrap(),
            )
            .unwrap();
        let x = Tensor::from_vec(vec![1.0, 1.0], &[2]).unwrap();
        let y = dense.forward(&[&x]).unwrap();
        assert_eq!(y.as_slice(), &[3.5, 6.5]);
    }

    #[test]
    fn output_shape_and_arity() {
        let dense = Dense::new("fc", 8, 3, 1);
        assert_eq!(
            dense.output_shape(&[&Shape::new(&[8])]).unwrap().dims(),
            &[3]
        );
        assert!(dense.output_shape(&[&Shape::new(&[9])]).is_err());
        assert!(dense.output_shape(&[&Shape::new(&[8, 1])]).is_err());
        assert_eq!(dense.out_features(), 3);
    }

    #[test]
    fn merge_invariant_holds() {
        let dense = Dense::new("fc", 13, 7, 5);
        let x = Tensor::random(&[13], 1.0, 6);
        assert_merge_invariant(&dense, &[&x]);
    }

    #[test]
    fn partial_bias_indexing_is_global() {
        let dense = Dense::new("fc", 1, 3, 0)
            .with_params(
                Tensor::zeros(&[3, 1]),
                Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).unwrap(),
            )
            .unwrap();
        let x = Tensor::ones(&[1]);
        let tail = dense.forward_partial(&[&x], 2..3).unwrap();
        assert_eq!(tail.as_slice(), &[3.0]);
    }

    #[test]
    fn with_params_validates_shapes() {
        let dense = Dense::new("fc", 4, 2, 0);
        assert!(dense
            .with_params(Tensor::zeros(&[2, 3]), Tensor::zeros(&[2]))
            .is_err());
    }

    #[test]
    fn input_split_sum_invariant() {
        let dense = Dense::new("fc", 11, 7, 13);
        let x = Tensor::random(&[11], 1.0, 14);
        let full = dense.forward(&[&x]).unwrap();
        for cut in 1..11 {
            let a = dense.forward_partial_inputs(&[&x], 0..cut).unwrap();
            let b = dense.forward_partial_inputs(&[&x], cut..11).unwrap();
            let merged = a.add(&b).unwrap();
            assert!(merged.approx_eq(&full, 1e-4), "cut {cut}");
        }
        assert!(dense.input_split_supported());
        assert_eq!(dense.input_channels(&[x.shape()]).unwrap(), 11);
    }

    #[test]
    fn int8_partials_merge_bitwise_and_track_f32() {
        let dense = Dense::new("fc", 64, 10, 3);
        let x = Tensor::random(&[64], 1.0, 4);
        let f = dense.forward(&[&x]).unwrap();
        let full = dense.forward_partial_int8(&[&x], 0..10, false).unwrap();
        assert!(
            full.approx_eq(&f, 0.05),
            "max diff {}",
            full.max_abs_diff(&f).unwrap()
        );
        for cut in [1, 5, 9] {
            let a = dense.forward_partial_int8(&[&x], 0..cut, false).unwrap();
            let b = dense.forward_partial_int8(&[&x], cut..10, false).unwrap();
            let merged = Tensor::concat_axis0(&[&a, &b]).unwrap();
            assert_eq!(merged.as_slice(), full.as_slice(), "cut {cut}");
        }
        assert!(dense.int8_ready());
    }

    #[test]
    fn int8_fused_relu_clamps() {
        let dense = Dense::new("fc", 32, 8, 5);
        let x = Tensor::random(&[32], 1.0, 6);
        let q = dense.forward_partial_int8(&[&x], 0..8, true).unwrap();
        assert!(q.as_slice().iter().all(|&v| v >= 0.0));
        let f = dense.forward_partial_fused(&[&x], 0..8, true).unwrap();
        assert!(q.approx_eq(&f, 0.05));
    }

    #[test]
    fn workload_is_2mn_flops() {
        let dense = Dense::new("fc", 256, 10, 0);
        let w = dense.workload(&[&Shape::new(&[256])]).unwrap();
        assert_eq!(w.flops, 2 * 256 * 10);
        assert_eq!(w.weight_bytes, (256 * 10 + 10) * 4);
        // fc layers are memory-bound: intensity ~2 flops/weight-byte / 4.
        assert!(w.arithmetic_intensity() < 1.0);
    }
}
