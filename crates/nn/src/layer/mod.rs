//! Layer kernels with partition-aware execution.
//!
//! A *partition unit* is one slice of a layer's output along axis 0 —
//! an output channel for convolution/pooling, an output neuron for a
//! fully-connected layer. EdgeNN's intra-kernel co-running splits the
//! units between the CPU and the GPU (paper Section IV-C/IV-D); the split
//! is lossless because [`Layer::forward_partial`] over a covering set of
//! disjoint ranges concatenates back to exactly [`Layer::forward`].

mod activation;
mod combine;
mod conv;
mod dense;
mod norm;
mod params;
mod pool;

use std::ops::Range;

use edgenn_tensor::{ops, QuantParams, Shape, Tensor};

use crate::{NnError, Result, Workload};

pub use activation::{Dropout, Relu, Softmax};
pub use combine::{AddResidual, Concat, Constant, Flatten, Slice};
pub use conv::Conv2d;
pub use dense::Dense;
pub use norm::{BatchNorm2d, LocalResponseNorm};
pub use pool::{AvgPool2d, GlobalAvgPool, MaxPool2d, PoolKind};

/// Broad category of a layer.
///
/// The simulator assigns per-class efficiency factors (a GPU runs `Conv`
/// close to peak, `Fc` at memory-bound rates, …) and the semantic memory
/// planner keys some decisions off the class, mirroring the paper's
/// per-layer-type observations (Figures 10-11, Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayerClass {
    /// 2-D convolution.
    Conv,
    /// Fully-connected (dense) layer.
    Fc,
    /// Max/average/global pooling.
    Pool,
    /// Element-wise activation (ReLU, dropout) or softmax.
    Activation,
    /// Normalization (LRN, batch norm).
    Norm,
    /// Structural layers: concat, residual add, flatten.
    Combine,
    /// The graph's input pseudo-layer.
    Input,
}

impl LayerClass {
    /// Short lowercase tag used in reports ("conv", "fc", ...).
    pub fn tag(&self) -> &'static str {
        match self {
            Self::Conv => "conv",
            Self::Fc => "fc",
            Self::Pool => "pool",
            Self::Activation => "act",
            Self::Norm => "norm",
            Self::Combine => "combine",
            Self::Input => "input",
        }
    }
}

/// A neural-network layer kernel.
pub trait Layer: Send + Sync {
    /// Human-readable layer name (unique within a graph).
    fn name(&self) -> &str;

    /// The layer's class.
    fn class(&self) -> LayerClass;

    /// Number of inputs the layer consumes.
    fn arity(&self) -> usize {
        1
    }

    /// Infers the output shape from input shapes.
    ///
    /// # Errors
    /// Fails when arity or shapes are incompatible with the layer.
    fn output_shape(&self, inputs: &[&Shape]) -> Result<Shape>;

    /// Reference forward pass.
    ///
    /// # Errors
    /// Fails on arity or shape mismatches.
    fn forward(&self, inputs: &[&Tensor]) -> Result<Tensor> {
        let shapes: Vec<&Shape> = inputs.iter().map(|t| t.shape()).collect();
        let units = self.partition_units(&shapes)?;
        self.forward_partial(inputs, 0..units)
    }

    /// Number of independently computable output slices along axis 0.
    ///
    /// Returns 1 for layers that cannot be split (e.g. softmax, whose
    /// normalization couples every output element).
    ///
    /// # Errors
    /// Fails when the input shapes are invalid for the layer.
    fn partition_units(&self, inputs: &[&Shape]) -> Result<usize> {
        Ok(self.output_shape(inputs)?.dim(0)?)
    }

    /// True when the layer supports computing a strict sub-range of units.
    fn partitionable(&self) -> bool {
        true
    }

    /// Computes output units `range` (a slice of axis 0 of the output).
    ///
    /// Implementations must satisfy the *merge invariant*: concatenating
    /// the outputs for disjoint covering ranges along axis 0 yields the
    /// same tensor as [`Layer::forward`].
    ///
    /// # Errors
    /// Fails on invalid ranges, arity or shape mismatches, or when a strict
    /// sub-range is requested from a non-partitionable layer.
    fn forward_partial(&self, inputs: &[&Tensor], range: Range<usize>) -> Result<Tensor>;

    /// [`Layer::forward_partial`] with an optional ReLU epilogue.
    ///
    /// The default runs the partial pass and clamps afterwards; layers
    /// backed by a GEMM override this to fold bias + ReLU into the
    /// microkernel's write-back loop ([`edgenn_tensor::Epilogue`]), so a
    /// [`crate::graph::FusedRelu`] wrapper costs no extra output sweep.
    ///
    /// # Errors
    /// Same contract as [`Layer::forward_partial`].
    fn forward_partial_fused(
        &self,
        inputs: &[&Tensor],
        range: Range<usize>,
        relu: bool,
    ) -> Result<Tensor> {
        let mut out = self.forward_partial(inputs, range)?;
        if relu {
            ops::relu_in_place(out.as_mut_slice());
        }
        Ok(out)
    }

    /// True when the layer has a real int8 kernel behind
    /// [`Layer::forward_partial_int8`] (conv and dense). Layers without
    /// one fall back to f32 transparently, so a whole-graph int8 run
    /// never fails — it just quantizes where it pays.
    fn int8_ready(&self) -> bool {
        false
    }

    /// Int8 forward over output units `range`, with an optional fused
    /// ReLU.
    ///
    /// Activations stay f32 *between* nodes: the kernel quantizes its
    /// input (with calibrated parameters when stamped, else dynamic
    /// min/max), runs the int8×int8→i32 GEMM, and requantizes to f32 in
    /// the write-back. Per-row independence of the requantize epilogue
    /// makes output-range partials *bitwise* identical to the same rows
    /// of a full int8 forward, so the merge invariant holds exactly.
    ///
    /// The default falls back to the f32 path.
    ///
    /// # Errors
    /// Same contract as [`Layer::forward_partial`].
    fn forward_partial_int8(
        &self,
        inputs: &[&Tensor],
        range: Range<usize>,
        relu: bool,
    ) -> Result<Tensor> {
        self.forward_partial_fused(inputs, range, relu)
    }

    /// Stamps calibrated activation quantization parameters onto the
    /// layer (first stamp wins; later stamps are ignored). Returns true
    /// when this call stamped. Layers without an int8 kernel ignore the
    /// stamp and return false.
    fn stamp_activation(&self, p: QuantParams) -> bool {
        let _ = p;
        false
    }

    /// True for a rectified-linear activation — the marker the fusion
    /// pass ([`crate::graph::fuse_relu`]) uses to fold a ReLU into its
    /// producer.
    fn is_relu(&self) -> bool {
        false
    }

    /// True for a layer whose output is its (single) input unchanged at
    /// inference time (dropout, full-range slice). The compiler's
    /// identity-elimination pass removes such nodes — an exact rewrite.
    fn is_identity(&self) -> bool {
        false
    }

    /// The constant tensor a zero-arity constant node produces, when the
    /// layer is one ([`crate::layer::Constant`]). The constant-folding
    /// pass evaluates nodes whose inputs are all constants at compile
    /// time; `None` for every ordinary layer.
    fn constant_value(&self) -> Option<&Tensor> {
        None
    }

    /// True for a pure axis-0 concatenation ([`crate::layer::Concat`]):
    /// the output is exactly its inputs laid out in order. The compiler's
    /// split/concat simplification relies on this to cancel covering
    /// slice/concat round-trips; a fused or otherwise-transforming
    /// wrapper must keep the default `false`.
    fn is_concat(&self) -> bool {
        false
    }

    /// The axis-0 window a structural slice keeps, when the layer is one
    /// ([`crate::layer::Slice`]). The compiler's split/concat
    /// simplification cancels a concat of in-order covering slices and
    /// removes full-range slices; `None` for every ordinary layer.
    fn slice_range(&self) -> Option<Range<usize>> {
        None
    }

    /// True when this layer fused a trailing ReLU whose application is
    /// *deferred* on the input-channel split path: its
    /// [`Layer::forward_partial_inputs`] returns raw partial sums (the
    /// epilogue cannot clamp partials — `relu(a) + relu(b) != relu(a+b)`)
    /// and the executor applies the ReLU once after merging. Layers
    /// returning true keep [`Layer::input_split_supported`] legal on
    /// fused nodes; everything else returns false.
    fn deferred_epilogue_relu(&self) -> bool {
        false
    }

    /// Whether the int8 kernel actually beats f32 for this layer's
    /// shape. The executor consults this in addition to
    /// [`Layer::int8_ready`]: quantize/requantize overhead is per-call,
    /// so tiny layers (e.g. the FCNN-Tiny dense stack) lose to the f32
    /// kernel and stay unquantized even under an int8 plan.
    fn int8_worthwhile(&self) -> bool {
        true
    }

    /// Materializes the layer's parameters and packs them into the GEMM
    /// (`int8`: qgemm) kernel layouts at compile time, so steady-state
    /// inference does zero weight-packing work. Returns the bytes packed
    /// *by this call* (0 when there is nothing to pack or it already
    /// happened — the hook is idempotent).
    fn prepack(&self, int8: bool) -> u64 {
        let _ = int8;
        0
    }

    /// True when the layer also supports the *input-channel* split: each
    /// processor convolves a subset of the input channels, producing a
    /// full-size partial sum that is merged by element-wise addition.
    /// This is the exact split the paper describes for convolution in
    /// Section IV-D ("the GPU calculates the convolution results of the
    /// first k input channels, and the CPU calculates the results of the
    /// remaining input channels").
    fn input_split_supported(&self) -> bool {
        false
    }

    /// Number of input channels available to an input-channel split.
    ///
    /// # Errors
    /// Fails when the input shapes are invalid for the layer.
    fn input_channels(&self, inputs: &[&Shape]) -> Result<usize> {
        let _ = inputs;
        Ok(1)
    }

    /// Computes the partial result over input channels `range`.
    ///
    /// Implementations must satisfy the *sum invariant*: adding the
    /// partial outputs of disjoint covering input ranges element-wise
    /// yields the same tensor as [`Layer::forward`] (the constant/bias
    /// term is contributed exactly once, by the range containing
    /// channel 0).
    ///
    /// # Errors
    /// Fails when the layer does not support input splitting or the range
    /// is invalid.
    fn forward_partial_inputs(&self, inputs: &[&Tensor], range: Range<usize>) -> Result<Tensor> {
        let _ = (inputs, range);
        Err(NnError::NotPartitionable {
            layer: self.name().to_string(),
        })
    }

    /// Analytic cost of the full forward pass.
    ///
    /// # Errors
    /// Fails when the input shapes are invalid for the layer.
    fn workload(&self, inputs: &[&Shape]) -> Result<Workload>;

    /// Bytes the kernel keeps live while computing — the working set the
    /// device simulator checks against CPU cache capacity.
    ///
    /// Defaults to input + weight bytes; convolution overrides this with
    /// its im2col-expanded patch matrix, which is what actually thrashes
    /// CPU caches on large layers.
    ///
    /// # Errors
    /// Fails when the input shapes are invalid for the layer.
    fn working_set_bytes(&self, inputs: &[&Shape]) -> Result<u64> {
        let w = self.workload(inputs)?;
        Ok(w.input_bytes + w.weight_bytes)
    }

    /// Upper bound on the scratch-arena floats one forward call over this
    /// layer may acquire ([`edgenn_tensor::with_scratch`]), across every
    /// execution path (full forward, output-channel partial, input-channel
    /// partial). The tier-D ownership analyzer certifies peak arena growth
    /// from this; the bound must be sound (never undercount) but may
    /// over-approximate. Layers that never touch the arena return 0.
    ///
    /// # Errors
    /// Fails when the input shapes are invalid for the layer.
    fn scratch_elems(&self, inputs: &[&Shape]) -> Result<u64> {
        let _ = inputs;
        Ok(0)
    }

    /// Byte-accurate upper bound on scratch-arena growth across every
    /// execution path *and precision*. The default converts
    /// [`Layer::scratch_elems`] at f32 width; layers with an int8 path
    /// override to also cover its i8/i16 acquisitions (which may exceed
    /// the f32 bound — the quantized GEMM widens both operands to i16).
    ///
    /// # Errors
    /// Fails when the input shapes are invalid for the layer.
    fn scratch_bytes(&self, inputs: &[&Shape]) -> Result<u64> {
        Ok(self.scratch_elems(inputs)? * 4)
    }

    /// Analytic cost of computing only `range` of the partition units.
    ///
    /// The default scales the full workload proportionally (keeping input
    /// reads whole); layers with non-uniform unit costs may override.
    ///
    /// # Errors
    /// Fails on invalid ranges or input shapes.
    fn workload_partial(&self, inputs: &[&Shape], range: Range<usize>) -> Result<Workload> {
        let units = self.partition_units(inputs)?;
        validate_range(self.name(), &range, units)?;
        Ok(self.workload(inputs)?.scaled(range.len(), units))
    }
}

/// Checks an arity requirement, producing a uniform error.
pub(crate) fn check_arity<T>(layer: &str, expected: usize, inputs: &[T]) -> Result<()> {
    if inputs.len() != expected {
        return Err(NnError::ArityMismatch {
            layer: layer.to_string(),
            expected,
            actual: inputs.len(),
        });
    }
    Ok(())
}

/// Validates a partition range against the unit count.
pub(crate) fn validate_range(layer: &str, range: &Range<usize>, units: usize) -> Result<()> {
    if range.start >= range.end || range.end > units {
        return Err(NnError::BadPartition {
            layer: layer.to_string(),
            start: range.start,
            end: range.end,
            units,
        });
    }
    Ok(())
}

/// Rejects strict sub-ranges for non-partitionable layers.
pub(crate) fn require_full_range(layer: &str, range: &Range<usize>, units: usize) -> Result<()> {
    validate_range(layer, range, units)?;
    if range.start != 0 || range.end != units {
        return Err(NnError::NotPartitionable {
            layer: layer.to_string(),
        });
    }
    Ok(())
}

/// The graph's input pseudo-layer: passes its tensor through unchanged.
#[derive(Debug, Clone)]
pub struct InputLayer {
    shape: Shape,
}

impl InputLayer {
    /// Creates an input node for tensors of `shape`.
    pub fn new(shape: Shape) -> Self {
        Self { shape }
    }

    /// The declared input shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }
}

impl Layer for InputLayer {
    fn name(&self) -> &str {
        "input"
    }

    fn class(&self) -> LayerClass {
        LayerClass::Input
    }

    fn arity(&self) -> usize {
        0
    }

    fn output_shape(&self, inputs: &[&Shape]) -> Result<Shape> {
        check_arity(self.name(), 0, inputs)?;
        Ok(self.shape.clone())
    }

    fn partitionable(&self) -> bool {
        false
    }

    fn partition_units(&self, _inputs: &[&Shape]) -> Result<usize> {
        Ok(1)
    }

    fn forward_partial(&self, inputs: &[&Tensor], range: Range<usize>) -> Result<Tensor> {
        require_full_range(self.name(), &range, 1)?;
        check_arity(self.name(), 1, inputs)?;
        Ok(inputs[0].clone())
    }

    fn workload(&self, _inputs: &[&Shape]) -> Result<Workload> {
        Ok(Workload {
            output_bytes: (self.shape.num_elements() * 4) as u64,
            ..Workload::default()
        })
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    //! Shared helper asserting the partition merge invariant for a layer.

    use super::*;

    /// Splits the layer's units at every cut point and checks that the
    /// concatenated partial results equal the full forward pass.
    pub(crate) fn assert_merge_invariant(layer: &dyn Layer, inputs: &[&Tensor]) {
        let shapes: Vec<&Shape> = inputs.iter().map(|t| t.shape()).collect();
        let units = layer.partition_units(&shapes).unwrap();
        let full = layer.forward(inputs).unwrap();
        assert!(units >= 1);
        for cut in 1..units {
            let a = layer.forward_partial(inputs, 0..cut).unwrap();
            let b = layer.forward_partial(inputs, cut..units).unwrap();
            let merged = Tensor::concat_axis0(&[&a, &b]).unwrap();
            let merged = merged.reshape(full.dims()).unwrap();
            assert!(
                merged.approx_eq(&full, 1e-5),
                "merge invariant broken for {} at cut {cut}/{units}",
                layer.name()
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn input_layer_passes_through() {
        let layer = InputLayer::new(Shape::new(&[2, 2]));
        let t = Tensor::arange(&[2, 2]);
        let out = layer.forward(&[&t]).unwrap();
        assert_eq!(out, t);
        assert_eq!(layer.output_shape(&[]).unwrap().dims(), &[2, 2]);
        assert_eq!(layer.class().tag(), "input");
    }

    #[test]
    fn input_layer_rejects_partitioning() {
        let layer = InputLayer::new(Shape::new(&[4]));
        let t = Tensor::zeros(&[4]);
        assert!(matches!(
            layer.forward_partial(&[&t], 0..0),
            Err(NnError::BadPartition { .. })
        ));
        assert!(!layer.partitionable());
    }

    #[test]
    fn validate_range_boundaries() {
        assert!(validate_range("l", &(0..4), 4).is_ok());
        assert!(validate_range("l", &(3..4), 4).is_ok());
        assert!(validate_range("l", &(0..5), 4).is_err());
        assert!(validate_range("l", &(2..2), 4).is_err());
    }

    #[test]
    fn require_full_range_rejects_subranges() {
        assert!(require_full_range("l", &(0..4), 4).is_ok());
        assert!(matches!(
            require_full_range("l", &(0..2), 4),
            Err(NnError::NotPartitionable { .. })
        ));
    }

    #[test]
    fn class_tags_are_stable() {
        assert_eq!(LayerClass::Conv.tag(), "conv");
        assert_eq!(LayerClass::Fc.tag(), "fc");
        assert_eq!(LayerClass::Pool.tag(), "pool");
        assert_eq!(LayerClass::Norm.tag(), "norm");
        assert_eq!(LayerClass::Combine.tag(), "combine");
        assert_eq!(LayerClass::Activation.tag(), "act");
    }
}
