//! Element-wise activations, dropout, and softmax.

use std::ops::Range;

use edgenn_tensor::{ops, Shape, Tensor};

use crate::layer::{check_arity, require_full_range, validate_range, Layer, LayerClass};
use crate::{Result, Workload};

/// Rectified linear unit.
///
/// Element-wise, so any axis-0 partition of the input maps directly onto
/// the same partition of the output — the cheapest possible layer to
/// co-run.
#[derive(Debug, Clone)]
pub struct Relu {
    name: String,
}

impl Relu {
    /// Creates a ReLU layer.
    pub fn new(name: impl Into<String>) -> Self {
        Self { name: name.into() }
    }
}

impl Layer for Relu {
    fn name(&self) -> &str {
        &self.name
    }

    fn is_relu(&self) -> bool {
        true
    }

    fn class(&self) -> LayerClass {
        LayerClass::Activation
    }

    fn output_shape(&self, inputs: &[&Shape]) -> Result<Shape> {
        check_arity(&self.name, 1, inputs)?;
        Ok(inputs[0].clone())
    }

    fn forward_partial(&self, inputs: &[&Tensor], range: Range<usize>) -> Result<Tensor> {
        check_arity(&self.name, 1, inputs)?;
        let units = inputs[0].shape().dim(0)?;
        validate_range(&self.name, &range, units)?;
        let mut part = if range.start == 0 && range.end == units {
            inputs[0].clone()
        } else {
            inputs[0].slice_axis0(range.start, range.end)?
        };
        ops::relu_in_place(part.as_mut_slice());
        Ok(part)
    }

    fn workload(&self, inputs: &[&Shape]) -> Result<Workload> {
        check_arity(&self.name, 1, inputs)?;
        let elems = inputs[0].num_elements() as u64;
        Ok(Workload {
            flops: elems,
            input_bytes: elems * 4,
            output_bytes: elems * 4,
            weight_bytes: 0,
        })
    }
}

/// Inference-time dropout: the identity function.
///
/// The paper's AlexNet and VGG include dropout layers; at inference they
/// perform no work (inverted-dropout convention), but they still appear in
/// the DAG, so we keep them as explicit zero-FLOP nodes with pure
/// pass-through semantics.
#[derive(Debug, Clone)]
pub struct Dropout {
    name: String,
}

impl Dropout {
    /// Creates an inference-time dropout layer.
    pub fn new(name: impl Into<String>) -> Self {
        Self { name: name.into() }
    }
}

impl Layer for Dropout {
    fn name(&self) -> &str {
        &self.name
    }

    fn class(&self) -> LayerClass {
        LayerClass::Activation
    }

    fn is_identity(&self) -> bool {
        true
    }

    fn output_shape(&self, inputs: &[&Shape]) -> Result<Shape> {
        check_arity(&self.name, 1, inputs)?;
        Ok(inputs[0].clone())
    }

    fn forward_partial(&self, inputs: &[&Tensor], range: Range<usize>) -> Result<Tensor> {
        check_arity(&self.name, 1, inputs)?;
        let units = inputs[0].shape().dim(0)?;
        validate_range(&self.name, &range, units)?;
        if range.start == 0 && range.end == units {
            Ok(inputs[0].clone())
        } else {
            Ok(inputs[0].slice_axis0(range.start, range.end)?)
        }
    }

    fn workload(&self, inputs: &[&Shape]) -> Result<Workload> {
        check_arity(&self.name, 1, inputs)?;
        let bytes = (inputs[0].num_elements() * 4) as u64;
        Ok(Workload {
            flops: 0,
            input_bytes: bytes,
            output_bytes: bytes,
            weight_bytes: 0,
        })
    }
}

/// Softmax over a rank-1 score vector.
///
/// **Not partitionable**: the normalizing sum couples every output, so the
/// tuner must schedule it on a single processor (the DAG decomposition
/// treats it as an unsplittable chain node).
#[derive(Debug, Clone)]
pub struct Softmax {
    name: String,
}

impl Softmax {
    /// Creates a softmax layer.
    pub fn new(name: impl Into<String>) -> Self {
        Self { name: name.into() }
    }
}

impl Layer for Softmax {
    fn name(&self) -> &str {
        &self.name
    }

    fn class(&self) -> LayerClass {
        LayerClass::Activation
    }

    fn output_shape(&self, inputs: &[&Shape]) -> Result<Shape> {
        check_arity(&self.name, 1, inputs)?;
        Ok(inputs[0].clone())
    }

    fn partitionable(&self) -> bool {
        false
    }

    fn partition_units(&self, _inputs: &[&Shape]) -> Result<usize> {
        Ok(1)
    }

    fn forward_partial(&self, inputs: &[&Tensor], range: Range<usize>) -> Result<Tensor> {
        check_arity(&self.name, 1, inputs)?;
        require_full_range(&self.name, &range, 1)?;
        let mut out = inputs[0].clone();
        ops::softmax_in_place(out.as_mut_slice());
        Ok(out)
    }

    fn workload(&self, inputs: &[&Shape]) -> Result<Workload> {
        check_arity(&self.name, 1, inputs)?;
        let elems = inputs[0].num_elements() as u64;
        Ok(Workload {
            // exp + subtract + divide + two reductions, ~5 ops per element
            flops: 5 * elems,
            input_bytes: elems * 4,
            output_bytes: elems * 4,
            weight_bytes: 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::test_support::assert_merge_invariant;
    use crate::NnError;

    #[test]
    fn relu_matches_reference() {
        let x = Tensor::from_vec(vec![-1.0, 0.0, 2.0, -3.0], &[4]).unwrap();
        let y = Relu::new("r").forward(&[&x]).unwrap();
        assert_eq!(y.as_slice(), &[0.0, 0.0, 2.0, 0.0]);
    }

    #[test]
    fn relu_merge_invariant() {
        let x = Tensor::random(&[6, 3, 3], 1.0, 1);
        assert_merge_invariant(&Relu::new("r"), &[&x]);
    }

    #[test]
    fn dropout_is_identity_at_inference() {
        let x = Tensor::random(&[5, 2], 1.0, 2);
        let y = Dropout::new("d").forward(&[&x]).unwrap();
        assert_eq!(y, x);
        assert_merge_invariant(&Dropout::new("d"), &[&x]);
        assert_eq!(Dropout::new("d").workload(&[x.shape()]).unwrap().flops, 0);
    }

    #[test]
    fn softmax_normalizes() {
        let x = Tensor::from_vec(vec![0.0, 1.0, 2.0], &[3]).unwrap();
        let y = Softmax::new("s").forward(&[&x]).unwrap();
        assert!((y.sum() - 1.0).abs() < 1e-6);
        assert_eq!(y.argmax(), Some(2));
    }

    #[test]
    fn softmax_rejects_partitioning() {
        let s = Softmax::new("s");
        let x = Tensor::random(&[4], 1.0, 0);
        assert!(!s.partitionable());
        assert_eq!(s.partition_units(&[x.shape()]).unwrap(), 1);
        assert!(matches!(
            s.forward_partial(&[&x], 0..0),
            Err(NnError::BadPartition { .. })
        ));
    }

    #[test]
    fn activation_shapes_are_identity() {
        let shape = Shape::new(&[3, 4, 4]);
        assert_eq!(Relu::new("r").output_shape(&[&shape]).unwrap(), shape);
        assert_eq!(Dropout::new("d").output_shape(&[&shape]).unwrap(), shape);
        assert_eq!(Softmax::new("s").output_shape(&[&shape]).unwrap(), shape);
    }
}
