//! Error type for network construction and execution.

use std::fmt;

use edgenn_tensor::TensorError;

/// Errors from layer execution and graph construction.
#[derive(Debug, Clone, PartialEq)]
pub enum NnError {
    /// A tensor-level operation failed.
    Tensor(TensorError),
    /// A layer received the wrong number of inputs.
    ArityMismatch {
        /// Layer name.
        layer: String,
        /// Inputs the layer requires.
        expected: usize,
        /// Inputs supplied.
        actual: usize,
    },
    /// A layer received an input of an unsupported shape.
    BadInputShape {
        /// Layer name.
        layer: String,
        /// Explanation of the constraint that was violated.
        reason: String,
    },
    /// A partition range was invalid for the layer's output.
    BadPartition {
        /// Layer name.
        layer: String,
        /// Requested range start.
        start: usize,
        /// Requested range end (exclusive).
        end: usize,
        /// Number of available partition units.
        units: usize,
    },
    /// The layer cannot be partitioned (e.g. softmax) and a strict
    /// sub-range was requested.
    NotPartitionable {
        /// Layer name.
        layer: String,
    },
    /// A graph node referenced an id that does not exist (yet).
    UnknownNode {
        /// The offending node id.
        id: usize,
    },
    /// The graph has a structural defect (no nodes, multiple sinks, …).
    InvalidGraph {
        /// Explanation.
        reason: String,
    },
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Tensor(e) => write!(f, "tensor error: {e}"),
            Self::ArityMismatch {
                layer,
                expected,
                actual,
            } => {
                write!(
                    f,
                    "layer '{layer}' expected {expected} inputs, got {actual}"
                )
            }
            Self::BadInputShape { layer, reason } => {
                write!(f, "layer '{layer}' rejected input: {reason}")
            }
            Self::BadPartition {
                layer,
                start,
                end,
                units,
            } => write!(
                f,
                "layer '{layer}': partition {start}..{end} invalid for {units} units"
            ),
            Self::NotPartitionable { layer } => {
                write!(f, "layer '{layer}' does not support partial execution")
            }
            Self::UnknownNode { id } => write!(f, "unknown graph node id {id}"),
            Self::InvalidGraph { reason } => write!(f, "invalid graph: {reason}"),
        }
    }
}

impl std::error::Error for NnError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for NnError {
    fn from(e: TensorError) -> Self {
        Self::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tensor_errors_convert() {
        let e: NnError = TensorError::EmptyRange { start: 1, end: 1 }.into();
        assert!(matches!(e, NnError::Tensor(_)));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn display_includes_layer_names() {
        let e = NnError::BadPartition {
            layer: "conv1".into(),
            start: 2,
            end: 9,
            units: 8,
        };
        assert_eq!(
            e.to_string(),
            "layer 'conv1': partition 2..9 invalid for 8 units"
        );
        let e = NnError::ArityMismatch {
            layer: "concat".into(),
            expected: 2,
            actual: 1,
        };
        assert!(e.to_string().contains("concat"));
    }
}
