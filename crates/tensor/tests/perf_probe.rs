//! Manual perf probe for the dispatched kernels (not a CI gate).
//!
//! Run with:
//! `cargo test --release -p edgenn-tensor --test perf_probe -- --ignored --nocapture`
//! Optionally pin a variant with `EDGENN_SIMD=portable|avx2|avx512`.

use std::time::Instant;

use edgenn_tensor::{
    gemm_into, kernel_arch, qgemm_requant_into, quantize_into, row_sums, QTensor, QuantParams,
    Quantization, Requant, Tensor,
};

fn best_ns(mut f: impl FnMut(), iters: usize) -> u64 {
    let mut best = u64::MAX;
    for _ in 0..iters {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_nanos() as u64);
    }
    best
}

#[test]
#[ignore = "manual perf probe, prints timings"]
fn gemm_f32_vs_int8_throughput() {
    // VGG-ish deep conv shape: (out_c, in_c*3*3) x (k, out_h*out_w).
    let (m, k, n) = (256, 2304, 196);
    let w = Tensor::random(&[m, k], 1.0, 1);
    let x = Tensor::random(&[k, n], 1.0, 2);
    let mut out = vec![0.0f32; m * n];

    let qw = QTensor::quantize_per_channel(&w).unwrap();
    let Quantization::PerChannel(wp) = qw.quant().clone() else {
        unreachable!()
    };
    let w_scales: Vec<f32> = wp.iter().map(|p| p.scale).collect();
    let rsums = row_sums(qw.as_slice(), m, k);
    let act = QuantParams::from_min_max(-1.0, 1.0);
    let mut qx = vec![0i8; k * n];
    quantize_into(x.as_slice(), &mut qx, act);
    let rq = Requant {
        w_scales: &w_scales,
        act,
        row_sums: &rsums,
        bias: None,
        relu: false,
    };

    let f32_ns = best_ns(
        || {
            out.fill(0.0);
            gemm_into(w.as_slice(), x.as_slice(), &mut out, m, k, n);
        },
        12,
    );
    let int8_ns = best_ns(
        || qgemm_requant_into(qw.as_slice(), &qx, &mut out, m, k, n, &rq),
        12,
    );
    let flops = 2.0 * (m * k * n) as f64;
    println!(
        "arch={} ({m}x{k}x{n}) f32 {:.2} ms ({:.2} GFLOP/s) | int8 {:.2} ms ({:.2} Gop/s) | int8/f32 {:.2}x",
        kernel_arch().name(),
        f32_ns as f64 / 1e6,
        flops / f32_ns as f64,
        int8_ns as f64 / 1e6,
        flops / int8_ns as f64,
        f32_ns as f64 / int8_ns as f64,
    );
}
