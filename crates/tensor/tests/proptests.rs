//! Property-based tests for tensor invariants.

use edgenn_tensor::{gemm, im2col, matvec, Conv2dGeometry, Shape, Tensor};
use proptest::prelude::*;

/// Strategy producing small tensor dimension lists (rank 1..=3).
fn small_dims() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(1usize..6, 1..=3)
}

proptest! {
    #[test]
    fn reshape_roundtrip_preserves_tensor(dims in small_dims(), seed in 0u64..1000) {
        let t = Tensor::random(&dims, 1.0, seed);
        let flat = t.reshape(&[t.len()]).unwrap();
        let back = flat.reshape(&dims).unwrap();
        prop_assert_eq!(back, t);
    }

    #[test]
    fn slice_concat_roundtrip(
        axis0 in 1usize..12,
        inner in 1usize..8,
        seed in 0u64..1000,
        cut_frac in 0.0f64..1.0,
    ) {
        let t = Tensor::random(&[axis0, inner], 1.0, seed);
        let cut = ((axis0 as f64 * cut_frac) as usize).clamp(1, axis0);
        if cut == axis0 {
            // Degenerate split: single full slice must equal the tensor.
            let s = t.slice_axis0(0, axis0).unwrap();
            prop_assert_eq!(s, t);
        } else {
            let a = t.slice_axis0(0, cut).unwrap();
            let b = t.slice_axis0(cut, axis0).unwrap();
            let merged = Tensor::concat_axis0(&[&a, &b]).unwrap();
            prop_assert_eq!(merged, t);
        }
    }

    #[test]
    fn offset_is_bijective_over_shape(dims in small_dims()) {
        let shape = Shape::new(&dims);
        let n = shape.num_elements();
        let mut seen = vec![false; n];
        // Enumerate all multi-indices and verify offsets cover 0..n uniquely.
        let mut index = vec![0usize; dims.len()];
        for _ in 0..n {
            let off = shape.offset(&index).unwrap();
            prop_assert!(!seen[off], "offset {} repeated", off);
            seen[off] = true;
            // increment multi-index (odometer).
            for axis in (0..dims.len()).rev() {
                index[axis] += 1;
                if index[axis] < dims[axis] {
                    break;
                }
                index[axis] = 0;
            }
        }
        prop_assert!(seen.into_iter().all(|b| b));
    }

    #[test]
    fn gemm_distributes_over_addition(
        m in 1usize..5, k in 1usize..5, n in 1usize..5, seed in 0u64..500,
    ) {
        let a = Tensor::random(&[m, k], 1.0, seed);
        let b = Tensor::random(&[k, n], 1.0, seed + 1);
        let c = Tensor::random(&[k, n], 1.0, seed + 2);
        let lhs = gemm(&a, &b.add(&c).unwrap()).unwrap();
        let rhs = gemm(&a, &b).unwrap().add(&gemm(&a, &c).unwrap()).unwrap();
        prop_assert!(lhs.approx_eq(&rhs, 1e-4));
    }

    #[test]
    fn gemm_scales_linearly(m in 1usize..5, k in 1usize..5, seed in 0u64..500, s in -3.0f32..3.0) {
        let a = Tensor::random(&[m, k], 1.0, seed);
        let b = Tensor::random(&[k, m], 1.0, seed + 9);
        let lhs = gemm(&a.scale(s), &b).unwrap();
        let rhs = gemm(&a, &b).unwrap().scale(s);
        prop_assert!(lhs.approx_eq(&rhs, 1e-3));
    }

    #[test]
    fn matvec_agrees_with_gemm(m in 1usize..6, k in 1usize..6, seed in 0u64..500) {
        let a = Tensor::random(&[m, k], 1.0, seed);
        let x = Tensor::random(&[k], 1.0, seed + 77);
        let mv = matvec(&a, &x).unwrap();
        let mm = gemm(&a, &x.reshape(&[k, 1]).unwrap()).unwrap();
        prop_assert!(mv.approx_eq(&mm.reshape(&[m]).unwrap(), 1e-4));
    }

    #[test]
    fn im2col_row_count_and_patch_sums(
        c in 1usize..4, hw in 3usize..8, k in 1usize..4, seed in 0u64..200,
    ) {
        prop_assume!(k <= hw);
        let input = Tensor::random(&[c, hw, hw], 1.0, seed);
        let g = Conv2dGeometry {
            in_channels: c, in_h: hw, in_w: hw,
            kernel_h: k, kernel_w: k,
            stride_h: 1, stride_w: 1, pad_h: 0, pad_w: 0,
        };
        let cols = im2col(&input, &g).unwrap();
        prop_assert_eq!(cols.dims()[0], c * k * k);
        prop_assert_eq!(cols.dims()[1], g.out_h() * g.out_w());
        // Convolving with an all-ones kernel equals summing each patch; check
        // one output position against a direct window sum.
        let ones = Tensor::ones(&[1, c * k * k]);
        let sums = gemm(&ones, &cols).unwrap();
        let mut direct = 0.0f32;
        for ch in 0..c {
            for dy in 0..k {
                for dx in 0..k {
                    direct += input.get(&[ch, dy, dx]).unwrap();
                }
            }
        }
        prop_assert!((sums.as_slice()[0] - direct).abs() < 1e-3);
    }
}
