//! Randomized (seeded, deterministic) tests for tensor invariants.
//!
//! These were originally property-based tests; they now draw cases from a
//! fixed-seed RNG so the suite is reproducible and dependency-free.

use edgenn_tensor::{gemm, im2col, matvec, naive_gemm, Conv2dGeometry, Shape, Tensor};
use rand::{Rng, SeedableRng};

const CASES: usize = 64;

fn small_dims(rng: &mut rand::rngs::StdRng) -> Vec<usize> {
    let rank = rng.gen_range(1usize..=3);
    (0..rank).map(|_| rng.gen_range(1usize..6)).collect()
}

#[test]
fn reshape_roundtrip_preserves_tensor() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xED6E_0001);
    for _ in 0..CASES {
        let dims = small_dims(&mut rng);
        let seed = rng.gen_range(0u64..1000);
        let t = Tensor::random(&dims, 1.0, seed);
        let flat = t.reshape(&[t.len()]).unwrap();
        let back = flat.reshape(&dims).unwrap();
        assert_eq!(back, t);
    }
}

#[test]
fn slice_concat_roundtrip() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xED6E_0002);
    for _ in 0..CASES {
        let axis0 = rng.gen_range(1usize..12);
        let inner = rng.gen_range(1usize..8);
        let seed = rng.gen_range(0u64..1000);
        let cut_frac = rng.gen_range(0.0f64..1.0);
        let t = Tensor::random(&[axis0, inner], 1.0, seed);
        let cut = ((axis0 as f64 * cut_frac) as usize).clamp(1, axis0);
        if cut == axis0 {
            // Degenerate split: single full slice must equal the tensor.
            let s = t.slice_axis0(0, axis0).unwrap();
            assert_eq!(s, t);
        } else {
            let a = t.slice_axis0(0, cut).unwrap();
            let b = t.slice_axis0(cut, axis0).unwrap();
            let merged = Tensor::concat_axis0(&[&a, &b]).unwrap();
            assert_eq!(merged, t);
        }
    }
}

#[test]
fn offset_is_bijective_over_shape() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xED6E_0003);
    for _ in 0..CASES {
        let dims = small_dims(&mut rng);
        let shape = Shape::new(&dims);
        let n = shape.num_elements();
        let mut seen = vec![false; n];
        // Enumerate all multi-indices and verify offsets cover 0..n uniquely.
        let mut index = vec![0usize; dims.len()];
        for _ in 0..n {
            let off = shape.offset(&index).unwrap();
            assert!(!seen[off], "offset {off} repeated");
            seen[off] = true;
            // increment multi-index (odometer).
            for axis in (0..dims.len()).rev() {
                index[axis] += 1;
                if index[axis] < dims[axis] {
                    break;
                }
                index[axis] = 0;
            }
        }
        assert!(seen.into_iter().all(|b| b));
    }
}

#[test]
fn gemm_distributes_over_addition() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xED6E_0004);
    for _ in 0..CASES {
        let m = rng.gen_range(1usize..5);
        let k = rng.gen_range(1usize..5);
        let n = rng.gen_range(1usize..5);
        let seed = rng.gen_range(0u64..500);
        let a = Tensor::random(&[m, k], 1.0, seed);
        let b = Tensor::random(&[k, n], 1.0, seed + 1);
        let c = Tensor::random(&[k, n], 1.0, seed + 2);
        let lhs = gemm(&a, &b.add(&c).unwrap()).unwrap();
        let rhs = gemm(&a, &b).unwrap().add(&gemm(&a, &c).unwrap()).unwrap();
        assert!(lhs.approx_eq(&rhs, 1e-4));
    }
}

#[test]
fn gemm_scales_linearly() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xED6E_0005);
    for _ in 0..CASES {
        let m = rng.gen_range(1usize..5);
        let k = rng.gen_range(1usize..5);
        let seed = rng.gen_range(0u64..500);
        let s = rng.gen_range(-3.0f32..3.0);
        let a = Tensor::random(&[m, k], 1.0, seed);
        let b = Tensor::random(&[k, m], 1.0, seed + 9);
        let lhs = gemm(&a.scale(s), &b).unwrap();
        let rhs = gemm(&a, &b).unwrap().scale(s);
        assert!(lhs.approx_eq(&rhs, 1e-3));
    }
}

#[test]
fn matvec_agrees_with_gemm() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xED6E_0006);
    for _ in 0..CASES {
        let m = rng.gen_range(1usize..6);
        let k = rng.gen_range(1usize..6);
        let seed = rng.gen_range(0u64..500);
        let a = Tensor::random(&[m, k], 1.0, seed);
        let x = Tensor::random(&[k], 1.0, seed + 77);
        let mv = matvec(&a, &x).unwrap();
        let mm = gemm(&a, &x.reshape(&[k, 1]).unwrap()).unwrap();
        assert!(mv.approx_eq(&mm.reshape(&[m]).unwrap(), 1e-4));
    }
}

#[test]
fn im2col_row_count_and_patch_sums() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xED6E_0007);
    let mut checked = 0usize;
    while checked < CASES {
        let c = rng.gen_range(1usize..4);
        let hw = rng.gen_range(3usize..8);
        let k = rng.gen_range(1usize..4);
        let seed = rng.gen_range(0u64..200);
        if k > hw {
            continue;
        }
        checked += 1;
        let input = Tensor::random(&[c, hw, hw], 1.0, seed);
        let g = Conv2dGeometry {
            in_channels: c,
            in_h: hw,
            in_w: hw,
            kernel_h: k,
            kernel_w: k,
            stride_h: 1,
            stride_w: 1,
            pad_h: 0,
            pad_w: 0,
        };
        let cols = im2col(&input, &g).unwrap();
        assert_eq!(cols.dims()[0], c * k * k);
        assert_eq!(cols.dims()[1], g.out_h() * g.out_w());
        // Convolving with an all-ones kernel equals summing each patch; check
        // one output position against a direct window sum.
        let ones = Tensor::ones(&[1, c * k * k]);
        let sums = gemm(&ones, &cols).unwrap();
        let mut direct = 0.0f32;
        for ch in 0..c {
            for dy in 0..k {
                for dx in 0..k {
                    direct += input.get(&[ch, dy, dx]).unwrap();
                }
            }
        }
        assert!((sums.as_slice()[0] - direct).abs() < 1e-3);
    }
}

#[test]
fn tiled_gemm_matches_the_naive_oracle() {
    // Differential test for the cache-blocked GEMM: every case is checked
    // against the naive triple loop, with shapes steered at degenerate
    // and tile-boundary cases (k = 0, n = 1, non-multiples of MR/NR/KC).
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xED6E_0008);
    for case in 0..CASES {
        let (m, k, n) = match case % 8 {
            0 => (rng.gen_range(1usize..6), 0, rng.gen_range(1usize..6)),
            1 => (rng.gen_range(1usize..40), rng.gen_range(1usize..64), 1),
            2 => (1, rng.gen_range(1usize..64), rng.gen_range(1usize..40)),
            3 => (4, 32, 16),  // exact register-tile multiples
            4 => (5, 33, 17),  // every tile dimension off by one
            5 => (3, 300, 29), // k past the KC blocking threshold
            _ => (
                rng.gen_range(1usize..32),
                rng.gen_range(1usize..128),
                rng.gen_range(1usize..32),
            ),
        };
        let seed = rng.gen_range(0u64..1000);
        let a = Tensor::random(&[m, k], 1.0, seed);
        let b = Tensor::random(&[k, n], 1.0, seed.wrapping_add(1));
        let fast = gemm(&a, &b).unwrap();
        let slow = naive_gemm(&a, &b).unwrap();
        assert_eq!(fast.dims(), &[m, n]);
        // fp32 reassociation scales with the dot length; 1e-5 relative
        // to the largest accumulated magnitude.
        let scale = slow
            .as_slice()
            .iter()
            .fold(1.0f32, |acc, v| acc.max(v.abs()));
        let diff = fast.max_abs_diff(&slow).unwrap_or(0.0);
        assert!(
            diff <= 1e-5 * scale,
            "case {case}: {m}x{k}x{n} diff {diff} (scale {scale})"
        );
    }
}
