//! Reusable scratch buffers for kernel lowering.
//!
//! The conv hot path materializes two large temporaries per layer — the
//! im2col patch matrix and the packed-B panels inside the tiled GEMM.
//! Allocating them per layer dominated steady-state inference cost, so
//! both now come from a per-thread arena: a stack of `Vec<f32>` buffers
//! that grow to the largest request they have served and are then reused
//! forever. After the first pass over a model, a thread performs **zero
//! heap allocations per conv layer**.
//!
//! The arena is deliberately thread-local: the functional engine's worker
//! pool gives each worker its own arena, so no locking sits on the hot
//! path. Global atomic counters track reused vs freshly allocated bytes
//! so the observability layer can prove the steady state is reached.
//!
//! All three arenas hand out slices starting on a 64-byte boundary (see
//! [`SCRATCH_ALIGN`]) so the vectorized GEMM panel loads never straddle
//! cache lines regardless of where the allocator placed the buffer.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};

use edgenn_obs::flight;

/// Every scratch slice starts on a 64-byte boundary. The GEMM packed-B
/// panels live in scratch and are consumed by 512-bit vector loads; a
/// `Vec` allocation only guarantees the element's own alignment, so
/// whether those loads split cache lines is decided once per process by
/// allocator luck. That made whole-process runs bimodal (the same model
/// 20-40% slower in an unlucky run, stably, until restart). Each arena
/// over-allocates by one cache line and hands out the aligned window.
const SCRATCH_ALIGN: usize = 64;

/// Offset (in elements of size `elem`) that 64-byte-aligns `addr`,
/// capped at one cache line's worth of elements.
fn align_pad(addr: usize, elem: usize) -> usize {
    (addr.wrapping_neg() % SCRATCH_ALIGN) / elem
}

/// Bytes served by growing a buffer (capacity that had to be allocated).
static FRESH_BYTES: AtomicU64 = AtomicU64::new(0);
/// Bytes served from an already-large-enough buffer.
static REUSED_BYTES: AtomicU64 = AtomicU64::new(0);
/// Number of [`with_scratch`] acquisitions.
static ACQUISITIONS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Stack of idle buffers. Nested `with_scratch` calls pop in LIFO
    /// order, so a fixed nesting pattern (conv: cols, then packed B)
    /// always meets the same buffer at the same depth and stops growing
    /// after the first pass.
    static ARENA: RefCell<Vec<Vec<f32>>> = const { RefCell::new(Vec::new()) };
    /// Parallel stack for int8 buffers (quantized im2col matrices and
    /// packed int8 GEMM panels). Safe Rust cannot reinterpret an f32
    /// buffer as bytes without `unsafe`, so the quantized path gets its
    /// own arena; both report into the same global byte counters.
    static ARENA_I8: RefCell<Vec<Vec<i8>>> = const { RefCell::new(Vec::new()) };
    /// Stack for i16 buffers: the int8 GEMM widens both operands to i16
    /// during packing so the microkernel's inner loops lower to the
    /// widening multiply-accumulate idiom (`pmaddwd` on x86) without a
    /// per-iteration sign-extension of the i8 codes.
    static ARENA_I16: RefCell<Vec<Vec<i16>>> = const { RefCell::new(Vec::new()) };
}

/// Monotonic counters describing arena behaviour since process start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ScratchStats {
    /// Bytes that required a fresh heap allocation (buffer growth).
    pub fresh_bytes: u64,
    /// Bytes served from an existing buffer without allocating.
    pub reused_bytes: u64,
    /// Total number of scratch acquisitions.
    pub acquisitions: u64,
}

impl ScratchStats {
    /// Counter deltas between two snapshots (`later - self`).
    pub fn delta(&self, later: &ScratchStats) -> ScratchStats {
        ScratchStats {
            fresh_bytes: later.fresh_bytes.saturating_sub(self.fresh_bytes),
            reused_bytes: later.reused_bytes.saturating_sub(self.reused_bytes),
            acquisitions: later.acquisitions.saturating_sub(self.acquisitions),
        }
    }
}

/// Snapshot of the global scratch counters (all threads).
pub fn scratch_stats() -> ScratchStats {
    ScratchStats {
        fresh_bytes: FRESH_BYTES.load(Ordering::Relaxed),
        reused_bytes: REUSED_BYTES.load(Ordering::Relaxed),
        acquisitions: ACQUISITIONS.load(Ordering::Relaxed),
    }
}

/// Runs `f` with a zeroed scratch slice of `len` floats drawn from the
/// calling thread's arena. Calls may nest (each nesting level gets its
/// own buffer); the buffer returns to the arena when `f` returns.
pub fn with_scratch<R>(len: usize, f: impl FnOnce(&mut [f32]) -> R) -> R {
    let mut buf = ARENA
        .with(|arena| arena.borrow_mut().pop())
        .unwrap_or_default();
    let had_capacity = buf.capacity();
    buf.clear();
    buf.resize(len + SCRATCH_ALIGN / 4, 0.0);
    let pad = align_pad(buf.as_ptr() as usize, 4);
    ACQUISITIONS.fetch_add(1, Ordering::Relaxed);
    let grew = buf.capacity() > had_capacity;
    if grew {
        FRESH_BYTES.fetch_add((len * 4) as u64, Ordering::Relaxed);
    } else {
        REUSED_BYTES.fetch_add((len * 4) as u64, Ordering::Relaxed);
    }
    // Only misses get an individual flight record: each one means a heap
    // allocation on the hot path, and they go to zero in steady state, so
    // they are rare and each is worth seeing. Hits are the common case
    // (one per conv phase per layer); recording each would be the single
    // largest contributor to recorder overhead, and the information is
    // already carried per request by the REUSED_BYTES/ACQUISITIONS
    // counter deltas in `EngineStats`.
    if grew && flight::enabled() {
        flight::instant(
            flight::SpanKind::ArenaMiss,
            flight::NO_NODE,
            (len * 4) as u64,
        );
    }
    let result = f(&mut buf[pad..pad + len]);
    ARENA.with(|arena| arena.borrow_mut().push(buf));
    result
}

/// [`with_scratch`] for int8 buffers: runs `f` with a zeroed scratch
/// slice of `len` bytes from the calling thread's i8 arena. Shares the
/// global counters with the f32 arena (a byte is a byte), so the
/// observability layer and the tier-D certified-peak gate see quantized
/// scratch traffic through the same [`ScratchStats`].
pub fn with_scratch_i8<R>(len: usize, f: impl FnOnce(&mut [i8]) -> R) -> R {
    let mut buf = ARENA_I8
        .with(|arena| arena.borrow_mut().pop())
        .unwrap_or_default();
    let had_capacity = buf.capacity();
    buf.clear();
    buf.resize(len + SCRATCH_ALIGN, 0);
    let pad = align_pad(buf.as_ptr() as usize, 1);
    ACQUISITIONS.fetch_add(1, Ordering::Relaxed);
    let grew = buf.capacity() > had_capacity;
    if grew {
        FRESH_BYTES.fetch_add(len as u64, Ordering::Relaxed);
    } else {
        REUSED_BYTES.fetch_add(len as u64, Ordering::Relaxed);
    }
    if grew && flight::enabled() {
        flight::instant(flight::SpanKind::ArenaMiss, flight::NO_NODE, len as u64);
    }
    let result = f(&mut buf[pad..pad + len]);
    ARENA_I8.with(|arena| arena.borrow_mut().push(buf));
    result
}

/// [`with_scratch`] for i16 buffers (`len` elements, counted as
/// `2 * len` bytes in the shared counters). Used by the int8 GEMM for
/// its widened operand panels.
pub fn with_scratch_i16<R>(len: usize, f: impl FnOnce(&mut [i16]) -> R) -> R {
    let mut buf = ARENA_I16
        .with(|arena| arena.borrow_mut().pop())
        .unwrap_or_default();
    let had_capacity = buf.capacity();
    buf.clear();
    buf.resize(len + SCRATCH_ALIGN / 2, 0);
    let pad = align_pad(buf.as_ptr() as usize, 2);
    ACQUISITIONS.fetch_add(1, Ordering::Relaxed);
    let grew = buf.capacity() > had_capacity;
    if grew {
        FRESH_BYTES.fetch_add((len * 2) as u64, Ordering::Relaxed);
    } else {
        REUSED_BYTES.fetch_add((len * 2) as u64, Ordering::Relaxed);
    }
    if grew && flight::enabled() {
        flight::instant(
            flight::SpanKind::ArenaMiss,
            flight::NO_NODE,
            (len * 2) as u64,
        );
    }
    let result = f(&mut buf[pad..pad + len]);
    ARENA_I16.with(|arena| arena.borrow_mut().push(buf));
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_are_zeroed_every_time() {
        with_scratch(8, |buf| {
            assert_eq!(buf, &[0.0; 8]);
            buf.fill(7.0);
        });
        with_scratch(8, |buf| assert_eq!(buf, &[0.0; 8]));
    }

    #[test]
    fn second_acquisition_reuses_capacity() {
        // Warm the arena beyond any smaller request. The counters are
        // global (other test threads also bump them), so assert only on
        // contributions this thread is guaranteed to make.
        with_scratch(1024, |_| {});
        let before = scratch_stats();
        with_scratch(512, |buf| assert_eq!(buf.len(), 512));
        let delta = before.delta(&scratch_stats());
        assert!(delta.acquisitions >= 1);
        assert!(
            delta.reused_bytes >= 512 * 4,
            "a smaller request after warm-up must count as reuse"
        );
    }

    #[test]
    fn nested_acquisitions_get_distinct_buffers() {
        with_scratch(16, |outer| {
            outer.fill(1.0);
            with_scratch(16, |inner| {
                assert_eq!(inner, &[0.0; 16]);
                inner.fill(2.0);
            });
            assert_eq!(outer, &[1.0; 16], "inner call must not alias outer");
        });
    }

    #[test]
    fn i8_arena_is_distinct_zeroed_and_counted_in_bytes() {
        with_scratch_i8(64, |buf| {
            assert_eq!(buf, &[0i8; 64]);
            buf.fill(5);
        });
        // The f32 arena must not see the i8 buffer (separate stacks).
        with_scratch(64, |buf| assert_eq!(buf, &[0.0f32; 64]));
        with_scratch_i8(64, |buf| assert_eq!(buf, &[0i8; 64]));
        // Counters are bytes, not elements: a warm 64-byte request
        // contributes exactly 64 reused bytes from this thread.
        let before = scratch_stats();
        with_scratch_i8(64, |_| {});
        let delta = before.delta(&scratch_stats());
        assert!(delta.reused_bytes >= 64);
        assert!(delta.acquisitions >= 1);
    }

    #[test]
    fn every_arena_hands_out_cache_line_aligned_slices() {
        // Alignment must hold on fresh allocation AND on reuse (a popped
        // buffer's base address never changes, but the guarantee is about
        // the slice we hand out, not the Vec).
        for _ in 0..2 {
            with_scratch(33, |buf| {
                assert_eq!(buf.as_ptr() as usize % SCRATCH_ALIGN, 0);
                assert_eq!(buf.len(), 33);
            });
            with_scratch_i16(77, |buf| {
                assert_eq!(buf.as_ptr() as usize % SCRATCH_ALIGN, 0);
                assert_eq!(buf.len(), 77);
            });
            with_scratch_i8(129, |buf| {
                assert_eq!(buf.as_ptr() as usize % SCRATCH_ALIGN, 0);
                assert_eq!(buf.len(), 129);
            });
        }
    }

    #[test]
    fn growth_is_counted_as_fresh() {
        let before = scratch_stats();
        // A request larger than anything this thread has served forces
        // at least one buffer to grow (each test runs on a fresh thread,
        // so this thread's arena starts empty).
        with_scratch(1 << 20, |buf| assert_eq!(buf.len(), 1 << 20));
        let delta = before.delta(&scratch_stats());
        assert!(delta.fresh_bytes >= 1 << 22);
    }
}
