//! Reusable scratch buffers for kernel lowering.
//!
//! The conv hot path materializes two large temporaries per layer — the
//! im2col patch matrix and the packed-B panels inside the tiled GEMM.
//! Allocating them per layer dominated steady-state inference cost, so
//! both now come from a per-thread arena: a stack of `Vec<f32>` buffers
//! that grow to the largest request they have served and are then reused
//! forever. After the first pass over a model, a thread performs **zero
//! heap allocations per conv layer**.
//!
//! The arena is deliberately thread-local: the functional engine's worker
//! pool gives each worker its own arena, so no locking sits on the hot
//! path. Global atomic counters track reused vs freshly allocated bytes
//! so the observability layer can prove the steady state is reached.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};

use edgenn_obs::flight;

/// Bytes served by growing a buffer (capacity that had to be allocated).
static FRESH_BYTES: AtomicU64 = AtomicU64::new(0);
/// Bytes served from an already-large-enough buffer.
static REUSED_BYTES: AtomicU64 = AtomicU64::new(0);
/// Number of [`with_scratch`] acquisitions.
static ACQUISITIONS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Stack of idle buffers. Nested `with_scratch` calls pop in LIFO
    /// order, so a fixed nesting pattern (conv: cols, then packed B)
    /// always meets the same buffer at the same depth and stops growing
    /// after the first pass.
    static ARENA: RefCell<Vec<Vec<f32>>> = const { RefCell::new(Vec::new()) };
}

/// Monotonic counters describing arena behaviour since process start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ScratchStats {
    /// Bytes that required a fresh heap allocation (buffer growth).
    pub fresh_bytes: u64,
    /// Bytes served from an existing buffer without allocating.
    pub reused_bytes: u64,
    /// Total number of scratch acquisitions.
    pub acquisitions: u64,
}

impl ScratchStats {
    /// Counter deltas between two snapshots (`later - self`).
    pub fn delta(&self, later: &ScratchStats) -> ScratchStats {
        ScratchStats {
            fresh_bytes: later.fresh_bytes.saturating_sub(self.fresh_bytes),
            reused_bytes: later.reused_bytes.saturating_sub(self.reused_bytes),
            acquisitions: later.acquisitions.saturating_sub(self.acquisitions),
        }
    }
}

/// Snapshot of the global scratch counters (all threads).
pub fn scratch_stats() -> ScratchStats {
    ScratchStats {
        fresh_bytes: FRESH_BYTES.load(Ordering::Relaxed),
        reused_bytes: REUSED_BYTES.load(Ordering::Relaxed),
        acquisitions: ACQUISITIONS.load(Ordering::Relaxed),
    }
}

/// Runs `f` with a zeroed scratch slice of `len` floats drawn from the
/// calling thread's arena. Calls may nest (each nesting level gets its
/// own buffer); the buffer returns to the arena when `f` returns.
pub fn with_scratch<R>(len: usize, f: impl FnOnce(&mut [f32]) -> R) -> R {
    let mut buf = ARENA
        .with(|arena| arena.borrow_mut().pop())
        .unwrap_or_default();
    let had_capacity = buf.capacity();
    buf.clear();
    buf.resize(len, 0.0);
    ACQUISITIONS.fetch_add(1, Ordering::Relaxed);
    let grew = buf.capacity() > had_capacity;
    if grew {
        FRESH_BYTES.fetch_add((len * 4) as u64, Ordering::Relaxed);
    } else {
        REUSED_BYTES.fetch_add((len * 4) as u64, Ordering::Relaxed);
    }
    // Only misses get an individual flight record: each one means a heap
    // allocation on the hot path, and they go to zero in steady state, so
    // they are rare and each is worth seeing. Hits are the common case
    // (one per conv phase per layer); recording each would be the single
    // largest contributor to recorder overhead, and the information is
    // already carried per request by the REUSED_BYTES/ACQUISITIONS
    // counter deltas in `EngineStats`.
    if grew && flight::enabled() {
        flight::instant(
            flight::SpanKind::ArenaMiss,
            flight::NO_NODE,
            (len * 4) as u64,
        );
    }
    let result = f(&mut buf);
    ARENA.with(|arena| arena.borrow_mut().push(buf));
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_are_zeroed_every_time() {
        with_scratch(8, |buf| {
            assert_eq!(buf, &[0.0; 8]);
            buf.fill(7.0);
        });
        with_scratch(8, |buf| assert_eq!(buf, &[0.0; 8]));
    }

    #[test]
    fn second_acquisition_reuses_capacity() {
        // Warm the arena beyond any smaller request. The counters are
        // global (other test threads also bump them), so assert only on
        // contributions this thread is guaranteed to make.
        with_scratch(1024, |_| {});
        let before = scratch_stats();
        with_scratch(512, |buf| assert_eq!(buf.len(), 512));
        let delta = before.delta(&scratch_stats());
        assert!(delta.acquisitions >= 1);
        assert!(
            delta.reused_bytes >= 512 * 4,
            "a smaller request after warm-up must count as reuse"
        );
    }

    #[test]
    fn nested_acquisitions_get_distinct_buffers() {
        with_scratch(16, |outer| {
            outer.fill(1.0);
            with_scratch(16, |inner| {
                assert_eq!(inner, &[0.0; 16]);
                inner.fill(2.0);
            });
            assert_eq!(outer, &[1.0; 16], "inner call must not alias outer");
        });
    }

    #[test]
    fn growth_is_counted_as_fresh() {
        let before = scratch_stats();
        // A request larger than anything this thread has served forces
        // at least one buffer to grow (each test runs on a fresh thread,
        // so this thread's arena starts empty).
        with_scratch(1 << 20, |buf| assert_eq!(buf.len(), 1 << 20));
        let delta = before.delta(&scratch_stats());
        assert!(delta.fresh_bytes >= 1 << 22);
    }
}
