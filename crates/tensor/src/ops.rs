//! Numeric slice routines shared by layer kernels.
//!
//! These operate on raw `&mut [f32]` so that the partitioned (intra-kernel)
//! execution paths in `edgenn-nn` can apply them to sub-ranges of an output
//! buffer without materializing intermediate tensors.

/// Rectified linear unit, in place.
pub fn relu_in_place(data: &mut [f32]) {
    for x in data {
        if *x < 0.0 {
            *x = 0.0;
        }
    }
}

/// Numerically stable softmax, in place.
///
/// Subtracts the maximum before exponentiating; an all-`-inf` or empty
/// slice is left untouched.
pub fn softmax_in_place(data: &mut [f32]) {
    let max = data.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    if !max.is_finite() {
        return;
    }
    let mut sum = 0.0f32;
    for x in data.iter_mut() {
        *x = (*x - max).exp();
        sum += *x;
    }
    if sum > 0.0 {
        for x in data.iter_mut() {
            *x /= sum;
        }
    }
}

/// Euclidean norm of a slice.
pub fn l2_norm(data: &[f32]) -> f32 {
    data.iter().map(|&x| x * x).sum::<f32>().sqrt()
}

/// Mean of a slice (0 for empty input).
pub fn mean(data: &[f32]) -> f32 {
    if data.is_empty() {
        0.0
    } else {
        data.iter().sum::<f32>() / data.len() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negatives_only() {
        let mut v = vec![-2.0, -0.0, 0.5, 3.0];
        relu_in_place(&mut v);
        assert_eq!(v, vec![0.0, 0.0, 0.5, 3.0]);
    }

    #[test]
    fn softmax_sums_to_one_and_orders_preserved() {
        let mut v = vec![1.0, 2.0, 3.0];
        softmax_in_place(&mut v);
        let sum: f32 = v.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert!(v[0] < v[1] && v[1] < v[2]);
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let mut a = vec![1.0, 2.0, 3.0];
        let mut b = vec![1001.0, 1002.0, 1003.0];
        softmax_in_place(&mut a);
        softmax_in_place(&mut b);
        for (x, y) in a.iter().zip(b.iter()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_handles_degenerate_inputs() {
        let mut empty: Vec<f32> = vec![];
        softmax_in_place(&mut empty);
        assert!(empty.is_empty());
        let mut ninf = vec![f32::NEG_INFINITY, f32::NEG_INFINITY];
        softmax_in_place(&mut ninf);
        assert!(ninf.iter().all(|x| x.is_infinite()));
    }

    #[test]
    fn norm_and_mean() {
        assert_eq!(l2_norm(&[3.0, 4.0]), 5.0);
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
    }
}
