//! Matrix multiplication kernels.
//!
//! The convolutional layers in `edgenn-nn` lower to GEMM via im2col, so
//! this is the hot loop of the functional execution path. The fast path
//! is a cache-blocked kernel in the BLIS style: the right-hand matrix is
//! packed into panels of `NR` contiguous columns per `KC`-deep slab of
//! the reduction dimension, and an `MR x NR` register-tiled microkernel
//! accumulates into local arrays that LLVM keeps in vector registers.
//! Every loop is over fixed-size safe slices, so the whole kernel
//! auto-vectorizes without `unsafe` — and the same safe body is
//! re-instantiated under `#[target_feature]` by [`crate::simd`], which
//! picks the widest variant (AVX2+FMA, AVX-512) the CPU supports once
//! per process.
//!
//! Epilogues (bias add, bias+ReLU, elementwise add) run *inside* the
//! microkernel's write-back loop via [`Epilogue`], while the output tile
//! is still in registers, instead of as separate passes over the output.
//!
//! [`naive_gemm`] keeps the original textbook triple loop as the
//! differential-test oracle: every optimized path must match it within
//! fp32 re-association tolerance (see `tests/proptests.rs`).

use edgenn_obs::flight;

use crate::scratch::with_scratch;
use crate::{Result, Tensor, TensorError};

/// Rows of the register microtile (output rows accumulated at once).
const MR: usize = 4;
/// Columns of the register microtile (one panel width; two f32x8 lanes).
const NR: usize = 16;
/// Reduction-dimension block: one packed slab is `KC x NR` = 16 KiB.
const KC: usize = 256;
/// Output-row block: an `MC x KC` slab of A stays resident in L2.
const MC: usize = 64;

/// Operation fused into the GEMM write-back loop.
///
/// Let `t = out[i][j] + acc[i][j]` be the fully accumulated product for
/// one output element (`out` may carry partial sums from a previous
/// accumulation, exactly as in plain [`gemm_into`]). The epilogue maps
/// `t` to the stored value while the tile is still in registers:
///
/// | variant    | stored value                  |
/// |------------|-------------------------------|
/// | `None`     | `t`                           |
/// | `Bias`     | `t + bias[i]`                 |
/// | `BiasRelu` | `max(t + bias[i], 0)`         |
/// | `Add`      | `t + addend[i * n + j]`       |
///
/// `bias` is indexed by output *row* (the conv output channel / dense
/// unit), `addend` is a full `m x n` matrix (residual input or partial
/// sum from the co-running processor).
#[derive(Debug, Clone, Copy)]
pub enum Epilogue<'a> {
    /// Plain accumulate: the historical [`gemm_into`] behaviour.
    None,
    /// Per-row bias add fused into the write-back.
    Bias {
        /// One bias value per output row (`len == m`).
        bias: &'a [f32],
    },
    /// Per-row bias add plus ReLU clamp fused into the write-back.
    BiasRelu {
        /// One bias value per output row (`len == m`).
        bias: &'a [f32],
    },
    /// Elementwise add of a second `m x n` matrix fused in.
    Add {
        /// Row-major addend with the same shape as the output.
        addend: &'a [f32],
    },
}

impl Epilogue<'_> {
    /// Applies the epilogue to one accumulated element of output row `i`,
    /// column `j` (absolute coordinates in the `m x n` output).
    #[inline(always)]
    fn apply(&self, t: f32, i: usize, j: usize, n: usize) -> f32 {
        match *self {
            Epilogue::None => t,
            Epilogue::Bias { bias } => t + bias[i],
            Epilogue::BiasRelu { bias } => (t + bias[i]).max(0.0),
            Epilogue::Add { addend } => t + addend[i * n + j],
        }
    }

    /// Asserts the operand lengths promised by the variant docs.
    fn debug_check(&self, m: usize, n: usize) {
        match *self {
            Epilogue::None => {}
            Epilogue::Bias { bias } | Epilogue::BiasRelu { bias } => {
                debug_assert_eq!(bias.len(), m, "bias must have one entry per output row");
            }
            Epilogue::Add { addend } => {
                debug_assert_eq!(addend.len(), m * n, "addend must match the output shape");
            }
        }
    }
}

/// Multiplies two rank-2 tensors: `(m, k) x (k, n) -> (m, n)`.
///
/// # Errors
/// Returns [`TensorError::RankMismatch`] unless both operands are rank 2,
/// and [`TensorError::MatmulDimMismatch`] when the inner dimensions differ.
pub fn gemm(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    if a.shape().rank() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: a.shape().rank(),
        });
    }
    if b.shape().rank() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: b.shape().rank(),
        });
    }
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let (k2, n) = (b.dims()[0], b.dims()[1]);
    if k != k2 {
        return Err(TensorError::MatmulDimMismatch {
            left: (m, k),
            right: (k2, n),
        });
    }
    let mut out = vec![0.0f32; m * n];
    gemm_into(a.as_slice(), b.as_slice(), &mut out, m, k, n);
    Tensor::from_vec(out, &[m, n])
}

/// Reference triple-loop GEMM, kept as the differential-test oracle for
/// the blocked kernel. `(m, k) x (k, n) -> (m, n)`.
///
/// # Errors
/// Same shape requirements as [`gemm`].
pub fn naive_gemm(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    if a.shape().rank() != 2 || b.shape().rank() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: if a.shape().rank() != 2 {
                a.shape().rank()
            } else {
                b.shape().rank()
            },
        });
    }
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let (k2, n) = (b.dims()[0], b.dims()[1]);
    if k != k2 {
        return Err(TensorError::MatmulDimMismatch {
            left: (m, k),
            right: (k2, n),
        });
    }
    let (av, bv) = (a.as_slice(), b.as_slice());
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for p in 0..k {
                acc += av[i * k + p] * bv[p * n + j];
            }
            out[i * n + j] = acc;
        }
    }
    Tensor::from_vec(out, &[m, n])
}

/// Scratch-arena floats [`gemm_into`] may acquire while packing a
/// `(m, k) x (k, n)` product — the static bound the tier-D ownership
/// analyzer certifies against measured arena growth. Small problems
/// (`m * n * k < 8 * 1024`) skip packing entirely, so the bound is a
/// sound over-approximation: it can exceed, but never undercount, what
/// one call acquires.
#[must_use]
pub fn gemm_pack_elems(m: usize, k: usize, n: usize) -> usize {
    if m == 0 || n == 0 || k == 0 {
        return 0;
    }
    n.div_ceil(NR) * NR * KC.min(k)
}

/// Raw blocked GEMM on slices: accumulates `a * b` into `out`, which must
/// hold `m * n` elements (zero-initialized for a plain product).
///
/// Exposed so that layer kernels can run the hot loop directly on weight
/// sub-slices and scratch-arena buffers without re-wrapping tensors.
pub fn gemm_into(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    gemm_into_fused(a, b, out, m, k, n, Epilogue::None);
}

/// Length of the buffer [`gemm_pack_a`] produces for an `(m, k)` matrix.
#[must_use]
pub fn gemm_packed_a_len(m: usize, k: usize) -> usize {
    (m.div_ceil(MR) * MR + MR) * k
}

/// Copies an `(m, k)` row-major A matrix into the layout the blocked
/// kernel reads when the left operand is *prepacked*: the same row-major
/// rows, zero-padded with enough trailing rows that any row-range slice
/// `&packed[start * k..]` exposes whole `MR`-row microtile blocks. The
/// blocked body detects the padding by length
/// (`a.len() >= m.div_ceil(MR) * MR * k`) and runs the register-tiled
/// microkernel over remainder rows too, clamping the write-back — the
/// per-row accumulation order is identical either way, so a prepacked
/// call is **bitwise identical** to the unpacked one.
///
/// Mirrors [`crate::qgemm_pack_a`]'s padding contract (an extra `MR` rows
/// beyond the round-up) so weights packed once at compile time serve
/// every output-channel partial without re-packing.
#[must_use]
pub fn gemm_pack_a(a: &[f32], m: usize, k: usize) -> Vec<f32> {
    debug_assert_eq!(a.len(), m * k);
    let mut packed = vec![0.0f32; gemm_packed_a_len(m, k)];
    packed[..m * k].copy_from_slice(a);
    packed
}

/// [`gemm_into`] with an [`Epilogue`] fused into the write-back loop.
///
/// `out` still accumulates (`t = out + a*b` feeds the epilogue), so a
/// zero-initialized `out` with `Epilogue::Bias` computes `a*b + bias` in
/// one pass with no separate bias sweep over the output.
pub fn gemm_into_fused(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    ep: Epilogue<'_>,
) {
    debug_assert!(a.len() >= m * k, "A must hold at least m*k elements");
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    ep.debug_check(m, n);
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        // Nothing to accumulate: the epilogue alone maps the output.
        for i in 0..m {
            for j in 0..n {
                out[i * n + j] = ep.apply(out[i * n + j], i, j, n);
            }
        }
        return;
    }
    // Tiny problems (mat-vec-ish shapes, unit tests) are faster without
    // the packing round trip. They are also below the flight recorder's
    // useful resolution (sub-microsecond), so no compute span: the time
    // still lands in the enclosing node span.
    if m * n * k < 8 * 1024 {
        crate::simd::gemm_small_dispatch(a, b, out, m, k, n, ep);
        return;
    }
    // Flight-recorder phase attribution: packing is interleaved with the
    // microkernel per KC-slab, so per-slab pack time is accumulated and
    // the call is recorded as one synthetic pack span followed by one
    // compute span (timing costs two clock reads per slab, only while
    // the recorder is on).
    //
    // The scratch acquisition happens *here*, outside the dispatched
    // body: the body must be a closure-free straight line so it inlines
    // whole into the `#[target_feature]` wrappers and re-vectorizes (a
    // closure would monomorphize once, at baseline width, and the hot
    // loops with it).
    let profiled = flight::enabled();
    let t_begin = if profiled { flight::now_ns() } else { 0 };
    let panels = n.div_ceil(NR);
    let pack_ns = with_scratch(panels * NR * KC.min(k), |packed| {
        crate::simd::gemm_body_dispatch(a, b, packed, out, m, k, n, ep, profiled)
    });
    if profiled {
        let t_end = flight::now_ns();
        let parent = flight::current_parent();
        let packed_bytes = (panels * NR * KC.min(k) * 4) as u64;
        flight::record_manual(
            flight::SpanKind::Pack,
            flight::NO_NODE,
            parent,
            t_begin,
            t_begin + pack_ns,
            packed_bytes,
        );
        flight::record_manual(
            flight::SpanKind::Compute,
            flight::NO_NODE,
            parent,
            t_begin + pack_ns,
            t_end,
            0,
        );
    }
}

/// The blocked GEMM body behind [`gemm_into_fused`], after argument
/// checks, small-problem cutoff, and scratch acquisition. Returns the
/// nanoseconds spent packing (0 unless `profiled`).
///
/// `pub(crate)` + `#[inline(always)]` so [`crate::simd`] can re-compile
/// the identical safe source under wider `#[target_feature]` sets.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
pub(crate) fn gemm_body(
    a: &[f32],
    b: &[f32],
    packed: &mut [f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    ep: Epilogue<'_>,
    profiled: bool,
) -> u64 {
    let mut pack_ns = 0u64;
    let panels = n.div_ceil(NR);
    // A prepacked left operand ([`gemm_pack_a`]) carries zero-padded
    // trailing rows, letting remainder rows run through the full
    // register-tiled microkernel (write-back clamped to the real rows)
    // instead of the slower single-row edge kernel. Unpadded callers
    // pass exactly `m * k` elements, which fails this length test
    // whenever a remainder row exists, so they keep the row kernel.
    let a_padded = a.len() >= (m.div_ceil(MR) * MR) * k && k > 0;
    for kb in (0..k).step_by(KC) {
        let kc = KC.min(k - kb);
        // The epilogue must fire exactly once per element, after the
        // last KC slab has been accumulated.
        let slab_ep = if kb + kc == k { ep } else { Epilogue::None };
        if profiled {
            let t0 = flight::now_ns();
            pack_b_panels(b, packed, kb, kc, n);
            pack_ns += flight::now_ns().saturating_sub(t0);
        } else {
            pack_b_panels(b, packed, kb, kc, n);
        }
        for mb in (0..m).step_by(MC) {
            let mc = MC.min(m - mb);
            for (panel, chunk) in packed.chunks(NR * kc).enumerate().take(panels) {
                let j0 = panel * NR;
                let nr = NR.min(n - j0);
                let mut i0 = 0;
                while i0 + MR <= mc {
                    microkernel_full(a, chunk, out, mb + i0, kb, kc, k, n, j0, nr, MR, slab_ep);
                    i0 += MR;
                }
                if i0 < mc {
                    if a_padded {
                        // Remainder rows: the padding rows make a full
                        // MR-block readable; only `mc - i0` rows are
                        // written back.
                        microkernel_full(
                            a,
                            chunk,
                            out,
                            mb + i0,
                            kb,
                            kc,
                            k,
                            n,
                            j0,
                            nr,
                            mc - i0,
                            slab_ep,
                        );
                    } else {
                        for i in i0..mc {
                            microkernel_row(a, chunk, out, mb + i, kb, kc, k, n, j0, nr, slab_ep);
                        }
                    }
                }
            }
        }
    }
    pack_ns
}

/// The pre-blocking `i-k-j` kernel, still used for small problems: the
/// innermost loop walks the output row and the B row contiguously. The
/// epilogue is applied per output row immediately after its reduction,
/// while the row is still cache-hot.
#[inline(always)]
pub(crate) fn gemm_small(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    ep: Epilogue<'_>,
) {
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        for (p, &a_ip) in a_row.iter().enumerate() {
            let b_row = &b[p * n..(p + 1) * n];
            for (o, &b_pj) in out_row.iter_mut().zip(b_row.iter()) {
                *o += a_ip * b_pj;
            }
        }
        if !matches!(ep, Epilogue::None) {
            for (j, o) in out_row.iter_mut().enumerate() {
                *o = ep.apply(*o, i, j, n);
            }
        }
    }
}

/// Packs rows `kb..kb+kc` of `b` into column panels: panel `p` holds
/// columns `p*NR..p*NR+NR` stored as `kc` contiguous rows of `NR` floats,
/// zero-padded when `n` is not a multiple of `NR`. The scratch buffer is
/// pre-zeroed by the arena, but it is reused across `kb` slabs within one
/// call, so the padding lanes are re-zeroed explicitly.
#[inline(always)]
fn pack_b_panels(b: &[f32], packed: &mut [f32], kb: usize, kc: usize, n: usize) {
    let panels = n.div_ceil(NR);
    for panel in 0..panels {
        let j0 = panel * NR;
        let nr = NR.min(n - j0);
        let dst_panel = &mut packed[panel * NR * kc..(panel + 1) * NR * kc];
        for p in 0..kc {
            let src = &b[(kb + p) * n + j0..(kb + p) * n + j0 + nr];
            let dst = &mut dst_panel[p * NR..p * NR + NR];
            dst[..nr].copy_from_slice(src);
            dst[nr..].fill(0.0);
        }
    }
}

/// `MR x NR` register-tiled update: `out[i0..i0+rows, j0..j0+nr] +=`
/// `a[i0..i0+MR, kb..kb+kc] * panel`, with the epilogue applied during
/// write-back. The accumulator lives in fixed-size local arrays, which
/// LLVM promotes to vector registers; each loaded B row is reused `MR`
/// times and each A element `NR` times. `rows < MR` (prepacked tails)
/// reads all `MR` A rows — the caller guarantees they are readable —
/// but writes back only the first `rows` accumulator rows.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn microkernel_full(
    a: &[f32],
    panel: &[f32],
    out: &mut [f32],
    i0: usize,
    kb: usize,
    kc: usize,
    k: usize,
    n: usize,
    j0: usize,
    nr: usize,
    rows: usize,
    ep: Epilogue<'_>,
) {
    let mut acc = [[0.0f32; NR]; MR];
    let a0 = &a[i0 * k + kb..i0 * k + kb + kc];
    let a1 = &a[(i0 + 1) * k + kb..(i0 + 1) * k + kb + kc];
    let a2 = &a[(i0 + 2) * k + kb..(i0 + 2) * k + kb + kc];
    let a3 = &a[(i0 + 3) * k + kb..(i0 + 3) * k + kb + kc];
    for (p, brow) in panel.chunks_exact(NR).take(kc).enumerate() {
        let av = [a0[p], a1[p], a2[p], a3[p]];
        for (accr, &ar) in acc.iter_mut().zip(av.iter()) {
            for (dst, &bv) in accr.iter_mut().zip(brow.iter()) {
                *dst += ar * bv;
            }
        }
    }
    for (r, accr) in acc.iter().enumerate().take(rows) {
        let row = &mut out[(i0 + r) * n + j0..(i0 + r) * n + j0 + nr];
        for (j, (o, &v)) in row.iter_mut().zip(accr.iter()).enumerate() {
            *o = ep.apply(*o + v, i0 + r, j0 + j, n);
        }
    }
}

/// Single-row edge of the microtile (m remainder rows).
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn microkernel_row(
    a: &[f32],
    panel: &[f32],
    out: &mut [f32],
    i: usize,
    kb: usize,
    kc: usize,
    k: usize,
    n: usize,
    j0: usize,
    nr: usize,
    ep: Epilogue<'_>,
) {
    let mut acc = [0.0f32; NR];
    let arow = &a[i * k + kb..i * k + kb + kc];
    for (p, brow) in panel.chunks_exact(NR).take(kc).enumerate() {
        let ar = arow[p];
        for (dst, &bv) in acc.iter_mut().zip(brow.iter()) {
            *dst += ar * bv;
        }
    }
    let row = &mut out[i * n + j0..i * n + j0 + nr];
    for (j, (o, &v)) in row.iter_mut().zip(acc.iter()).enumerate() {
        *o = ep.apply(*o + v, i, j0 + j, n);
    }
}

/// Matrix-vector product: `(m, k) x (k,) -> (m,)`.
///
/// Fully-connected layers with batch size 1 are mat-vec, not mat-mat; a
/// dedicated kernel avoids the degenerate `n = 1` GEMM layout. Each dot
/// product runs over eight independent accumulators so the reduction
/// vectorizes despite fp32 non-associativity.
///
/// # Errors
/// Returns [`TensorError::RankMismatch`] when `a` is not rank 2 or `x` is
/// not rank 1, and [`TensorError::MatmulDimMismatch`] when dims disagree.
pub fn matvec(a: &Tensor, x: &Tensor) -> Result<Tensor> {
    if a.shape().rank() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: a.shape().rank(),
        });
    }
    if x.shape().rank() != 1 {
        return Err(TensorError::RankMismatch {
            expected: 1,
            actual: x.shape().rank(),
        });
    }
    let (m, k) = (a.dims()[0], a.dims()[1]);
    if k != x.dims()[0] {
        return Err(TensorError::MatmulDimMismatch {
            left: (m, k),
            right: (x.dims()[0], 1),
        });
    }
    let span = flight::begin(flight::SpanKind::Compute, flight::NO_NODE);
    let xs = x.as_slice();
    let data: Vec<f32> = (0..m)
        .map(|i| dot(&a.as_slice()[i * k..(i + 1) * k], xs))
        .collect();
    flight::end(span);
    Tensor::from_vec(data, &[m])
}

/// Vectorizable dot product: eight parallel partial sums plus a scalar
/// tail. Also used by the dense layer's partial-input path. Dispatches
/// to the widest microkernel variant like [`gemm_into`].
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    crate::simd::dot_dispatch(a, b)
}

/// Portable body behind [`dot`]; re-instantiated by [`crate::simd`].
#[inline(always)]
pub(crate) fn dot_body(a: &[f32], b: &[f32]) -> f32 {
    const LANES: usize = 8;
    let mut acc = [0.0f32; LANES];
    let chunks = a.len() / LANES;
    for (ac, bc) in a
        .chunks_exact(LANES)
        .take(chunks)
        .zip(b.chunks_exact(LANES))
    {
        for (l, dst) in acc.iter_mut().enumerate() {
            *dst += ac[l] * bc[l];
        }
    }
    let mut total: f32 = acc.iter().sum();
    for (av, bv) in a[chunks * LANES..].iter().zip(&b[chunks * LANES..]) {
        total += av * bv;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_matches_hand_example() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let b = Tensor::from_vec(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]).unwrap();
        let c = gemm(&a, &b).unwrap();
        assert_eq!(c.dims(), &[2, 2]);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn gemm_matches_naive_on_random_inputs() {
        for seed in 0..4 {
            let a = Tensor::random(&[7, 11], 1.0, seed);
            let b = Tensor::random(&[11, 5], 1.0, seed + 100);
            let fast = gemm(&a, &b).unwrap();
            let slow = naive_gemm(&a, &b).unwrap();
            assert!(fast.approx_eq(&slow, 1e-4), "seed {seed}");
        }
    }

    #[test]
    fn blocked_path_matches_naive_past_the_small_cutoff() {
        // Big enough that the packed/blocked kernel runs, with dims that
        // are not multiples of MR/NR/KC.
        let a = Tensor::random(&[37, 301], 1.0, 5);
        let b = Tensor::random(&[301, 29], 1.0, 6);
        let fast = gemm(&a, &b).unwrap();
        let slow = naive_gemm(&a, &b).unwrap();
        assert!(
            fast.approx_eq(&slow, 1e-3),
            "max diff {}",
            fast.max_abs_diff(&slow).unwrap()
        );
    }

    #[test]
    fn gemm_identity_is_noop() {
        let a = Tensor::random(&[4, 4], 2.0, 1);
        assert!(gemm(&a, &Tensor::eye(4)).unwrap().approx_eq(&a, 1e-6));
        assert!(gemm(&Tensor::eye(4), &a).unwrap().approx_eq(&a, 1e-6));
    }

    #[test]
    fn gemm_validates_shapes() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        assert!(matches!(
            gemm(&a, &b),
            Err(TensorError::MatmulDimMismatch { .. })
        ));
        let v = Tensor::zeros(&[3]);
        assert!(matches!(
            gemm(&v, &b),
            Err(TensorError::RankMismatch { .. })
        ));
        assert!(matches!(
            gemm(&a, &v),
            Err(TensorError::RankMismatch { .. })
        ));
        assert!(matches!(
            naive_gemm(&a, &b),
            Err(TensorError::MatmulDimMismatch { .. })
        ));
        assert!(matches!(
            naive_gemm(&v, &b),
            Err(TensorError::RankMismatch { .. })
        ));
    }

    #[test]
    fn zero_inner_dimension_yields_zero_matrix() {
        let a = Tensor::zeros(&[3, 0]);
        let b = Tensor::zeros(&[0, 4]);
        let c = gemm(&a, &b).unwrap();
        assert_eq!(c.dims(), &[3, 4]);
        assert!(c.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn matvec_matches_gemm_column() {
        let a = Tensor::random(&[5, 9], 1.0, 11);
        let x = Tensor::random(&[9], 1.0, 12);
        let mv = matvec(&a, &x).unwrap();
        let as_col = x.reshape(&[9, 1]).unwrap();
        let mm = gemm(&a, &as_col).unwrap();
        assert!(mv.approx_eq(&mm.reshape(&[5]).unwrap(), 1e-5));
    }

    #[test]
    fn matvec_validates_shapes() {
        let a = Tensor::zeros(&[5, 9]);
        assert!(matches!(
            matvec(&a, &Tensor::zeros(&[8])),
            Err(TensorError::MatmulDimMismatch { .. })
        ));
        assert!(matches!(
            matvec(&a, &Tensor::zeros(&[8, 1])),
            Err(TensorError::RankMismatch { .. })
        ));
    }

    #[test]
    fn pack_bound_covers_the_actual_packing_acquisition() {
        // The packing buffer is exactly panels * NR * KC.min(k) floats;
        // the exported bound must never undercount it (empty problems
        // acquire nothing).
        assert_eq!(gemm_pack_elems(0, 64, 64), 0);
        assert_eq!(gemm_pack_elems(64, 0, 64), 0);
        for (m, k, n) in [(1, 1, 1), (4, 300, 17), (64, 256, 128), (3, 7, 1000)] {
            let bound = gemm_pack_elems(m, k, n);
            assert!(bound >= n.div_ceil(16) * 16 * 256.min(k), "({m},{k},{n})");
        }
    }

    #[test]
    fn prepacked_a_is_bitwise_identical_to_unpacked() {
        // Dimensions chosen to hit both kernels and every tail case:
        // m % MR in {0, 1, 2, 3}, blocked and small paths.
        for (m, k, n) in [(4, 16, 8), (7, 301, 29), (37, 301, 29), (66, 120, 33)] {
            let a = Tensor::random(&[m, k], 1.0, 41);
            let b = Tensor::random(&[k, n], 1.0, 42);
            let bias: Vec<f32> = (0..m).map(|i| i as f32 * 0.5 - 1.0).collect();
            let packed = gemm_pack_a(a.as_slice(), m, k);
            assert_eq!(packed.len(), gemm_packed_a_len(m, k));
            for ep in [Epilogue::None, Epilogue::BiasRelu { bias: &bias }] {
                let mut plain = vec![0.0f32; m * n];
                gemm_into_fused(a.as_slice(), b.as_slice(), &mut plain, m, k, n, ep);
                let mut pre = vec![0.0f32; m * n];
                gemm_into_fused(&packed, b.as_slice(), &mut pre, m, k, n, ep);
                assert_eq!(plain, pre, "({m},{k},{n}) {ep:?}");
            }
        }
    }

    #[test]
    fn prepacked_row_range_slices_match_full_rows_bitwise() {
        // The compile-time layout contract: any output-row range served
        // from `&packed[start * k..]` must reproduce the same rows of
        // the full product bitwise, including ranges that start and end
        // off the MR grid.
        let (m, k, n) = (23, 173, 57);
        let a = Tensor::random(&[m, k], 1.0, 51);
        let b = Tensor::random(&[k, n], 1.0, 52);
        let packed = gemm_pack_a(a.as_slice(), m, k);
        let mut full = vec![0.0f32; m * n];
        gemm_into_fused(&packed, b.as_slice(), &mut full, m, k, n, Epilogue::None);
        for (start, end) in [(0, 4), (3, 9), (5, 23), (21, 23), (22, 23)] {
            let rows = end - start;
            let mut part = vec![0.0f32; rows * n];
            gemm_into_fused(
                &packed[start * k..],
                b.as_slice(),
                &mut part,
                rows,
                k,
                n,
                Epilogue::None,
            );
            assert_eq!(&part[..], &full[start * n..end * n], "rows {start}..{end}");
        }
    }

    #[test]
    fn dot_handles_tails_and_empty() {
        assert_eq!(dot(&[], &[]), 0.0);
        let a: Vec<f32> = (0..19).map(|i| i as f32).collect();
        let b: Vec<f32> = (0..19).map(|i| (i * 2) as f32).collect();
        let expected: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        assert!((dot(&a, &b) - expected).abs() < 1e-3);
    }

    /// Reference for the fused paths: plain product + separate epilogue.
    fn unfused(a: &Tensor, b: &Tensor, ep: Epilogue<'_>) -> Tensor {
        let mut c = naive_gemm(a, b).unwrap();
        let (m, n) = (c.dims()[0], c.dims()[1]);
        let data = c.as_mut_slice();
        for i in 0..m {
            for j in 0..n {
                data[i * n + j] = ep.apply(data[i * n + j], i, j, n);
            }
        }
        c
    }

    #[test]
    fn fused_epilogues_match_separate_passes() {
        // Cover both the small kernel and the blocked kernel (the second
        // shape is past the 8k cutoff and off-tile in every dimension).
        for (m, k, n) in [(3, 5, 7), (37, 301, 29)] {
            let a = Tensor::random(&[m, k], 1.0, 21);
            let b = Tensor::random(&[k, n], 1.0, 22);
            let bias: Vec<f32> = (0..m).map(|i| i as f32 * 0.25 - 1.0).collect();
            let addend = Tensor::random(&[m, n], 1.0, 23);
            let cases: [Epilogue<'_>; 3] = [
                Epilogue::Bias { bias: &bias },
                Epilogue::BiasRelu { bias: &bias },
                Epilogue::Add {
                    addend: addend.as_slice(),
                },
            ];
            for ep in cases {
                let mut out = vec![0.0f32; m * n];
                gemm_into_fused(a.as_slice(), b.as_slice(), &mut out, m, k, n, ep);
                let want = unfused(&a, &b, ep);
                let got = Tensor::from_vec(out, &[m, n]).unwrap();
                assert!(
                    got.approx_eq(&want, 1e-3),
                    "({m},{k},{n}) {ep:?}: max diff {}",
                    got.max_abs_diff(&want).unwrap()
                );
            }
        }
    }

    #[test]
    fn fused_bias_relu_clamps_negatives_once() {
        // k = 0 exercises the epilogue-only path: out = relu(out + bias).
        let mut out = vec![-2.0f32, 3.0];
        let bias = [1.0f32, -5.0];
        gemm_into_fused(
            &[],
            &[],
            &mut out,
            2,
            0,
            1,
            Epilogue::BiasRelu { bias: &bias },
        );
        assert_eq!(out, vec![0.0, 0.0]);
    }

    #[test]
    fn fused_add_accumulates_on_top_of_existing_output() {
        // `out` carries prior partial sums; Add must see them in `t`.
        let a = Tensor::random(&[4, 6], 1.0, 31);
        let b = Tensor::random(&[6, 5], 1.0, 32);
        let addend = Tensor::random(&[4, 5], 1.0, 33);
        let mut fused = vec![1.0f32; 20];
        gemm_into_fused(
            a.as_slice(),
            b.as_slice(),
            &mut fused,
            4,
            6,
            5,
            Epilogue::Add {
                addend: addend.as_slice(),
            },
        );
        let mut plain = vec![1.0f32; 20];
        gemm_into(a.as_slice(), b.as_slice(), &mut plain, 4, 6, 5);
        for (f, (p, &ad)) in fused.iter().zip(plain.iter().zip(addend.as_slice())) {
            assert!((f - (p + ad)).abs() < 1e-4);
        }
    }
}
