//! Matrix multiplication kernels.
//!
//! The convolutional layers in `edgenn-nn` lower to GEMM via im2col, so
//! this is the hot loop of the functional execution path. We use the
//! classic `i-k-j` loop order: the innermost loop walks both the output row
//! and the right-hand matrix row contiguously, which lets LLVM
//! auto-vectorize without any `unsafe`.

use crate::{Result, Tensor, TensorError};

/// Multiplies two rank-2 tensors: `(m, k) x (k, n) -> (m, n)`.
///
/// # Errors
/// Returns [`TensorError::RankMismatch`] unless both operands are rank 2,
/// and [`TensorError::MatmulDimMismatch`] when the inner dimensions differ.
pub fn gemm(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    if a.shape().rank() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: a.shape().rank(),
        });
    }
    if b.shape().rank() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: b.shape().rank(),
        });
    }
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let (k2, n) = (b.dims()[0], b.dims()[1]);
    if k != k2 {
        return Err(TensorError::MatmulDimMismatch {
            left: (m, k),
            right: (k2, n),
        });
    }
    let mut out = vec![0.0f32; m * n];
    gemm_into(a.as_slice(), b.as_slice(), &mut out, m, k, n);
    Tensor::from_vec(out, &[m, n])
}

/// Raw GEMM on slices; `out` must hold `m * n` zero-initialized elements.
///
/// Exposed so that layer kernels can partition the output rows across
/// worker threads without re-wrapping tensors.
pub(crate) fn gemm_into(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        for (p, &a_ip) in a_row.iter().enumerate() {
            if a_ip == 0.0 {
                continue;
            }
            let b_row = &b[p * n..(p + 1) * n];
            for (o, &b_pj) in out_row.iter_mut().zip(b_row.iter()) {
                *o += a_ip * b_pj;
            }
        }
    }
}

/// Matrix-vector product: `(m, k) x (k,) -> (m,)`.
///
/// Fully-connected layers with batch size 1 are mat-vec, not mat-mat; a
/// dedicated kernel avoids the degenerate `n = 1` GEMM layout.
///
/// # Errors
/// Returns [`TensorError::RankMismatch`] when `a` is not rank 2 or `x` is
/// not rank 1, and [`TensorError::MatmulDimMismatch`] when dims disagree.
pub fn matvec(a: &Tensor, x: &Tensor) -> Result<Tensor> {
    if a.shape().rank() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: a.shape().rank(),
        });
    }
    if x.shape().rank() != 1 {
        return Err(TensorError::RankMismatch {
            expected: 1,
            actual: x.shape().rank(),
        });
    }
    let (m, k) = (a.dims()[0], a.dims()[1]);
    if k != x.dims()[0] {
        return Err(TensorError::MatmulDimMismatch {
            left: (m, k),
            right: (x.dims()[0], 1),
        });
    }
    let xs = x.as_slice();
    let data: Vec<f32> = (0..m)
        .map(|i| {
            a.as_slice()[i * k..(i + 1) * k]
                .iter()
                .zip(xs.iter())
                .map(|(&w, &v)| w * v)
                .sum()
        })
        .collect();
    Tensor::from_vec(data, &[m])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_gemm(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.dims()[0], a.dims()[1]);
        let n = b.dims()[1];
        let mut out = Tensor::zeros(&[m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for p in 0..k {
                    acc += a.get(&[i, p]).unwrap() * b.get(&[p, j]).unwrap();
                }
                out.set(&[i, j], acc).unwrap();
            }
        }
        out
    }

    #[test]
    fn gemm_matches_hand_example() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let b = Tensor::from_vec(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]).unwrap();
        let c = gemm(&a, &b).unwrap();
        assert_eq!(c.dims(), &[2, 2]);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn gemm_matches_naive_on_random_inputs() {
        for seed in 0..4 {
            let a = Tensor::random(&[7, 11], 1.0, seed);
            let b = Tensor::random(&[11, 5], 1.0, seed + 100);
            let fast = gemm(&a, &b).unwrap();
            let slow = naive_gemm(&a, &b);
            assert!(fast.approx_eq(&slow, 1e-4), "seed {seed}");
        }
    }

    #[test]
    fn gemm_identity_is_noop() {
        let a = Tensor::random(&[4, 4], 2.0, 1);
        assert!(gemm(&a, &Tensor::eye(4)).unwrap().approx_eq(&a, 1e-6));
        assert!(gemm(&Tensor::eye(4), &a).unwrap().approx_eq(&a, 1e-6));
    }

    #[test]
    fn gemm_validates_shapes() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        assert!(matches!(
            gemm(&a, &b),
            Err(TensorError::MatmulDimMismatch { .. })
        ));
        let v = Tensor::zeros(&[3]);
        assert!(matches!(
            gemm(&v, &b),
            Err(TensorError::RankMismatch { .. })
        ));
        assert!(matches!(
            gemm(&a, &v),
            Err(TensorError::RankMismatch { .. })
        ));
    }

    #[test]
    fn gemm_skips_zero_rows_correctly() {
        // The a_ip == 0.0 fast path must not change results.
        let mut a = Tensor::random(&[6, 6], 1.0, 3);
        for i in 0..6 {
            a.set(&[i, i], 0.0).unwrap();
        }
        let b = Tensor::random(&[6, 6], 1.0, 4);
        assert!(gemm(&a, &b).unwrap().approx_eq(&naive_gemm(&a, &b), 1e-4));
    }

    #[test]
    fn matvec_matches_gemm_column() {
        let a = Tensor::random(&[5, 9], 1.0, 11);
        let x = Tensor::random(&[9], 1.0, 12);
        let mv = matvec(&a, &x).unwrap();
        let as_col = x.reshape(&[9, 1]).unwrap();
        let mm = gemm(&a, &as_col).unwrap();
        assert!(mv.approx_eq(&mm.reshape(&[5]).unwrap(), 1e-5));
    }

    #[test]
    fn matvec_validates_shapes() {
        let a = Tensor::zeros(&[5, 9]);
        assert!(matches!(
            matvec(&a, &Tensor::zeros(&[8])),
            Err(TensorError::MatmulDimMismatch { .. })
        ));
        assert!(matches!(
            matvec(&a, &Tensor::zeros(&[8, 1])),
            Err(TensorError::RankMismatch { .. })
        ));
    }
}
