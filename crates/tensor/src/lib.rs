//! # edgenn-tensor
//!
//! Dense `f32` tensor substrate for the EdgeNN reproduction.
//!
//! The EdgeNN paper (ICDE 2023) evaluates CUDA kernels; this crate provides
//! the arithmetic those kernels perform so that the rest of the workspace
//! can execute *real* forward passes (and verify that hybrid CPU-GPU
//! partitioning is numerically lossless) without any GPU.
//!
//! Design notes:
//! - Tensors are owned, contiguous, row-major `Vec<f32>` buffers. Inference
//!   with batch size 1 (the paper's setting) never needs strided views, so
//!   we keep the representation simple and cache-friendly.
//! - The crate is deliberately free of external math dependencies: GEMM and
//!   im2col are implemented here, which keeps the reproduction
//!   self-contained per the build rules.
//!
//! ```
//! use edgenn_tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b).unwrap();
//! assert_eq!(c.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod error;
mod gemm;
mod im2col;
pub mod ops;
pub mod quant;
pub mod scratch;
mod shape;
pub mod simd;
mod tensor;

pub use error::TensorError;
pub use gemm::{
    dot, gemm, gemm_into, gemm_into_fused, gemm_pack_a, gemm_pack_elems, gemm_packed_a_len, matvec,
    naive_gemm, Epilogue,
};
pub use im2col::{
    col2im_shape, im2col, im2col_into, im2col_into_i8, im2col_into_panels_i16, Conv2dGeometry,
};
pub use quant::{
    dot_i8, min_max, qgemm_pack_a, qgemm_pack_bytes, qgemm_panel_elems, qgemm_requant_into,
    qgemm_requant_prepacked_into, quantize_into, quantize_into_panels_i16, row_sums, QTensor,
    QuantParams, Quantization, Requant,
};
pub use scratch::{scratch_stats, with_scratch, with_scratch_i16, with_scratch_i8, ScratchStats};
pub use shape::Shape;
pub use simd::{kernel_arch, KernelArch};
pub use tensor::Tensor;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, TensorError>;
