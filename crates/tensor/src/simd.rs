//! Runtime architecture dispatch for the GEMM microkernels.
//!
//! The blocked f32 kernel and the int8 quantized kernel are written once
//! as portable safe Rust over fixed-size slices (see [`crate::gemm`] and
//! [`crate::quant`]). That shape is what LLVM's auto-vectorizer wants,
//! but the *width* it vectorizes to is fixed at compile time by the
//! baseline target (`x86-64` = SSE2: 4 f32 lanes). This module re-compiles
//! the same bodies under `#[target_feature]` so the identical source
//! lowers to 8-lane AVX2+FMA and 16-lane AVX-512 code, and selects one
//! variant per process with `is_x86_feature_detected!`.
//!
//! The one exception to the re-instantiation pattern is the int8
//! microtile ([`qgemm_tile_dispatch`]): its pair-broadcast `pmaddwd`
//! shape is precisely what autovectorizers never find from scalar code
//! (measured ≤ f32 throughput), so the AVX2/AVX-512 variants here are
//! written with explicit `core::arch` intrinsics. They compute exact
//! integer results, so they remain bit-identical to the portable tile.
//!
//! # `unsafe` exception
//!
//! The workspace denies `unsafe_code`; this module carries the one
//! documented exception (`#![allow(unsafe_code)]` below). Rust's
//! `target_feature` rules (RFC 2396) make the annotated functions
//! themselves safe to *define* but unsafe to *call* from code not known
//! to have the feature, because running an AVX2 instruction on a CPU
//! without AVX2 is undefined behaviour. Every `unsafe` block in this file
//! is either exactly one such call guarded by the process-wide
//! [`kernel_arch`] value (which only ever reports an architecture whose
//! feature bits `is_x86_feature_detected!` observed at first use), or an
//! intrinsic load/store inside the int8 microtiles whose bounds are
//! established by plain `assert!`s at the top of the function.
//!
//! The selected variant can be pinned for tests and benchmarks with the
//! `EDGENN_SIMD` environment variable (`portable`, `avx2`, or `avx512`);
//! requesting a wider variant than the CPU supports falls back to the
//! widest safe one.
#![allow(unsafe_code)]

use std::sync::OnceLock;

use crate::gemm::Epilogue;
use crate::quant::Requant;

/// Microkernel instruction-set variant selected for this process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelArch {
    /// Baseline build target (SSE2 on `x86-64`): guaranteed available.
    Portable,
    /// 8-lane f32 FMA / 8-lane i32 (requires `avx2` + `fma`).
    Avx2,
    /// 16-lane f32 / 16-lane i32 (requires `avx512f/bw/dq/vl`).
    Avx512,
}

impl KernelArch {
    /// Stable lowercase name, used in stats, docs, and `EDGENN_SIMD`.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            KernelArch::Portable => "portable",
            KernelArch::Avx2 => "avx2",
            KernelArch::Avx512 => "avx512",
        }
    }
}

static ARCH: OnceLock<KernelArch> = OnceLock::new();

/// The microkernel variant every GEMM in this process dispatches to.
///
/// Detected once on first use: the widest variant whose CPU feature bits
/// are present, optionally narrowed by the `EDGENN_SIMD` environment
/// variable. Detection is infallible and never returns a variant the CPU
/// cannot execute.
pub fn kernel_arch() -> KernelArch {
    *ARCH.get_or_init(detect)
}

/// Widest variant the CPU supports, ignoring `EDGENN_SIMD`.
fn widest_supported() -> KernelArch {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx512f")
            && std::arch::is_x86_feature_detected!("avx512bw")
            && std::arch::is_x86_feature_detected!("avx512dq")
            && std::arch::is_x86_feature_detected!("avx512vl")
        {
            return KernelArch::Avx512;
        }
        if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
        {
            return KernelArch::Avx2;
        }
    }
    KernelArch::Portable
}

fn detect() -> KernelArch {
    let widest = widest_supported();
    match std::env::var("EDGENN_SIMD").as_deref() {
        Ok("portable") => KernelArch::Portable,
        Ok("avx2") if widest != KernelArch::Portable => KernelArch::Avx2,
        // Unknown values and requests beyond the CPU keep the safe widest.
        _ => widest,
    }
}

/// Dispatches the blocked f32 GEMM body to the selected variant.
/// `packed` is the caller-acquired packing scratch; returns pack time in
/// nanoseconds when `profiled`.
#[allow(clippy::too_many_arguments)]
#[inline]
pub(crate) fn gemm_body_dispatch(
    a: &[f32],
    b: &[f32],
    packed: &mut [f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    ep: Epilogue<'_>,
    profiled: bool,
) -> u64 {
    match kernel_arch() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `kernel_arch` returned this variant only after
        // `is_x86_feature_detected!` confirmed the features it enables.
        KernelArch::Avx2 => unsafe { gemm_body_avx2(a, b, packed, out, m, k, n, ep, profiled) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above, for the avx512f/bw/dq/vl feature set.
        KernelArch::Avx512 => unsafe { gemm_body_avx512(a, b, packed, out, m, k, n, ep, profiled) },
        _ => crate::gemm::gemm_body(a, b, packed, out, m, k, n, ep, profiled),
    }
}

/// Dispatches the small-problem f32 kernel (no packing round trip).
#[inline]
pub(crate) fn gemm_small_dispatch(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    ep: Epilogue<'_>,
) {
    match kernel_arch() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: guarded by the same detection as `gemm_body_dispatch`.
        KernelArch::Avx2 => unsafe { gemm_small_avx2(a, b, out, m, k, n, ep) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above, for the avx512f/bw/dq/vl feature set.
        KernelArch::Avx512 => unsafe { gemm_small_avx512(a, b, out, m, k, n, ep) },
        _ => crate::gemm::gemm_small(a, b, out, m, k, n, ep),
    }
}

/// Dispatches the int8 packed GEMM + requantize body. `packed` is the
/// caller-acquired i16 packing scratch (widened operands); returns pack time when `profiled`.
#[allow(clippy::too_many_arguments)]
#[inline]
pub(crate) fn qgemm_body_dispatch(
    a: &[i8],
    b: &[i8],
    packed: &mut [i16],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    rq: &Requant<'_>,
    profiled: bool,
) -> u64 {
    match kernel_arch() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: guarded by the same detection as `gemm_body_dispatch`.
        KernelArch::Avx2 => unsafe { qgemm_body_avx2(a, b, packed, out, m, k, n, rq, profiled) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above, for the avx512f/bw/dq/vl feature set.
        KernelArch::Avx512 => unsafe {
            qgemm_body_avx512(a, b, packed, out, m, k, n, rq, profiled)
        },
        _ => crate::quant::qgemm_body(a, b, packed, out, m, k, n, rq, profiled),
    }
}

/// Dispatches the small-problem int8 kernel.
#[inline]
pub(crate) fn qgemm_small_dispatch(
    a: &[i8],
    b: &[i8],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    rq: &Requant<'_>,
) {
    match kernel_arch() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: guarded by the same detection as `gemm_body_dispatch`.
        KernelArch::Avx2 => unsafe { qgemm_small_avx2(a, b, out, m, k, n, rq) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above, for the avx512f/bw/dq/vl feature set.
        KernelArch::Avx512 => unsafe { qgemm_small_avx512(a, b, out, m, k, n, rq) },
        _ => crate::quant::qgemm_small(a, b, out, m, k, n, rq),
    }
}

/// Dispatches the f32 dot product (dense-layer hot loop).
#[inline]
pub(crate) fn dot_dispatch(a: &[f32], b: &[f32]) -> f32 {
    match kernel_arch() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: guarded by the same detection as `gemm_body_dispatch`.
        KernelArch::Avx2 => unsafe { dot_avx2(a, b) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above, for the avx512f/bw/dq/vl feature set.
        KernelArch::Avx512 => unsafe { dot_avx512(a, b) },
        _ => crate::gemm::dot_body(a, b),
    }
}

/// Dispatches one int8 `MR x NR` microtile over the pair-broadcast
/// packed layout (see [`crate::quant`] module docs). `a` holds `MR`
/// widened rows of stride `kp`, `panel` one packed `NR`-column panel of
/// `kp * NR` i16; the tile is *overwritten*. All variants produce
/// bit-identical i32 accumulators.
#[inline]
pub(crate) fn qgemm_tile_dispatch(
    a: &[i16],
    kp: usize,
    panel: &[i16],
    acc: &mut [i32; crate::quant::MR * crate::quant::NR],
) {
    match kernel_arch() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: guarded by the same detection as `gemm_body_dispatch`.
        KernelArch::Avx2 => unsafe { qgemm_tile_avx2(a, kp, panel, acc) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above, for the avx512f/bw/dq/vl feature set.
        KernelArch::Avx512 => unsafe { qgemm_tile_avx512(a, kp, panel, acc) },
        _ => crate::quant::qgemm_tile_portable(a, kp, panel, acc),
    }
}

/// Dispatches the int8 dot product (quantized dense-layer hot loop).
#[inline]
pub(crate) fn dot_i8_dispatch(a: &[i8], b: &[i8]) -> i32 {
    match kernel_arch() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: guarded by the same detection as `gemm_body_dispatch`.
        KernelArch::Avx2 => unsafe { dot_i8_avx2(a, b) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above, for the avx512f/bw/dq/vl feature set.
        KernelArch::Avx512 => unsafe { dot_i8_avx512(a, b) },
        _ => crate::quant::dot_i8_body(a, b),
    }
}

// The wrappers below contain no code of their own: each re-instantiates
// the shared `#[inline(always)]` portable body under wider target
// features, so LLVM re-vectorizes the identical safe source at the
// variant's lane width. The bodies are deliberately closure-free (the
// scratch arena is acquired by the caller): a closure would monomorphize
// once at baseline width and take the hot loops with it.
#[cfg(target_arch = "x86_64")]
#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "avx2,fma")]
fn gemm_body_avx2(
    a: &[f32],
    b: &[f32],
    packed: &mut [f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    ep: Epilogue<'_>,
    profiled: bool,
) -> u64 {
    crate::gemm::gemm_body(a, b, packed, out, m, k, n, ep, profiled)
}

#[cfg(target_arch = "x86_64")]
#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "avx512f,avx512bw,avx512dq,avx512vl")]
fn gemm_body_avx512(
    a: &[f32],
    b: &[f32],
    packed: &mut [f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    ep: Epilogue<'_>,
    profiled: bool,
) -> u64 {
    crate::gemm::gemm_body(a, b, packed, out, m, k, n, ep, profiled)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
fn gemm_small_avx2(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    ep: Epilogue<'_>,
) {
    crate::gemm::gemm_small(a, b, out, m, k, n, ep);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512bw,avx512dq,avx512vl")]
fn gemm_small_avx512(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    ep: Epilogue<'_>,
) {
    crate::gemm::gemm_small(a, b, out, m, k, n, ep);
}

#[cfg(target_arch = "x86_64")]
#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "avx2,fma")]
fn qgemm_body_avx2(
    a: &[i8],
    b: &[i8],
    packed: &mut [i16],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    rq: &Requant<'_>,
    profiled: bool,
) -> u64 {
    crate::quant::qgemm_body(a, b, packed, out, m, k, n, rq, profiled)
}

#[cfg(target_arch = "x86_64")]
#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "avx512f,avx512bw,avx512dq,avx512vl")]
fn qgemm_body_avx512(
    a: &[i8],
    b: &[i8],
    packed: &mut [i16],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    rq: &Requant<'_>,
    profiled: bool,
) -> u64 {
    crate::quant::qgemm_body(a, b, packed, out, m, k, n, rq, profiled)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
fn qgemm_small_avx2(
    a: &[i8],
    b: &[i8],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    rq: &Requant<'_>,
) {
    crate::quant::qgemm_small(a, b, out, m, k, n, rq);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512bw,avx512dq,avx512vl")]
fn qgemm_small_avx512(
    a: &[i8],
    b: &[i8],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    rq: &Requant<'_>,
) {
    crate::quant::qgemm_small(a, b, out, m, k, n, rq);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
fn dot_avx2(a: &[f32], b: &[f32]) -> f32 {
    crate::gemm::dot_body(a, b)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512bw,avx512dq,avx512vl")]
fn dot_avx512(a: &[f32], b: &[f32]) -> f32 {
    crate::gemm::dot_body(a, b)
}

// Explicit-intrinsic int8 microtiles. Both variants broadcast one
// reduction *pair* of an A row as an i32 and multiply it against a
// pair-interleaved B panel row with `pmaddwd` (a[p]·b[p][j] +
// a[p+1]·b[p+1][j] per i32 lane), keeping MR independent accumulator
// sets so the multiply latency overlaps across rows. The `assert!`s
// make every raw load below in-bounds:
//   A pair reads:  r*kp + 2h + 1  <  MR*kp   for h < kp/2, r < MR
//   panel reads:   32h + 31       <  16*kp   for h < kp/2 (512-bit)
// The i32 stores target the fixed-size `acc` array by construction.

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512bw,avx512dq,avx512vl")]
fn qgemm_tile_avx512(a: &[i16], kp: usize, panel: &[i16], acc: &mut [i32; 64]) {
    use std::arch::x86_64::{
        _mm512_add_epi32, _mm512_loadu_si512, _mm512_madd_epi16, _mm512_set1_epi32,
        _mm512_setzero_si512, _mm512_storeu_si512,
    };
    assert_eq!(kp % 2, 0);
    assert!(a.len() >= 4 * kp && panel.len() >= 16 * kp);
    let mut acc0 = _mm512_setzero_si512();
    let mut acc1 = _mm512_setzero_si512();
    let mut acc2 = _mm512_setzero_si512();
    let mut acc3 = _mm512_setzero_si512();
    let ap = a.as_ptr();
    let pp = panel.as_ptr();
    for h in 0..kp / 2 {
        // SAFETY: in-bounds by the asserts above; unaligned loads.
        unsafe {
            let b = _mm512_loadu_si512(pp.add(32 * h).cast());
            let p0 = _mm512_set1_epi32(ap.add(2 * h).cast::<i32>().read_unaligned());
            let p1 = _mm512_set1_epi32(ap.add(kp + 2 * h).cast::<i32>().read_unaligned());
            let p2 = _mm512_set1_epi32(ap.add(2 * kp + 2 * h).cast::<i32>().read_unaligned());
            let p3 = _mm512_set1_epi32(ap.add(3 * kp + 2 * h).cast::<i32>().read_unaligned());
            acc0 = _mm512_add_epi32(acc0, _mm512_madd_epi16(p0, b));
            acc1 = _mm512_add_epi32(acc1, _mm512_madd_epi16(p1, b));
            acc2 = _mm512_add_epi32(acc2, _mm512_madd_epi16(p2, b));
            acc3 = _mm512_add_epi32(acc3, _mm512_madd_epi16(p3, b));
        }
    }
    // SAFETY: `acc` is 64 i32s; each store writes 16 at offsets 0..=48.
    unsafe {
        _mm512_storeu_si512(acc.as_mut_ptr().cast(), acc0);
        _mm512_storeu_si512(acc.as_mut_ptr().add(16).cast(), acc1);
        _mm512_storeu_si512(acc.as_mut_ptr().add(32).cast(), acc2);
        _mm512_storeu_si512(acc.as_mut_ptr().add(48).cast(), acc3);
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
fn qgemm_tile_avx2(a: &[i16], kp: usize, panel: &[i16], acc: &mut [i32; 64]) {
    use std::arch::x86_64::{
        _mm256_add_epi32, _mm256_loadu_si256, _mm256_madd_epi16, _mm256_set1_epi32,
        _mm256_setzero_si256, _mm256_storeu_si256,
    };
    assert_eq!(kp % 2, 0);
    assert!(a.len() >= 4 * kp && panel.len() >= 16 * kp);
    let mut lo = [_mm256_setzero_si256(); 4];
    let mut hi = [_mm256_setzero_si256(); 4];
    let ap = a.as_ptr();
    let pp = panel.as_ptr();
    for h in 0..kp / 2 {
        // SAFETY: in-bounds by the asserts above; unaligned loads. The
        // 512-bit panel row is consumed as two 256-bit halves.
        unsafe {
            let blo = _mm256_loadu_si256(pp.add(32 * h).cast());
            let bhi = _mm256_loadu_si256(pp.add(32 * h + 16).cast());
            for (r, (l, h_acc)) in lo.iter_mut().zip(hi.iter_mut()).enumerate() {
                let p = _mm256_set1_epi32(ap.add(r * kp + 2 * h).cast::<i32>().read_unaligned());
                *l = _mm256_add_epi32(*l, _mm256_madd_epi16(p, blo));
                *h_acc = _mm256_add_epi32(*h_acc, _mm256_madd_epi16(p, bhi));
            }
        }
    }
    // SAFETY: `acc` is 64 i32s; each store writes 8 at offsets 0..=56.
    unsafe {
        for r in 0..4 {
            _mm256_storeu_si256(acc.as_mut_ptr().add(16 * r).cast(), lo[r]);
            _mm256_storeu_si256(acc.as_mut_ptr().add(16 * r + 8).cast(), hi[r]);
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
fn dot_i8_avx2(a: &[i8], b: &[i8]) -> i32 {
    crate::quant::dot_i8_body(a, b)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512bw,avx512dq,avx512vl")]
fn dot_i8_avx512(a: &[i8], b: &[i8]) -> i32 {
    crate::quant::dot_i8_body(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detection_is_stable_and_named() {
        let a = kernel_arch();
        assert_eq!(a, kernel_arch(), "arch must be selected once per process");
        assert!(["portable", "avx2", "avx512"].contains(&a.name()));
    }

    #[test]
    fn docs_list_every_kernel_arch() {
        // Doc-sync contract (same pattern as the flight-recorder stage
        // table): the dispatch table in docs/perf.md must name every
        // KernelArch variant and the pinning env var, so a new variant
        // cannot land without its documentation row.
        let docs = include_str!("../../../docs/perf.md");
        for arch in [KernelArch::Portable, KernelArch::Avx2, KernelArch::Avx512] {
            assert!(
                docs.contains(&format!("`{arch:?}`")),
                "variant {arch:?} missing from docs/perf.md"
            );
        }
        for needle in ["EDGENN_SIMD", "zero_point", "Requantize", "calibration"] {
            assert!(docs.contains(needle), "{needle} missing from docs/perf.md");
        }
    }

    #[test]
    fn qgemm_tile_variants_agree_bitwise() {
        // Exercise every variant the CPU can run against the portable
        // tile, independent of which one `kernel_arch` selected.
        for kp in [2usize, 6, 48, 146] {
            let a: Vec<i16> = (0..4 * kp).map(|i| ((i * 37) % 255) as i16 - 127).collect();
            let panel: Vec<i16> = (0..16 * kp)
                .map(|i| ((i * 53) % 251) as i16 - 125)
                .collect();
            let mut want = [0i32; 64];
            crate::quant::qgemm_tile_portable(&a, kp, &panel, &mut want);
            #[cfg(target_arch = "x86_64")]
            {
                if std::arch::is_x86_feature_detected!("avx2") {
                    let mut got = [1i32; 64];
                    // SAFETY: feature presence checked on the line above.
                    unsafe { qgemm_tile_avx2(&a, kp, &panel, &mut got) };
                    assert_eq!(got, want, "avx2 kp={kp}");
                }
                if std::arch::is_x86_feature_detected!("avx512bw") {
                    let mut got = [2i32; 64];
                    // SAFETY: feature presence checked on the line above.
                    unsafe { qgemm_tile_avx512(&a, kp, &panel, &mut got) };
                    assert_eq!(got, want, "avx512 kp={kp}");
                }
            }
            let mut dispatched = [3i32; 64];
            qgemm_tile_dispatch(&a, kp, &panel, &mut dispatched);
            assert_eq!(dispatched, want);
        }
    }

    #[test]
    fn widest_supported_is_executable_here() {
        // Smoke: run a tiny product through the dispatched kernel. If
        // detection ever over-reports, this dies with SIGILL rather than
        // returning a wrong answer.
        let a = vec![1.0f32; 8];
        let b = vec![2.0f32; 8];
        assert!((dot_dispatch(&a, &b) - 16.0).abs() < 1e-6);
        let qa = vec![3i8; 8];
        let qb = vec![-2i8; 8];
        assert_eq!(dot_i8_dispatch(&qa, &qb), -48);
    }
}
