//! im2col lowering for 2-D convolution.
//!
//! A convolution over a CHW feature map becomes a GEMM between the weight
//! matrix `(out_channels, in_channels * kh * kw)` and the im2col patch
//! matrix `(in_channels * kh * kw, out_h * out_w)`. This is the standard
//! lowering the paper's CUDA kernels use; reproducing it keeps the FLOP
//! counts the simulator models aligned with what the functional engine
//! actually executes.

use edgenn_obs::flight;

use crate::{Result, Tensor, TensorError};

/// Static geometry of a 2-D convolution (or pooling) window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv2dGeometry {
    /// Input channels.
    pub in_channels: usize,
    /// Input height.
    pub in_h: usize,
    /// Input width.
    pub in_w: usize,
    /// Kernel height.
    pub kernel_h: usize,
    /// Kernel width.
    pub kernel_w: usize,
    /// Stride along height.
    pub stride_h: usize,
    /// Stride along width.
    pub stride_w: usize,
    /// Zero padding along height (both sides).
    pub pad_h: usize,
    /// Zero padding along width (both sides).
    pub pad_w: usize,
}

impl Conv2dGeometry {
    /// Output spatial height.
    pub fn out_h(&self) -> usize {
        (self.in_h + 2 * self.pad_h - self.kernel_h) / self.stride_h + 1
    }

    /// Output spatial width.
    pub fn out_w(&self) -> usize {
        (self.in_w + 2 * self.pad_w - self.kernel_w) / self.stride_w + 1
    }

    /// Validates that the window fits the padded input and strides are nonzero.
    ///
    /// # Errors
    /// Returns [`TensorError::InvalidConvGeometry`] with a description of
    /// the first inconsistency found.
    pub fn validate(&self) -> Result<()> {
        if self.stride_h == 0 || self.stride_w == 0 {
            return Err(TensorError::InvalidConvGeometry {
                reason: "stride must be nonzero".to_string(),
            });
        }
        if self.kernel_h == 0 || self.kernel_w == 0 {
            return Err(TensorError::InvalidConvGeometry {
                reason: "kernel must be nonzero".to_string(),
            });
        }
        if self.in_h + 2 * self.pad_h < self.kernel_h || self.in_w + 2 * self.pad_w < self.kernel_w
        {
            return Err(TensorError::InvalidConvGeometry {
                reason: format!(
                    "kernel {}x{} larger than padded input {}x{}",
                    self.kernel_h,
                    self.kernel_w,
                    self.in_h + 2 * self.pad_h,
                    self.in_w + 2 * self.pad_w
                ),
            });
        }
        Ok(())
    }
}

/// Shape of the feature map a convolution with `geometry` and
/// `out_channels` produces: `[out_channels, out_h, out_w]`.
pub fn col2im_shape(geometry: &Conv2dGeometry, out_channels: usize) -> [usize; 3] {
    [out_channels, geometry.out_h(), geometry.out_w()]
}

/// Unfolds a CHW input into the im2col patch matrix
/// `(in_channels * kernel_h * kernel_w, out_h * out_w)`.
///
/// Out-of-range (padding) taps contribute zeros.
///
/// # Errors
/// Returns geometry validation errors and
/// [`TensorError::ShapeMismatch`] when `input` does not match the declared
/// input dimensions.
pub fn im2col(input: &Tensor, geometry: &Conv2dGeometry) -> Result<Tensor> {
    let patch = geometry.in_channels * geometry.kernel_h * geometry.kernel_w;
    let mut data = vec![0.0f32; patch * geometry.out_h() * geometry.out_w()];
    im2col_into(input, geometry, &mut data)?;
    Tensor::from_vec(data, &[patch, geometry.out_h() * geometry.out_w()])
}

/// [`im2col`] into a caller-provided buffer (typically a scratch-arena
/// slice), so steady-state conv lowering performs no heap allocation.
///
/// `out` must hold exactly `patch * out_h * out_w` floats and must be
/// **zeroed**: padding taps are skipped, not written.
///
/// # Errors
/// Same geometry/shape validation as [`im2col`], plus
/// [`TensorError::ShapeMismatch`] when `out` has the wrong length.
pub fn im2col_into(input: &Tensor, geometry: &Conv2dGeometry, out: &mut [f32]) -> Result<()> {
    geometry.validate()?;
    let expected = [geometry.in_channels, geometry.in_h, geometry.in_w];
    if input.dims() != expected {
        return Err(TensorError::ShapeMismatch {
            left: expected.to_vec(),
            right: input.dims().to_vec(),
        });
    }
    let (out_h, out_w) = (geometry.out_h(), geometry.out_w());
    let patch = geometry.in_channels * geometry.kernel_h * geometry.kernel_w;
    let cols = out_h * out_w;
    if out.len() != patch * cols {
        return Err(TensorError::ShapeMismatch {
            left: vec![patch, cols],
            right: vec![out.len()],
        });
    }
    let span = flight::begin(flight::SpanKind::Pack, flight::NO_NODE);
    let data = out;
    let src = input.as_slice();
    let plane = geometry.in_h * geometry.in_w;

    let mut row = 0usize;
    for c in 0..geometry.in_channels {
        for kh in 0..geometry.kernel_h {
            for kw in 0..geometry.kernel_w {
                let dst_row = &mut data[row * cols..(row + 1) * cols];
                let mut col = 0usize;
                for oy in 0..out_h {
                    let iy = (oy * geometry.stride_h + kh) as isize - geometry.pad_h as isize;
                    if iy < 0 || iy >= geometry.in_h as isize {
                        col += out_w;
                        continue;
                    }
                    let base = c * plane + iy as usize * geometry.in_w;
                    for ox in 0..out_w {
                        let ix = (ox * geometry.stride_w + kw) as isize - geometry.pad_w as isize;
                        if ix >= 0 && ix < geometry.in_w as isize {
                            dst_row[col] = src[base + ix as usize];
                        }
                        col += 1;
                    }
                }
                row += 1;
            }
        }
    }
    flight::end_with(span, (patch * cols * 4) as u64);
    Ok(())
}

/// [`im2col_into`] over an already-quantized int8 feature map.
///
/// Padding taps must dequantize to `0.0`, so they are written as `zero`
/// — the activation zero-point — rather than literal `0`. Unlike the
/// f32 variant, the output buffer needs no pre-fill: every element is
/// written, padding included.
///
/// # Errors
/// Returns geometry validation errors and [`TensorError::ShapeMismatch`]
/// when `input` or `out` have the wrong length for the geometry.
pub fn im2col_into_i8(
    input: &[i8],
    geometry: &Conv2dGeometry,
    zero: i8,
    out: &mut [i8],
) -> Result<()> {
    geometry.validate()?;
    let plane = geometry.in_h * geometry.in_w;
    if input.len() != geometry.in_channels * plane {
        return Err(TensorError::ShapeMismatch {
            left: vec![geometry.in_channels, geometry.in_h, geometry.in_w],
            right: vec![input.len()],
        });
    }
    let (out_h, out_w) = (geometry.out_h(), geometry.out_w());
    let patch = geometry.in_channels * geometry.kernel_h * geometry.kernel_w;
    let cols = out_h * out_w;
    if out.len() != patch * cols {
        return Err(TensorError::ShapeMismatch {
            left: vec![patch, cols],
            right: vec![out.len()],
        });
    }
    let span = flight::begin(flight::SpanKind::Pack, flight::NO_NODE);
    let mut row = 0usize;
    for c in 0..geometry.in_channels {
        for kh in 0..geometry.kernel_h {
            for kw in 0..geometry.kernel_w {
                let dst_row = &mut out[row * cols..(row + 1) * cols];
                let mut col = 0usize;
                for oy in 0..out_h {
                    let iy = (oy * geometry.stride_h + kh) as isize - geometry.pad_h as isize;
                    if iy < 0 || iy >= geometry.in_h as isize {
                        dst_row[col..col + out_w].fill(zero);
                        col += out_w;
                        continue;
                    }
                    let base = c * plane + iy as usize * geometry.in_w;
                    for ox in 0..out_w {
                        let ix = (ox * geometry.stride_w + kw) as isize - geometry.pad_w as isize;
                        dst_row[col] = if ix >= 0 && ix < geometry.in_w as isize {
                            input[base + ix as usize]
                        } else {
                            zero
                        };
                        col += 1;
                    }
                }
                row += 1;
            }
        }
    }
    flight::end_with(span, (patch * cols) as u64);
    Ok(())
}

/// [`im2col_into_i8`] fused with the int8 GEMM's B-panel pack: the
/// patch matrix is gathered *directly* into the pair-interleaved i16
/// panel layout [`crate::qgemm_requant_prepacked_into`] consumes, so
/// the quantized conv path never materializes the intermediate
/// `(patch, cols)` i8 matrix or runs a separate packing pass over it.
///
/// `out` must hold exactly [`crate::qgemm_panel_elems`]`(patch, cols)`
/// i16 elements but needs no pre-fill: every data slot is written
/// (padding taps as `zero`, the activation zero-point), and the layout's
/// own padding — the odd-depth tail pair slots and the last panel's
/// ragged lanes — is zeroed here explicitly.
///
/// # Errors
/// Returns geometry validation errors and [`TensorError::ShapeMismatch`]
/// when `input` or `out` have the wrong length for the geometry.
pub fn im2col_into_panels_i16(
    input: &[i8],
    geometry: &Conv2dGeometry,
    zero: i8,
    out: &mut [i16],
) -> Result<()> {
    use crate::quant::{pair_depth, NR};

    geometry.validate()?;
    let plane = geometry.in_h * geometry.in_w;
    if input.len() != geometry.in_channels * plane {
        return Err(TensorError::ShapeMismatch {
            left: vec![geometry.in_channels, geometry.in_h, geometry.in_w],
            right: vec![input.len()],
        });
    }
    let (out_h, out_w) = (geometry.out_h(), geometry.out_w());
    let patch = geometry.in_channels * geometry.kernel_h * geometry.kernel_w;
    let cols = out_h * out_w;
    let kp = pair_depth(patch);
    let panels = cols.div_ceil(NR);
    if out.len() != panels * NR * kp {
        return Err(TensorError::ShapeMismatch {
            left: vec![panels * NR * kp],
            right: vec![out.len()],
        });
    }
    let span = flight::begin(flight::SpanKind::Pack, flight::NO_NODE);
    crate::quant::zero_panel_pads(out, patch, cols);
    let z = i16::from(zero);
    let (sw, pw) = (geometry.stride_w, geometry.pad_w);
    let mut row = 0usize;
    for c in 0..geometry.in_channels {
        for kh in 0..geometry.kernel_h {
            for kw in 0..geometry.kernel_w {
                // Reduction row `row`, column `col` lands at
                // `panel(col/NR)[(row/2)*2*NR + 2*(col%NR) + (row&1)]`;
                // the cursor walks that address incrementally (one
                // predictable wrap branch per NR columns instead of a
                // div + mul per element).
                let mut cur = PanelCursor::at_row(row, kp);
                // The in-range span of ox for this tap column:
                // `0 <= ox*sw + kw - pw < in_w`, so the inner loops below
                // run branch-free (no per-element range check).
                let ox_lo = pw.saturating_sub(kw).div_ceil(sw).min(out_w);
                let ox_hi = (geometry.in_w + pw)
                    .saturating_sub(kw)
                    .div_ceil(sw)
                    .min(out_w);
                for oy in 0..out_h {
                    let iy = (oy * geometry.stride_h + kh) as isize - geometry.pad_h as isize;
                    if iy < 0 || iy >= geometry.in_h as isize {
                        for _ in 0..out_w {
                            cur.push(out, z);
                        }
                        continue;
                    }
                    let base = c * plane + iy as usize * geometry.in_w;
                    for _ in 0..ox_lo {
                        cur.push(out, z);
                    }
                    let first_ix = ox_lo * sw + kw - pw;
                    for i in 0..ox_hi - ox_lo {
                        cur.push(out, i16::from(input[base + first_ix + i * sw]));
                    }
                    for _ in 0..out_w - ox_hi {
                        cur.push(out, z);
                    }
                }
                row += 1;
            }
        }
    }
    flight::end_with(span, (out.len() * 2) as u64);
    Ok(())
}

/// Incremental writer over the pair-interleaved panel layout: appends
/// one reduction row's values column by column, advancing to the next
/// `NR`-column panel on wrap.
pub(crate) struct PanelCursor {
    /// Index of the current column's slot for this reduction row.
    idx: usize,
    /// Columns left in the current panel before jumping `panel_step`.
    left: usize,
    /// `NR * kp` minus the `2 * NR` already walked within the panel.
    panel_step: usize,
}

impl PanelCursor {
    pub(crate) fn at_row(row: usize, kp: usize) -> Self {
        use crate::quant::NR;
        Self {
            idx: (row / 2) * 2 * NR + (row & 1),
            left: NR,
            panel_step: NR * kp - 2 * NR,
        }
    }

    #[inline(always)]
    pub(crate) fn push(&mut self, out: &mut [i16], v: i16) {
        use crate::quant::NR;
        out[self.idx] = v;
        self.idx += 2;
        self.left -= 1;
        if self.left == 0 {
            self.left = NR;
            self.idx += self.panel_step;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geo(c: usize, h: usize, w: usize, k: usize, s: usize, p: usize) -> Conv2dGeometry {
        Conv2dGeometry {
            in_channels: c,
            in_h: h,
            in_w: w,
            kernel_h: k,
            kernel_w: k,
            stride_h: s,
            stride_w: s,
            pad_h: p,
            pad_w: p,
        }
    }

    #[test]
    fn output_dims_match_formula() {
        let g = geo(3, 224, 224, 11, 4, 2);
        assert_eq!(g.out_h(), 55);
        assert_eq!(g.out_w(), 55);
        let g = geo(1, 28, 28, 5, 1, 2);
        assert_eq!(g.out_h(), 28);
    }

    #[test]
    fn validate_catches_degenerate_geometry() {
        assert!(geo(1, 4, 4, 3, 1, 0).validate().is_ok());
        assert!(matches!(
            geo(1, 4, 4, 3, 0, 0).validate(),
            Err(TensorError::InvalidConvGeometry { .. })
        ));
        assert!(matches!(
            geo(1, 2, 2, 5, 1, 0).validate(),
            Err(TensorError::InvalidConvGeometry { .. })
        ));
        assert!(matches!(
            Conv2dGeometry {
                kernel_h: 0,
                ..geo(1, 4, 4, 3, 1, 0)
            }
            .validate(),
            Err(TensorError::InvalidConvGeometry { .. })
        ));
    }

    #[test]
    fn im2col_identity_kernel() {
        // 1x1 kernel, stride 1, no padding: im2col is just a reshape.
        let input = Tensor::arange(&[2, 3, 3]);
        let g = geo(2, 3, 3, 1, 1, 0);
        let cols = im2col(&input, &g).unwrap();
        assert_eq!(cols.dims(), &[2, 9]);
        assert_eq!(cols.as_slice(), input.as_slice());
    }

    #[test]
    fn im2col_hand_checked_3x3_input_2x2_kernel() {
        // input (1 channel):
        // 0 1 2
        // 3 4 5
        // 6 7 8
        let input = Tensor::arange(&[1, 3, 3]);
        let g = geo(1, 3, 3, 2, 1, 0);
        let cols = im2col(&input, &g).unwrap();
        assert_eq!(cols.dims(), &[4, 4]);
        // rows are kernel taps (kh,kw), columns are output positions.
        assert_eq!(
            cols.as_slice(),
            &[
                0.0, 1.0, 3.0, 4.0, // tap (0,0)
                1.0, 2.0, 4.0, 5.0, // tap (0,1)
                3.0, 4.0, 6.0, 7.0, // tap (1,0)
                4.0, 5.0, 7.0, 8.0, // tap (1,1)
            ]
        );
    }

    #[test]
    fn im2col_padding_contributes_zeros() {
        let input = Tensor::ones(&[1, 2, 2]);
        let g = geo(1, 2, 2, 3, 1, 1);
        let cols = im2col(&input, &g).unwrap();
        assert_eq!(cols.dims(), &[9, 4]);
        // Corner tap (0,0) sees padding everywhere except output (1,1).
        assert_eq!(&cols.as_slice()[0..4], &[0.0, 0.0, 0.0, 1.0]);
        // Center tap (1,1) always lands in-bounds.
        assert_eq!(&cols.as_slice()[16..20], &[1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn im2col_rejects_wrong_input_shape() {
        let input = Tensor::zeros(&[2, 3, 3]);
        let g = geo(1, 3, 3, 2, 1, 0);
        assert!(matches!(
            im2col(&input, &g),
            Err(TensorError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn col2im_shape_matches_geometry() {
        let g = geo(3, 8, 8, 3, 1, 1);
        assert_eq!(col2im_shape(&g, 16), [16, 8, 8]);
    }

    #[test]
    fn im2col_i8_matches_f32_layout_with_zero_point_padding() {
        // Same gather as the f32 path, but padding taps carry the
        // activation zero-point so they dequantize to 0.
        let g = geo(1, 2, 2, 3, 1, 1);
        let input: Vec<i8> = vec![10, 20, 30, 40];
        let zero = -7i8;
        let mut out = vec![0i8; 9 * 4];
        im2col_into_i8(&input, &g, zero, &mut out).unwrap();
        // Corner tap (0,0) sees padding everywhere except output (1,1).
        assert_eq!(&out[0..4], &[zero, zero, zero, 10]);
        // Center tap (1,1) always lands in-bounds.
        assert_eq!(&out[16..20], &[10, 20, 30, 40]);
    }

    #[test]
    fn im2col_panels_match_the_unfused_gather_plus_pack() {
        use crate::quant::{pair_depth, NR};
        // Odd patch depth (pair tail), ragged last panel, padding taps:
        // the fused gather must land every element exactly where packing
        // the im2col_into_i8 output would, with zeros in the layout pads.
        let g = geo(2, 5, 5, 3, 1, 1);
        let input: Vec<i8> = (0..50).map(|i| (i * 11 % 255 - 128) as i8).collect();
        let zero = 3i8;
        let patch = 2 * 3 * 3;
        let cols = g.out_h() * g.out_w();
        let kp = pair_depth(patch);
        let panels = cols.div_ceil(NR);

        let mut flat = vec![0i8; patch * cols];
        im2col_into_i8(&input, &g, zero, &mut flat).unwrap();
        let mut want = vec![0i16; panels * NR * kp];
        for p in 0..patch {
            for j in 0..cols {
                want[(j / NR) * NR * kp + (p / 2) * 2 * NR + 2 * (j % NR) + (p & 1)] =
                    i16::from(flat[p * cols + j]);
            }
        }

        // Poisoned destination: the fused gather owes us the pads too.
        let mut got = vec![-9i16; panels * NR * kp];
        im2col_into_panels_i16(&input, &g, zero, &mut got).unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn im2col_panels_reject_wrong_lengths() {
        let g = geo(1, 3, 3, 2, 1, 0);
        let mut out = vec![0i16; 5];
        assert!(matches!(
            im2col_into_panels_i16(&[0i8; 9], &g, 0, &mut out),
            Err(TensorError::ShapeMismatch { .. })
        ));
        assert!(matches!(
            im2col_into_panels_i16(&[0i8; 8], &g, 0, &mut [0i16; 64]),
            Err(TensorError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn im2col_i8_rejects_wrong_lengths() {
        let g = geo(1, 3, 3, 2, 1, 0);
        let mut out = vec![0i8; 4 * 4];
        assert!(matches!(
            im2col_into_i8(&[0i8; 8], &g, 0, &mut out),
            Err(TensorError::ShapeMismatch { .. })
        ));
        assert!(matches!(
            im2col_into_i8(&[0i8; 9], &g, 0, &mut out[..15]),
            Err(TensorError::ShapeMismatch { .. })
        ));
    }
}
