//! The owned dense tensor type.

use rand::distributions::{Distribution, Uniform};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::{Result, Shape, TensorError};

/// A dense, contiguous, row-major `f32` tensor.
///
/// This is the only tensor representation in the workspace. Layers in
/// `edgenn-nn` consume and produce `Tensor`s; the EdgeNN runtime slices
/// them along the channel axis when the CPU and GPU each compute part of a
/// layer (intra-kernel co-running) and concatenates the parts back.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Shape,
}

impl Tensor {
    /// Creates a tensor from a flat buffer and a shape.
    ///
    /// # Errors
    /// Returns [`TensorError::LengthMismatch`] if the buffer length differs
    /// from the shape's element count.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Result<Self> {
        let shape = Shape::new(dims);
        if data.len() != shape.num_elements() {
            return Err(TensorError::LengthMismatch {
                expected: shape.num_elements(),
                actual: data.len(),
            });
        }
        Ok(Self { data, shape })
    }

    /// All-zeros tensor.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        Self {
            data: vec![0.0; shape.num_elements()],
            shape,
        }
    }

    /// All-ones tensor.
    pub fn ones(dims: &[usize]) -> Self {
        Self::filled(dims, 1.0)
    }

    /// Tensor filled with a constant.
    pub fn filled(dims: &[usize], value: f32) -> Self {
        let shape = Shape::new(dims);
        Self {
            data: vec![value; shape.num_elements()],
            shape,
        }
    }

    /// Square identity matrix of size `n`.
    pub fn eye(n: usize) -> Self {
        let mut data = vec![0.0; n * n];
        for i in 0..n {
            data[i * n + i] = 1.0;
        }
        Self {
            data,
            shape: Shape::new(&[n, n]),
        }
    }

    /// Deterministic pseudo-random tensor in `[-bound, bound)`.
    ///
    /// Used for synthetic weights and inputs; a fixed `seed` keeps every
    /// experiment reproducible, which the paper-reproduction harness relies
    /// on when comparing execution strategies.
    pub fn random(dims: &[usize], bound: f32, seed: u64) -> Self {
        let shape = Shape::new(dims);
        let mut rng = StdRng::seed_from_u64(seed);
        let dist = Uniform::new(-bound, bound);
        let data = (0..shape.num_elements())
            .map(|_| dist.sample(&mut rng))
            .collect();
        Self { data, shape }
    }

    /// Tensor whose linear element `i` equals `i as f32`. Handy in tests.
    pub fn arange(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        let data = (0..shape.num_elements()).map(|i| i as f32).collect();
        Self { data, shape }
    }

    /// The shape.
    #[inline]
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The dimension list.
    #[inline]
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Total element count.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Size of the tensor in bytes (`f32` elements).
    #[inline]
    pub fn byte_len(&self) -> usize {
        self.data.len() * std::mem::size_of::<f32>()
    }

    /// Immutable view of the flat buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the flat buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at a multi-dimensional index.
    ///
    /// # Errors
    /// Propagates index validation from [`Shape::offset`].
    pub fn get(&self, index: &[usize]) -> Result<f32> {
        Ok(self.data[self.shape.offset(index)?])
    }

    /// Sets the element at a multi-dimensional index.
    ///
    /// # Errors
    /// Propagates index validation from [`Shape::offset`].
    pub fn set(&mut self, index: &[usize], value: f32) -> Result<()> {
        let offset = self.shape.offset(index)?;
        self.data[offset] = value;
        Ok(())
    }

    /// Reinterprets the buffer under a new shape with the same element count.
    ///
    /// # Errors
    /// Returns [`TensorError::ReshapeMismatch`] when counts differ.
    pub fn reshape(&self, dims: &[usize]) -> Result<Self> {
        let shape = Shape::new(dims);
        if shape.num_elements() != self.data.len() {
            return Err(TensorError::ReshapeMismatch {
                from: self.data.len(),
                to: shape.num_elements(),
            });
        }
        Ok(Self {
            data: self.data.clone(),
            shape,
        })
    }

    /// Copies out the sub-tensor `start..end` along axis 0.
    ///
    /// Because tensors are row-major, an axis-0 range is a contiguous
    /// sub-slice: this is exactly the partition the EdgeNN intra-kernel
    /// co-running applies (output channels for conv, output rows for fc).
    ///
    /// # Errors
    /// Returns [`TensorError::EmptyRange`] when `start >= end` and
    /// [`TensorError::OutOfBounds`] when `end` exceeds axis 0.
    pub fn slice_axis0(&self, start: usize, end: usize) -> Result<Self> {
        if start >= end {
            return Err(TensorError::EmptyRange { start, end });
        }
        let axis0 = self.shape.dim(0)?;
        if end > axis0 {
            return Err(TensorError::OutOfBounds {
                axis: 0,
                index: end,
                size: axis0,
            });
        }
        let inner: usize = self.shape.dims()[1..].iter().product();
        let data = self.data[start * inner..end * inner].to_vec();
        let shape = self.shape.with_dim(0, end - start)?;
        Ok(Self { data, shape })
    }

    /// Concatenates tensors along axis 0.
    ///
    /// The inverse of [`Tensor::slice_axis0`]; the hybrid-execution merge
    /// step uses it to combine the CPU part and the GPU part of a layer
    /// output. All parts must agree on every non-leading dimension.
    ///
    /// # Errors
    /// Returns [`TensorError::ShapeMismatch`] when trailing dims disagree
    /// and [`TensorError::EmptyRange`] when `parts` is empty.
    pub fn concat_axis0(parts: &[&Tensor]) -> Result<Self> {
        let first = parts
            .first()
            .ok_or(TensorError::EmptyRange { start: 0, end: 0 })?;
        let trailing = &first.shape.dims()[1..];
        let mut axis0 = 0usize;
        let mut total = 0usize;
        for part in parts {
            if part.shape.rank() != first.shape.rank() || &part.shape.dims()[1..] != trailing {
                return Err(TensorError::ShapeMismatch {
                    left: first.shape.dims().to_vec(),
                    right: part.shape.dims().to_vec(),
                });
            }
            axis0 += part.shape.dims()[0];
            total += part.len();
        }
        let mut data = Vec::with_capacity(total);
        for part in parts {
            data.extend_from_slice(&part.data);
        }
        let mut dims = first.shape.dims().to_vec();
        dims[0] = axis0;
        Ok(Self {
            data,
            shape: Shape::new(&dims),
        })
    }

    /// Applies `f` to every element, producing a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Self {
        Self {
            data: self.data.iter().map(|&x| f(x)).collect(),
            shape: self.shape.clone(),
        }
    }

    /// Element-wise combination of two equally shaped tensors.
    ///
    /// # Errors
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn zip_with(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Result<Self> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                left: self.shape.dims().to_vec(),
                right: other.shape.dims().to_vec(),
            });
        }
        let data = self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(&a, &b)| f(a, b))
            .collect();
        Ok(Self {
            data,
            shape: self.shape.clone(),
        })
    }

    /// Element-wise sum.
    ///
    /// # Errors
    /// See [`Tensor::zip_with`].
    pub fn add(&self, other: &Tensor) -> Result<Self> {
        self.zip_with(other, |a, b| a + b)
    }

    /// Element-wise product.
    ///
    /// # Errors
    /// See [`Tensor::zip_with`].
    pub fn mul(&self, other: &Tensor) -> Result<Self> {
        self.zip_with(other, |a, b| a * b)
    }

    /// Scales every element by a constant.
    pub fn scale(&self, factor: f32) -> Self {
        self.map(|x| x * factor)
    }

    /// Matrix multiply of two rank-2 tensors.
    ///
    /// # Errors
    /// Returns [`TensorError::RankMismatch`] for non-matrices and
    /// [`TensorError::MatmulDimMismatch`] when inner dims disagree.
    pub fn matmul(&self, other: &Tensor) -> Result<Self> {
        crate::gemm::gemm(self, other)
    }

    /// Largest absolute element difference between two tensors.
    ///
    /// # Errors
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn max_abs_diff(&self, other: &Tensor) -> Result<f32> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                left: self.shape.dims().to_vec(),
                right: other.shape.dims().to_vec(),
            });
        }
        Ok(self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(&a, &b)| (a - b).abs())
            .fold(0.0, f32::max))
    }

    /// True when every pairwise difference is within `tol`.
    pub fn approx_eq(&self, other: &Tensor, tol: f32) -> bool {
        self.shape == other.shape && self.max_abs_diff(other).is_ok_and(|d| d <= tol)
    }

    /// Index of the maximum element (first occurrence), or `None` if empty.
    pub fn argmax(&self) -> Option<usize> {
        self.data
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec(vec![1.0; 6], &[2, 3]).is_ok());
        assert_eq!(
            Tensor::from_vec(vec![1.0; 5], &[2, 3]).unwrap_err(),
            TensorError::LengthMismatch {
                expected: 6,
                actual: 5
            }
        );
    }

    #[test]
    fn constructors_fill_as_documented() {
        assert!(Tensor::zeros(&[3]).as_slice().iter().all(|&x| x == 0.0));
        assert!(Tensor::ones(&[3]).as_slice().iter().all(|&x| x == 1.0));
        assert!(Tensor::filled(&[2, 2], 2.5)
            .as_slice()
            .iter()
            .all(|&x| x == 2.5));
        assert_eq!(Tensor::eye(3).get(&[1, 1]).unwrap(), 1.0);
        assert_eq!(Tensor::eye(3).get(&[1, 2]).unwrap(), 0.0);
        assert_eq!(Tensor::arange(&[2, 2]).as_slice(), &[0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let a = Tensor::random(&[32], 1.0, 7);
        let b = Tensor::random(&[32], 1.0, 7);
        let c = Tensor::random(&[32], 1.0, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.as_slice().iter().all(|&x| (-1.0..1.0).contains(&x)));
    }

    #[test]
    fn get_set_roundtrip() {
        let mut t = Tensor::zeros(&[2, 3]);
        t.set(&[1, 2], 9.0).unwrap();
        assert_eq!(t.get(&[1, 2]).unwrap(), 9.0);
        assert_eq!(t.as_slice()[5], 9.0);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::arange(&[2, 3]);
        let r = t.reshape(&[3, 2]).unwrap();
        assert_eq!(r.as_slice(), t.as_slice());
        assert!(t.reshape(&[4, 2]).is_err());
    }

    #[test]
    fn slice_axis0_extracts_contiguous_rows() {
        let t = Tensor::arange(&[4, 2]);
        let s = t.slice_axis0(1, 3).unwrap();
        assert_eq!(s.dims(), &[2, 2]);
        assert_eq!(s.as_slice(), &[2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn slice_axis0_validates_range() {
        let t = Tensor::arange(&[4, 2]);
        assert!(matches!(
            t.slice_axis0(2, 2),
            Err(TensorError::EmptyRange { .. })
        ));
        assert!(matches!(
            t.slice_axis0(3, 5),
            Err(TensorError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn concat_inverts_slice() {
        let t = Tensor::arange(&[5, 3]);
        let a = t.slice_axis0(0, 2).unwrap();
        let b = t.slice_axis0(2, 5).unwrap();
        let merged = Tensor::concat_axis0(&[&a, &b]).unwrap();
        assert_eq!(merged, t);
    }

    #[test]
    fn concat_rejects_mismatched_trailing_dims() {
        let a = Tensor::zeros(&[1, 2]);
        let b = Tensor::zeros(&[1, 3]);
        assert!(matches!(
            Tensor::concat_axis0(&[&a, &b]),
            Err(TensorError::ShapeMismatch { .. })
        ));
        assert!(Tensor::concat_axis0(&[]).is_err());
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let b = Tensor::from_vec(vec![3.0, 4.0], &[2]).unwrap();
        assert_eq!(a.add(&b).unwrap().as_slice(), &[4.0, 6.0]);
        assert_eq!(a.mul(&b).unwrap().as_slice(), &[3.0, 8.0]);
        assert_eq!(a.scale(2.0).as_slice(), &[2.0, 4.0]);
        assert_eq!(a.map(|x| -x).as_slice(), &[-1.0, -2.0]);
        let c = Tensor::zeros(&[3]);
        assert!(a.add(&c).is_err());
    }

    #[test]
    fn comparison_helpers() {
        let a = Tensor::from_vec(vec![1.0, 5.0, 3.0], &[3]).unwrap();
        let b = Tensor::from_vec(vec![1.0, 5.001, 3.0], &[3]).unwrap();
        assert!((a.max_abs_diff(&b).unwrap() - 0.001).abs() < 1e-6);
        assert!(a.approx_eq(&b, 0.01));
        assert!(!a.approx_eq(&b, 1e-6));
        assert_eq!(a.argmax(), Some(1));
        assert_eq!(a.sum(), 9.0);
        assert_eq!(Tensor::zeros(&[0]).argmax(), None);
    }

    #[test]
    fn byte_len_counts_f32s() {
        assert_eq!(Tensor::zeros(&[4, 4]).byte_len(), 64);
    }
}
