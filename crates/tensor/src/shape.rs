//! Shape and stride arithmetic for row-major tensors.

use crate::{Result, TensorError};

/// The dimensions of a tensor, in row-major (C) order.
///
/// EdgeNN inference uses batch size 1, so the common shapes are
/// `[features]` for fully-connected activations and
/// `[channels, height, width]` for convolutional feature maps.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from a dimension list.
    ///
    /// Zero-sized dimensions are permitted (they describe empty tensors,
    /// which arise naturally from empty partition ranges).
    pub fn new(dims: &[usize]) -> Self {
        Self {
            dims: dims.to_vec(),
        }
    }

    /// The dimension list.
    #[inline]
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of dimensions (rank).
    #[inline]
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Size of one axis.
    ///
    /// # Errors
    /// Returns [`TensorError::OutOfBounds`] if `axis >= rank`.
    pub fn dim(&self, axis: usize) -> Result<usize> {
        self.dims
            .get(axis)
            .copied()
            .ok_or(TensorError::OutOfBounds {
                axis,
                index: axis,
                size: self.dims.len(),
            })
    }

    /// Total number of elements.
    #[inline]
    pub fn num_elements(&self) -> usize {
        self.dims.iter().product()
    }

    /// Row-major strides: `strides[i]` is the linear distance between
    /// consecutive indices along axis `i`.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Linear offset of a multi-dimensional index.
    ///
    /// # Errors
    /// Returns [`TensorError::RankMismatch`] if the index rank differs, or
    /// [`TensorError::OutOfBounds`] if any coordinate exceeds its axis.
    pub fn offset(&self, index: &[usize]) -> Result<usize> {
        if index.len() != self.dims.len() {
            return Err(TensorError::RankMismatch {
                expected: self.dims.len(),
                actual: index.len(),
            });
        }
        let mut offset = 0usize;
        let mut stride = 1usize;
        for axis in (0..self.dims.len()).rev() {
            let idx = index[axis];
            let size = self.dims[axis];
            if idx >= size {
                return Err(TensorError::OutOfBounds {
                    axis,
                    index: idx,
                    size,
                });
            }
            offset += idx * stride;
            stride *= size;
        }
        Ok(offset)
    }

    /// Replaces the size of one axis, returning the new shape.
    ///
    /// Used when slicing a channel range out of a feature map.
    ///
    /// # Errors
    /// Returns [`TensorError::OutOfBounds`] if `axis >= rank`.
    pub fn with_dim(&self, axis: usize, size: usize) -> Result<Self> {
        if axis >= self.dims.len() {
            return Err(TensorError::OutOfBounds {
                axis,
                index: axis,
                size: self.dims.len(),
            });
        }
        let mut dims = self.dims.clone();
        dims[axis] = size;
        Ok(Self { dims })
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Self::new(dims)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Self { dims }
    }
}

impl std::fmt::Display for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn num_elements_is_product() {
        assert_eq!(Shape::new(&[2, 3, 4]).num_elements(), 24);
        assert_eq!(Shape::new(&[7]).num_elements(), 7);
        assert_eq!(Shape::new(&[]).num_elements(), 1);
        assert_eq!(Shape::new(&[0, 5]).num_elements(), 0);
    }

    #[test]
    fn strides_are_row_major() {
        assert_eq!(Shape::new(&[2, 3, 4]).strides(), vec![12, 4, 1]);
        assert_eq!(Shape::new(&[5]).strides(), vec![1]);
        assert!(Shape::new(&[]).strides().is_empty());
    }

    #[test]
    fn offset_matches_manual_computation() {
        let shape = Shape::new(&[2, 3, 4]);
        assert_eq!(shape.offset(&[0, 0, 0]).unwrap(), 0);
        assert_eq!(shape.offset(&[1, 2, 3]).unwrap(), 23);
        assert_eq!(shape.offset(&[1, 0, 2]).unwrap(), 14);
    }

    #[test]
    fn offset_rejects_bad_rank_and_bounds() {
        let shape = Shape::new(&[2, 3]);
        assert_eq!(
            shape.offset(&[1]).unwrap_err(),
            TensorError::RankMismatch {
                expected: 2,
                actual: 1
            }
        );
        assert_eq!(
            shape.offset(&[2, 0]).unwrap_err(),
            TensorError::OutOfBounds {
                axis: 0,
                index: 2,
                size: 2
            }
        );
    }

    #[test]
    fn with_dim_replaces_axis() {
        let shape = Shape::new(&[16, 8, 8]);
        let sliced = shape.with_dim(0, 4).unwrap();
        assert_eq!(sliced.dims(), &[4, 8, 8]);
        assert!(shape.with_dim(3, 1).is_err());
    }

    #[test]
    fn display_renders_dims() {
        assert_eq!(Shape::new(&[3, 224, 224]).to_string(), "[3, 224, 224]");
        assert_eq!(Shape::new(&[]).to_string(), "[]");
    }

    #[test]
    fn dim_accessor_checks_bounds() {
        let shape = Shape::new(&[4, 5]);
        assert_eq!(shape.dim(1).unwrap(), 5);
        assert!(shape.dim(2).is_err());
    }
}
