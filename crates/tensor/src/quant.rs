//! Int8 quantization: parameters, quantized tensors, and the packed
//! int8×int8→i32 GEMM with a fused requantize epilogue.
//!
//! The scheme is the standard affine one: a real value `v` is stored as
//! `q = clamp(round(v / scale + zero_point), -128, 127)` and recovered
//! as `v ≈ scale * (q - zero_point)`. Weights use *symmetric per-channel*
//! parameters (`zero_point = 0`, one scale per output channel), so the
//! integer product needs only one cross-term correction; activations use
//! *per-tensor* affine parameters so zero-padding stays exactly
//! representable (`q = zero_point ⇔ v = 0`).
//!
//! With `W ≈ s_w[i]·Wq[i,p]` and `X ≈ s_x·(Xq[p,j] − z_x)`:
//!
//! ```text
//! Σ_p W·X ≈ s_w[i]·s_x · ( Σ_p Wq·Xq  −  z_x · Σ_p Wq[i,p] )
//! ```
//!
//! so the kernel accumulates `Σ Wq·Xq` in i32 registers and the
//! write-back applies the row-sum correction, the combined scale, bias,
//! and optional ReLU in one pass ([`Requant`]) — the i32 accumulators
//! never touch memory. The f32 kernels remain the differential oracle:
//! every quantized path is tested against dequantized f32 results under
//! an analytic error bound.
//!
//! ## Kernel formulation
//!
//! The blocked kernel is an `MR x NR` microtile over a *pair-broadcast*
//! packed layout: both operands are widened to i16 once, A row-major
//! (rows padded to an even `kp` and to an `MR` multiple), B into
//! `NR`-column panels where each reduction *pair* `(p, p+1)` stores its
//! two values adjacently per column. One microtile step then multiplies
//! a broadcast A pair against a whole panel row — on x86 that is
//! exactly one `pmaddwd` + one `vpaddd` per `2*NR` MACs, with `MR`
//! independent accumulator registers hiding the multiply latency.
//! Autovectorizers do not find this shape from scalar code (the
//! horizontal-reduction idiom they do lower caps out well below the
//! f32 kernel at small `k`), so [`crate::simd`] provides explicit
//! AVX2/AVX-512 microtiles behind the usual runtime dispatch, and
//! [`qgemm_tile_portable`] keeps a bit-identical safe fallback. The
//! pack adds `O(mk + kn)` work against `O(mkn)` compute and keeps the
//! i16 working set (an MR row block plus one panel) inside L1.
use crate::scratch::with_scratch_i16;
use crate::{Result, Shape, Tensor, TensorError};
use edgenn_obs::flight;

/// Rows per microtile: independent accumulator sets per A row, enough
/// to hide the `pmaddwd` latency behind one shared B-panel load.
pub(crate) const MR: usize = 4;
/// Columns per packed B panel (one 512-bit lane row of i32 accumulators).
pub(crate) const NR: usize = 16;

/// Rounds the reduction depth up to the even `kp` the pair-broadcast
/// layout packs (odd tails are zero-padded).
#[inline]
pub(crate) const fn pair_depth(k: usize) -> usize {
    k + (k & 1)
}

/// Affine quantization parameters for one tensor or one channel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantParams {
    /// Real-value step between adjacent int8 codes (always > 0).
    pub scale: f32,
    /// Int8 code that represents real `0.0` (in `[-128, 127]`).
    pub zero_point: i32,
}

impl QuantParams {
    /// Parameters covering `[min, max]`, widened to include `0.0` so the
    /// zero used for conv padding is exactly representable.
    ///
    /// A degenerate range (`min == max == 0`) yields identity-ish
    /// parameters (`scale = 1`); round-trip error never exceeds
    /// `scale / 2` per element for values inside the range.
    #[must_use]
    pub fn from_min_max(min: f32, max: f32) -> QuantParams {
        let min = min.min(0.0);
        let max = max.max(0.0);
        let range = max - min;
        if range <= 0.0 || range.is_nan() || !range.is_finite() {
            return QuantParams {
                scale: 1.0,
                zero_point: 0,
            };
        }
        let scale = range / 255.0;
        let zero_point = (-128.0 - min / scale).round().clamp(-128.0, 127.0) as i32;
        QuantParams { scale, zero_point }
    }

    /// Symmetric parameters (`zero_point = 0`) covering `[-abs_max, abs_max]`.
    /// Used for weights, where symmetry removes one correction term from
    /// the integer GEMM.
    #[must_use]
    pub fn symmetric(abs_max: f32) -> QuantParams {
        let scale = if abs_max > 0.0 && abs_max.is_finite() {
            abs_max / 127.0
        } else {
            1.0
        };
        QuantParams {
            scale,
            zero_point: 0,
        }
    }

    /// Quantizes one real value (round-to-nearest, saturating). Uses the
    /// same rounding as [`quantize_into`] so scalar and bulk paths agree
    /// bit-for-bit.
    #[must_use]
    pub fn quantize_one(self, v: f32) -> i8 {
        round_nearest(v / self.scale + self.zero_point as f32) as i8
    }

    /// Recovers the real value one int8 code represents.
    #[must_use]
    pub fn dequantize_one(self, q: i8) -> f32 {
        self.scale * (i32::from(q) - self.zero_point) as f32
    }
}

/// Minimum and maximum of a slice (`(0, 0)` when empty), for dynamic
/// activation quantization and the calibration pass.
#[must_use]
pub fn min_max(data: &[f32]) -> (f32, f32) {
    let mut lo = f32::INFINITY;
    let mut hi = f32::NEG_INFINITY;
    for &v in data {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    if lo > hi {
        (0.0, 0.0)
    } else {
        (lo, hi)
    }
}

/// Round-to-nearest (ties to even) via the `1.5 * 2^23` magic constant:
/// adding and subtracting it leaves the nearest integer for any
/// `|x| < 2^22`, values beyond keep enough magnitude for the saturating
/// `as i8` cast, and NaN stays NaN (casting to 0). Every step is a plain
/// add, so the quantize loop autovectorizes — `f32::round`'s
/// half-away-from-zero semantics have no vector lowering and measured
/// ~3.5x slower per element.
#[inline(always)]
fn round_nearest(x: f32) -> f32 {
    const MAGIC: f32 = 12_582_912.0; // 1.5 * 2^23
    (x + MAGIC) - MAGIC
}

/// Quantizes `src` into `dst` under `p` (the activation hot path).
pub fn quantize_into(src: &[f32], dst: &mut [i8], p: QuantParams) {
    debug_assert_eq!(src.len(), dst.len());
    let inv = 1.0 / p.scale;
    let zp = p.zero_point as f32;
    for (d, &v) in dst.iter_mut().zip(src.iter()) {
        // `as i8` saturates to [-128, 127], so no explicit clamp.
        *d = round_nearest(v * inv + zp) as i8;
    }
}

/// How a [`QTensor`]'s codes map back to real values.
#[derive(Debug, Clone, PartialEq)]
pub enum Quantization {
    /// One parameter set for every element.
    PerTensor(QuantParams),
    /// One parameter set per axis-0 slice (conv output channel / dense
    /// row); `params.len()` equals the axis-0 dimension.
    PerChannel(Vec<QuantParams>),
}

/// An int8 tensor plus the parameters to interpret it.
#[derive(Debug, Clone, PartialEq)]
pub struct QTensor {
    data: Vec<i8>,
    shape: Shape,
    quant: Quantization,
}

impl QTensor {
    /// Quantizes `t` with a single affine parameter set derived from its
    /// min/max.
    #[must_use]
    pub fn quantize_per_tensor(t: &Tensor) -> QTensor {
        let (lo, hi) = min_max(t.as_slice());
        let p = QuantParams::from_min_max(lo, hi);
        let mut data = vec![0i8; t.len()];
        quantize_into(t.as_slice(), &mut data, p);
        QTensor {
            data,
            shape: t.shape().clone(),
            quant: Quantization::PerTensor(p),
        }
    }

    /// Quantizes `t` symmetrically with one scale per axis-0 slice (the
    /// weight scheme: axis 0 is the output channel / dense unit).
    ///
    /// # Errors
    /// Returns [`TensorError::RankMismatch`] for rank-0 tensors.
    pub fn quantize_per_channel(t: &Tensor) -> Result<QTensor> {
        if t.shape().rank() == 0 {
            return Err(TensorError::RankMismatch {
                expected: 1,
                actual: 0,
            });
        }
        let channels = t.dims()[0];
        let row = t.len().checked_div(channels).unwrap_or(0);
        let src = t.as_slice();
        let mut data = vec![0i8; t.len()];
        let mut params = Vec::with_capacity(channels);
        for c in 0..channels {
            let s = &src[c * row..(c + 1) * row];
            let amax = s.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
            let p = QuantParams::symmetric(amax);
            quantize_into(s, &mut data[c * row..(c + 1) * row], p);
            params.push(p);
        }
        Ok(QTensor {
            data,
            shape: t.shape().clone(),
            quant: Quantization::PerChannel(params),
        })
    }

    /// The int8 codes, row-major.
    #[must_use]
    pub fn as_slice(&self) -> &[i8] {
        &self.data
    }

    /// Tensor shape (same as the source tensor's).
    #[must_use]
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Dimension list.
    #[must_use]
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// The quantization scheme.
    #[must_use]
    pub fn quant(&self) -> &Quantization {
        &self.quant
    }

    /// Bytes this tensor occupies (one per element).
    #[must_use]
    pub fn byte_len(&self) -> usize {
        self.data.len()
    }

    /// Reconstructs the real-valued tensor (lossy inverse of quantize).
    #[must_use]
    pub fn dequantize(&self) -> Tensor {
        let data: Vec<f32> = match &self.quant {
            Quantization::PerTensor(p) => self.data.iter().map(|&q| p.dequantize_one(q)).collect(),
            Quantization::PerChannel(params) => {
                let row = self.data.len().checked_div(params.len()).unwrap_or(0);
                self.data
                    .chunks(row.max(1))
                    .zip(params.iter())
                    .flat_map(|(chunk, p)| chunk.iter().map(|&q| p.dequantize_one(q)))
                    .collect()
            }
        };
        Tensor::from_vec(data, self.dims()).expect("shape preserved by construction")
    }
}

/// Per-row sums of an int8 weight matrix `(m, k)`, precomputed once per
/// layer for the zero-point correction in [`Requant`].
#[must_use]
pub fn row_sums(w: &[i8], m: usize, k: usize) -> Vec<i32> {
    debug_assert_eq!(w.len(), m * k);
    (0..m)
        .map(|i| w[i * k..(i + 1) * k].iter().map(|&v| i32::from(v)).sum())
        .collect()
}

/// Requantize epilogue of the int8 GEMM: maps the i32 accumulator of
/// output element `(i, j)` to
/// `f(w_scales[i] * act.scale * (acc - act.zero_point * row_sums[i]) + bias[i])`
/// where `f` is ReLU when `relu` is set. All slices are indexed by the
/// *local* row of the call (callers slice them alongside `a`).
#[derive(Debug, Clone, Copy)]
pub struct Requant<'a> {
    /// Per-row (symmetric) weight scales, `len == m`.
    pub w_scales: &'a [f32],
    /// Activation quantization parameters (per-tensor affine).
    pub act: QuantParams,
    /// Per-row weight sums for the zero-point correction, `len == m`.
    pub row_sums: &'a [i32],
    /// Optional per-row bias added after rescaling.
    pub bias: Option<&'a [f32]>,
    /// Fuse a ReLU clamp into the write-back.
    pub relu: bool,
}

impl Requant<'_> {
    /// Maps one accumulated i32 for (local) row `i` to its real-valued
    /// output. Public so layer kernels that accumulate outside the GEMM
    /// (the quantized dense mat-vec) share the exact write-back math.
    #[inline(always)]
    #[must_use]
    pub fn apply(&self, acc: i32, i: usize) -> f32 {
        let s = self.w_scales[i] * self.act.scale;
        let corr = i64::from(self.act.zero_point) * i64::from(self.row_sums[i]);
        let v = s * ((i64::from(acc) - corr) as f32) + self.bias.map_or(0.0, |b| b[i]);
        if self.relu {
            v.max(0.0)
        } else {
            v
        }
    }

    fn debug_check(&self, m: usize) {
        debug_assert_eq!(self.w_scales.len(), m);
        debug_assert_eq!(self.row_sums.len(), m);
        if let Some(b) = self.bias {
            debug_assert_eq!(b.len(), m);
        }
    }
}

/// Bytes of scratch [`qgemm_requant_into`] may acquire for an
/// `(m, k) x (k, n)` product: both operands are widened to i16 — A rows
/// padded to an even depth and an `MR`-multiple row count, B into
/// pair-interleaved NR-wide column panels (the int8 counterpart of
/// [`crate::gemm_pack_elems`]; the int8 kernel packs the full reduction
/// depth at once). A sound over-approximation for the tier-D arena
/// accounting.
#[must_use]
pub fn qgemm_pack_bytes(m: usize, k: usize, n: usize) -> usize {
    if m == 0 || k == 0 || n == 0 {
        0
    } else {
        let kp = pair_depth(k);
        let mp = m.div_ceil(MR) * MR;
        2 * (mp * kp + n.div_ceil(NR) * NR * kp)
    }
}

/// Packed int8 GEMM with fused requantization:
/// `out[i][j] = rq(Σ_p a[i][p]·b[p][j])` for an `(m, k) x (k, n)`
/// product. `a` is the (symmetric, per-row-scaled) weight matrix, `b`
/// the (affine, per-tensor) activation matrix; `out` is *overwritten*,
/// accumulation across k-ranges composes in f32 at the layer level.
///
/// Outputs are computed as `MR x NR` microtiles over the pair-broadcast
/// packed layout and requantized straight from the register accumulators
/// (see the module docs for why this formulation). `|acc|` stays below
/// `i32::MAX` for any `k ≤ 2^17`, far above the bundled models'
/// reduction depths.
pub fn qgemm_requant_into(
    a: &[i8],
    b: &[i8],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    rq: &Requant<'_>,
) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    rq.debug_check(m);
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        for i in 0..m {
            out[i * n..(i + 1) * n].fill(rq.apply(0, i));
        }
        return;
    }
    // The naive small path only wins while the problem is too tiny to
    // amortize the pack + scratch acquisition; with the microtile kernel
    // that break-even sits far lower than the f32 kernel's (the packed
    // tile retires 32 MACs per instruction, the naive loop roughly one).
    if m * n * k < 512 {
        crate::simd::qgemm_small_dispatch(a, b, out, m, k, n, rq);
        return;
    }
    let profiled = flight::enabled();
    let t_begin = if profiled { flight::now_ns() } else { 0 };
    let kp = pair_depth(k);
    let mp = m.div_ceil(MR) * MR;
    let panels = n.div_ceil(NR);
    // One i16 scratch slab holds the widened, pair-padded A (`mp*kp`)
    // followed by the pair-interleaved B panels (`panels*NR*kp`): i16
    // operands are still half the f32 footprint, and full-depth packing
    // lets every microtile run its whole reduction from one panel. As in
    // the f32 path, scratch is acquired *outside* the dispatched body so
    // the hot loops inline into the `#[target_feature]` wrappers (a
    // closure would pin them at baseline width).
    let scratch_elems = mp * kp + panels * NR * kp;
    let pack_ns = with_scratch_i16(scratch_elems, |packed| {
        crate::simd::qgemm_body_dispatch(a, b, packed, out, m, k, n, rq, profiled)
    });
    if profiled {
        let t_end = flight::now_ns();
        let parent = flight::current_parent();
        flight::record_manual(
            flight::SpanKind::Pack,
            flight::NO_NODE,
            parent,
            t_begin,
            t_begin + pack_ns,
            (2 * scratch_elems) as u64,
        );
        flight::record_manual(
            flight::SpanKind::Compute,
            flight::NO_NODE,
            parent,
            t_begin + pack_ns,
            t_end,
            0,
        );
    }
}

/// The blocked int8 GEMM body behind [`qgemm_requant_into`], after
/// argument checks and scratch acquisition. Returns nanoseconds spent
/// packing (0 unless `profiled`). `pub(crate)` + `#[inline(always)]` so
/// [`crate::simd`] can re-instantiate it under wider `#[target_feature]`
/// sets.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
pub(crate) fn qgemm_body(
    a: &[i8],
    b: &[i8],
    packed: &mut [i16],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    rq: &Requant<'_>,
    profiled: bool,
) -> u64 {
    let mut pack_ns = 0u64;
    let kp = pair_depth(k);
    let mp = m.div_ceil(MR) * MR;
    let (awide, bpanels) = packed.split_at_mut(mp * kp);
    if profiled {
        let t0 = flight::now_ns();
        pack_pair_operands(a, b, awide, bpanels, m, k, n);
        pack_ns = flight::now_ns().saturating_sub(t0);
    } else {
        pack_pair_operands(a, b, awide, bpanels, m, k, n);
    }
    microtile_loop(awide, bpanels, out, m, kp, n, rq);
    pack_ns
}

/// The microtile sweep shared by [`qgemm_body`] and
/// [`qgemm_requant_prepacked_into`]: drives [`crate::simd`]'s dispatched
/// `MR x NR` tile over every panel x row-block and requantizes the real
/// outputs from the register accumulators.
#[inline(always)]
fn microtile_loop(
    awide: &[i16],
    bpanels: &[i16],
    out: &mut [f32],
    m: usize,
    kp: usize,
    n: usize,
    rq: &Requant<'_>,
) {
    let mut acc = [0i32; MR * NR];
    for (panel_idx, panel) in bpanels.chunks(NR * kp).enumerate().take(n.div_ceil(NR)) {
        let j0 = panel_idx * NR;
        let nr = NR.min(n - j0);
        for i0 in (0..m).step_by(MR) {
            let rows = MR.min(m - i0);
            // The microtile always computes a full MR x NR block (A's
            // padding rows and the panel's padding lanes are zeros); the
            // requant write-back below only touches the real outputs.
            crate::simd::qgemm_tile_dispatch(&awide[i0 * kp..(i0 + MR) * kp], kp, panel, &mut acc);
            for r in 0..rows {
                let i = i0 + r;
                let out_row = &mut out[i * n + j0..i * n + j0 + nr];
                for (o, &lane) in out_row.iter_mut().zip(acc[r * NR..].iter()) {
                    *o = rq.apply(lane, i);
                }
            }
        }
    }
}

/// Widens an `(m, k)` int8 weight matrix into the microtile's A layout
/// once, up front: i16 rows of stride [`pair_depth`]`(k)`, zero-padded
/// to `m.div_ceil(MR)*MR + MR` rows so that *any* row-range slice
/// (`&packed[start*kp..]`) leaves a full `MR` block readable past its
/// last real row. Layers cache this beside the codes — weights never
/// change, so [`qgemm_requant_prepacked_into`] skips the per-call A pack
/// entirely.
#[must_use]
pub fn qgemm_pack_a(a: &[i8], m: usize, k: usize) -> Vec<i16> {
    debug_assert_eq!(a.len(), m * k);
    let kp = pair_depth(k);
    let mut awide = vec![0i16; (m.div_ceil(MR) * MR + MR) * kp];
    for (row, src_row) in awide.chunks_mut(kp).zip(a.chunks(k)).take(m) {
        for (dst, &src) in row.iter_mut().zip(src_row.iter()) {
            *dst = i16::from(src);
        }
    }
    awide
}

/// Clears the pair-interleaved panel layout's padding slots for a
/// `(k, n)` logical matrix: the last panel's lanes beyond `n` (cheapest
/// to clear whole) and, for an odd `k`, every column's unpaired tail
/// slot. The scratch arena recycles allocations, so every producer of
/// the layout ([`crate::im2col_into_panels_i16`],
/// [`quantize_into_panels_i16`]) must call this before its gather —
/// padding must multiply as zero.
pub(crate) fn zero_panel_pads(out: &mut [i16], k: usize, n: usize) {
    let kp = pair_depth(k);
    let panels = n.div_ceil(NR);
    debug_assert_eq!(out.len(), panels * NR * kp);
    if !n.is_multiple_of(NR) {
        out[(panels - 1) * NR * kp..].fill(0);
    }
    if k & 1 == 1 {
        let base = (k / 2) * 2 * NR + 1;
        for panel in out.chunks_mut(NR * kp) {
            for jl in 0..NR {
                panel[base + 2 * jl] = 0;
            }
        }
    }
}

/// Quantizes a `(k, n)` row-major f32 matrix straight into the packed
/// GEMM's pair-interleaved i16 B panels — [`quantize_into`] fused with
/// the panel pack. This is the whole int8 lowering for a 1x1/stride-1
/// convolution (whose im2col is the identity): one pass over the
/// activation, no intermediate i8 buffer, no separate gather.
///
/// `out` must hold exactly [`qgemm_panel_elems`]`(k, n)` elements; no
/// pre-fill is required.
pub fn quantize_into_panels_i16(src: &[f32], p: QuantParams, k: usize, n: usize, out: &mut [i16]) {
    debug_assert_eq!(src.len(), k * n);
    debug_assert_eq!(out.len(), qgemm_panel_elems(k, n));
    zero_panel_pads(out, k, n);
    let inv = 1.0 / p.scale;
    let zp = p.zero_point as f32;
    let kp = pair_depth(k);
    for (row, src_row) in src.chunks_exact(n).enumerate() {
        let mut cur = crate::im2col::PanelCursor::at_row(row, kp);
        for &v in src_row {
            // Same rounding pipeline as `quantize_into`, so the 1x1
            // fast path is bit-identical to quantize + gather.
            cur.push(out, i16::from(round_nearest(v * inv + zp) as i8));
        }
    }
}

/// i16 element count of the pair-interleaved B panels for a `(k, n)`
/// activation matrix: `n.div_ceil(NR) * NR * pair_depth(k)`. Callers
/// size the scratch they hand to
/// [`crate::im2col_into_panels_i16`] / [`qgemm_requant_prepacked_into`]
/// with this.
#[must_use]
pub fn qgemm_panel_elems(k: usize, n: usize) -> usize {
    if k == 0 || n == 0 {
        0
    } else {
        n.div_ceil(NR) * NR * pair_depth(k)
    }
}

/// [`qgemm_requant_into`] over operands already in the packed layouts:
/// `awide` from [`qgemm_pack_a`] (sliced at a row range times `kp`),
/// `bpanels` from [`crate::im2col_into_panels_i16`]. This is the conv
/// layers' steady-state path — no per-call packing pass, no A scratch;
/// the only remaining per-call data movement is the im2col gather that
/// *produces* `bpanels`.
pub fn qgemm_requant_prepacked_into(
    awide: &[i16],
    bpanels: &[i16],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    rq: &Requant<'_>,
) {
    let kp = pair_depth(k);
    debug_assert!(awide.len() >= (m.div_ceil(MR) * MR).max(MR) * kp);
    debug_assert_eq!(bpanels.len(), qgemm_panel_elems(k, n));
    debug_assert_eq!(out.len(), m * n);
    rq.debug_check(m);
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        for i in 0..m {
            out[i * n..(i + 1) * n].fill(rq.apply(0, i));
        }
        return;
    }
    let span = flight::begin(flight::SpanKind::Compute, flight::NO_NODE);
    microtile_loop(awide, bpanels, out, m, kp, n, rq);
    flight::end_with(span, 0);
}

/// Portable `MR x NR` microtile over the pair-broadcast layout:
/// `acc[r][lane] = Σ_h a[r][2h]·panel[h][lane].0 + a[r][2h+1]·panel[h][lane].1`.
/// Integer arithmetic, so results are bit-identical to the explicit
/// AVX2/AVX-512 microtiles in [`crate::simd`] that replace it at runtime.
#[inline(always)]
pub(crate) fn qgemm_tile_portable(a: &[i16], kp: usize, panel: &[i16], acc: &mut [i32; MR * NR]) {
    acc.fill(0);
    for h in 0..kp / 2 {
        let step = &panel[h * 2 * NR..(h + 1) * 2 * NR];
        for r in 0..MR {
            let x0 = i32::from(a[r * kp + 2 * h]);
            let x1 = i32::from(a[r * kp + 2 * h + 1]);
            let dst = &mut acc[r * NR..(r + 1) * NR];
            for (lane, d) in dst.iter_mut().enumerate() {
                *d += x0 * i32::from(step[2 * lane]) + x1 * i32::from(step[2 * lane + 1]);
            }
        }
    }
}

/// Naive path for tiny problems: i32 triple loop plus requant, skipping
/// the packing round trip (mirrors the f32 `gemm_small` cutoff).
#[inline(always)]
pub(crate) fn qgemm_small(
    a: &[i8],
    b: &[i8],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    rq: &Requant<'_>,
) {
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        for j in 0..n {
            let mut acc = 0i32;
            for (p, &ap) in a_row.iter().enumerate() {
                acc += i32::from(ap) * i32::from(b[p * n + j]);
            }
            out_row[j] = rq.apply(acc, i);
        }
    }
}

/// Widens both operands to i16 into the pair-broadcast layout: A `(m, k)`
/// row-major into `awide` rows of stride `kp` (odd-depth tails and rows
/// `m..mp` zero-padded so the microtile can always read a full `MR`
/// block), B `(k, n)` into NR-wide panels where reduction pair `(p, p+1)`
/// of column `j` lands at `panel[(p/2)*2*NR + 2*jl + (p&1)]`. Both
/// destinations are zero-filled first: the scratch arena recycles
/// allocations, and every padding element must multiply as zero.
#[inline(always)]
fn pack_pair_operands(
    a: &[i8],
    b: &[i8],
    awide: &mut [i16],
    bpanels: &mut [i16],
    m: usize,
    k: usize,
    n: usize,
) {
    let kp = pair_depth(k);
    awide.fill(0);
    for (row, src_row) in awide.chunks_mut(kp).zip(a.chunks(k)).take(m) {
        for (dst, &src) in row.iter_mut().zip(src_row.iter()) {
            *dst = i16::from(src);
        }
    }
    bpanels.fill(0);
    let panels = n.div_ceil(NR);
    for (panel, dst_panel) in bpanels.chunks_mut(NR * kp).enumerate().take(panels) {
        let j0 = panel * NR;
        let nr = NR.min(n - j0);
        for p in 0..k {
            let src = &b[p * n + j0..p * n + j0 + nr];
            let base = (p / 2) * 2 * NR + (p & 1);
            for (jl, &v) in src.iter().enumerate() {
                dst_panel[base + 2 * jl] = i16::from(v);
            }
        }
    }
}

/// Int8 dot product with i32 accumulation (quantized dense hot loop).
/// Dispatches to the widest microkernel variant like [`crate::dot`].
#[must_use]
pub fn dot_i8(a: &[i8], b: &[i8]) -> i32 {
    debug_assert_eq!(a.len(), b.len());
    crate::simd::dot_i8_dispatch(a, b)
}

/// Portable body behind [`dot_i8`]; re-instantiated by [`crate::simd`].
/// A lone horizontal reduction on purpose: this is the shape LLVM
/// vectorizes into sign-extend + `pmaddwd` chains (see module docs).
#[inline(always)]
pub(crate) fn dot_i8_body(a: &[i8], b: &[i8]) -> i32 {
    let mut acc = 0i32;
    for (&x, &y) in a.iter().zip(b.iter()) {
        acc += i32::from(x) * i32::from(y);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_error_is_bounded_by_half_a_step() {
        let t = Tensor::random(&[64], 3.0, 9);
        let q = QTensor::quantize_per_tensor(&t);
        let Quantization::PerTensor(p) = *q.quant() else {
            panic!("per-tensor quantization expected");
        };
        let back = q.dequantize();
        for (orig, rec) in t.as_slice().iter().zip(back.as_slice()) {
            assert!(
                (orig - rec).abs() <= 0.5 * p.scale + 1e-6,
                "{orig} -> {rec} exceeds scale/2 = {}",
                0.5 * p.scale
            );
        }
    }

    #[test]
    fn zero_is_exactly_representable() {
        // Padding correctness hinges on dequantize(zero_point) == 0.
        for (lo, hi) in [(-3.0, 5.0), (0.5, 9.0), (-7.0, -0.25), (0.0, 0.0)] {
            let p = QuantParams::from_min_max(lo, hi);
            let q = p.quantize_one(0.0);
            assert_eq!(i32::from(q), p.zero_point, "[{lo},{hi}]");
            assert_eq!(p.dequantize_one(q), 0.0, "[{lo},{hi}]");
        }
    }

    #[test]
    fn degenerate_and_non_finite_ranges_fall_back_to_identity() {
        for p in [
            QuantParams::from_min_max(0.0, 0.0),
            QuantParams::from_min_max(f32::NAN, f32::NAN),
            QuantParams::symmetric(0.0),
            QuantParams::symmetric(f32::INFINITY),
        ] {
            assert_eq!(p.scale, 1.0);
            assert_eq!(p.zero_point, 0);
        }
    }

    #[test]
    fn per_channel_scales_each_row_independently() {
        // Row 0 is tiny, row 1 huge: per-tensor would crush row 0 to
        // zero codes; per-channel must keep both accurate.
        let t = Tensor::from_vec(vec![0.01, -0.02, 0.03, 100.0, -200.0, 50.0], &[2, 3]).unwrap();
        let q = QTensor::quantize_per_channel(&t).unwrap();
        let back = q.dequantize();
        for (orig, rec) in t.as_slice().iter().zip(back.as_slice()) {
            let tol = 0.5 * orig.abs().max(0.02) / 127.0 * 2.0;
            assert!((orig - rec).abs() <= tol, "{orig} -> {rec}");
        }
        let Quantization::PerChannel(params) = q.quant() else {
            panic!("per-channel expected");
        };
        assert_eq!(params.len(), 2);
        assert!(params[1].scale > params[0].scale * 100.0);
    }

    /// Analytic elementwise error bound for int8 GEMM vs the f32 oracle:
    /// quantization error ≤ scale/2 per operand, propagated through the
    /// bilinear product.
    fn gemm_error_bound(
        w: &Tensor,
        x: &Tensor,
        w_scales: &[f32],
        sx: f32,
        i: usize,
        j: usize,
    ) -> f32 {
        let (m, k) = (w.dims()[0], w.dims()[1]);
        let n = x.dims()[1];
        debug_assert!(i < m && j < n);
        let wrow = &w.as_slice()[i * k..(i + 1) * k];
        let row_abs: f32 = wrow.iter().map(|v| v.abs()).sum();
        let col_abs: f32 = (0..k).map(|p| x.as_slice()[p * n + j].abs()).sum();
        0.5 * sx * row_abs + 0.5 * w_scales[i] * col_abs + 0.25 * (k as f32) * w_scales[i] * sx
    }

    fn check_qgemm_against_oracle(m: usize, k: usize, n: usize, relu: bool, seed: u64) {
        let w = Tensor::random(&[m, k], 1.5, seed);
        let x = Tensor::random(&[k, n], 2.0, seed + 7);
        let bias: Vec<f32> = (0..m).map(|i| (i as f32) * 0.1 - 0.3).collect();

        let qw = QTensor::quantize_per_channel(&w).unwrap();
        let Quantization::PerChannel(wp) = qw.quant().clone() else {
            panic!("per-channel expected");
        };
        let w_scales: Vec<f32> = wp.iter().map(|p| p.scale).collect();
        let rsums = row_sums(qw.as_slice(), m, k);

        let (lo, hi) = min_max(x.as_slice());
        let act = QuantParams::from_min_max(lo, hi);
        let mut qx = vec![0i8; k * n];
        quantize_into(x.as_slice(), &mut qx, act);

        let mut got = vec![0.0f32; m * n];
        let rq = Requant {
            w_scales: &w_scales,
            act,
            row_sums: &rsums,
            bias: Some(&bias),
            relu,
        };
        qgemm_requant_into(qw.as_slice(), &qx, &mut got, m, k, n, &rq);

        let mut want = vec![0.0f32; m * n];
        crate::gemm::gemm_into(w.as_slice(), x.as_slice(), &mut want, m, k, n);
        for i in 0..m {
            for j in 0..n {
                let mut r = want[i * n + j] + bias[i];
                if relu {
                    r = r.max(0.0);
                }
                let bound = gemm_error_bound(&w, &x, &w_scales, act.scale, i, j) + 1e-4;
                let err = (got[i * n + j] - r).abs();
                assert!(
                    err <= bound,
                    "({m},{k},{n}) relu={relu} [{i},{j}]: err {err} > bound {bound}"
                );
            }
        }
    }

    #[test]
    fn qgemm_matches_f32_oracle_within_quantization_bound() {
        // Small path, blocked path, off-tile dims, odd k (pair tail).
        check_qgemm_against_oracle(3, 5, 7, false, 1);
        check_qgemm_against_oracle(37, 301, 29, false, 2);
        check_qgemm_against_oracle(16, 64, 33, true, 3);
        check_qgemm_against_oracle(5, 27, 50, true, 4);
    }

    #[test]
    fn qgemm_zero_k_applies_requant_of_zero() {
        let bias = [1.5f32, -2.0];
        let rq = Requant {
            w_scales: &[1.0, 1.0],
            act: QuantParams::from_min_max(-1.0, 1.0),
            row_sums: &[0, 0],
            bias: Some(&bias),
            relu: true,
        };
        let mut out = vec![9.0f32; 2 * 3];
        qgemm_requant_into(&[], &[], &mut out, 2, 0, 3, &rq);
        assert_eq!(out, vec![1.5, 1.5, 1.5, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn dot_i8_matches_scalar_reference() {
        let a: Vec<i8> = (0..37).map(|i| (i * 7 % 255 - 128) as i8).collect();
        let b: Vec<i8> = (0..37).map(|i| (i * 13 % 255 - 127) as i8).collect();
        let want: i32 = a
            .iter()
            .zip(&b)
            .map(|(&x, &y)| i32::from(x) * i32::from(y))
            .sum();
        assert_eq!(dot_i8(&a, &b), want);
        assert_eq!(dot_i8(&[], &[]), 0);
    }

    #[test]
    fn prepacked_path_is_bitwise_identical_to_the_packing_path() {
        // The conv layers run A prepacked at init and B packed by the
        // fused im2col gather; both must reproduce qgemm_requant_into
        // exactly (integer accumulation, same requant) — including from
        // a row-range slice of the prepacked A (start off the MR grid).
        for (m, k, n) in [(1usize, 3usize, 5usize), (7, 27, 33), (12, 64, 16)] {
            let mut a = vec![0i8; m * k];
            let mut b = vec![0i8; k * n];
            for (i, v) in a.iter_mut().enumerate() {
                *v = ((i * 37 + 11) % 255) as u8 as i8;
            }
            for (i, v) in b.iter_mut().enumerate() {
                *v = ((i * 91 + 5) % 255) as u8 as i8;
            }
            let w_scales = vec![0.02f32; m];
            let rsums = row_sums(&a, m, k);
            let rq = Requant {
                w_scales: &w_scales,
                act: QuantParams::from_min_max(-1.0, 1.0),
                row_sums: &rsums,
                bias: None,
                relu: false,
            };
            let mut want = vec![0.0f32; m * n];
            qgemm_requant_into(&a, &b, &mut want, m, k, n, &rq);

            let kp = pair_depth(k);
            let awide = qgemm_pack_a(&a, m, k);
            let mut panels = vec![7i16; qgemm_panel_elems(k, n)];
            // Pack B panels through the reference layout (pair (p,p+1)
            // of column j at panel[(p/2)*2*NR + 2*jl + (p&1)]).
            panels.fill(0);
            for p in 0..k {
                for j in 0..n {
                    panels[(j / NR) * NR * kp + (p / 2) * 2 * NR + 2 * (j % NR) + (p & 1)] =
                        i16::from(b[p * n + j]);
                }
            }
            let mut got = vec![0.0f32; m * n];
            qgemm_requant_prepacked_into(&awide, &panels, &mut got, m, k, n, &rq);
            assert_eq!(got, want, "({m},{k},{n})");

            // Row-range slice: rows 1..m through the same prepacked A.
            if m > 1 {
                let sub = m - 1;
                let rq_sub = Requant {
                    w_scales: &w_scales[1..],
                    act: rq.act,
                    row_sums: &rsums[1..],
                    bias: None,
                    relu: false,
                };
                let mut got_sub = vec![0.0f32; sub * n];
                qgemm_requant_prepacked_into(
                    &awide[kp..],
                    &panels,
                    &mut got_sub,
                    sub,
                    k,
                    n,
                    &rq_sub,
                );
                assert_eq!(got_sub, want[n..], "rows 1.. of ({m},{k},{n})");
            }
        }
    }

    #[test]
    fn pack_bytes_bound_covers_the_actual_acquisition() {
        assert_eq!(qgemm_pack_bytes(0, 10, 10), 0);
        assert_eq!(qgemm_pack_bytes(10, 0, 10), 0);
        assert_eq!(qgemm_pack_bytes(10, 10, 0), 0);
        for (m, k, n) in [
            (1usize, 1usize, 1usize),
            (37, 300, 17),
            (64, 256, 128),
            (3, 7, 1000),
        ] {
            // The kernel acquires (mp*kp + panels*NR*kp) i16 elements.
            let kp = k + (k & 1);
            let mp = m.div_ceil(4) * 4;
            assert!(
                qgemm_pack_bytes(m, k, n) >= 2 * (mp * kp + n.div_ceil(16) * 16 * kp),
                "({m},{k},{n})"
            );
        }
    }
}
