//! Error type for tensor operations.

use std::fmt;

/// Errors produced by tensor construction and arithmetic.
///
/// Every fallible operation in this crate reports *why* it failed with the
/// concrete shapes/indices involved, so that layer-level code in
/// `edgenn-nn` can surface actionable diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The element count implied by a shape does not match the buffer length.
    LengthMismatch {
        /// Number of elements the shape requires.
        expected: usize,
        /// Number of elements actually provided.
        actual: usize,
    },
    /// Two tensors that must agree in shape do not.
    ShapeMismatch {
        /// Shape of the left-hand operand.
        left: Vec<usize>,
        /// Shape of the right-hand operand.
        right: Vec<usize>,
    },
    /// Matrix multiply inner dimensions disagree.
    MatmulDimMismatch {
        /// `(rows, cols)` of the left matrix.
        left: (usize, usize),
        /// `(rows, cols)` of the right matrix.
        right: (usize, usize),
    },
    /// A tensor had the wrong rank for the requested operation.
    RankMismatch {
        /// Rank the operation requires.
        expected: usize,
        /// Rank of the tensor supplied.
        actual: usize,
    },
    /// An index or range fell outside a dimension.
    OutOfBounds {
        /// The dimension (axis) being indexed.
        axis: usize,
        /// The offending index (for ranges, the exclusive end).
        index: usize,
        /// The size of that axis.
        size: usize,
    },
    /// A range was empty or inverted (`start >= end`).
    EmptyRange {
        /// Range start (inclusive).
        start: usize,
        /// Range end (exclusive).
        end: usize,
    },
    /// A reshape changed the number of elements.
    ReshapeMismatch {
        /// Element count before reshape.
        from: usize,
        /// Element count the new shape implies.
        to: usize,
    },
    /// Convolution geometry is invalid (e.g. kernel larger than padded input).
    InvalidConvGeometry {
        /// Human-readable description of the inconsistency.
        reason: String,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::LengthMismatch { expected, actual } => write!(
                f,
                "buffer length {actual} does not match shape element count {expected}"
            ),
            Self::ShapeMismatch { left, right } => {
                write!(f, "shape mismatch: {left:?} vs {right:?}")
            }
            Self::MatmulDimMismatch { left, right } => write!(
                f,
                "matmul dimension mismatch: {}x{} * {}x{}",
                left.0, left.1, right.0, right.1
            ),
            Self::RankMismatch { expected, actual } => {
                write!(f, "expected rank {expected}, got rank {actual}")
            }
            Self::OutOfBounds { axis, index, size } => {
                write!(
                    f,
                    "index {index} out of bounds for axis {axis} of size {size}"
                )
            }
            Self::EmptyRange { start, end } => {
                write!(f, "empty or inverted range {start}..{end}")
            }
            Self::ReshapeMismatch { from, to } => {
                write!(f, "reshape would change element count from {from} to {to}")
            }
            Self::InvalidConvGeometry { reason } => {
                write!(f, "invalid convolution geometry: {reason}")
            }
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let cases: Vec<(TensorError, &str)> = vec![
            (
                TensorError::LengthMismatch {
                    expected: 4,
                    actual: 3,
                },
                "buffer length 3 does not match shape element count 4",
            ),
            (
                TensorError::ShapeMismatch {
                    left: vec![2],
                    right: vec![3],
                },
                "shape mismatch: [2] vs [3]",
            ),
            (
                TensorError::MatmulDimMismatch {
                    left: (2, 3),
                    right: (4, 5),
                },
                "matmul dimension mismatch: 2x3 * 4x5",
            ),
            (
                TensorError::RankMismatch {
                    expected: 3,
                    actual: 1,
                },
                "expected rank 3, got rank 1",
            ),
            (
                TensorError::OutOfBounds {
                    axis: 0,
                    index: 9,
                    size: 4,
                },
                "index 9 out of bounds for axis 0 of size 4",
            ),
            (
                TensorError::EmptyRange { start: 3, end: 3 },
                "empty or inverted range 3..3",
            ),
            (
                TensorError::ReshapeMismatch { from: 6, to: 8 },
                "reshape would change element count from 6 to 8",
            ),
        ];
        for (err, expected) in cases {
            assert_eq!(err.to_string(), expected);
        }
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        assert_err(&TensorError::EmptyRange { start: 1, end: 1 });
    }
}
