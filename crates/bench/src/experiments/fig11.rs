//! Figure 11: per-layer execution time of AlexNet with hybrid execution.
//!
//! Paper headline: hybrid execution improves AlexNet's fully-connected
//! layers by 31.71% on average without zero-copy and 53.80% with
//! zero-copy, while the (large) convolutional layers gain nothing — only
//! the GPU can run them at full speed.

use edgenn_core::prelude::*;
use edgenn_core::runtime::Runtime;
use edgenn_core::tuner::Tuner;
use edgenn_core::Result;

use crate::experiments::Lab;
use crate::report::{Comparison, ExperimentReport};

/// Per-layer attributable time (kernel + memory management charged to it).
fn layer_cost(l: &edgenn_core::metrics::LayerTiming) -> f64 {
    l.kernel_us + l.memory_us
}

/// Average percentage improvement of `new` over `old` for layers of one
/// class.
fn class_improvement(
    old: &edgenn_core::metrics::InferenceReport,
    new: &edgenn_core::metrics::InferenceReport,
    tag: &str,
) -> f64 {
    let mut gains = Vec::new();
    for (o, n) in old.layers.iter().zip(new.layers.iter()) {
        if o.class_tag == tag {
            gains.push((layer_cost(o) - layer_cost(n)) / layer_cost(o).max(1e-9) * 100.0);
        }
    }
    gains.iter().sum::<f64>() / gains.len().max(1) as f64
}

/// Runs the Figure 11 experiment.
///
/// # Errors
/// Propagates simulation failures.
pub fn fig11_alexnet_hybrid_layers(lab: &Lab) -> Result<ExperimentReport> {
    let graph = lab.model(ModelKind::AlexNet);
    let runtime = Runtime::new(&lab.jetson);
    let tuner = Tuner::new(&graph, &runtime)?;

    // Without zero-copy: explicit baseline vs explicit hybrid.
    let explicit_base = runtime.simulate(
        &graph,
        &tuner.plan(&graph, &runtime, ExecutionConfig::baseline_gpu())?,
    )?;
    let explicit_hybrid = runtime.simulate(
        &graph,
        &tuner.plan(&graph, &runtime, ExecutionConfig::hybrid_only())?,
    )?;
    // With zero-copy: memory-only vs full EdgeNN (isolates hybrid's gain
    // under the semantic-aware memory policy).
    let zc_base = runtime.simulate(
        &graph,
        &tuner.plan(&graph, &runtime, ExecutionConfig::memory_only())?,
    )?;
    let zc_hybrid = runtime.simulate(
        &graph,
        &tuner.plan(&graph, &runtime, ExecutionConfig::edgenn())?,
    )?;

    let mut rows = Vec::new();
    for i in 0..explicit_base.layers.len() {
        let name = explicit_base.layers[i].name.clone();
        rows.push((
            name,
            vec![
                layer_cost(&explicit_base.layers[i]),
                layer_cost(&explicit_hybrid.layers[i]),
                layer_cost(&zc_base.layers[i]),
                layer_cost(&zc_hybrid.layers[i]),
            ],
        ));
    }

    Ok(ExperimentReport {
        id: "Figure 11".to_string(),
        title: "AlexNet per-layer time under hybrid execution (us)".to_string(),
        columns: vec![
            "gpu-only (explicit)".to_string(),
            "hybrid (explicit)".to_string(),
            "gpu-only (zero-copy)".to_string(),
            "hybrid (zero-copy)".to_string(),
        ],
        rows,
        comparisons: vec![
            Comparison::new(
                "fc improvement without zero-copy (avg %)",
                31.71,
                class_improvement(&explicit_base, &explicit_hybrid, "fc"),
            ),
            Comparison::new(
                "fc improvement with zero-copy (avg %)",
                53.80,
                class_improvement(&zc_base, &zc_hybrid, "fc"),
            ),
            Comparison::new(
                "conv improvement with zero-copy (avg %)",
                0.0,
                class_improvement(&zc_base, &zc_hybrid, "conv"),
            ),
        ],
        notes: vec![
            "Shape targets: fc layers gain substantially from co-running (more with \
             zero-copy than without); the large AlexNet convolutions gain ~nothing."
                .to_string(),
        ],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure11_shape_holds() {
        let lab = Lab::new();
        let report = fig11_alexnet_hybrid_layers(&lab).unwrap();
        let fc_no_zc = report.comparisons[0].measured;
        let fc_zc = report.comparisons[1].measured;
        let conv_zc = report.comparisons[2].measured;
        assert!(
            fc_no_zc > 10.0,
            "fc layers must gain from hybrid execution, got {fc_no_zc}%"
        );
        assert!(
            fc_zc > 15.0,
            "fc layers must gain with zero-copy, got {fc_zc}%"
        );
        assert!(
            conv_zc.abs() < 25.0,
            "AlexNet convolution gains should stay modest, got {conv_zc}%"
        );
        assert!(fc_zc > conv_zc, "fc gains must dwarf conv gains");
    }
}
