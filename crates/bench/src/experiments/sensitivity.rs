//! Sensitivity analysis: how robust are the reproduction's headline
//! conclusions to the calibrated constants?
//!
//! Every `calibrated:` constant in `edgenn-sim::platforms` is a modelling
//! choice, not a measurement. This harness perturbs the most influential
//! ones (zero-copy penalty, co-run contention, copy bandwidth, GPU conv
//! efficiency, CPU launch overhead) across wide ranges and re-checks the
//! paper's central claim — EdgeNN beats direct GPU execution on every
//! network — plus two secondary shapes.

use edgenn_core::metrics::arithmetic_mean;
use edgenn_core::prelude::*;
use edgenn_core::Result;
use edgenn_sim::Platform;

use crate::experiments::Lab;
use crate::report::{Comparison, ExperimentReport};

/// One perturbation of the calibrated platform.
struct Variant {
    label: String,
    platform: Platform,
}

fn variants(base: &Platform) -> Vec<Variant> {
    let mut out = vec![Variant {
        label: "calibrated".to_string(),
        platform: base.clone(),
    }];
    for factor in [0.5, 2.0] {
        let mut p = base.clone();
        p.memory.managed_bw_factor = (1.0 - (1.0 - p.memory.managed_bw_factor) * factor).max(0.3);
        out.push(Variant {
            label: format!("zero-copy penalty x{factor}"),
            platform: p,
        });

        let mut p = base.clone();
        p.memory.corun_contention_factor =
            (1.0 - (1.0 - p.memory.corun_contention_factor) * factor).clamp(0.3, 1.0);
        out.push(Variant {
            label: format!("co-run contention x{factor}"),
            platform: p,
        });

        let mut p = base.clone();
        p.memory.copy_bw_gbps *= factor;
        out.push(Variant {
            label: format!("copy bandwidth x{factor}"),
            platform: p,
        });

        let mut p = base.clone();
        if let Some(gpu) = p.gpu.as_mut() {
            gpu.efficiency.conv *= factor;
        }
        out.push(Variant {
            label: format!("GPU conv efficiency x{factor}"),
            platform: p,
        });

        let mut p = base.clone();
        p.cpu.launch_overhead_us *= factor;
        out.push(Variant {
            label: format!("CPU fork-join overhead x{factor}"),
            platform: p,
        });
    }
    out
}

/// Runs the sensitivity sweep.
///
/// # Errors
/// Propagates simulation failures.
pub fn sensitivity_sweep(lab: &Lab) -> Result<ExperimentReport> {
    let graphs: Vec<_> = ModelKind::ALL.iter().map(|&k| lab.model(k)).collect();
    let mut rows = Vec::new();
    let mut all_hold = true;

    for variant in variants(&lab.jetson) {
        let mut gains = Vec::new();
        let mut worst = f64::INFINITY;
        for graph in &graphs {
            let baseline = GpuOnly::new(&variant.platform).infer(graph)?;
            let edgenn = EdgeNn::new(&variant.platform).infer(graph)?;
            let gain = edgenn.improvement_over(&baseline) * 100.0;
            worst = worst.min(gain);
            gains.push(gain);
        }
        let avg = arithmetic_mean(&gains);
        let holds = worst > -0.5;
        all_hold &= holds;
        rows.push((
            variant.label,
            vec![avg, worst, if holds { 1.0 } else { 0.0 }],
        ));
    }

    Ok(ExperimentReport {
        id: "Sensitivity".to_string(),
        title: "robustness of 'EdgeNN beats the GPU baseline' to calibration constants".to_string(),
        columns: vec![
            "avg improvement %".to_string(),
            "worst-model improvement %".to_string(),
            "claim holds (1/0)".to_string(),
        ],
        rows,
        comparisons: vec![Comparison::new(
            "perturbations preserving the claim (of 11)",
            11.0,
            if all_hold { 11.0 } else { 0.0 },
        )],
        notes: vec![
            "Each calibrated constant is halved and doubled independently; the headline \
             conclusion must not depend on any single constant's exact value."
                .to_string(),
        ],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headline_claim_is_calibration_robust() {
        let lab = Lab::new();
        let report = sensitivity_sweep(&lab).unwrap();
        for (label, values) in &report.rows {
            assert!(
                values[2] == 1.0,
                "claim broke under '{label}': worst-model improvement {}%",
                values[1]
            );
            assert!(
                values[0] > 3.0,
                "'{label}': average improvement collapsed to {}%",
                values[0]
            );
        }
    }
}
