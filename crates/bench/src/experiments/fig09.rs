//! Figure 9: time proportion of CPU-GPU memory copies (without zero-copy)
//! on the integrated edge device vs the discrete GPU architecture.
//!
//! Paper headline: 11.46% average on the integrated device, 23.34% on the
//! discrete architecture — and all of it avoidable with EdgeNN.

use edgenn_core::metrics::arithmetic_mean;
use edgenn_core::prelude::*;
use edgenn_core::Result;

use crate::experiments::Lab;
use crate::report::{Comparison, ExperimentReport};

/// Runs the Figure 9 experiment.
///
/// # Errors
/// Propagates simulation failures.
pub fn fig09_copy_proportion(lab: &Lab) -> Result<ExperimentReport> {
    let mut rows = Vec::new();
    let mut integrated = Vec::new();
    let mut discrete = Vec::new();

    for kind in ModelKind::ALL {
        let graph = lab.model(kind);
        let on_jetson = GpuOnly::new(&lab.jetson).infer(&graph)?;
        let on_server = GpuOnly::new(&lab.server).infer(&graph)?;
        let p_int = on_jetson.copy_proportion_clamped() * 100.0;
        let p_dis = on_server.copy_proportion_clamped() * 100.0;
        integrated.push(p_int);
        discrete.push(p_dis);
        rows.push((kind.name().to_string(), vec![p_int, p_dis]));
    }

    Ok(ExperimentReport {
        id: "Figure 9".to_string(),
        title: "copy-time proportion under explicit memory (%)".to_string(),
        columns: vec![
            "integrated architecture".to_string(),
            "discrete architecture".to_string(),
        ],
        rows,
        comparisons: vec![
            Comparison::new("integrated avg %", 11.46, arithmetic_mean(&integrated)),
            Comparison::new("discrete avg %", 23.34, arithmetic_mean(&discrete)),
        ],
        notes: vec![
            "Shape targets: the discrete architecture's copy proportion exceeds the \
             integrated one (PCIe transfers + faster compute shrink the denominator)."
                .to_string(),
        ],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure9_shape_holds() {
        let lab = Lab::new();
        let report = fig09_copy_proportion(&lab).unwrap();
        let int_avg = report.comparisons[0].measured;
        let dis_avg = report.comparisons[1].measured;
        assert!(
            int_avg > 1.0,
            "integrated copies must be visible, got {int_avg}%"
        );
        assert!(
            dis_avg > int_avg,
            "discrete proportion ({dis_avg}%) must exceed integrated ({int_avg}%)"
        );
        for (model, values) in &report.rows {
            assert!(
                values[1] > values[0] * 0.8,
                "{model}: discrete should not be far below"
            );
        }
    }
}
