//! Figure 6: performance speedups of EdgeNN on the integrated device over
//! inference on three edge CPUs (Jetson's own CPU, the Dimensity 8100
//! phone CPU, the Raspberry Pi 4).
//!
//! Paper headline: average speedups of 3.97x, 3.12x and 8.80x.

use edgenn_core::metrics::arithmetic_mean;
use edgenn_core::prelude::*;
use edgenn_core::Result;

use crate::experiments::Lab;
use crate::report::{Comparison, ExperimentReport};

/// Runs the Figure 6 experiment.
///
/// # Errors
/// Propagates simulation failures.
pub fn fig06_edge_cpu_speedups(lab: &Lab) -> Result<ExperimentReport> {
    let mut rows = Vec::new();
    let mut jetson_speedups = Vec::new();
    let mut phone_speedups = Vec::new();
    let mut rpi_speedups = Vec::new();

    for kind in ModelKind::ALL {
        let graph = lab.model(kind);
        let edgenn = lab.edgenn(&graph)?;
        let jetson_cpu = lab.cpu_only(&lab.jetson, &graph)?;
        let phone_cpu = lab.cpu_only(&lab.phone, &graph)?;
        let rpi_cpu = lab.cpu_only(&lab.rpi, &graph)?;

        let s_jetson = edgenn.speedup_over(&jetson_cpu);
        let s_phone = edgenn.speedup_over(&phone_cpu);
        let s_rpi = edgenn.speedup_over(&rpi_cpu);
        jetson_speedups.push(s_jetson);
        phone_speedups.push(s_phone);
        rpi_speedups.push(s_rpi);
        rows.push((kind.name().to_string(), vec![s_jetson, s_phone, s_rpi]));
    }

    Ok(ExperimentReport {
        id: "Figure 6".to_string(),
        title: "EdgeNN speedup over edge CPUs".to_string(),
        columns: vec![
            "vs Jetson CPU".to_string(),
            "vs phone CPU".to_string(),
            "vs Raspberry Pi".to_string(),
        ],
        rows,
        comparisons: vec![
            Comparison::new(
                "avg speedup vs Jetson CPU",
                3.97,
                arithmetic_mean(&jetson_speedups),
            ),
            Comparison::new(
                "avg speedup vs phone CPU",
                3.12,
                arithmetic_mean(&phone_speedups),
            ),
            Comparison::new(
                "avg speedup vs Raspberry Pi",
                8.80,
                arithmetic_mean(&rpi_speedups),
            ),
        ],
        notes: vec![
            "Shape targets: every speedup > 1; the phone CPU is the fastest edge CPU \
             (smallest speedup) and the Raspberry Pi by far the slowest (largest speedup)."
                .to_string(),
        ],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure6_shape_holds() {
        let lab = Lab::new();
        let report = fig06_edge_cpu_speedups(&lab).unwrap();
        // EdgeNN beats the Jetson CPU and the Raspberry Pi on every
        // model. Against the 2022-era phone CPU one exception is
        // tolerated: the launch-bound LeNet, where a four-year-newer
        // mobile core wins in our model (documented in EXPERIMENTS.md).
        for (model, values) in &report.rows {
            assert!(values[0] > 1.0, "{model}: vs Jetson CPU {}", values[0]);
            assert!(values[2] > 1.0, "{model}: vs RPi {}", values[2]);
            if model != "LeNet" {
                assert!(values[1] > 1.0, "{model}: vs phone CPU {}", values[1]);
            }
        }
        // Ordering: phone < jetson-cpu < rpi on average.
        let avg = |i: usize| report.comparisons[i].measured;
        assert!(avg(1) < avg(0), "phone CPU should be the fastest edge CPU");
        assert!(
            avg(2) > avg(0),
            "Raspberry Pi should be the slowest edge CPU"
        );
        // Factors within ~2.5x of the paper's averages.
        for c in &report.comparisons {
            let ratio = c.ratio().unwrap();
            assert!(
                (0.4..2.5).contains(&ratio),
                "{}: measured {} vs paper {:?}",
                c.metric,
                c.measured,
                c.paper
            );
        }
    }
}
