//! Fusion ablation: ReLU fusion (an optimization beyond the paper) on top
//! of EdgeNN. Launch overheads are a first-order cost on the integrated
//! GPU, so folding activations into their producers pays most on the
//! launch-bound networks (LeNet) and least on the compute-bound ones
//! (VGG).

use edgenn_core::prelude::*;
use edgenn_core::runtime::Runtime;
use edgenn_core::Result;
use edgenn_nn::graph::fuse_relu;

use crate::experiments::Lab;
use crate::report::{Comparison, ExperimentReport};

/// Runs the fusion ablation.
///
/// # Errors
/// Propagates simulation failures.
pub fn ablation_fusion(lab: &Lab) -> Result<ExperimentReport> {
    let runtime = Runtime::new(&lab.jetson);
    let mut rows = Vec::new();
    let mut lenet_gain = 0.0;
    let mut vgg_gain = 0.0;

    for kind in ModelKind::ALL {
        let graph = lab.model(kind);
        let fused = fuse_relu(&graph)?;

        let run = |g: &edgenn_nn::graph::Graph| -> Result<f64> {
            let tuner = Tuner::new(g, &runtime)?;
            let plan = tuner.plan(g, &runtime, ExecutionConfig::edgenn())?;
            Ok(runtime.simulate(g, &plan)?.total_us)
        };
        let unfused_us = run(&graph)?;
        let fused_us = run(&fused)?;
        let gain = (unfused_us - fused_us) / unfused_us * 100.0;
        if kind == ModelKind::LeNet {
            lenet_gain = gain;
        }
        if kind == ModelKind::Vgg16 {
            vgg_gain = gain;
        }
        rows.push((
            kind.name().to_string(),
            vec![
                unfused_us / 1e3,
                fused_us / 1e3,
                gain,
                (graph.len() - fused.len()) as f64,
            ],
        ));
    }

    Ok(ExperimentReport {
        id: "Ablation E".to_string(),
        title: "ReLU fusion on top of EdgeNN (reproduction extension)".to_string(),
        columns: vec![
            "unfused (ms)".to_string(),
            "fused (ms)".to_string(),
            "gain (%)".to_string(),
            "ReLUs fused".to_string(),
        ],
        rows,
        comparisons: vec![
            Comparison::measured_only("LeNet gain from fusion (%)", lenet_gain),
            Comparison::measured_only("VGG gain from fusion (%)", vgg_gain),
        ],
        notes: vec![
            "Launch-bound networks gain the most; fused layers remain splittable by \
             output channels, so hybrid execution composes with fusion."
                .to_string(),
        ],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fusion_never_hurts_and_helps_launch_bound_nets_most() {
        let lab = Lab::new();
        let report = ablation_fusion(&lab).unwrap();
        for (model, values) in &report.rows {
            // Fusing changes the tuner's per-node cost profile, so plans
            // can shift by a fraction of a percent in either direction on
            // branch-heavy networks; beyond that, fusion must not hurt.
            assert!(
                values[2] > -1.0,
                "{model}: fusion must not hurt ({}%)",
                values[2]
            );
            assert!(values[3] > 0.0, "{model}: some ReLUs must fuse");
        }
        let lenet = report.comparisons[0].measured;
        let vgg = report.comparisons[1].measured;
        assert!(
            lenet > vgg,
            "the launch-bound LeNet ({lenet}%) must gain more than VGG ({vgg}%)"
        );
    }
}
