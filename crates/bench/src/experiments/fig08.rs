//! Figure 8: improvement breakdown on the integrated device, relative to
//! direct GPU execution of the original programs.
//!
//! Paper headlines: semantic-aware memory management alone improves
//! 2.97% (FCNN) to 17.50% (LeNet), average 9.93%; CPU-GPU hybrid
//! execution alone improves 5.15% (SqueezeNet) to 19.53% (AlexNet),
//! average 10.76%; full EdgeNN improves 16.29% (VGG) to 27.22% (AlexNet),
//! average 22.02%.

use edgenn_core::metrics::arithmetic_mean;
use edgenn_core::prelude::*;
use edgenn_core::Result;

use crate::experiments::Lab;
use crate::report::{Comparison, ExperimentReport};

/// Runs the Figure 8 ablation.
///
/// # Errors
/// Propagates simulation failures.
pub fn fig08_ablation(lab: &Lab) -> Result<ExperimentReport> {
    let mut rows = Vec::new();
    let mut mem_gains = Vec::new();
    let mut hybrid_gains = Vec::new();
    let mut full_gains = Vec::new();

    for kind in ModelKind::ALL {
        let graph = lab.model(kind);
        let baseline = lab.gpu_baseline(&graph)?;
        let memory_only =
            EdgeNn::with_config(&lab.jetson, ExecutionConfig::memory_only()).infer(&graph)?;
        let hybrid_only =
            EdgeNn::with_config(&lab.jetson, ExecutionConfig::hybrid_only()).infer(&graph)?;
        let full = lab.edgenn(&graph)?;

        let mem = memory_only.improvement_over(&baseline) * 100.0;
        let hybrid = hybrid_only.improvement_over(&baseline) * 100.0;
        let edgenn = full.improvement_over(&baseline) * 100.0;
        mem_gains.push(mem);
        hybrid_gains.push(hybrid);
        full_gains.push(edgenn);
        rows.push((kind.name().to_string(), vec![mem, hybrid, edgenn]));
    }

    let find = |k: ModelKind, v: &[f64]| v[ModelKind::ALL.iter().position(|m| *m == k).unwrap()];

    Ok(ExperimentReport {
        id: "Figure 8".to_string(),
        title: "improvement over direct GPU execution (%), ablated by design".to_string(),
        columns: vec![
            "memory mgmt only".to_string(),
            "hybrid execution only".to_string(),
            "EdgeNN (both)".to_string(),
        ],
        rows,
        comparisons: vec![
            Comparison::new(
                "memory mgmt avg improvement %",
                9.93,
                arithmetic_mean(&mem_gains),
            ),
            Comparison::new(
                "memory mgmt min (FCNN) %",
                2.97,
                find(ModelKind::Fcnn, &mem_gains),
            ),
            Comparison::new(
                "memory mgmt max (LeNet) %",
                17.50,
                find(ModelKind::LeNet, &mem_gains),
            ),
            Comparison::new(
                "hybrid avg improvement %",
                10.76,
                arithmetic_mean(&hybrid_gains),
            ),
            Comparison::new(
                "hybrid max (AlexNet) %",
                19.53,
                find(ModelKind::AlexNet, &hybrid_gains),
            ),
            Comparison::new(
                "EdgeNN avg improvement %",
                22.02,
                arithmetic_mean(&full_gains),
            ),
            Comparison::new(
                "EdgeNN min (VGG) %",
                16.29,
                find(ModelKind::Vgg16, &full_gains),
            ),
            Comparison::new(
                "EdgeNN max (AlexNet) %",
                27.22,
                find(ModelKind::AlexNet, &full_gains),
            ),
        ],
        notes: vec![
            "Shape targets: every cell positive; EdgeNN >= each single design per model; \
             FCNN gets little from memory management but more from hybrid execution, \
             SqueezeNet the opposite (paper Section V-C1)."
                .to_string(),
        ],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure8_shape_holds() {
        let lab = Lab::new();
        let report = fig08_ablation(&lab).unwrap();
        for (model, values) in &report.rows {
            let (mem, hybrid, full) = (values[0], values[1], values[2]);
            assert!(mem > 0.0, "{model}: memory-only improvement {mem}");
            assert!(hybrid >= 0.0, "{model}: hybrid-only improvement {hybrid}");
            assert!(full > 0.0, "{model}: EdgeNN improvement {full}");
            assert!(
                full + 1.0 >= mem.max(hybrid),
                "{model}: EdgeNN ({full}) should not trail a single design ({mem}/{hybrid})"
            );
        }
        // Averages in the paper's neighbourhood.
        let avg_full = report.comparisons[5].measured;
        assert!(
            (8.0..45.0).contains(&avg_full),
            "EdgeNN avg improvement {avg_full}%"
        );
    }
}
