//! Section VI generality: "there are a bunch of hybrid platforms, and the
//! idea behind EdgeNN is applicable to similar platforms, such as AMD's
//! APU and Apple Silicon."
//!
//! The paper asserts this without measurements; this experiment runs the
//! full pipeline on calibrated models of both platforms and checks that
//! EdgeNN's improvement over direct GPU execution carries over.

use edgenn_core::metrics::arithmetic_mean;
use edgenn_core::prelude::*;
use edgenn_core::Result;
use edgenn_sim::platforms;

use crate::experiments::Lab;
use crate::report::{Comparison, ExperimentReport};

/// Runs the Section VI generality experiment.
///
/// # Errors
/// Propagates simulation failures.
pub fn sec6_platform_generality(lab: &Lab) -> Result<ExperimentReport> {
    let targets = [
        lab.jetson.clone(),
        platforms::amd_embedded_apu(),
        platforms::apple_silicon_m1(),
    ];
    let mut rows = Vec::new();
    let mut per_platform_avgs = Vec::new();

    for platform in &targets {
        let mut gains = Vec::new();
        for kind in ModelKind::ALL {
            let graph = lab.model(kind);
            let baseline = GpuOnly::new(platform).infer(&graph)?;
            let edgenn = EdgeNn::new(platform).infer(&graph)?;
            gains.push(edgenn.improvement_over(&baseline) * 100.0);
        }
        let avg = arithmetic_mean(&gains);
        per_platform_avgs.push(avg);
        let mut values = gains;
        values.push(avg);
        rows.push((platform.name.clone(), values));
    }

    let mut columns: Vec<String> = ModelKind::ALL
        .iter()
        .map(|k| k.name().to_string())
        .collect();
    columns.push("avg".to_string());

    Ok(ExperimentReport {
        id: "Section VI".to_string(),
        title: "EdgeNN improvement over direct GPU execution across hybrid platforms (%)"
            .to_string(),
        columns,
        rows,
        comparisons: vec![
            Comparison::new("Jetson avg improvement %", 22.02, per_platform_avgs[0]),
            Comparison::measured_only("AMD APU avg improvement %", per_platform_avgs[1]),
            Comparison::measured_only("Apple Silicon avg improvement %", per_platform_avgs[2]),
        ],
        notes: vec![
            "The paper claims transferability without numbers; here all three integrated \
             platforms benefit from the same semantic-aware + hybrid-execution pipeline. \
             The exact gain shifts with each SoC's bus contention and zero-copy penalty."
                .to_string(),
        ],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edgenn_generalizes_to_other_integrated_socs() {
        let lab = Lab::new();
        let report = sec6_platform_generality(&lab).unwrap();
        for (platform, values) in &report.rows {
            let avg = *values.last().unwrap();
            assert!(avg > 3.0, "{platform}: average improvement only {avg}%");
            for (model, gain) in ModelKind::ALL.iter().zip(values.iter()) {
                assert!(
                    *gain > -1.0,
                    "{platform}/{model}: EdgeNN must not regress ({gain}%)"
                );
            }
        }
    }
}
