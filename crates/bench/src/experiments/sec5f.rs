//! Section V-F: comparison with the state-of-the-art CPU-GPU hybrid
//! execution approach (FineStream-style), which supports **only
//! inter-kernel** co-running.
//!
//! Paper headline: inter-kernel co-running alone improves SqueezeNet by
//! 8.27% and the other five networks not at all — only SqueezeNet and
//! ResNet have independent branches, and ResNet's shortcut branches are
//! too lopsided to help.

use edgenn_core::prelude::*;
use edgenn_core::Result;

use crate::experiments::Lab;
use crate::report::{Comparison, ExperimentReport};

/// Runs the Section V-F experiment.
///
/// # Errors
/// Propagates simulation failures.
pub fn sec5f_interkernel_only(lab: &Lab) -> Result<ExperimentReport> {
    let mut rows = Vec::new();
    let mut squeezenet_gain = 0.0;
    let mut chain_gains = Vec::new();
    let mut edgenn_gains = Vec::new();

    for kind in ModelKind::ALL {
        let graph = lab.model(kind);
        // The comparator shares the zero-copy memory strategy; the
        // baseline must too, so the delta isolates inter-kernel
        // co-running itself (as in the paper's Section V-F).
        let baseline =
            EdgeNn::with_config(&lab.jetson, ExecutionConfig::memory_only()).infer(&graph)?;
        let inter = InterKernelOnly::new(&lab.jetson).infer(&graph)?;
        let edgenn = lab.edgenn(&graph)?;
        let inter_gain = inter.improvement_over(&baseline) * 100.0;
        let edgenn_gain = edgenn.improvement_over(&baseline) * 100.0;
        if kind == ModelKind::SqueezeNet {
            squeezenet_gain = inter_gain;
        } else if !kind.has_parallel_branches() {
            chain_gains.push(inter_gain);
        }
        edgenn_gains.push(edgenn_gain);
        rows.push((kind.name().to_string(), vec![inter_gain, edgenn_gain]));
    }

    let max_chain_gain = chain_gains.iter().copied().fold(0.0, f64::max);
    Ok(ExperimentReport {
        id: "Section V-F".to_string(),
        title: "inter-kernel-only co-running vs full EdgeNN (improvement %, same baseline)"
            .to_string(),
        columns: vec![
            "inter-kernel only".to_string(),
            "EdgeNN (inter+intra)".to_string(),
        ],
        rows,
        comparisons: vec![
            Comparison::new(
                "SqueezeNet gain from inter-kernel only %",
                8.27,
                squeezenet_gain,
            ),
            Comparison::new("max gain on chain networks %", 0.0, max_chain_gain),
        ],
        notes: vec![
            "Shape targets: inter-kernel co-running can only exploit independent \
             branches, so chain networks (FCNN/LeNet/AlexNet/VGG) gain ~nothing from \
             it and EdgeNN's intra-kernel splitting is required (paper Section V-F)."
                .to_string(),
        ],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn section5f_shape_holds() {
        let lab = Lab::new();
        let report = sec5f_interkernel_only(&lab).unwrap();
        for (model, values) in &report.rows {
            let (inter, edgenn) = (values[0], values[1]);
            assert!(
                edgenn >= inter - 1.0,
                "{model}: EdgeNN ({edgenn}%) must not lose to inter-kernel only ({inter}%)"
            );
        }
        // SqueezeNet gains more from inter-kernel co-running than any
        // chain network (which should gain ~only the shared memory-policy
        // part, near the comparator's zero-copy benefit).
        let sq = report.comparisons[0].measured;
        assert!(
            sq > 0.0,
            "SqueezeNet must gain from inter-kernel co-running, got {sq}%"
        );
    }
}
