//! Table I: per-layer improvement from CPU-GPU hybrid execution with
//! zero-copy, grouped by layer class, for LeNet, AlexNet and VGG.
//!
//! Paper values (%):
//!
//! |         | LeNet conv | LeNet fc | AlexNet conv | AlexNet fc | VGG conv | VGG fc |
//! |---------|-----------|----------|--------------|------------|----------|--------|
//! | min     | 4.95      | 31.56    | 0            | 48.43      | 0        | 16.07  |
//! | max     | 36.25     | 41.24    | 0            | 58.32      | 19.15    | 43.09  |
//! | average | 20.60     | 36.40    | 0            | 53.81      | 4.12     | 31.43  |

use edgenn_core::prelude::*;
use edgenn_core::runtime::Runtime;
use edgenn_core::tuner::Tuner;
use edgenn_core::Result;

use crate::experiments::Lab;
use crate::report::{Comparison, ExperimentReport};

/// Min/max/avg improvement of one layer class in one network.
#[derive(Debug, Clone, Copy)]
struct ClassStats {
    min: f64,
    max: f64,
    avg: f64,
}

fn class_stats(
    base: &edgenn_core::metrics::InferenceReport,
    hybrid: &edgenn_core::metrics::InferenceReport,
    tag: &str,
) -> ClassStats {
    let mut gains = Vec::new();
    for (o, n) in base.layers.iter().zip(hybrid.layers.iter()) {
        if o.class_tag == tag {
            let old = o.kernel_us + o.memory_us;
            let new = n.kernel_us + n.memory_us;
            gains.push(((old - new) / old.max(1e-9) * 100.0).max(0.0));
        }
    }
    if gains.is_empty() {
        return ClassStats {
            min: 0.0,
            max: 0.0,
            avg: 0.0,
        };
    }
    ClassStats {
        min: gains.iter().copied().fold(f64::INFINITY, f64::min),
        max: gains.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        avg: gains.iter().sum::<f64>() / gains.len() as f64,
    }
}

/// Runs the Table I experiment.
///
/// # Errors
/// Propagates simulation failures.
pub fn tab1_hybrid_layer_improvement(lab: &Lab) -> Result<ExperimentReport> {
    // (model, paper conv min/max/avg, paper fc min/max/avg)
    let cases = [
        (
            ModelKind::LeNet,
            [4.95, 36.25, 20.60],
            [31.56, 41.24, 36.40],
        ),
        (ModelKind::AlexNet, [0.0, 0.0, 0.0], [48.43, 58.32, 53.81]),
        (ModelKind::Vgg16, [0.0, 19.15, 4.12], [16.07, 43.09, 31.43]),
    ];
    let runtime = Runtime::new(&lab.jetson);
    let mut rows = Vec::new();
    let mut comparisons = Vec::new();

    for (kind, paper_conv, paper_fc) in cases {
        let graph = lab.model(kind);
        let tuner = Tuner::new(&graph, &runtime)?;
        // Isolate hybrid execution under zero-copy: memory-only vs EdgeNN.
        let base = runtime.simulate(
            &graph,
            &tuner.plan(&graph, &runtime, ExecutionConfig::memory_only())?,
        )?;
        let hybrid = runtime.simulate(
            &graph,
            &tuner.plan(&graph, &runtime, ExecutionConfig::edgenn())?,
        )?;
        let conv = class_stats(&base, &hybrid, "conv");
        let fc = class_stats(&base, &hybrid, "fc");
        rows.push((
            format!("{} conv", kind.name()),
            vec![conv.min, conv.max, conv.avg],
        ));
        rows.push((format!("{} fc", kind.name()), vec![fc.min, fc.max, fc.avg]));
        comparisons.push(Comparison::new(
            format!("{} conv avg %", kind.name()),
            paper_conv[2],
            conv.avg,
        ));
        comparisons.push(Comparison::new(
            format!("{} fc avg %", kind.name()),
            paper_fc[2],
            fc.avg,
        ));
        comparisons.push(Comparison::new(
            format!("{} fc max %", kind.name()),
            paper_fc[1],
            fc.max,
        ));
    }

    Ok(ExperimentReport {
        id: "Table I".to_string(),
        title: "hybrid-execution improvement with zero-copy, by layer class (%)".to_string(),
        columns: vec!["min".to_string(), "max".to_string(), "avg".to_string()],
        rows,
        comparisons,
        notes: vec![
            "Shape targets: fc layers improve strongly everywhere; AlexNet's large \
             convolutions improve ~0; LeNet's small convolutions improve meaningfully \
             (the GPU is under-occupied on them); VGG sits between."
                .to_string(),
        ],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_shape_holds() {
        let lab = Lab::new();
        let report = tab1_hybrid_layer_improvement(&lab).unwrap();
        let get = |label: &str| {
            report
                .rows
                .iter()
                .find(|(l, _)| l == label)
                .map_or_else(|| panic!("missing row {label}"), |(_, v)| v.clone())
        };
        let lenet_conv = get("LeNet conv");
        let alexnet_conv = get("AlexNet conv");
        let alexnet_fc = get("AlexNet fc");
        let vgg_conv = get("VGG conv");
        let vgg_fc = get("VGG fc");

        // fc layers benefit strongly.
        assert!(alexnet_fc[2] > 20.0, "AlexNet fc avg {}", alexnet_fc[2]);
        assert!(vgg_fc[2] > 10.0, "VGG fc avg {}", vgg_fc[2]);
        // AlexNet's big convolutions gain far less than its fc layers
        // (the paper reports exactly 0; see EXPERIMENTS.md for why our
        // model retains a modest gain).
        assert!(
            alexnet_conv[2] < 25.0,
            "AlexNet conv avg {}",
            alexnet_conv[2]
        );
        assert!(
            alexnet_fc[2] > 1.5 * alexnet_conv[2],
            "fc gains ({}) must dwarf conv gains ({})",
            alexnet_fc[2],
            alexnet_conv[2]
        );
        // LeNet's small convolutions beat AlexNet's large ones.
        assert!(
            lenet_conv[2] > alexnet_conv[2],
            "LeNet conv ({}) should out-gain AlexNet conv ({})",
            lenet_conv[2],
            alexnet_conv[2]
        );
        // VGG conv average stays small even if some layers improve.
        assert!(vgg_conv[2] < 25.0, "VGG conv avg {}", vgg_conv[2]);
    }
}
