//! One module per paper experiment, each producing an
//! `ExperimentReport` (see [`crate::report`]).

mod ablations;
mod fig06;
mod fig07;
mod fig08;
mod fig09;
mod fig10;
mod fig11;
mod fig12;
mod fig13;
mod fusion;
mod pipeline_exp;
mod power_modes;
mod sec5f;
mod sec6;
mod sensitivity;
mod tab1;

pub use ablations::{
    ablation_hybrid_modes, ablation_memory_policy, ablation_popt_sweep, ablation_tuner_convergence,
};
pub use fig06::fig06_edge_cpu_speedups;
pub use fig07::fig07_power_price_edge;
pub use fig08::fig08_ablation;
pub use fig09::fig09_copy_proportion;
pub use fig10::fig10_alexnet_zerocopy_layers;
pub use fig11::fig11_alexnet_hybrid_layers;
pub use fig12::fig12_cloud;
pub use fig13::fig13_power_price_discrete;
pub use fusion::ablation_fusion;
pub use pipeline_exp::pipeline_throughput;
pub use power_modes::power_mode_sweep;
pub use sec5f::sec5f_interkernel_only;
pub use sec6::sec6_platform_generality;
pub use sensitivity::sensitivity_sweep;
pub use tab1::tab1_hybrid_layer_improvement;

use edgenn_core::prelude::*;
use edgenn_core::Result;
use edgenn_nn::graph::Graph;
use edgenn_sim::{platforms, Platform};

use crate::report::ExperimentReport;

/// Shared experiment context: the four evaluation platforms and the six
/// benchmark networks at paper scale.
pub struct Lab {
    /// The CPU-GPU integrated edge device (EdgeNN's home).
    pub jetson: Platform,
    /// The CPU-only edge device.
    pub rpi: Platform,
    /// The mobile-phone CPU.
    pub phone: Platform,
    /// The discrete-GPU cloud server.
    pub server: Platform,
}

impl Default for Lab {
    fn default() -> Self {
        Self::new()
    }
}

impl Lab {
    /// Builds the paper's evaluation setup.
    pub fn new() -> Self {
        Self {
            jetson: platforms::jetson_agx_xavier(),
            rpi: platforms::raspberry_pi_4(),
            phone: platforms::dimensity_8100(),
            server: platforms::rtx_2080ti_server(),
        }
    }

    /// A benchmark network at paper scale.
    pub fn model(&self, kind: ModelKind) -> Graph {
        build(kind, ModelScale::Paper)
    }

    /// EdgeNN on the integrated device.
    pub fn edgenn(&self, graph: &Graph) -> Result<InferenceReport> {
        EdgeNn::new(&self.jetson).infer(graph)
    }

    /// The GPU-only (original programs) baseline on the integrated device.
    pub fn gpu_baseline(&self, graph: &Graph) -> Result<InferenceReport> {
        GpuOnly::new(&self.jetson).infer(graph)
    }

    /// CPU-only inference on any platform.
    pub fn cpu_only(&self, platform: &Platform, graph: &Graph) -> Result<InferenceReport> {
        CpuOnly::new(platform).infer(graph)
    }

    /// Runs every experiment, in paper order.
    ///
    /// # Errors
    /// Propagates the first experiment failure.
    pub fn run_all(&self) -> Result<Vec<ExperimentReport>> {
        Ok(vec![
            fig06_edge_cpu_speedups(self)?,
            fig07_power_price_edge(self)?,
            fig08_ablation(self)?,
            fig09_copy_proportion(self)?,
            fig10_alexnet_zerocopy_layers(self)?,
            fig11_alexnet_hybrid_layers(self)?,
            tab1_hybrid_layer_improvement(self)?,
            fig12_cloud(self)?,
            fig13_power_price_discrete(self)?,
            sec5f_interkernel_only(self)?,
            sec6_platform_generality(self)?,
            ablation_memory_policy(self)?,
            ablation_hybrid_modes(self)?,
            ablation_popt_sweep(self)?,
            ablation_tuner_convergence(self)?,
            sensitivity_sweep(self)?,
            power_mode_sweep(self)?,
            ablation_fusion(self)?,
            pipeline_throughput(self)?,
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lab_builds_paper_setup() {
        let lab = Lab::new();
        assert!(lab.jetson.is_integrated());
        assert!(!lab.rpi.has_gpu());
        assert!(!lab.phone.has_gpu());
        assert!(lab.server.has_gpu() && !lab.server.is_integrated());
    }

    #[test]
    fn all_experiments_produce_reports() {
        let lab = Lab::new();
        let reports = lab.run_all().unwrap();
        assert_eq!(reports.len(), 19);
        for r in &reports {
            assert!(!r.comparisons.is_empty() || !r.rows.is_empty(), "{}", r.id);
            assert!(!r.render().is_empty());
        }
    }
}
