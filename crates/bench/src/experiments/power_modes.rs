//! Power-mode study: the paper notes the Xavier "provides three power
//! options of 10W, 15W, and 30W" (Section V-A) but evaluates only one.
//! This experiment runs EdgeNN under all three nvpmodel budgets and
//! reports the latency/energy frontier — including whether EdgeNN's
//! improvement over direct GPU execution survives down-clocking.

use edgenn_core::metrics::arithmetic_mean;
use edgenn_core::prelude::*;
use edgenn_core::Result;
use edgenn_sim::platforms::{jetson_agx_xavier_mode, JetsonPowerMode};

use crate::experiments::Lab;
use crate::report::{Comparison, ExperimentReport};

/// Runs the power-mode sweep.
///
/// # Errors
/// Propagates simulation failures.
pub fn power_mode_sweep(_lab: &Lab) -> Result<ExperimentReport> {
    let modes = [
        (JetsonPowerMode::W10, "10W"),
        (JetsonPowerMode::W15, "15W"),
        (JetsonPowerMode::W30, "30W"),
    ];
    let mut rows = Vec::new();
    let mut improvements_by_mode = Vec::new();

    for (mode, label) in modes {
        let platform = jetson_agx_xavier_mode(mode);
        let mut latencies = Vec::new();
        let mut energies = Vec::new();
        let mut gains = Vec::new();
        for kind in ModelKind::ALL {
            let graph = build(kind, ModelScale::Paper);
            let baseline = GpuOnly::new(&platform).infer(&graph)?;
            let edgenn = EdgeNn::new(&platform).infer(&graph)?;
            latencies.push(edgenn.total_us / 1e3);
            energies.push(edgenn.energy.energy_mj);
            gains.push(edgenn.improvement_over(&baseline) * 100.0);
        }
        improvements_by_mode.push(arithmetic_mean(&gains));
        rows.push((
            label.to_string(),
            vec![
                arithmetic_mean(&latencies),
                arithmetic_mean(&energies),
                arithmetic_mean(&gains),
            ],
        ));
    }

    Ok(ExperimentReport {
        id: "Power modes".to_string(),
        title: "EdgeNN across the Xavier's nvpmodel budgets (averages over 6 networks)".to_string(),
        columns: vec![
            "avg latency (ms)".to_string(),
            "avg energy (mJ)".to_string(),
            "avg improvement vs GPU-only (%)".to_string(),
        ],
        rows,
        comparisons: vec![
            Comparison::measured_only("improvement at 10W (%)", improvements_by_mode[0]),
            Comparison::measured_only("improvement at 30W (%)", improvements_by_mode[2]),
        ],
        notes: vec![
            "The paper evaluates the 30 W profile only; this sweep shows the hybrid \
             design keeps paying at the capped budgets — the CPU/GPU speed ratio \
             shifts, and the adaptive tuner re-balances the split."
                .to_string(),
        ],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_modes_form_a_sane_frontier() {
        let lab = Lab::new();
        let report = power_mode_sweep(&lab).unwrap();
        let latency = |i: usize| report.rows[i].1[0];
        // Lower budgets are slower.
        assert!(latency(0) > latency(1));
        assert!(latency(1) > latency(2));
        // EdgeNN keeps beating the baseline at every budget.
        for (mode, values) in &report.rows {
            assert!(values[2] > 0.0, "{mode}: improvement {}%", values[2]);
        }
    }
}
