//! Figure 7: power efficiency and cost-effectiveness of EdgeNN on the
//! integrated device relative to the edge CPU device (Raspberry Pi 4).
//!
//! Paper headline: performance/power ratio geometric mean 29.14;
//! performance/price arithmetic mean 0.94 and geometric mean 0.61 (the
//! Raspberry Pi is more cost-effective). Section V-B2 also reports
//! utilizations: RPi 52% average, Jetson CPU 75% / GPU 62%.

use edgenn_core::metrics::{arithmetic_mean, geometric_mean};
use edgenn_core::prelude::*;
use edgenn_core::Result;
use edgenn_sim::ProcessorKind;

use crate::experiments::Lab;
use crate::report::{Comparison, ExperimentReport};

/// Runs the Figure 7 experiment.
///
/// # Errors
/// Propagates simulation failures.
pub fn fig07_power_price_edge(lab: &Lab) -> Result<ExperimentReport> {
    let mut rows = Vec::new();
    let mut power_ratios = Vec::new();
    let mut price_ratios = Vec::new();
    let mut jetson_cpu_util = Vec::new();
    let mut jetson_gpu_util = Vec::new();
    let mut rpi_util = Vec::new();

    for kind in ModelKind::ALL {
        let graph = lab.model(kind);
        let edgenn = lab.edgenn(&graph)?;
        let rpi = lab.cpu_only(&lab.rpi, &graph)?;

        // Equation (5): performance/power of EdgeNN over the edge CPU.
        let power_ratio = edgenn.perf_per_watt() / rpi.perf_per_watt();
        // Equation (6): performance/price.
        let price_ratio = edgenn.perf_per_price(&lab.jetson) / rpi.perf_per_price(&lab.rpi);
        power_ratios.push(power_ratio);
        price_ratios.push(price_ratio);
        jetson_cpu_util.push(edgenn.utilization(ProcessorKind::Cpu));
        jetson_gpu_util.push(edgenn.utilization(ProcessorKind::Gpu));
        rpi_util.push(rpi.utilization(ProcessorKind::Cpu));
        rows.push((kind.name().to_string(), vec![power_ratio, price_ratio]));
    }

    Ok(ExperimentReport {
        id: "Figure 7".to_string(),
        title: "perf/power and perf/price vs the edge CPU (Raspberry Pi)".to_string(),
        columns: vec![
            "perf/power ratio".to_string(),
            "perf/price ratio".to_string(),
        ],
        rows,
        comparisons: vec![
            Comparison::new(
                "perf/power ratio (geomean)",
                29.14,
                geometric_mean(&power_ratios),
            ),
            Comparison::new(
                "perf/price ratio (arithmetic mean)",
                0.94,
                arithmetic_mean(&price_ratios),
            ),
            Comparison::new(
                "perf/price ratio (geomean)",
                0.61,
                geometric_mean(&price_ratios),
            ),
            Comparison::new(
                "Jetson CPU utilization (avg)",
                0.75,
                arithmetic_mean(&jetson_cpu_util),
            ),
            Comparison::new(
                "Jetson GPU utilization (avg)",
                0.62,
                arithmetic_mean(&jetson_gpu_util),
            ),
            Comparison::new("RPi utilization (avg)", 0.52, arithmetic_mean(&rpi_util)),
        ],
        notes: vec![
            "Shape targets: EdgeNN wins on energy (ratio >> 1) while the $75 Raspberry Pi \
             stays the more cost-effective device (geomean perf/price < 1)."
                .to_string(),
        ],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure7_shape_holds() {
        let lab = Lab::new();
        let report = fig07_power_price_edge(&lab).unwrap();
        let power_geo = report.comparisons[0].measured;
        let price_geo = report.comparisons[2].measured;
        assert!(
            power_geo > 3.0,
            "EdgeNN must be much more energy-efficient, got {power_geo}"
        );
        // Paper's crossover: the edge CPU is more cost-effective overall.
        assert!(
            price_geo < 2.0,
            "perf/price should stay near or below 1, got {price_geo}"
        );
        // Per-model power ratios all favor EdgeNN.
        for (model, values) in &report.rows {
            assert!(values[0] > 1.0, "{model}: power ratio {}", values[0]);
        }
    }
}
