//! Ablation studies for the design choices DESIGN.md calls out — beyond
//! the paper's own figures.

use edgenn_core::partition::{optimal_partition, t_total_us, PartitionInputs};
use edgenn_core::prelude::*;
use edgenn_core::runtime::Runtime;
use edgenn_core::Result;

use crate::experiments::Lab;
use crate::report::{Comparison, ExperimentReport};

/// Memory-policy ablation: semantic-aware (mixed) allocation vs
/// all-managed vs all-explicit, under full hybrid execution.
///
/// # Errors
/// Propagates simulation failures.
pub fn ablation_memory_policy(lab: &Lab) -> Result<ExperimentReport> {
    let runtime = Runtime::new(&lab.jetson);
    let mut rows = Vec::new();
    let mut semantic_wins = 0usize;
    for kind in ModelKind::ALL {
        let graph = lab.model(kind);
        let tuner = Tuner::new(&graph, &runtime)?;
        let mut times = Vec::new();
        for policy in [
            MemoryPolicy::AllExplicit,
            MemoryPolicy::AllManaged,
            MemoryPolicy::SemanticAware,
        ] {
            let mut config = ExecutionConfig::edgenn();
            config.memory_policy = policy;
            let plan = tuner.plan(&graph, &runtime, config)?;
            times.push(runtime.simulate(&graph, &plan)?.total_us);
        }
        if times[2] <= times[0] && times[2] <= times[1] + 1e-6 {
            semantic_wins += 1;
        }
        rows.push((kind.name().to_string(), times));
    }
    Ok(ExperimentReport {
        id: "Ablation A".to_string(),
        title: "memory policy under hybrid execution (us)".to_string(),
        columns: vec![
            "all-explicit".to_string(),
            "all-managed".to_string(),
            "semantic-aware".to_string(),
        ],
        rows,
        comparisons: vec![Comparison::new(
            "networks where semantic-aware is best (of 6)",
            6.0,
            semantic_wins as f64,
        )],
        notes: vec![
            "The paper's claim: neither pure mechanism dominates; choosing per array by \
             semantics matches or beats both on every network."
                .to_string(),
        ],
    })
}

/// Hybrid-mode ablation: GPU-only vs inter-only vs intra-only vs
/// inter+intra, all under semantic-aware memory.
///
/// # Errors
/// Propagates simulation failures.
pub fn ablation_hybrid_modes(lab: &Lab) -> Result<ExperimentReport> {
    let runtime = Runtime::new(&lab.jetson);
    let mut rows = Vec::new();
    let mut full_wins = 0usize;
    for kind in ModelKind::ALL {
        let graph = lab.model(kind);
        let tuner = Tuner::new(&graph, &runtime)?;
        let mut times = Vec::new();
        for hybrid in [
            HybridMode::GpuOnly,
            HybridMode::InterKernelOnly,
            HybridMode::IntraKernelOnly,
            HybridMode::InterAndIntra,
        ] {
            let mut config = ExecutionConfig::edgenn();
            config.hybrid = hybrid;
            let plan = tuner.plan(&graph, &runtime, config)?;
            times.push(runtime.simulate(&graph, &plan)?.total_us);
        }
        if times[3] <= times.iter().copied().fold(f64::INFINITY, f64::min) + 1e-6 {
            full_wins += 1;
        }
        rows.push((kind.name().to_string(), times));
    }
    Ok(ExperimentReport {
        id: "Ablation B".to_string(),
        title: "co-running modes under semantic-aware memory (us)".to_string(),
        columns: vec![
            "gpu-only".to_string(),
            "inter-kernel only".to_string(),
            "intra-kernel only".to_string(),
            "inter+intra (EdgeNN)".to_string(),
        ],
        rows,
        comparisons: vec![Comparison::new(
            "networks where inter+intra is best (of 6)",
            6.0,
            full_wins as f64,
        )],
        notes: vec![
            "The paper's Section IV-C guideline: dependent kernels need intra-kernel \
             co-running, independent kernels need inter-kernel co-running; only the \
             combination covers all six networks."
                .to_string(),
        ],
    })
}

/// Validates Equation (4): the closed-form optimum against an exhaustive
/// sweep of `p_cpu`, across every splittable layer of every network.
///
/// # Errors
/// Propagates profiling failures.
pub fn ablation_popt_sweep(lab: &Lab) -> Result<ExperimentReport> {
    let runtime = Runtime::new(&lab.jetson);
    let mut worst_gap = 0.0f64;
    let mut layers_checked = 0usize;
    for kind in ModelKind::ALL {
        let graph = lab.model(kind);
        for id in graph.topo_order() {
            let node = graph.node(id)?;
            if !node.layer().partitionable() {
                continue;
            }
            let (t_cpu, t_gpu) = runtime.node_times(&graph, id)?;
            let inputs = PartitionInputs {
                t_cpu_us: t_cpu,
                t_gpu_us: t_gpu,
                output_bytes: (node.output_shape().num_elements() * 4) as u64,
                copy_rate_gbps: lab.jetson.memory.copy_bw_gbps,
                sync_overhead_us: 0.0, // the paper's idealized setting
            };
            let decision = optimal_partition(&inputs);
            let mut sweep_best = f64::INFINITY;
            for k in 0..=1000 {
                sweep_best = sweep_best.min(t_total_us(&inputs, k as f64 / 1000.0));
            }
            let gap = (decision.t_total_us - sweep_best) / sweep_best.max(1e-9);
            worst_gap = worst_gap.max(gap);
            layers_checked += 1;
        }
    }
    Ok(ExperimentReport {
        id: "Ablation C".to_string(),
        title: "Equation (4) closed form vs exhaustive p sweep".to_string(),
        columns: vec![],
        rows: vec![],
        comparisons: vec![
            Comparison::measured_only("layers checked", layers_checked as f64),
            Comparison::new("worst relative gap to sweep optimum", 0.0, worst_gap),
        ],
        notes: vec![
            "Eq. (4) is provably optimal for the paper's piecewise-linear cost model; \
             the sweep confirms it to sampling resolution on every layer."
                .to_string(),
        ],
    })
}

/// Tuner-convergence ablation: plan quality after k noisy profiling
/// rounds.
///
/// # Errors
/// Propagates simulation failures.
pub fn ablation_tuner_convergence(lab: &Lab) -> Result<ExperimentReport> {
    let runtime = Runtime::new(&lab.jetson);
    let graph = lab.model(ModelKind::AlexNet);
    let reference = {
        let tuner = Tuner::new(&graph, &runtime)?;
        let plan = tuner.plan(&graph, &runtime, ExecutionConfig::edgenn())?;
        runtime.simulate(&graph, &plan)?.total_us
    };

    // Start from badly corrupted statistics and watch the EMA recover.
    let mut tuner = Tuner::new(&graph, &runtime)?;
    tuner.observe(&graph, &runtime, 0.9, 0xBAD)?; // one wild measurement
    let mut rows = Vec::new();
    let mut final_gap = f64::INFINITY;
    for round in 0..8 {
        let plan = tuner.plan(&graph, &runtime, ExecutionConfig::edgenn())?;
        let t = runtime.simulate(&graph, &plan)?.total_us;
        final_gap = (t - reference) / reference * 100.0;
        rows.push((format!("round {round}"), vec![t, final_gap]));
        tuner.observe(&graph, &runtime, 0.1, round as u64)?;
    }
    Ok(ExperimentReport {
        id: "Ablation D".to_string(),
        title: "adaptive tuner recovery from corrupted statistics (AlexNet)".to_string(),
        columns: vec![
            "plan latency (us)".to_string(),
            "gap to clean plan (%)".to_string(),
        ],
        rows,
        comparisons: vec![Comparison::new(
            "final gap to clean plan (%)",
            0.0,
            final_gap,
        )],
        notes: vec![
            "The EMA feedback loop (paper Section IV-D) re-converges to the clean plan \
             within a few observation rounds even after a 90%-noise measurement."
                .to_string(),
        ],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn semantic_policy_never_loses() {
        let lab = Lab::new();
        let report = ablation_memory_policy(&lab).unwrap();
        for (model, times) in &report.rows {
            let (explicit, managed, semantic) = (times[0], times[1], times[2]);
            // Semantic-aware must match the better pure policy to within
            // 2% (small fixed costs like the prefetched input migration
            // can leave sub-percent ties).
            assert!(
                semantic <= explicit * 1.02 && semantic <= managed * 1.02,
                "{model}: semantic-aware {semantic} vs explicit {explicit} / managed {managed}"
            );
        }
    }

    #[test]
    fn combined_corunning_never_loses() {
        let lab = Lab::new();
        let report = ablation_hybrid_modes(&lab).unwrap();
        for (model, times) in &report.rows {
            let full = times[3];
            for (i, t) in times.iter().enumerate().take(3) {
                assert!(
                    full <= t * 1.02,
                    "{model}: inter+intra ({full}) lost to mode {i} ({t})"
                );
            }
        }
    }

    #[test]
    fn closed_form_matches_sweep() {
        let lab = Lab::new();
        let report = ablation_popt_sweep(&lab).unwrap();
        assert!(
            report.comparisons[0].measured > 50.0,
            "should check many layers"
        );
        assert!(
            report.comparisons[1].measured < 1e-4,
            "Eq. (4) must match the sweep, gap {}",
            report.comparisons[1].measured
        );
    }

    #[test]
    fn tuner_recovers_from_bad_statistics() {
        let lab = Lab::new();
        let report = ablation_tuner_convergence(&lab).unwrap();
        let final_gap = report.comparisons[0].measured;
        assert!(
            final_gap.abs() < 5.0,
            "tuner should re-converge to within 5% of the clean plan, got {final_gap}%"
        );
    }
}
