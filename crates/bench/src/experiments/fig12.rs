//! Figure 12: EdgeNN on the edge device vs inference offloaded to the
//! cloud (RTX 2080 Ti server over the paper's measured link: ~1 MB/s
//! uplink, ~400 KB compressed input, ~100 ms cloud delay).
//!
//! Paper headline: EdgeNN beats the full offload path by 20.28% on
//! average; VGG is the exception — it is so compute-heavy that the
//! discrete GPU wins even after paying the network.

use edgenn_core::metrics::arithmetic_mean;
use edgenn_core::prelude::*;
use edgenn_core::Result;

use crate::experiments::Lab;
use crate::report::{Comparison, ExperimentReport};

/// Runs the Figure 12 experiment.
///
/// # Errors
/// Propagates simulation failures.
pub fn fig12_cloud(lab: &Lab) -> Result<ExperimentReport> {
    let mut rows = Vec::new();
    let mut improvements = Vec::new();
    let mut vgg_cloud_wins = false;

    for kind in ModelKind::ALL {
        let graph = lab.model(kind);
        let edgenn = lab.edgenn(&graph)?;
        let cloud = CloudOffload::new(&lab.server).infer(&graph)?;
        let improvement = (cloud.total_us - edgenn.total_us) / cloud.total_us * 100.0;
        improvements.push(improvement);
        if kind == ModelKind::Vgg16 && cloud.total_us < edgenn.total_us {
            vgg_cloud_wins = true;
        }
        rows.push((
            kind.name().to_string(),
            vec![
                edgenn.total_us / 1e3,
                cloud.compute_us / 1e3,
                cloud.total_us / 1e3,
            ],
        ));
    }

    Ok(ExperimentReport {
        id: "Figure 12".to_string(),
        title: "EdgeNN vs cloud offload (ms)".to_string(),
        columns: vec![
            "EdgeNN".to_string(),
            "on-cloud (computing only)".to_string(),
            "on-cloud (total)".to_string(),
        ],
        rows,
        comparisons: vec![
            Comparison::new(
                "avg improvement over cloud offload %",
                20.28,
                arithmetic_mean(&improvements),
            ),
            Comparison::new(
                "VGG crossover (1 = cloud wins on VGG)",
                1.0,
                if vgg_cloud_wins { 1.0 } else { 0.0 },
            ),
        ],
        notes: vec![
            "Shape targets: on-cloud computing-only is always fastest (the 2080 Ti is far \
             more powerful); after adding upload + cloud delay EdgeNN wins for most \
             networks; VGG's 30+ GFLOPs flip the comparison (paper Section V-D)."
                .to_string(),
        ],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure12_shape_holds() {
        let lab = Lab::new();
        let report = fig12_cloud(&lab).unwrap();
        let mut edge_wins = 0;
        for (model, values) in &report.rows {
            let (edge, compute_only, total) = (values[0], values[1], values[2]);
            // The 2080 Ti computes faster on every compute-bound network;
            // the launch-latency-bound LeNet is the one case where the
            // server's own per-kernel overheads leave it behind.
            if model != "LeNet" {
                assert!(
                    compute_only < edge,
                    "{model}: the 2080 Ti compute ({compute_only}) must beat the edge ({edge})"
                );
            }
            assert!(total > compute_only, "{model}: offload adds network+delay");
            if edge < total {
                edge_wins += 1;
            }
        }
        assert!(
            edge_wins >= 4,
            "EdgeNN should win most networks, won {edge_wins}/6"
        );
        // The VGG crossover: cloud wins on the heaviest network.
        assert_eq!(
            report.comparisons[1].measured, 1.0,
            "cloud should win on VGG"
        );
    }
}
