//! Figure 13: power efficiency and cost-effectiveness of EdgeNN on the
//! integrated edge device vs inference on the discrete GPU server.
//!
//! Paper headline: 5.70x higher performance/power and 1.25x higher
//! performance/price on average.

use edgenn_core::metrics::{arithmetic_mean, geometric_mean};
use edgenn_core::prelude::*;
use edgenn_core::Result;

use crate::experiments::Lab;
use crate::report::{Comparison, ExperimentReport};

/// Runs the Figure 13 experiment.
///
/// # Errors
/// Propagates simulation failures.
pub fn fig13_power_price_discrete(lab: &Lab) -> Result<ExperimentReport> {
    let mut rows = Vec::new();
    let mut power_ratios = Vec::new();
    let mut price_ratios = Vec::new();

    for kind in ModelKind::ALL {
        let graph = lab.model(kind);
        let edgenn = lab.edgenn(&graph)?;
        let discrete = GpuOnly::new(&lab.server).infer(&graph)?;
        let power = edgenn.perf_per_watt() / discrete.perf_per_watt();
        let price = edgenn.perf_per_price(&lab.jetson) / discrete.perf_per_price(&lab.server);
        power_ratios.push(power);
        price_ratios.push(price);
        rows.push((kind.name().to_string(), vec![power, price]));
    }

    Ok(ExperimentReport {
        id: "Figure 13".to_string(),
        title: "perf/power and perf/price of EdgeNN vs the discrete GPU".to_string(),
        columns: vec![
            "perf/power ratio".to_string(),
            "perf/price ratio".to_string(),
        ],
        rows,
        comparisons: vec![
            Comparison::new(
                "perf/power ratio (avg)",
                5.70,
                arithmetic_mean(&power_ratios),
            ),
            Comparison::measured_only("perf/power ratio (geomean)", geometric_mean(&power_ratios)),
            Comparison::new(
                "perf/price ratio (avg)",
                1.25,
                arithmetic_mean(&price_ratios),
            ),
        ],
        notes: vec![
            "Shape targets: the 260 W discrete server computes faster but burns so much \
             power that the edge device wins clearly per watt, and modestly per dollar."
                .to_string(),
            "The launch-bound LeNet/FCNN rows inflate the arithmetic mean: the linear \
             utilization power model charges the server full dynamic power even for \
             kernels that barely occupy it. Compute-heavy rows bracket the paper's 5.70."
                .to_string(),
        ],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure13_shape_holds() {
        let lab = Lab::new();
        let report = fig13_power_price_discrete(&lab).unwrap();
        let power = report.comparisons[0].measured;
        let price = report.comparisons[1].measured;
        assert!(power > 1.5, "edge must win per watt, got {power}");
        assert!(
            price > 0.5,
            "edge should be at least price-competitive, got {price}"
        );
        assert!(
            power > price,
            "the energy advantage ({power}) must exceed the price advantage ({price})"
        );
        for (model, values) in &report.rows {
            assert!(values[0] > 1.0, "{model}: perf/power ratio {}", values[0]);
        }
    }
}
