//! Figure 10: per-layer execution time of AlexNet with and without
//! zero-copy (GPU execution).
//!
//! Paper headline (qualitative, the figure is log-scale): the pooling
//! layers get *slower* under zero-copy — they are pure memory traffic, so
//! the managed-memory access penalty is not hidden by compute — while the
//! compute-bound convolutions are essentially unchanged.

use edgenn_core::prelude::*;
use edgenn_core::runtime::Runtime;
use edgenn_core::tuner::Tuner;
use edgenn_core::Result;

use crate::experiments::Lab;
use crate::report::{Comparison, ExperimentReport};

/// Runs the Figure 10 experiment.
///
/// # Errors
/// Propagates simulation failures.
pub fn fig10_alexnet_zerocopy_layers(lab: &Lab) -> Result<ExperimentReport> {
    let graph = lab.model(ModelKind::AlexNet);
    let runtime = Runtime::new(&lab.jetson);
    let tuner = Tuner::new(&graph, &runtime)?;

    let explicit_plan = tuner.plan(&graph, &runtime, ExecutionConfig::baseline_gpu())?;
    let mut managed_cfg = ExecutionConfig::baseline_gpu();
    managed_cfg.memory_policy = MemoryPolicy::AllManaged;
    let managed_plan = tuner.plan(&graph, &runtime, managed_cfg)?;

    let explicit = runtime.simulate(&graph, &explicit_plan)?;
    let managed = runtime.simulate(&graph, &managed_plan)?;

    let mut rows = Vec::new();
    let mut pool_slowdowns = Vec::new();
    let mut conv_changes = Vec::new();
    for (e, m) in explicit.layers.iter().zip(managed.layers.iter()) {
        debug_assert_eq!(e.name, m.name);
        // Kernel-only comparison: Figure 10 plots per-layer kernel time;
        // boundary copies are what Figure 9 accounts separately.
        rows.push((e.name.clone(), vec![e.kernel_us, m.kernel_us]));
        let change = m.kernel_us / e.kernel_us;
        match e.class_tag.as_str() {
            "pool" => pool_slowdowns.push(change),
            "conv" => conv_changes.push(change),
            _ => {}
        }
    }

    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    Ok(ExperimentReport {
        id: "Figure 10".to_string(),
        title: "AlexNet per-layer kernel time, without vs with zero-copy (us)".to_string(),
        columns: vec![
            "without zero-copy".to_string(),
            "with zero-copy".to_string(),
        ],
        rows,
        comparisons: vec![
            Comparison::measured_only("pool layer slowdown factor (avg)", avg(&pool_slowdowns)),
            Comparison::measured_only("conv layer change factor (avg)", avg(&conv_changes)),
            Comparison::new(
                "end-to-end time ratio managed/explicit",
                1.0 - 0.0993, // the paper's 9.93% average memory-management gain
                managed.total_us / explicit.total_us,
            ),
        ],
        notes: vec![
            "Shape targets: pooling kernels slower under zero-copy (paper: 'the execution \
             time of the pooling layers increases'), convolutions unchanged, and the whole \
             network still faster because boundary copies disappear."
                .to_string(),
        ],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure10_shape_holds() {
        let lab = Lab::new();
        let report = fig10_alexnet_zerocopy_layers(&lab).unwrap();
        let pool_slowdown = report.comparisons[0].measured;
        let conv_change = report.comparisons[1].measured;
        let total_ratio = report.comparisons[2].measured;
        assert!(
            pool_slowdown > 1.02,
            "pool layers must slow down under zero-copy, got {pool_slowdown}"
        );
        assert!(
            (0.98..1.05).contains(&conv_change),
            "conv layers should be nearly unchanged, got {conv_change}"
        );
        assert!(
            total_ratio < 1.0,
            "zero-copy must win end to end, got {total_ratio}"
        );
    }
}
