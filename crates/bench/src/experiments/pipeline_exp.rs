//! Pipeline-throughput study (reproduction extension): for a saturated
//! request stream, compare the latency-optimal EdgeNN plan against a
//! DART-style two-stage CPU/GPU pipeline on every benchmark.

use edgenn_core::pipeline::plan_pipeline;
use edgenn_core::prelude::*;
use edgenn_core::runtime::Runtime;
use edgenn_core::Result;

use crate::experiments::Lab;
use crate::report::{Comparison, ExperimentReport};

/// Runs the pipeline-throughput comparison.
///
/// # Errors
/// Propagates simulation failures.
pub fn pipeline_throughput(lab: &Lab) -> Result<ExperimentReport> {
    let runtime = Runtime::new(&lab.jetson);
    let requests = 24;
    let mut rows = Vec::new();
    let mut pipeline_wins = 0usize;

    for kind in ModelKind::ALL {
        let graph = lab.model(kind);
        let tuner = Tuner::new(&graph, &runtime)?;
        let latency_plan = tuner.plan(&graph, &runtime, ExecutionConfig::edgenn())?;
        let pipeline = plan_pipeline(&graph, &runtime, ExecutionConfig::edgenn())?;

        let latency_stream = runtime.simulate_stream(&graph, &latency_plan, requests)?;
        let pipeline_stream = runtime.simulate_stream(&graph, &pipeline.plan, requests)?;
        if pipeline_stream.throughput_per_s > latency_stream.throughput_per_s {
            pipeline_wins += 1;
        }
        rows.push((
            kind.name().to_string(),
            vec![
                latency_stream.throughput_per_s,
                pipeline_stream.throughput_per_s,
                pipeline.cut as f64,
                if pipeline.cpu_first { 1.0 } else { 0.0 },
            ],
        ));
    }

    Ok(ExperimentReport {
        id: "Pipeline".to_string(),
        title: format!(
            "saturated-stream throughput over {requests} requests: latency plan vs two-stage pipeline"
        ),
        columns: vec![
            "latency-plan req/s".to_string(),
            "pipeline req/s".to_string(),
            "cut node".to_string(),
            "cpu-first (1/0)".to_string(),
        ],
        rows,
        comparisons: vec![Comparison::measured_only(
            "networks where the pipeline wins (of 6)",
            pipeline_wins as f64,
        )],
        notes: vec![
            "The latency-optimal plan already co-runs both processors within each \
             request, so a stage pipeline only wins where the network splits into \
             well-balanced CPU/GPU halves; elsewhere intra-request hybrid execution \
             dominates — the two paradigms are complements, not substitutes."
                .to_string(),
        ],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_experiment_is_sane() {
        let lab = Lab::new();
        let report = pipeline_throughput(&lab).unwrap();
        for (model, values) in &report.rows {
            assert!(values[0] > 0.0 && values[1] > 0.0, "{model}");
            assert!(values[2] >= 1.0, "{model}: cut must be interior");
            // Neither strategy should collapse versus the other.
            let ratio = values[1] / values[0];
            assert!(
                (0.2..5.0).contains(&ratio),
                "{model}: throughput ratio {ratio}"
            );
        }
    }
}
