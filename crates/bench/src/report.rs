//! Report types: paper-vs-measured comparisons and table rendering.

use serde::{Deserialize, Serialize};

/// One paper-reported value next to the reproduction's measurement.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Comparison {
    /// What is being compared ("avg speedup over Jetson CPU", ...).
    pub metric: String,
    /// The paper's value (`None` when the paper gives no number, only a
    /// qualitative claim).
    pub paper: Option<f64>,
    /// The reproduction's value.
    pub measured: f64,
}

impl Comparison {
    /// Creates a comparison against a paper-reported number.
    pub fn new(metric: impl Into<String>, paper: f64, measured: f64) -> Self {
        Self {
            metric: metric.into(),
            paper: Some(paper),
            measured,
        }
    }

    /// Creates a measured-only entry (the paper reports no number).
    pub fn measured_only(metric: impl Into<String>, measured: f64) -> Self {
        Self {
            metric: metric.into(),
            paper: None,
            measured,
        }
    }

    /// Ratio measured/paper (`None` without a paper value or with paper 0).
    pub fn ratio(&self) -> Option<f64> {
        match self.paper {
            Some(p) if p != 0.0 => Some(self.measured / p),
            _ => None,
        }
    }
}

/// A full experiment result: free-form data rows plus the headline
/// paper-vs-measured comparisons.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentReport {
    /// Experiment id ("Figure 6", "Table I", ...).
    pub id: String,
    /// One-line description.
    pub title: String,
    /// Column headers of the data table.
    pub columns: Vec<String>,
    /// Data rows: a label plus one value per column.
    pub rows: Vec<(String, Vec<f64>)>,
    /// Headline comparisons.
    pub comparisons: Vec<Comparison>,
    /// Notes on substitutions/divergences.
    pub notes: Vec<String>,
}

impl ExperimentReport {
    /// Renders the report as human-readable text (also valid Markdown).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("## {} — {}\n\n", self.id, self.title));

        if !self.rows.is_empty() {
            out.push_str(&format!("| {} |", ["model", ""].join("")));
            for c in &self.columns {
                out.push_str(&format!(" {c} |"));
            }
            out.push('\n');
            out.push_str("|---|");
            for _ in &self.columns {
                out.push_str("---|");
            }
            out.push('\n');
            for (label, values) in &self.rows {
                out.push_str(&format!("| {label} |"));
                for v in values {
                    out.push_str(&format!(" {} |", fmt_value(*v)));
                }
                out.push('\n');
            }
            out.push('\n');
        }

        if !self.comparisons.is_empty() {
            out.push_str("| metric | paper | measured | measured/paper |\n|---|---|---|---|\n");
            for c in &self.comparisons {
                let paper = c.paper.map_or_else(|| "—".to_string(), fmt_value);
                let ratio = c
                    .ratio()
                    .map_or_else(|| "—".to_string(), |r| format!("{r:.2}x"));
                out.push_str(&format!(
                    "| {} | {} | {} | {} |\n",
                    c.metric,
                    paper,
                    fmt_value(c.measured),
                    ratio
                ));
            }
            out.push('\n');
        }

        for note in &self.notes {
            out.push_str(&format!("- {note}\n"));
        }
        out
    }
}

/// Compact numeric formatting: 3 significant-ish digits across magnitudes.
pub fn fmt_value(v: f64) -> String {
    if !v.is_finite() {
        return format!("{v}");
    }
    let a = v.abs();
    if a >= 1000.0 {
        format!("{v:.0}")
    } else if a >= 10.0 {
        format!("{v:.1}")
    } else if a >= 0.1 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparison_ratio() {
        let c = Comparison::new("x", 4.0, 5.0);
        assert_eq!(c.ratio(), Some(1.25));
        assert_eq!(Comparison::measured_only("y", 1.0).ratio(), None);
        assert_eq!(Comparison::new("z", 0.0, 1.0).ratio(), None);
    }

    #[test]
    fn render_contains_all_sections() {
        let r = ExperimentReport {
            id: "Figure 6".into(),
            title: "speedups".into(),
            columns: vec!["a".into(), "b".into()],
            rows: vec![("LeNet".into(), vec![1.5, 2.5])],
            comparisons: vec![Comparison::new("avg", 3.97, 4.1)],
            notes: vec!["note".into()],
        };
        let text = r.render();
        assert!(text.contains("Figure 6"));
        assert!(text.contains("LeNet"));
        assert!(text.contains("3.97"));
        assert!(text.contains("1.03x"));
        assert!(text.contains("- note"));
    }

    #[test]
    fn value_formatting_scales() {
        assert_eq!(fmt_value(12345.6), "12346");
        assert_eq!(fmt_value(12.34), "12.3");
        assert_eq!(fmt_value(1.234), "1.23");
        assert_eq!(fmt_value(0.01234), "0.0123");
    }
}
