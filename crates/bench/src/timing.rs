//! Tiny wall-clock timing harness for the `benches/` targets.
//!
//! The workspace builds offline, so the bench targets use this instead of
//! an external framework: one warmup call, then the mean over a fixed
//! iteration count, printed as `label  mean us/iter`.

use std::time::Instant;

/// Times `f` and prints `label` with the mean per-iteration cost.
/// Returns the mean in microseconds so callers can assert on it.
pub fn time<T>(label: &str, iters: u32, mut f: impl FnMut() -> T) -> f64 {
    assert!(iters > 0, "need at least one iteration");
    std::hint::black_box(f());
    let start = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    let mean_us = start.elapsed().as_secs_f64() / f64::from(iters) * 1e6;
    println!("{label:<48} {mean_us:>12.1} us/iter");
    mean_us
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reports_a_positive_mean() {
        let mean = time("noop", 10, || std::hint::black_box(1 + 1));
        assert!(mean >= 0.0);
    }
}
