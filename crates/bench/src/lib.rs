//! # edgenn-bench
//!
//! The benchmark harness that regenerates **every table and figure** of
//! the EdgeNN paper's evaluation (Section V). Each experiment lives in
//! [`experiments`] and has a matching binary (`fig06_edge_cpus`,
//! `fig08_ablation`, …, `tab1_hybrid_layer_improvement`) that prints the
//! paper's reported values next to the reproduction's measured values.
//!
//! Run everything at once:
//!
//! ```bash
//! cargo run --release -p edgenn-bench --bin all_experiments
//! ```
//!
//! Shape, not absolute numbers: the substrate is a calibrated simulator
//! (see `edgenn-sim`), so the comparisons to check are *who wins, by
//! roughly what factor, and where the crossovers fall*.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod calibrate;
pub mod experiments;
pub mod functional_bench;
pub mod report;
pub mod timing;

pub use report::{Comparison, ExperimentReport};
