//! Section VI generality check: EdgeNN on AMD APU / Apple Silicon models.

fn main() {
    let lab = edgenn_bench::experiments::Lab::new();
    let report =
        edgenn_bench::experiments::sec6_platform_generality(&lab).expect("experiment failed");
    print!("{}", report.render());
}
