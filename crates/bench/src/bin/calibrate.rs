//! Re-derives the `calibrated:` constants in `edgenn-sim::platforms` by
//! coordinate descent against the paper's headline numbers.

use edgenn_bench::calibrate::{descend, measure, objective, Knob, Targets};

fn main() {
    let targets = Targets::paper();
    let mut platform = edgenn_sim::platforms::jetson_agx_xavier();
    let mut score = objective(&measure(&platform).expect("measure"), &targets);
    println!("initial objective: {score:.4}");
    for round in 0..3 {
        let (next, next_score) =
            descend(&platform, &targets, &[0.7, 0.85, 1.2, 1.4]).expect("descend");
        println!("round {round}: objective {next_score:.4}");
        if next_score >= score - 1e-6 {
            break;
        }
        platform = next;
        score = next_score;
    }
    println!("\nfitted knobs:");
    for knob in Knob::ALL {
        println!("  {:<30} {:.4}", knob.name(), knob.get(&platform));
    }
    let measured = measure(&platform).expect("measure");
    println!("\nfit quality (measured vs paper):");
    println!(
        "  fig6 jetson-cpu speedup : {:.2} vs {:.2}",
        measured.fig6, targets.fig6_jetson_cpu_speedup
    );
    println!(
        "  fig8 edgenn improvement : {:.1}% vs {:.1}%",
        measured.fig8_full, targets.fig8_edgenn_improvement
    );
    println!(
        "  fig8 memory improvement : {:.1}% vs {:.1}%",
        measured.fig8_memory, targets.fig8_memory_improvement
    );
    println!(
        "  fig9 copy proportion    : {:.1}% vs {:.1}%",
        measured.fig9, targets.fig9_integrated_copy
    );
}
