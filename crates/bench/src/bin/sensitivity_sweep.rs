//! Calibration-robustness sweep (see DESIGN.md §4 and EXPERIMENTS.md).

fn main() {
    let lab = edgenn_bench::experiments::Lab::new();
    let report = edgenn_bench::experiments::sensitivity_sweep(&lab).expect("sweep failed");
    print!("{}", report.render());
}
