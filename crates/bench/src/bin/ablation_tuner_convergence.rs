//! Ablation study beyond the paper's own figures (see DESIGN.md §5).

fn main() {
    let lab = edgenn_bench::experiments::Lab::new();
    let report =
        edgenn_bench::experiments::ablation_tuner_convergence(&lab).expect("ablation failed");
    print!("{}", report.render());
}
