//! Regenerates the paper's Section V-F (inter-kernel-only co-running comparison).

fn main() {
    let lab = edgenn_bench::experiments::Lab::new();
    let report =
        edgenn_bench::experiments::sec5f_interkernel_only(&lab).expect("experiment failed");
    print!("{}", report.render());
}
