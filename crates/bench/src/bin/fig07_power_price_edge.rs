//! Regenerates the paper's Figure 7 (power/price efficiency vs the edge CPU).

fn main() {
    let lab = edgenn_bench::experiments::Lab::new();
    let report =
        edgenn_bench::experiments::fig07_power_price_edge(&lab).expect("experiment failed");
    print!("{}", report.render());
}
