//! Runs every paper experiment and prints a combined report
//! (the source of truth for EXPERIMENTS.md). Pass `--json` to emit the
//! machine-readable version instead.

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let lab = edgenn_bench::experiments::Lab::new();
    let reports = lab.run_all().expect("experiments failed");
    if json {
        println!(
            "{}",
            serde_json::to_string_pretty(&reports).expect("serialize")
        );
    } else {
        println!("# EdgeNN reproduction — all paper experiments\n");
        for report in &reports {
            print!("{}", report.render());
            println!();
        }
    }
}
