//! Regenerates the paper's Figure 9 (copy-time proportion, integrated vs discrete).

fn main() {
    let lab = edgenn_bench::experiments::Lab::new();
    let report = edgenn_bench::experiments::fig09_copy_proportion(&lab).expect("experiment failed");
    print!("{}", report.render());
}
