//! EdgeNN across the Xavier's 10W/15W/30W nvpmodel budgets.

fn main() {
    let lab = edgenn_bench::experiments::Lab::new();
    let report = edgenn_bench::experiments::power_mode_sweep(&lab).expect("sweep failed");
    print!("{}", report.render());
}
