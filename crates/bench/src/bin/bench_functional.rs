//! Measures the functional execution engine and maintains
//! `BENCH_functional.json` (see `docs/perf.md` for how to read it).
//!
//! ```bash
//! cargo run --release -p edgenn-bench --bin bench_functional -- run
//! cargo run -p edgenn-bench --bin bench_functional -- run --smoke --out /tmp/b.json
//! cargo run -p edgenn-bench --bin bench_functional -- validate BENCH_functional.json
//! cargo run -p edgenn-bench --bin bench_functional -- gate /tmp/b.json BENCH_functional.json --slack 0.25
//! cargo run --release -p edgenn-bench --bin bench_functional -- overhead --smoke --budget 0.05
//! ```

use std::process::ExitCode;

use edgenn_bench::functional_bench::{
    drop_gate, gate, measure, overhead_gate, validate, BenchReport,
};

const FULL_ITERS: u32 = 60;
const SMOKE_ITERS: u32 = 16;
/// The overhead gate judges a ≤5% ratio of two minima, so even its
/// smoke mode needs enough iterations for both arms to catch a clean
/// (unpreempted) run each; 16 is not reliably enough on a busy CI box.
/// The interleaved arms cost well under a millisecond per pair, so a
/// large count stays cheap.
const OVERHEAD_SMOKE_ITERS: u32 = 144;
const DEFAULT_OUT: &str = "BENCH_functional.json";
const DEFAULT_SLACK: f64 = 0.25;
const DEFAULT_OVERHEAD_BUDGET: f64 = 0.05;

fn load(path: &str) -> Result<BenchReport, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("{path}: {e}"))
}

fn run(args: &[String]) -> Result<(), String> {
    let mut iters = FULL_ITERS;
    let mut out = DEFAULT_OUT.to_string();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => iters = SMOKE_ITERS,
            "--out" => out = it.next().ok_or("--out needs a path")?.clone(),
            other => return Err(format!("unknown run flag {other:?}")),
        }
    }
    let report = measure(iters);
    validate(&report)?;
    for row in &report.models {
        println!(
            "{:<12} {:<5} reference {:>10.1} ns  hybrid {:>10.1} ns  batch {:>10.1} ns  \
             speedup {:>5.2}x",
            row.model,
            row.precision.to_string(),
            row.reference_ns,
            row.hybrid_ns,
            row.batch_ns,
            row.speedup
        );
    }
    let text = serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?;
    std::fs::write(&out, text + "\n").map_err(|e| format!("{out}: {e}"))?;
    println!("wrote {out}");
    Ok(())
}

/// Measures recorder-off vs recorder-on on this machine and gates the
/// aggregate flight-recorder overhead. `--out` additionally writes the
/// measured report (same schema as `run`) for inspection.
fn overhead(args: &[String]) -> Result<(), String> {
    let mut iters = FULL_ITERS;
    let mut budget = DEFAULT_OVERHEAD_BUDGET;
    let mut out: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => iters = OVERHEAD_SMOKE_ITERS,
            "--budget" => {
                budget = it
                    .next()
                    .ok_or("--budget needs a fraction")?
                    .parse::<f64>()
                    .map_err(|e| e.to_string())?;
            }
            "--out" => out = Some(it.next().ok_or("--out needs a path")?.clone()),
            other => return Err(format!("unknown overhead flag {other:?}")),
        }
    }
    let report = measure(iters);
    validate(&report)?;
    for row in &report.models {
        println!(
            "{:<12} {:<5} recorder off {:>10.1} ns  on {:>10.1} ns  overhead {:>6.2}%  dropped {}",
            row.model,
            row.precision.to_string(),
            row.hybrid_ns,
            row.flight_ns,
            (row.flight_ns / row.hybrid_ns - 1.0) * 100.0,
            row.flight_dropped
        );
    }
    if let Some(path) = out {
        let text = serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?;
        std::fs::write(&path, text + "\n").map_err(|e| format!("{path}: {e}"))?;
        println!("wrote {path}");
    }
    overhead_gate(&report, budget)?;
    println!("overhead gate ok (budget {budget})");
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.split_first() {
        Some((cmd, rest)) if cmd == "run" => run(rest),
        Some((cmd, rest)) if cmd == "overhead" => overhead(rest),
        Some((cmd, rest)) if cmd == "validate" => match rest {
            [path] => load(path).and_then(|r| validate(&r)).map(|()| {
                println!("{path}: schema ok");
            }),
            _ => Err("usage: validate <path>".to_string()),
        },
        Some((cmd, rest)) if cmd == "drops" => match rest {
            [path] => load(path)
                .and_then(|r| {
                    validate(&r)?;
                    drop_gate(&r)
                })
                .map(|()| println!("{path}: no flight records dropped")),
            _ => Err("usage: drops <path>".to_string()),
        },
        Some((cmd, rest)) if cmd == "gate" => {
            let (paths, flags) = rest.split_at(rest.len().min(2));
            let slack = match flags {
                [] => Ok(DEFAULT_SLACK),
                [flag, value] if flag == "--slack" => {
                    value.parse::<f64>().map_err(|e| e.to_string())
                }
                _ => Err("usage: gate <measured> <baseline> [--slack F]".to_string()),
            };
            match (paths, slack) {
                ([measured, baseline], Ok(slack)) => load(measured)
                    .and_then(|m| load(baseline).map(|b| (m, b)))
                    .and_then(|(m, b)| {
                        validate(&m)?;
                        validate(&b)?;
                        gate(&m, &b, slack)
                    })
                    .map(|()| println!("gate ok (slack {slack})")),
                (_, Err(e)) => Err(e),
                _ => Err("usage: gate <measured> <baseline> [--slack F]".to_string()),
            }
        }
        _ => Err("usage: bench_functional <run|overhead|validate|gate|drops> ...".to_string()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("bench_functional: {message}");
            ExitCode::FAILURE
        }
    }
}
