//! Regenerates the paper's Figure 12 (EdgeNN vs cloud offload).

fn main() {
    let lab = edgenn_bench::experiments::Lab::new();
    let report = edgenn_bench::experiments::fig12_cloud(&lab).expect("experiment failed");
    print!("{}", report.render());
}
