//! Regenerates the paper's Figure 6 (EdgeNN speedups over the three edge CPUs).

fn main() {
    let lab = edgenn_bench::experiments::Lab::new();
    let report =
        edgenn_bench::experiments::fig06_edge_cpu_speedups(&lab).expect("experiment failed");
    print!("{}", report.render());
}
