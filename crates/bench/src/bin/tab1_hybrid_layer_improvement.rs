//! Regenerates the paper's Table I (hybrid-execution improvement by layer class).

fn main() {
    let lab = edgenn_bench::experiments::Lab::new();
    let report =
        edgenn_bench::experiments::tab1_hybrid_layer_improvement(&lab).expect("experiment failed");
    print!("{}", report.render());
}
