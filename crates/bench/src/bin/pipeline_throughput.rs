//! Saturated-stream throughput: latency plan vs two-stage pipeline.

fn main() {
    let lab = edgenn_bench::experiments::Lab::new();
    let report = edgenn_bench::experiments::pipeline_throughput(&lab).expect("experiment failed");
    print!("{}", report.render());
}
