//! Regenerates the paper's Figure 10 (AlexNet per-layer time with/without zero-copy).

fn main() {
    let lab = edgenn_bench::experiments::Lab::new();
    let report =
        edgenn_bench::experiments::fig10_alexnet_zerocopy_layers(&lab).expect("experiment failed");
    print!("{}", report.render());
}
