//! Regenerates the paper's Figure 8 (improvement breakdown over direct GPU execution).

fn main() {
    let lab = edgenn_bench::experiments::Lab::new();
    let report = edgenn_bench::experiments::fig08_ablation(&lab).expect("experiment failed");
    print!("{}", report.render());
}
