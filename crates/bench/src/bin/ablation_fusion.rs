//! ReLU-fusion ablation (reproduction extension, see DESIGN.md §5).

fn main() {
    let lab = edgenn_bench::experiments::Lab::new();
    let report = edgenn_bench::experiments::ablation_fusion(&lab).expect("ablation failed");
    print!("{}", report.render());
}
