//! Regenerates the paper's Figure 11 (AlexNet per-layer time under hybrid execution).

fn main() {
    let lab = edgenn_bench::experiments::Lab::new();
    let report =
        edgenn_bench::experiments::fig11_alexnet_hybrid_layers(&lab).expect("experiment failed");
    print!("{}", report.render());
}
