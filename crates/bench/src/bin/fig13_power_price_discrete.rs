//! Regenerates the paper's Figure 13 (power/price efficiency vs the discrete GPU).

fn main() {
    let lab = edgenn_bench::experiments::Lab::new();
    let report =
        edgenn_bench::experiments::fig13_power_price_discrete(&lab).expect("experiment failed");
    print!("{}", report.render());
}
