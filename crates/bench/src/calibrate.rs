//! Calibration fitting: searches the most influential simulator constants
//! to minimize the log-error against the paper's headline numbers.
//!
//! This is the tool behind the `calibrated:` values in
//! `edgenn-sim::platforms` — run `cargo run --release -p edgenn-bench
//! --bin calibrate` to reproduce (or improve) the fit. The optimizer is a
//! deliberately simple coordinate descent over a small knob set: the goal
//! is transparency, not black-box fitting.

use edgenn_core::metrics::arithmetic_mean;
use edgenn_core::prelude::*;
use edgenn_core::Result;
use edgenn_sim::Platform;

/// One fitted knob: how to read and write it on a platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Knob {
    /// GPU convolution compute efficiency.
    GpuConvEff,
    /// CPU convolution compute efficiency.
    CpuConvEff,
    /// GPU fully-connected bandwidth efficiency.
    GpuFcBwEff,
    /// CPU<->GPU copy bandwidth (GB/s).
    CopyBwGbps,
}

impl Knob {
    /// All fitted knobs.
    pub const ALL: [Knob; 4] = [
        Knob::GpuConvEff,
        Knob::CpuConvEff,
        Knob::GpuFcBwEff,
        Knob::CopyBwGbps,
    ];

    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            Knob::GpuConvEff => "gpu conv efficiency",
            Knob::CpuConvEff => "cpu conv efficiency",
            Knob::GpuFcBwEff => "gpu fc bandwidth efficiency",
            Knob::CopyBwGbps => "copy bandwidth (GB/s)",
        }
    }

    /// Reads the knob from a platform.
    pub fn get(&self, platform: &Platform) -> f64 {
        match self {
            Knob::GpuConvEff => platform.gpu.as_ref().expect("gpu").efficiency.conv,
            Knob::CpuConvEff => platform.cpu.efficiency.conv,
            Knob::GpuFcBwEff => platform.gpu.as_ref().expect("gpu").bw_efficiency.fc,
            Knob::CopyBwGbps => platform.memory.copy_bw_gbps,
        }
    }

    /// Writes the knob onto a platform.
    pub fn set(&self, platform: &mut Platform, value: f64) {
        match self {
            Knob::GpuConvEff => platform.gpu.as_mut().expect("gpu").efficiency.conv = value,
            Knob::CpuConvEff => platform.cpu.efficiency.conv = value,
            Knob::GpuFcBwEff => platform.gpu.as_mut().expect("gpu").bw_efficiency.fc = value,
            Knob::CopyBwGbps => platform.memory.copy_bw_gbps = value,
        }
    }
}

/// The paper's headline targets the fit optimizes against.
#[derive(Debug, Clone)]
pub struct Targets {
    /// Figure 6: average speedup over the Jetson's own CPU.
    pub fig6_jetson_cpu_speedup: f64,
    /// Figure 8: average EdgeNN improvement over direct GPU execution (%).
    pub fig8_edgenn_improvement: f64,
    /// Figure 8: average memory-management improvement (%).
    pub fig8_memory_improvement: f64,
    /// Figure 9: average integrated copy proportion (%).
    pub fig9_integrated_copy: f64,
    /// Figure 12's crossover: VGG on the edge must be *slower* than the
    /// ~0.57 s cloud path (hinge constraint).
    pub fig12_vgg_crossover: bool,
    /// Table I shape: AlexNet's conv layers must gain at most this much
    /// from hybrid execution (% — the paper reports 0; a soft cap keeps
    /// the fit honest without demanding the unreachable exact zero).
    pub tab1_alexnet_conv_cap: f64,
}

impl Targets {
    /// The paper's published values.
    pub fn paper() -> Self {
        Self {
            fig6_jetson_cpu_speedup: 3.97,
            fig8_edgenn_improvement: 22.02,
            fig8_memory_improvement: 9.93,
            fig9_integrated_copy: 11.46,
            fig12_vgg_crossover: true,
            tab1_alexnet_conv_cap: 25.0,
        }
    }
}

/// Measured values of the four target metrics for one platform variant.
#[derive(Debug, Clone, Copy)]
pub struct Measured {
    /// Figure 6 metric.
    pub fig6: f64,
    /// Figure 8 EdgeNN metric.
    pub fig8_full: f64,
    /// Figure 8 memory metric.
    pub fig8_memory: f64,
    /// Figure 9 metric.
    pub fig9: f64,
    /// VGG latency on the edge (ms).
    pub fig12_vgg_edge_ms: f64,
    /// VGG latency via the cloud path (ms) — fixed by the server model
    /// and link constants, independent of the fitted knobs.
    pub fig12_vgg_cloud_ms: f64,
    /// AlexNet conv-layer average hybrid gain (%).
    pub tab1_alexnet_conv_gain: f64,
}

/// Evaluates the target metrics under `platform` (as the integrated
/// device), across all six benchmarks.
///
/// # Errors
/// Propagates simulation failures.
pub fn measure(platform: &Platform) -> Result<Measured> {
    let mut speedups = Vec::new();
    let mut full = Vec::new();
    let mut memory = Vec::new();
    let mut copies = Vec::new();
    let mut vgg_edge_ms = 0.0;
    let mut alexnet_conv_gain = 0.0;
    for kind in ModelKind::ALL {
        let graph = build(kind, ModelScale::Paper);
        let baseline = GpuOnly::new(platform).infer(&graph)?;
        let edgenn = EdgeNn::new(platform).infer(&graph)?;
        let mem_only =
            EdgeNn::with_config(platform, ExecutionConfig::memory_only()).infer(&graph)?;
        let cpu = CpuOnly::new(platform).infer(&graph)?;
        speedups.push(edgenn.speedup_over(&cpu));
        full.push(edgenn.improvement_over(&baseline) * 100.0);
        memory.push(mem_only.improvement_over(&baseline) * 100.0);
        copies.push(baseline.copy_proportion_clamped() * 100.0);
        if kind == ModelKind::Vgg16 {
            vgg_edge_ms = edgenn.total_us / 1e3;
        }
        if kind == ModelKind::AlexNet {
            // Table I shape: per-conv-layer gain of EdgeNN over the
            // zero-copy GPU-only run.
            let mut gains = Vec::new();
            for (base, hybrid) in mem_only.layers.iter().zip(edgenn.layers.iter()) {
                if base.class_tag == "conv" {
                    let old = base.kernel_us + base.memory_us;
                    let new = hybrid.kernel_us + hybrid.memory_us;
                    gains.push(((old - new) / old.max(1e-9) * 100.0).max(0.0));
                }
            }
            alexnet_conv_gain = arithmetic_mean(&gains);
        }
    }
    // The cloud side is independent of the fitted (edge) knobs.
    let server = edgenn_sim::platforms::rtx_2080ti_server();
    let vgg = build(ModelKind::Vgg16, ModelScale::Paper);
    let cloud = CloudOffload::new(&server).infer(&vgg)?;
    Ok(Measured {
        fig6: arithmetic_mean(&speedups),
        fig8_full: arithmetic_mean(&full),
        fig8_memory: arithmetic_mean(&memory),
        fig9: arithmetic_mean(&copies),
        fig12_vgg_edge_ms: vgg_edge_ms,
        fig12_vgg_cloud_ms: cloud.total_us / 1e3,
        tab1_alexnet_conv_gain: alexnet_conv_gain,
    })
}

/// Squared-log-error objective: scale-free, symmetric in over/undershoot.
pub fn objective(measured: &Measured, targets: &Targets) -> f64 {
    let term = |m: f64, t: f64| {
        let r = (m.max(1e-6) / t.max(1e-6)).ln();
        r * r
    };
    let mut score = term(measured.fig6, targets.fig6_jetson_cpu_speedup)
        + term(measured.fig8_full, targets.fig8_edgenn_improvement)
        + term(measured.fig8_memory, targets.fig8_memory_improvement)
        + term(measured.fig9, targets.fig9_integrated_copy);
    if targets.fig12_vgg_crossover && measured.fig12_vgg_edge_ms < measured.fig12_vgg_cloud_ms {
        // Hinge: breaking the crossover is heavily penalized.
        let gap = (measured.fig12_vgg_cloud_ms / measured.fig12_vgg_edge_ms.max(1e-6)).ln();
        score += 4.0 * gap * gap + 0.5;
    }
    if measured.tab1_alexnet_conv_gain > targets.tab1_alexnet_conv_cap {
        let excess = measured.tab1_alexnet_conv_gain / targets.tab1_alexnet_conv_cap;
        score += excess.ln().powi(2) + 0.5;
    }
    score
}

/// One coordinate-descent step: tries scaling each knob by the given
/// factors and keeps the best. Returns the improved platform and its
/// objective value.
///
/// # Errors
/// Propagates simulation failures.
pub fn descend(platform: &Platform, targets: &Targets, factors: &[f64]) -> Result<(Platform, f64)> {
    let mut best = platform.clone();
    let mut best_score = objective(&measure(&best)?, targets);
    for knob in Knob::ALL {
        let base = knob.get(&best);
        for &factor in factors {
            let mut candidate = best.clone();
            knob.set(&mut candidate, base * factor);
            let score = objective(&measure(&candidate)?, targets);
            if score < best_score {
                best_score = score;
                best = candidate;
            }
        }
    }
    Ok((best, best_score))
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgenn_sim::platforms::jetson_agx_xavier;

    #[test]
    fn knobs_read_and_write() {
        let mut p = jetson_agx_xavier();
        for knob in Knob::ALL {
            let v = knob.get(&p);
            knob.set(&mut p, v * 2.0);
            assert!((knob.get(&p) - v * 2.0).abs() < 1e-12, "{}", knob.name());
            knob.set(&mut p, v);
        }
    }

    #[test]
    fn shipped_calibration_fits_and_descent_improves_monotonically() {
        // The committed constants satisfy more shape constraints than the
        // numeric objective encodes (Table I per-class gains, Figure 11,
        // the Section V-F deltas), so we do not assert they are an
        // optimum of *this* objective — only that (a) they already fit
        // the headline targets decently and (b) the descent tool itself
        // is sound: it never returns a worse platform than it was given.
        let platform = jetson_agx_xavier();
        let targets = Targets::paper();
        let shipped = objective(&measure(&platform).unwrap(), &targets);
        assert!(
            shipped < 1.0,
            "the shipped constants drifted from the paper targets (objective {shipped})"
        );
        // The shipped fit must honor the hard shape constraints exactly.
        let measured = measure(&platform).unwrap();
        assert!(
            measured.fig12_vgg_edge_ms > measured.fig12_vgg_cloud_ms,
            "VGG crossover"
        );
        assert!(measured.tab1_alexnet_conv_gain < targets.tab1_alexnet_conv_cap);

        let (fitted, improved) = descend(&platform, &targets, &[0.7, 1.4]).unwrap();
        assert!(improved <= shipped + 1e-9, "descent must not regress");
        let remeasured = objective(&measure(&fitted).unwrap(), &targets);
        assert!(
            (remeasured - improved).abs() < 1e-9,
            "reported score must be real"
        );
    }

    #[test]
    fn objective_is_zero_at_the_targets() {
        let t = Targets::paper();
        let m = Measured {
            fig6: t.fig6_jetson_cpu_speedup,
            fig8_full: t.fig8_edgenn_improvement,
            fig8_memory: t.fig8_memory_improvement,
            fig9: t.fig9_integrated_copy,
            fig12_vgg_edge_ms: 650.0,
            fig12_vgg_cloud_ms: 570.0,
            tab1_alexnet_conv_gain: 10.0,
        };
        assert!(objective(&m, &t) < 1e-12);
        let off = Measured {
            fig6: t.fig6_jetson_cpu_speedup * 2.0,
            ..m
        };
        assert!(objective(&off, &t) > 0.1);
        // Breaking the crossover costs more than any smooth term.
        let broken = Measured {
            fig12_vgg_edge_ms: 100.0,
            fig12_vgg_cloud_ms: 570.0,
            ..m
        };
        assert!(objective(&broken, &t) > objective(&off, &t));
    }
}
