//! The functional-engine benchmark behind `BENCH_functional.json`.
//!
//! Measures, per bundled model (Tiny scale): the reference
//! single-threaded forward pass, the hybrid functional engine
//! ([`edgenn_core::runtime::functional::Executor`]) under the tuned
//! EdgeNN plan, and the batched steady state, together with the engine's
//! own overhead counters (pool tasks, queue wait, scratch-arena bytes).
//!
//! The JSON this emits is committed as a performance trajectory and
//! gated in CI: absolute times are machine-specific, so the gate
//! compares the **hybrid/reference ratio** (engine overhead relative to
//! raw kernel cost on the same machine) against the committed baseline,
//! with a configurable slack.

use edgenn_core::plan::{ExecutionConfig, Precision};
use edgenn_core::runtime::functional::Executor;
use edgenn_core::runtime::Runtime;
use edgenn_core::tuner::Tuner;
use edgenn_nn::graph::CompileOptions;
use edgenn_nn::models::{build, ModelKind, ModelScale};
use edgenn_obs::flight;
use edgenn_sim::platforms::jetson_agx_xavier;
use edgenn_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Schema identifier written into (and required from) the JSON file.
/// `v2` added the flight-recorder overhead columns (`flight_ns`,
/// `flight_dropped`); `v3` added the per-row `precision` field (each
/// model now carries an f32 and an int8 row, both measured against the
/// same f32 single-threaded reference) and the `int8_layers` engine
/// counter; `v4` runs the engine arms on the **compiled** graph
/// (fusion/folding/DCE + compile-time weight prepacking) against the
/// uncompiled single-threaded reference — `speedup` measures the full
/// stack, not just the engine — and adds the per-row
/// `nodes_pre`/`nodes_post` compiler deltas plus the `packed_bytes` and
/// `int8_gated` counters. The vendored serde derive has no field
/// defaults, so an older file fails to parse and must be regenerated
/// with `run`.
pub const SCHEMA: &str = "edgenn-bench-functional/v4";

/// Engine-overhead counters mirrored from the last measured run.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct EngineCounters {
    /// Tasks completed by pool workers.
    pub pool_tasks: u64,
    /// Tasks reclaimed and run inline by the joining thread.
    pub inline_tasks: u64,
    /// Nanoseconds tasks spent queued before starting.
    pub queue_wait_ns: u64,
    /// Scratch bytes that needed fresh heap allocation (steady state: 0).
    pub arena_fresh_bytes: u64,
    /// Scratch bytes served from the warm arena without allocating.
    pub arena_reused_bytes: u64,
    /// Layer executions that took the quantized int8 kernel path (0 on
    /// f32 rows; on int8 rows, `int8_layers + int8_gated` must be
    /// positive — every bundled model carries int8-capable layers).
    pub int8_layers: u64,
    /// Int8-capable layer executions an int8 plan deliberately kept in
    /// f32 because quantization loses on that layer shape (per-call
    /// quantize/requantize overhead beats the halved weight traffic on
    /// small dense layers — the committed FCNN int8 regression).
    pub int8_gated: u64,
    /// Weight bytes packed into GEMM/qgemm panel layouts at compile
    /// time, so steady-state inference does zero weight-packing work.
    pub packed_bytes: u64,
}

/// One model's measurements.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelRow {
    /// Model name (`fcnn`, `lenet5`, ...).
    pub model: String,
    /// Engine precision this row measured. Both rows of a model share
    /// the same f32 `reference_ns`, so the int8 row's `speedup` answers
    /// the paper-relevant question — does quantized hybrid execution
    /// beat the f32 baseline — not whether it beats a quantized one.
    pub precision: Precision,
    /// Best-of-N ns/iter of the reference single-threaded `graph.forward`.
    pub reference_ns: f64,
    /// Best-of-N ns/iter of the hybrid functional engine (warm session).
    pub hybrid_ns: f64,
    /// Best-of-N ns/iter of the same hybrid run with the flight
    /// recorder enabled — the always-on profiling cost, gated by
    /// [`overhead_gate`] against `hybrid_ns`.
    pub flight_ns: f64,
    /// Span records the recorder's rings overwrote during the
    /// `flight_ns` measurement (wrap-around, never blocking).
    pub flight_dropped: u64,
    /// Best-of-N ns/inference inside one `batch_execute` call.
    pub batch_ns: f64,
    /// Node count of the raw builder graph (incl. the input pseudo-node).
    pub nodes_pre: usize,
    /// Node count after the graph compiler's rewrite pipeline — the
    /// graph every timed arm actually executed. Must be < `nodes_pre`:
    /// every bundled model carries fusible activations or identities.
    pub nodes_post: usize,
    /// `reference_ns / hybrid_ns` (> 1 means the engine beats reference).
    pub speedup: f64,
    /// Engine counters of the final steady-state run.
    pub engine: EngineCounters,
}

/// The whole benchmark file.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchReport {
    /// Must equal [`SCHEMA`].
    pub schema: String,
    /// Timed iterations per measurement.
    pub iters: u32,
    /// Per-model rows, one per [`ModelKind`].
    pub models: Vec<ModelRow>,
}

/// Best (minimum) per-iteration time. The minimum is the standard
/// noise-robust estimator on shared machines: scheduler preemption and
/// background load only ever add time, so the fastest observed
/// iteration is the closest to the code's true cost — and the ratio of
/// two minima is stable enough to gate on where means are not.
fn best_ns<T>(iters: u32, mut f: impl FnMut() -> T) -> f64 {
    std::hint::black_box(f()); // warmup
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let start = std::time::Instant::now();
        std::hint::black_box(f());
        best = best.min(start.elapsed().as_secs_f64());
    }
    best * 1e9
}

/// One timed call of `f`, folded into the running minimum `best`.
fn fold_best<T>(best: &mut f64, mut f: impl FnMut() -> T) {
    let start = std::time::Instant::now();
    std::hint::black_box(f());
    *best = best.min(start.elapsed().as_secs_f64());
}

/// Runs the full measurement. `iters` trades precision for wall time
/// (CI smoke mode passes a small count).
///
/// # Panics
/// Panics when a bundled model fails to plan or execute — that is a bug,
/// not a measurement outcome.
#[must_use]
pub fn measure(iters: u32) -> BenchReport {
    // The recorder is process-global: make sure the recorder-off
    // columns really measure with it off, whatever ran before us.
    flight::disable();
    let platform = jetson_agx_xavier();
    let runtime = Runtime::new(&platform);
    let mut models = Vec::new();
    for kind in ModelKind::ALL {
        // Compile before tuning: the tuner plans over the rewritten DAG,
        // and both precisions' weights are packed once, here, so the
        // timed engine runs below do zero weight-packing work. The
        // reference arm stays the *uncompiled* single-threaded forward
        // — built fresh so it shares no prepacked layers with the
        // compiled graph — and the speedup therefore measures the full
        // stack (compiler + engine) against naive execution of the
        // model as constructed.
        let raw = build(kind, ModelScale::Tiny);
        let (graph, creport) =
            edgenn_nn::graph::compile(&build(kind, ModelScale::Tiny), &CompileOptions::int8())
                .expect("compile");
        let tuner = Tuner::new(&graph, &runtime).expect("tuner");
        let input = Tensor::random(graph.input_shape().dims(), 1.0, 7);
        let executor = Executor::new(&graph).expect("executor");
        let plans: Vec<_> = [Precision::F32, Precision::Int8]
            .into_iter()
            .map(|precision| {
                let mut config = ExecutionConfig::edgenn();
                config.precision = precision;
                (
                    precision,
                    tuner.plan(&graph, &runtime, config).expect("plan"),
                )
            })
            .collect();

        // Every timed arm of one model — the shared f32 single-threaded
        // reference plus each precision's hybrid time recorder-off and
        // recorder-on — is folded from ONE alternating loop. The arms
        // share every iteration's machine conditions, so slow drift
        // (thermal throttle, a noisy CI neighbour arriving between
        // phases) cancels out of the speedup and overhead ratios instead
        // of masquerading as engine cost or recorder tax — which it
        // measurably does when the arms run as separate phases. The
        // recorder-on arm records node/pack/compute/queue spans into the
        // per-worker rings; its delta over recorder-off is the always-on
        // profiling tax that `overhead_gate` bounds.
        flight::disable();
        std::hint::black_box(raw.forward(&input).expect("reference")); // warmup
        let mut dropped = [0u64; 2];
        for (pi, (_, plan)) in plans.iter().enumerate() {
            std::hint::black_box(executor.execute(plan, &input).expect("hybrid")); // warmup, off
            flight::enable();
            let before = flight::dropped_records();
            std::hint::black_box(executor.execute(plan, &input).expect("hybrid")); // warmup, on
            dropped[pi] += flight::dropped_records() - before;
            flight::disable();
        }
        let mut reference = f64::INFINITY;
        let mut off_on = [[f64::INFINITY; 2]; 2]; // [precision][recorder off, on]
        for _ in 0..iters {
            fold_best(&mut reference, || raw.forward(&input).expect("reference"));
            for (pi, (_, plan)) in plans.iter().enumerate() {
                fold_best(&mut off_on[pi][0], || {
                    executor.execute(plan, &input).expect("hybrid")
                });
                flight::enable();
                let before = flight::dropped_records();
                fold_best(&mut off_on[pi][1], || {
                    executor.execute(plan, &input).expect("hybrid")
                });
                dropped[pi] += flight::dropped_records() - before;
                flight::disable();
            }
        }
        let reference_ns = reference * 1e9;

        for (pi, (precision, plan)) in plans.iter().enumerate() {
            // Batched steady state: one pool spin-up for the whole batch.
            let batch: Vec<Tensor> = (0..4)
                .map(|i| Tensor::random(graph.input_shape().dims(), 1.0, 20 + i))
                .collect();
            let batch_ns = best_ns(iters.div_ceil(4), || {
                executor.batch_execute(plan, &batch).expect("batch")
            }) / batch.len() as f64;

            // A final warm run for the steady-state engine counters.
            let outcome = executor.execute(plan, &input).expect("stats run");
            let e = outcome.engine;
            let hybrid_ns = off_on[pi][0] * 1e9;
            models.push(ModelRow {
                model: kind.name().to_string(),
                precision: *precision,
                reference_ns,
                hybrid_ns,
                flight_ns: off_on[pi][1] * 1e9,
                flight_dropped: dropped[pi],
                batch_ns,
                nodes_pre: creport.nodes_pre,
                nodes_post: creport.nodes_post,
                speedup: reference_ns / hybrid_ns,
                engine: EngineCounters {
                    pool_tasks: e.pool_tasks,
                    inline_tasks: e.inline_tasks,
                    queue_wait_ns: e.queue_wait_ns,
                    arena_fresh_bytes: e.arena_fresh_bytes,
                    arena_reused_bytes: e.arena_reused_bytes,
                    int8_layers: outcome.int8_layers as u64,
                    int8_gated: outcome.int8_gated as u64,
                    packed_bytes: creport.prepacked_bytes,
                },
            });
        }
    }
    BenchReport {
        schema: SCHEMA.to_string(),
        iters,
        models,
    }
}

/// Validates a parsed report against the schema expectations.
///
/// # Errors
/// Returns a human-readable description of the first violation.
pub fn validate(report: &BenchReport) -> Result<(), String> {
    if report.schema != SCHEMA {
        return Err(format!(
            "schema mismatch: expected {SCHEMA:?}, got {:?}",
            report.schema
        ));
    }
    if report.iters == 0 {
        return Err("iters must be positive".to_string());
    }
    if report.models.is_empty() {
        return Err("no model rows".to_string());
    }
    for row in &report.models {
        if row.model.is_empty() {
            return Err("empty model name".to_string());
        }
        for (field, value) in [
            ("reference_ns", row.reference_ns),
            ("hybrid_ns", row.hybrid_ns),
            ("flight_ns", row.flight_ns),
            ("batch_ns", row.batch_ns),
            ("speedup", row.speedup),
        ] {
            if !value.is_finite() || value <= 0.0 {
                return Err(format!("{}: {field} must be finite and > 0", row.model));
            }
        }
        let recomputed = row.reference_ns / row.hybrid_ns;
        if (row.speedup - recomputed).abs() > 1e-6 * recomputed.abs() {
            return Err(format!(
                "{}: speedup {} inconsistent with reference/hybrid = {recomputed}",
                row.model, row.speedup
            ));
        }
        if row.nodes_post >= row.nodes_pre {
            return Err(format!(
                "{}: compiler removed nothing ({} -> {} nodes) — every bundled \
                 model carries fusible activations or identities",
                row.model, row.nodes_pre, row.nodes_post
            ));
        }
        match row.precision {
            Precision::Int8 if row.engine.int8_layers + row.engine.int8_gated == 0 => {
                return Err(format!(
                    "{}: int8 row ran no quantized layers and gated none — every \
                     bundled model carries int8-capable conv/dense layers",
                    row.model
                ));
            }
            Precision::F32 if row.engine.int8_layers > 0 || row.engine.int8_gated > 0 => {
                return Err(format!(
                    "{}: f32 row reports {} int8 / {} gated layer executions",
                    row.model, row.engine.int8_layers, row.engine.int8_gated
                ));
            }
            _ => {}
        }
    }
    Ok(())
}

/// Models whose baseline reference pass is faster than this are exempt
/// from the gate. Below a few tens of microseconds the minimum-of-N
/// estimator still carries scheduler-jitter noise comparable to the
/// measurement itself (a single preempted cache line moves a 2 µs model
/// by double-digit percents), so ratios on such models flap under CI
/// load. The larger models are the meaningful regression detectors.
pub const GATE_NOISE_FLOOR_NS: f64 = 20_000.0;

/// Gates `measured` against `baseline`: for every model present in both,
/// the hybrid/reference ratio (machine-independent engine overhead) must
/// not exceed the baseline's ratio by more than `slack` (0.25 = 25%).
/// Models whose baseline reference time sits under
/// [`GATE_NOISE_FLOOR_NS`] are skipped as too noise-dominated to gate.
///
/// # Errors
/// Returns a description of every regressed model.
pub fn gate(measured: &BenchReport, baseline: &BenchReport, slack: f64) -> Result<(), String> {
    let mut failures = Vec::new();
    for new in &measured.models {
        let Some(old) = baseline
            .models
            .iter()
            .find(|m| m.model == new.model && m.precision == new.precision)
        else {
            continue; // model/precision added since the baseline: nothing to gate
        };
        if old.reference_ns < GATE_NOISE_FLOOR_NS {
            continue; // sub-floor model: timer jitter dwarfs the signal
        }
        let new_ratio = new.hybrid_ns / new.reference_ns;
        let old_ratio = old.hybrid_ns / old.reference_ns;
        if new_ratio > old_ratio * (1.0 + slack) {
            failures.push(format!(
                "{} ({}): hybrid/reference ratio {new_ratio:.3} exceeds baseline \
                 {old_ratio:.3} by more than {:.0}%",
                new.model,
                new.precision,
                slack * 100.0
            ));
        }
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures.join("; "))
    }
}

/// Bounds the always-on recorder's cost: summed across every model row,
/// the recorder-on time must stay within `budget` (0.05 = 5%) of the
/// recorder-off time. The sum is gated rather than each row because the
/// recorder's cost is tens of nanoseconds per span — on a microsecond
/// model that is a real percentage but far below timer jitter, while
/// the aggregate (dominated by the larger models) is stable under CI
/// load. Per-row numbers stay in the report for inspection.
///
/// # Errors
/// Returns a description of the aggregate overshoot.
pub fn overhead_gate(report: &BenchReport, budget: f64) -> Result<(), String> {
    let off: f64 = report.models.iter().map(|m| m.hybrid_ns).sum();
    let on: f64 = report.models.iter().map(|m| m.flight_ns).sum();
    if off <= 0.0 {
        return Err("no recorder-off time to compare against".to_string());
    }
    let overhead = on / off - 1.0;
    if overhead > budget {
        return Err(format!(
            "flight recorder overhead {:.1}% exceeds the {:.1}% budget \
             (recorder on {on:.0} ns vs off {off:.0} ns summed over {} models)",
            overhead * 100.0,
            budget * 100.0,
            report.models.len()
        ));
    }
    Ok(())
}

/// Gates flight-recorder ring sizing: no measured row may have dropped
/// records — the executor reserves ring capacity from the node count at
/// construction, so any drop means the estimate fell behind reality
/// (the old fixed rings lost ~5k records per VGG request).
///
/// # Errors
/// Returns a description of every overflowing row.
pub fn drop_gate(report: &BenchReport) -> Result<(), String> {
    let failures: Vec<String> = report
        .models
        .iter()
        .filter(|m| m.flight_dropped > 0)
        .map(|m| {
            format!(
                "{} ({}): {} flight records dropped",
                m.model, m.precision, m.flight_dropped
            )
        })
        .collect();
    if failures.is_empty() {
        Ok(())
    } else {
        Err(format!("flight rings overflowed — {}", failures.join("; ")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(model: &str, reference_ns: f64, hybrid_ns: f64) -> ModelRow {
        ModelRow {
            model: model.to_string(),
            precision: Precision::F32,
            reference_ns,
            hybrid_ns,
            flight_ns: hybrid_ns * 1.02,
            flight_dropped: 0,
            batch_ns: hybrid_ns,
            nodes_pre: 14,
            nodes_post: 10,
            speedup: reference_ns / hybrid_ns,
            engine: EngineCounters::default(),
        }
    }

    fn int8_row(model: &str, reference_ns: f64, hybrid_ns: f64) -> ModelRow {
        let mut r = row(model, reference_ns, hybrid_ns);
        r.precision = Precision::Int8;
        r.engine.int8_layers = 4;
        r
    }

    fn report(rows: Vec<ModelRow>) -> BenchReport {
        BenchReport {
            schema: SCHEMA.to_string(),
            iters: 3,
            models: rows,
        }
    }

    #[test]
    fn validate_accepts_a_consistent_report() {
        let r = report(vec![row("fcnn", 4000.0, 2000.0)]);
        assert_eq!(validate(&r), Ok(()));
    }

    #[test]
    fn validate_rejects_schema_and_value_violations() {
        let mut r = report(vec![row("fcnn", 4000.0, 2000.0)]);
        r.schema = "other/v9".to_string();
        assert!(validate(&r).unwrap_err().contains("schema"));

        let r = report(vec![]);
        assert!(validate(&r).unwrap_err().contains("no model rows"));

        let mut r = report(vec![row("fcnn", 4000.0, 2000.0)]);
        r.models[0].hybrid_ns = -1.0;
        assert!(validate(&r).is_err());

        let mut r = report(vec![row("fcnn", 4000.0, 2000.0)]);
        r.models[0].speedup = 9.0;
        assert!(validate(&r).unwrap_err().contains("inconsistent"));
    }

    #[test]
    fn gate_passes_within_slack_and_fails_beyond_it() {
        let baseline = report(vec![row("resnet18", 50_000.0, 100_000.0)]); // ratio 2.0
        let ok = report(vec![row("resnet18", 50_000.0, 120_000.0)]); // ratio 2.4 < 2.5
        assert_eq!(gate(&ok, &baseline, 0.25), Ok(()));
        let bad = report(vec![row("resnet18", 50_000.0, 130_000.0)]); // ratio 2.6 > 2.5
        assert!(gate(&bad, &baseline, 0.25)
            .unwrap_err()
            .contains("resnet18"));
    }

    #[test]
    fn gate_skips_models_under_the_noise_floor() {
        // Baseline reference 2 µs < 20 µs floor: even a 10x blow-up in
        // the measured ratio must not fail the gate.
        let baseline = report(vec![row("fcnn", 2000.0, 2000.0)]);
        let measured = report(vec![row("fcnn", 2000.0, 20_000.0)]);
        assert_eq!(gate(&measured, &baseline, 0.25), Ok(()));
    }

    #[test]
    fn gate_ignores_models_missing_from_the_baseline() {
        let baseline = report(vec![row("fcnn", 1000.0, 1000.0)]);
        let measured = report(vec![row("brand_new", 1000.0, 9000.0)]);
        assert_eq!(gate(&measured, &baseline, 0.25), Ok(()));
    }

    #[test]
    fn overhead_gate_bounds_the_aggregate_recorder_tax() {
        // Rows at +2% each: aggregate 2% < 5% budget.
        let r = report(vec![
            row("fcnn", 4000.0, 2000.0),
            row("resnet18", 900_000.0, 800_000.0),
        ]);
        assert_eq!(overhead_gate(&r, 0.05), Ok(()));

        // Blow up the dominant model's recorder-on time: aggregate busts.
        let mut bad = r.clone();
        bad.models[1].flight_ns = bad.models[1].hybrid_ns * 1.20;
        let err = overhead_gate(&bad, 0.05).unwrap_err();
        assert!(err.contains("exceeds"), "{err}");

        // A tiny model regressing hard must NOT fail the aggregate: it
        // is exactly the noise the per-row gate would flap on.
        let mut noisy = r;
        noisy.models[0].flight_ns = noisy.models[0].hybrid_ns * 3.0;
        assert_eq!(overhead_gate(&noisy, 0.05), Ok(()));
    }

    #[test]
    fn validate_checks_int8_rows_ran_quantized_layers() {
        let mut r = report(vec![int8_row("fcnn", 4000.0, 2000.0)]);
        assert_eq!(validate(&r), Ok(()));
        r.models[0].engine.int8_layers = 0;
        assert!(validate(&r).unwrap_err().contains("no quantized layers"));

        // A fully gated int8 row is legal: the gate deliberately keeps
        // shapes where quantization loses (FCNN's small dense layers) in
        // f32, and that decision must be representable in the report.
        r.models[0].engine.int8_gated = 4;
        assert_eq!(validate(&r), Ok(()));

        let mut r = report(vec![row("fcnn", 4000.0, 2000.0)]);
        r.models[0].engine.int8_layers = 3;
        assert!(validate(&r).unwrap_err().contains("f32 row"));

        let mut r = report(vec![row("fcnn", 4000.0, 2000.0)]);
        r.models[0].engine.int8_gated = 2;
        assert!(validate(&r).unwrap_err().contains("f32 row"));
    }

    #[test]
    fn validate_requires_the_compiler_to_have_removed_nodes() {
        let mut r = report(vec![row("fcnn", 4000.0, 2000.0)]);
        r.models[0].nodes_post = r.models[0].nodes_pre;
        assert!(validate(&r).unwrap_err().contains("removed nothing"));
    }

    #[test]
    fn gate_matches_rows_by_model_and_precision() {
        // The f32 row regresses 3x but only the int8 row exists in the
        // baseline at that ratio: rows must never cross precisions.
        let baseline = report(vec![
            row("resnet18", 50_000.0, 200_000.0),     // f32 ratio 4.0
            int8_row("resnet18", 50_000.0, 50_000.0), // int8 ratio 1.0
        ]);
        let measured = report(vec![
            row("resnet18", 50_000.0, 220_000.0),      // 4.4 < 4.0 * 1.25
            int8_row("resnet18", 50_000.0, 100_000.0), // 2.0 > 1.0 * 1.25
        ]);
        let err = gate(&measured, &baseline, 0.25).unwrap_err();
        assert!(err.contains("int8"), "{err}");
        assert!(!err.contains("f32"), "{err}");
    }

    #[test]
    fn drop_gate_names_every_overflowing_row() {
        let mut r = report(vec![
            row("vgg16", 50_000.0, 50_000.0),
            int8_row("vgg16", 50_000.0, 50_000.0),
        ]);
        assert_eq!(drop_gate(&r), Ok(()));
        r.models[1].flight_dropped = 5115;
        let err = drop_gate(&r).unwrap_err();
        assert!(err.contains("vgg16 (int8): 5115"), "{err}");
    }

    #[test]
    fn validate_rejects_nonpositive_flight_time() {
        let mut r = report(vec![row("fcnn", 4000.0, 2000.0)]);
        r.models[0].flight_ns = 0.0;
        assert!(validate(&r).unwrap_err().contains("flight_ns"));
    }

    #[test]
    fn report_round_trips_through_json() {
        let r = report(vec![row("fcnn", 4000.0, 2000.0)]);
        let text = serde_json::to_string_pretty(&r).unwrap();
        let back: BenchReport = serde_json::from_str(&text).unwrap();
        assert_eq!(validate(&back), Ok(()));
        assert_eq!(back.models[0].model, "fcnn");
    }
}
