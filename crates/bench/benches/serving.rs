//! Serving-layer overhead: what the multi-tenant front end (admission,
//! bounded queue, weighted-fair batching, SLO guard, typed event log)
//! costs on top of handing the same work straight to
//! `Executor::batch_execute`.
//!
//! Plain wall-clock harness (no external bench framework so the
//! workspace builds offline). Run with `cargo bench -p edgenn-bench`.

use edgenn_bench::timing::time;
use edgenn_core::prelude::*;
use edgenn_core::runtime::functional::Executor;
use edgenn_core::runtime::Runtime;
use edgenn_serve::{run_siege, SiegeConfig};
use edgenn_sim::platforms;
use edgenn_tensor::Tensor;

fn main() {
    let jetson = platforms::jetson_agx_xavier();
    let runtime = Runtime::new(&jetson);

    // Baseline: the raw engine on an already-formed batch — no
    // admission, no batching policy, no log.
    let tiny = build(ModelKind::Fcnn, ModelScale::Tiny);
    let tuner = Tuner::new(&tiny, &runtime).unwrap();
    let plan = tuner
        .plan(&tiny, &runtime, ExecutionConfig::edgenn())
        .unwrap();
    let inputs: Vec<Tensor> = (0..4)
        .map(|slot| Tensor::random(tiny.input_shape().dims(), 1.0, 42 + slot))
        .collect();
    let exec = Executor::new(&tiny).unwrap();
    let direct_us = time("direct/batch_execute x4 (fcnn tiny)", 20, || {
        exec.batch_execute(&plan, &inputs).unwrap()
    });

    // The full pipeline in virtual time, faults off so both sides run
    // the same fault-free kernels. Every completed request crossed
    // admission, the bounded pending set, a weighted-fair pick, the SLO
    // guard, and the typed log.
    let mut cfg = SiegeConfig::ci(42);
    cfg.models = vec![ModelKind::Fcnn];
    cfg.duration_us = 20_000.0;
    cfg.faults = false;
    let probe = run_siege(&cfg, None).unwrap();
    let completed: usize = probe.tenants.iter().map(|t| t.completed).sum();
    let batches = probe.batches.max(1);
    let siege_us = time("serving/siege 20ms virtual (fcnn)", 5, || {
        run_siege(&cfg, None).unwrap()
    });
    // A zero-duration run prices scenario construction (plan ladder,
    // references) so the per-batch figure isolates the serving loop.
    let mut setup_cfg = cfg.clone();
    setup_cfg.duration_us = 0.0;
    let setup_us = time("serving/setup only (plan ladder + refs)", 5, || {
        run_siege(&setup_cfg, None).unwrap()
    });

    let per_batch = (siege_us - setup_us).max(0.0) / batches as f64;
    let overhead = per_batch - direct_us;
    println!(
        "serving layer: {completed} request(s) in {batches} batch(es); \
         {per_batch:.1} us/batch vs {direct_us:.1} us direct \
         ({overhead:.1} us pipeline overhead per batch)"
    );
}
