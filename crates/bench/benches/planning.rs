//! Criterion benchmarks of EdgeNN's planning machinery: profiling,
//! plan construction (the DP + Eq. 4 evaluations), and one analytic
//! simulation pass — the costs a deployment pays per tuning round.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use edgenn_core::prelude::*;
use edgenn_core::runtime::Runtime;
use edgenn_sim::platforms;

fn bench_profile(c: &mut Criterion) {
    let jetson = platforms::jetson_agx_xavier();
    let runtime = Runtime::new(&jetson);
    let mut group = c.benchmark_group("tuner_profile");
    for kind in [ModelKind::LeNet, ModelKind::SqueezeNet, ModelKind::Vgg16] {
        let graph = build(kind, ModelScale::Paper);
        group.bench_with_input(BenchmarkId::from_parameter(kind.name()), &graph, |b, g| {
            b.iter(|| Tuner::new(black_box(g), &runtime).unwrap());
        });
    }
    group.finish();
}

fn bench_plan(c: &mut Criterion) {
    let jetson = platforms::jetson_agx_xavier();
    let runtime = Runtime::new(&jetson);
    let mut group = c.benchmark_group("tuner_plan");
    for kind in [ModelKind::AlexNet, ModelKind::SqueezeNet, ModelKind::ResNet18] {
        let graph = build(kind, ModelScale::Paper);
        let tuner = Tuner::new(&graph, &runtime).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(kind.name()), &graph, |b, g| {
            b.iter(|| tuner.plan(black_box(g), &runtime, ExecutionConfig::edgenn()).unwrap());
        });
    }
    group.finish();
}

fn bench_simulate(c: &mut Criterion) {
    let jetson = platforms::jetson_agx_xavier();
    let runtime = Runtime::new(&jetson);
    let mut group = c.benchmark_group("simulate");
    for kind in [ModelKind::AlexNet, ModelKind::SqueezeNet] {
        let graph = build(kind, ModelScale::Paper);
        let tuner = Tuner::new(&graph, &runtime).unwrap();
        let plan = tuner.plan(&graph, &runtime, ExecutionConfig::edgenn()).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(kind.name()), &graph, |b, g| {
            b.iter(|| runtime.simulate(black_box(g), &plan).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_profile, bench_plan, bench_simulate);
criterion_main!(benches);
