//! Timing of EdgeNN's planning machinery: profiling, plan construction
//! (the DP + Eq. 4 evaluations), and one analytic simulation pass — the
//! costs a deployment pays per tuning round.
//!
//! Plain wall-clock harness (no external bench framework so the
//! workspace builds offline). Run with `cargo bench -p edgenn-bench`.

use edgenn_bench::timing::time;
use edgenn_core::prelude::*;
use edgenn_core::runtime::Runtime;
use edgenn_sim::platforms;

fn main() {
    let jetson = platforms::jetson_agx_xavier();
    let runtime = Runtime::new(&jetson);

    for kind in [ModelKind::LeNet, ModelKind::SqueezeNet, ModelKind::Vgg16] {
        let graph = build(kind, ModelScale::Paper);
        time(&format!("tuner_profile/{}", kind.name()), 20, || {
            Tuner::new(&graph, &runtime).unwrap()
        });
    }

    for kind in [
        ModelKind::AlexNet,
        ModelKind::SqueezeNet,
        ModelKind::ResNet18,
    ] {
        let graph = build(kind, ModelScale::Paper);
        let tuner = Tuner::new(&graph, &runtime).unwrap();
        time(&format!("tuner_plan/{}", kind.name()), 20, || {
            tuner
                .plan(&graph, &runtime, ExecutionConfig::edgenn())
                .unwrap()
        });
        let plan = tuner
            .plan(&graph, &runtime, ExecutionConfig::edgenn())
            .unwrap();
        time(&format!("simulate/{}", kind.name()), 20, || {
            runtime.simulate(&graph, &plan).unwrap()
        });
    }
}
