//! Microbenchmarks for the tensor substrate's hot kernels: GEMM (the
//! conv lowering target), mat-vec (fc layers at batch 1), and im2col
//! (the conv patch expansion).
//!
//! Plain wall-clock harness (no external bench framework so the
//! workspace builds offline). Run with `cargo bench -p edgenn-bench`.

use edgenn_bench::timing::time;
use edgenn_tensor::{gemm, im2col, matvec, Conv2dGeometry, Tensor};

fn main() {
    for &n in &[32usize, 64, 128] {
        let a = Tensor::random(&[n, n], 1.0, 1);
        let b = Tensor::random(&[n, n], 1.0, 2);
        time(&format!("gemm/{n}"), 50, || gemm(&a, &b).unwrap());
    }

    // LeNet fc1 (120x400) and an AlexNet-fc8-like slice (1000x4096).
    for &(m, k) in &[(120usize, 400usize), (1000, 4096)] {
        let a = Tensor::random(&[m, k], 1.0, 3);
        let x = Tensor::random(&[k], 1.0, 4);
        time(&format!("matvec/{m}x{k}"), 50, || matvec(&a, &x).unwrap());
    }

    // LeNet conv2 geometry and a mid-size VGG-style geometry.
    let cases = [
        ("lenet_conv2", 6usize, 14usize, 5usize, 1usize, 0usize),
        ("vgg_block3", 64, 28, 3, 1, 1),
    ];
    for (name, c_in, hw, k, s, p) in cases {
        let input = Tensor::random(&[c_in, hw, hw], 1.0, 5);
        let geometry = Conv2dGeometry {
            in_channels: c_in,
            in_h: hw,
            in_w: hw,
            kernel_h: k,
            kernel_w: k,
            stride_h: s,
            stride_w: s,
            pad_h: p,
            pad_w: p,
        };
        time(&format!("im2col/{name}"), 50, || {
            im2col(&input, &geometry).unwrap()
        });
    }
}
