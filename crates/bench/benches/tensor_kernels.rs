//! Criterion microbenchmarks for the tensor substrate's hot kernels:
//! GEMM (the conv lowering target), mat-vec (fc layers at batch 1), and
//! im2col (the conv patch expansion).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use edgenn_tensor::{gemm, im2col, matvec, Conv2dGeometry, Tensor};

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm");
    for &n in &[32usize, 64, 128] {
        let a = Tensor::random(&[n, n], 1.0, 1);
        let b = Tensor::random(&[n, n], 1.0, 2);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| gemm(black_box(&a), black_box(&b)).unwrap());
        });
    }
    group.finish();
}

fn bench_matvec(c: &mut Criterion) {
    let mut group = c.benchmark_group("matvec");
    // LeNet fc1 (120x400) and an AlexNet-fc8-like slice (1000x4096).
    for &(m, k) in &[(120usize, 400usize), (1000, 4096)] {
        let a = Tensor::random(&[m, k], 1.0, 3);
        let x = Tensor::random(&[k], 1.0, 4);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{m}x{k}")),
            &(m, k),
            |bench, _| {
                bench.iter(|| matvec(black_box(&a), black_box(&x)).unwrap());
            },
        );
    }
    group.finish();
}

fn bench_im2col(c: &mut Criterion) {
    let mut group = c.benchmark_group("im2col");
    // LeNet conv2 geometry and a mid-size VGG-style geometry.
    let cases = [
        ("lenet_conv2", 6usize, 14usize, 5usize, 1usize, 0usize),
        ("vgg_block3", 64, 28, 3, 1, 1),
    ];
    for (name, c_in, hw, k, s, p) in cases {
        let input = Tensor::random(&[c_in, hw, hw], 1.0, 5);
        let geometry = Conv2dGeometry {
            in_channels: c_in,
            in_h: hw,
            in_w: hw,
            kernel_h: k,
            kernel_w: k,
            stride_h: s,
            stride_w: s,
            pad_h: p,
            pad_w: p,
        };
        group.bench_function(name, |bench| {
            bench.iter(|| im2col(black_box(&input), black_box(&geometry)).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_gemm, bench_matvec, bench_im2col);
criterion_main!(benches);
