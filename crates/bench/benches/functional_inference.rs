//! Criterion benchmarks of the functional inference engine: reference
//! single-threaded forward passes vs the tuned hybrid (multi-threaded
//! partition + merge) execution, on the tiny model variants.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use edgenn_core::prelude::*;
use edgenn_core::runtime::functional;
use edgenn_sim::platforms;
use edgenn_tensor::Tensor;

fn bench_reference_forward(c: &mut Criterion) {
    let mut group = c.benchmark_group("reference_forward");
    for kind in ModelKind::ALL {
        let graph = build(kind, ModelScale::Tiny);
        let input = Tensor::random(graph.input_shape().dims(), 1.0, 7);
        group.bench_with_input(BenchmarkId::from_parameter(kind.name()), &graph, |b, g| {
            b.iter(|| g.forward(black_box(&input)).unwrap());
        });
    }
    group.finish();
}

fn bench_hybrid_forward(c: &mut Criterion) {
    let jetson = platforms::jetson_agx_xavier();
    let mut group = c.benchmark_group("hybrid_forward");
    for kind in [ModelKind::Fcnn, ModelKind::SqueezeNet, ModelKind::ResNet18] {
        let graph = build(kind, ModelScale::Tiny);
        let plan = EdgeNn::new(&jetson).plan(&graph).unwrap();
        let input = Tensor::random(graph.input_shape().dims(), 1.0, 7);
        group.bench_with_input(BenchmarkId::from_parameter(kind.name()), &graph, |b, g| {
            b.iter(|| functional::execute(black_box(g), &plan, &input).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_reference_forward, bench_hybrid_forward);
criterion_main!(benches);
