//! Timing of the functional inference engine: reference single-threaded
//! forward passes vs the tuned hybrid (multi-threaded partition + merge)
//! execution, on the tiny model variants.
//!
//! Plain wall-clock harness (no external bench framework so the
//! workspace builds offline). Run with `cargo bench -p edgenn-bench`.

use edgenn_bench::timing::time;
use edgenn_core::prelude::*;
use edgenn_core::runtime::functional;
use edgenn_sim::platforms;
use edgenn_tensor::Tensor;

fn main() {
    for kind in ModelKind::ALL {
        let graph = build(kind, ModelScale::Tiny);
        let input = Tensor::random(graph.input_shape().dims(), 1.0, 7);
        time(&format!("reference_forward/{}", kind.name()), 20, || {
            graph.forward(&input).unwrap()
        });
    }

    let jetson = platforms::jetson_agx_xavier();
    for kind in [ModelKind::Fcnn, ModelKind::SqueezeNet, ModelKind::ResNet18] {
        let graph = build(kind, ModelScale::Tiny);
        let plan = EdgeNn::new(&jetson).plan(&graph).unwrap();
        let input = Tensor::random(graph.input_shape().dims(), 1.0, 7);
        // One-shot path: includes session setup/teardown every call.
        time(&format!("hybrid_forward/{}", kind.name()), 20, || {
            functional::execute(&graph, &plan, &input).unwrap()
        });
        // Warm session: the pool and scratch arenas are reused, which is
        // how a deployed pipeline would run (see Executor::batch_execute).
        let executor = functional::Executor::new(&graph).unwrap();
        time(&format!("hybrid_session/{}", kind.name()), 20, || {
            executor.execute(&plan, &input).unwrap()
        });
    }
}
