//! # edgenn-serve
//!
//! The multi-tenant serving front-end over the functional execution
//! engine: the ROADMAP's "millions of users" pillar. One shared SoC
//! runs many models for many tenants; this crate is the front door
//! that stays up when requests arrive faster than they drain.
//!
//! The pipeline a request crosses (see `docs/serving.md` for the full
//! state machine):
//!
//! 1. **Admission** ([`admission`]) — a per-tenant token bucket
//!    (sustained rate + burst) and an in-flight cap, so one hot tenant
//!    cannot starve the rest. Rejections are explicit and typed
//!    ([`events::RejectReason`]) and carry a `retry_after_us` hint.
//! 2. **Bounded ingress** ([`queue`] for the real-time server,
//!    [`batcher`]'s bounded pending set for the deterministic path) —
//!    the queue never grows without bound; overflow is backpressure,
//!    not memory growth, and the high-water mark is tracked so CI can
//!    assert the bound held.
//! 3. **Weighted-fair dynamic batching** ([`batcher`]) — same-model
//!    same-precision requests coalesce into one
//!    `Executor::batch_execute` under a max-batch/max-delay policy;
//!    tenants are served min-virtual-time first (start-time fair
//!    queueing), every pick replayable by the `edgenn-check` EC07x
//!    tier.
//! 4. **SLO guard** ([`siege`], [`server`]) — when realized queue wait
//!    plus the tuner's predicted latency threatens a deadline, the
//!    batch degrades hybrid→single-processor (and f32→int8 where the
//!    model's layers make int8 worthwhile) instead of missing it; a
//!    request is shed (typed) only when no ladder variant can save it.
//!
//! Every decision lands as a typed [`events::ServeEvent`] in the
//! admission log, as a `SinkEvent::Serve` in the obs registry, and as
//! an `admission`/`batch_form`/`degrade`/`shed` stage in the flight
//! recorder.
//!
//! [`siege::run_siege`] is the gate: a seeded, deterministic
//! closed+open-loop load generator in virtual time whose formed batches
//! execute for real (tiny-scale graphs, PR 4 fault injection active)
//! and must reproduce the fault-free reference bitwise.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod admission;
pub mod batcher;
pub mod events;
pub mod queue;
pub mod server;
pub mod siege;

pub use admission::{AdmissionController, TenantConfig, TokenBucket};
pub use batcher::{Batch, BatchPolicy, Batcher, PlanVariant, Request};
pub use events::{AdmissionLog, RejectReason, ServeEvent, ServeEventKind};
pub use queue::{BoundedQueue, PushError};
pub use server::{run_server, ServeConfig};
pub use siege::{
    run_siege, LoadMode, ModelStats, SiegeConfig, SiegeReport, TenantLoad, TenantStats,
};
