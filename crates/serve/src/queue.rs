//! The bounded, condvar-parked ingress queue.
//!
//! This is the real-time server's front buffer: producers (client
//! threads) push admitted requests, the dispatcher thread parks on the
//! condvar until work or a batching deadline arrives. Two properties
//! are load-bearing:
//!
//! * **Bounded, always.** `try_push` on a full queue fails with a
//!   typed [`PushError::Full`] carrying a `retry_after_us` hint — the
//!   queue never grows past its capacity, so overload turns into
//!   explicit backpressure instead of memory growth. The high-water
//!   mark is tracked and asserted against the capacity in CI.
//! * **Parked, not spinning.** The consumer waits on a condvar with a
//!   deadline (the batcher's next max-delay expiry), so an idle server
//!   burns no CPU the engine could use.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::Duration;

/// Why a push was refused.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PushError {
    /// The queue is at capacity. Retry after the hinted backoff.
    Full {
        /// Estimated time until a slot frees (us): current depth times
        /// the caller-provided per-item drain estimate.
        retry_after_us: f64,
    },
    /// The queue was closed; no further work is accepted.
    Closed,
}

struct QueueState<T> {
    items: VecDeque<T>,
    capacity: usize,
    high_water: usize,
    closed: bool,
}

/// A bounded MPSC/MPMC queue with condvar parking and backpressure.
pub struct BoundedQueue<T> {
    state: Mutex<QueueState<T>>,
    not_empty: Condvar,
}

impl<T> BoundedQueue<T> {
    /// A queue refusing pushes beyond `capacity` items.
    ///
    /// # Panics
    /// Panics if `capacity` is zero (a queue that can hold nothing
    /// cannot serve anything).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be at least 1");
        BoundedQueue {
            state: Mutex::new(QueueState {
                items: VecDeque::with_capacity(capacity),
                capacity,
                high_water: 0,
                closed: false,
            }),
            not_empty: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, QueueState<T>> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Enqueues `item`, or refuses with typed backpressure.
    ///
    /// `drain_estimate_us` is the caller's estimate of how long one
    /// queued item takes to drain (predicted service latency); a full
    /// queue's `retry_after_us` hint scales it by the current depth.
    ///
    /// # Errors
    /// [`PushError::Full`] at capacity, [`PushError::Closed`] after
    /// [`BoundedQueue::close`].
    pub fn try_push(&self, item: T, drain_estimate_us: f64) -> Result<(), PushError> {
        let mut state = self.lock();
        if state.closed {
            return Err(PushError::Closed);
        }
        if state.items.len() >= state.capacity {
            return Err(PushError::Full {
                retry_after_us: drain_estimate_us * state.items.len() as f64,
            });
        }
        state.items.push_back(item);
        state.high_water = state.high_water.max(state.items.len());
        drop(state);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Dequeues one item, parking up to `timeout` for one to arrive.
    /// Returns `None` on timeout, or when the queue is closed and
    /// drained.
    pub fn pop_wait(&self, timeout: Duration) -> Option<T> {
        let mut state = self.lock();
        loop {
            if let Some(item) = state.items.pop_front() {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            let (next, result) = self
                .not_empty
                .wait_timeout(state, timeout)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            state = next;
            if result.timed_out() {
                return state.items.pop_front();
            }
        }
    }

    /// Dequeues everything currently buffered without blocking.
    pub fn drain(&self) -> Vec<T> {
        self.lock().items.drain(..).collect()
    }

    /// Current depth.
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.lock().items.is_empty()
    }

    /// The deepest the queue ever got (bound-violation check input).
    pub fn high_water(&self) -> usize {
        self.lock().high_water
    }

    /// Stops accepting pushes and wakes every parked consumer.
    pub fn close(&self) {
        self.lock().closed = true;
        self.not_empty.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_round_trips_in_order() {
        let q = BoundedQueue::new(4);
        for i in 0..4 {
            q.try_push(i, 10.0).unwrap();
        }
        assert_eq!(q.high_water(), 4);
        let got: Vec<i32> = (0..4)
            .map(|_| q.pop_wait(Duration::from_millis(10)).unwrap())
            .collect();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }

    #[test]
    fn full_queue_rejects_with_scaled_retry_hint() {
        let q = BoundedQueue::new(2);
        q.try_push(1, 100.0).unwrap();
        q.try_push(2, 100.0).unwrap();
        match q.try_push(3, 100.0) {
            Err(PushError::Full { retry_after_us }) => {
                assert!((retry_after_us - 200.0).abs() < 1e-9);
            }
            other => panic!("expected Full, got {other:?}"),
        }
        // Depth never exceeded capacity.
        assert_eq!(q.high_water(), 2);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn pop_wait_times_out_empty_and_closed_drains() {
        let q: BoundedQueue<u32> = BoundedQueue::new(2);
        assert_eq!(q.pop_wait(Duration::from_millis(1)), None);
        q.try_push(9, 1.0).unwrap();
        q.close();
        assert_eq!(q.try_push(10, 1.0), Err(PushError::Closed));
        // Closed queues still drain what they hold.
        assert_eq!(q.pop_wait(Duration::from_millis(1)), Some(9));
        assert_eq!(q.pop_wait(Duration::from_millis(1)), None);
    }

    #[test]
    fn parked_consumer_wakes_on_push() {
        let q: std::sync::Arc<BoundedQueue<u32>> = std::sync::Arc::new(BoundedQueue::new(4));
        let consumer = {
            let q = std::sync::Arc::clone(&q);
            std::thread::spawn(move || q.pop_wait(Duration::from_secs(5)))
        };
        // Give the consumer a moment to park, then wake it.
        std::thread::sleep(Duration::from_millis(5));
        q.try_push(42, 1.0).unwrap();
        assert_eq!(consumer.join().unwrap(), Some(42));
    }
}
