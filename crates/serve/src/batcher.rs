//! The weighted-fair dynamic batcher.
//!
//! Admitted requests wait in a **bounded** pending set, grouped by
//! model. A batch for one model closes when the group reaches
//! `max_batch` or its oldest member has waited `max_delay_us` —
//! same-model (and, because the whole batch executes one plan variant,
//! same-precision) requests coalesce into a single
//! `Executor::batch_execute` call that amortizes pool startup and warm
//! scratch arenas across members.
//!
//! Tenant fairness is start-time fair queueing over a per-tenant
//! **virtual time**: each tenant accumulates `1 / weight` per served
//! request, and every pick goes to the eligible tenant with the
//! smallest virtual time (ties to the lowest ordinal). Two properties
//! follow, and both are enforced elsewhere:
//!
//! * Among tenants continuously backlogged on one model, normalized
//!   service never diverges by more than `1 / min_weight` — the
//!   weighted-fairness bound the proptests below drive adversarially.
//! * The pick sequence is a pure function of the push sequence, so the
//!   EC07x checker replays it decision-for-decision from the admission
//!   log and flags any divergence.
//!
//! A tenant re-entering the backlog resumes at the *minimum* virtual
//! time of the currently backlogged tenants — or at the server virtual
//! time (the largest pick start tag so far) when the backlog is empty —
//! never below its own, so idling banks no credit with which to starve
//! others later.

use std::collections::VecDeque;

/// One admitted inference request.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Unique id within one serving run.
    pub id: u64,
    /// Tenant ordinal.
    pub tenant: usize,
    /// Catalog model ordinal.
    pub model: usize,
    /// Arrival time (us).
    pub arrival_us: f64,
    /// Absolute completion deadline (us), if the tenant carries an SLO.
    pub deadline_us: Option<f64>,
}

/// The plan-variant ladder one model can execute under, in degradation
/// order: the tuned hybrid plan first, then single-processor, then
/// int8 where the model's layers make quantization worthwhile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum PlanVariant {
    /// The tuner's hybrid CPU+GPU plan (the default, highest-quality
    /// co-run schedule).
    Hybrid,
    /// Single-processor execution (whichever of GPU-only/CPU-only the
    /// tuner predicts faster) — fewer moving parts under pressure.
    Single,
    /// The int8 quantized path (only offered where `int8_worthwhile`).
    Int8,
}

impl PlanVariant {
    /// Stable snake-case name (JSON, events, docs).
    pub fn name(self) -> &'static str {
        match self {
            PlanVariant::Hybrid => "hybrid",
            PlanVariant::Single => "single",
            PlanVariant::Int8 => "int8",
        }
    }
}

/// When a model's pending group closes into a batch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchPolicy {
    /// Maximum requests per batch.
    pub max_batch: usize,
    /// Maximum time the oldest member may wait before the batch closes
    /// regardless of size (us).
    pub max_delay_us: f64,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        BatchPolicy {
            max_batch: 8,
            max_delay_us: 2_000.0,
        }
    }
}

/// One closed batch, ready to execute.
#[derive(Debug, Clone, PartialEq)]
pub struct Batch {
    /// Catalog model ordinal every member targets.
    pub model: usize,
    /// Members in pick order (per-tenant FIFO subsequences).
    pub members: Vec<Request>,
    /// Age of the oldest member at close (us).
    pub oldest_wait_us: f64,
    /// Per-tenant virtual time *after* charging this batch.
    pub vtime: Vec<f64>,
    /// Tenants still backlogged after this batch closed.
    pub backlogged: Vec<usize>,
}

struct Pending {
    req: Request,
    enqueue_us: f64,
}

/// The bounded pending set plus the weighted-fair pick state.
pub struct Batcher {
    policy: BatchPolicy,
    capacity: usize,
    weights: Vec<f64>,
    vtime: Vec<f64>,
    /// Per-model pending requests in enqueue order.
    pending: Vec<VecDeque<Pending>>,
    /// Per-tenant total pending count (backlog membership).
    tenant_pending: Vec<usize>,
    /// Server virtual time: the largest pre-charge virtual time any
    /// pick has started at. Monotone; the re-entry floor when the
    /// backlog is empty, so a tenant joining an idle server still
    /// banks no credit against tenants with service history.
    vfloor: f64,
    depth: usize,
    high_water: usize,
}

impl Batcher {
    /// A batcher over `models` model groups and one weight per tenant,
    /// refusing pushes beyond `capacity` total pending requests.
    ///
    /// # Panics
    /// Panics on a zero capacity or a non-positive tenant weight
    /// (both are configuration bugs).
    pub fn new(policy: BatchPolicy, capacity: usize, weights: &[f64], models: usize) -> Self {
        assert!(capacity > 0, "batcher capacity must be at least 1");
        assert!(
            weights.iter().all(|w| *w > 0.0),
            "tenant weights must be positive"
        );
        Batcher {
            policy,
            capacity,
            weights: weights.to_vec(),
            vtime: vec![0.0; weights.len()],
            pending: (0..models).map(|_| VecDeque::new()).collect(),
            tenant_pending: vec![0; weights.len()],
            vfloor: 0.0,
            depth: 0,
            high_water: 0,
        }
    }

    /// The configured policy.
    pub fn policy(&self) -> BatchPolicy {
        self.policy
    }

    /// Total pending requests.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// The configured bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The deepest the pending set ever got.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Per-tenant virtual time (normalized service) snapshot.
    pub fn vtime(&self) -> &[f64] {
        &self.vtime
    }

    /// Tenants currently holding pending requests, ascending.
    pub fn backlogged(&self) -> Vec<usize> {
        (0..self.tenant_pending.len())
            .filter(|&t| self.tenant_pending[t] > 0)
            .collect()
    }

    /// Enqueues an admitted request at `now_us`. Returns the depth
    /// after the push (the `Enqueued` event's bound-check input).
    ///
    /// # Errors
    /// `Err(())` when the pending set is at capacity — the caller
    /// translates this into a typed `QueueFull` rejection.
    ///
    /// # Panics
    /// Panics on an out-of-range model or tenant ordinal (caller bug).
    // The unit error is deliberate: "full" carries no payload, and the
    // caller owns the typed rejection (reason + retry hint).
    #[allow(clippy::result_unit_err)]
    pub fn push(&mut self, req: Request, now_us: f64) -> Result<usize, ()> {
        if self.depth >= self.capacity {
            return Err(());
        }
        let tenant = req.tenant;
        if self.tenant_pending[tenant] == 0 {
            // Re-entry: resume at the backlog's minimum virtual time —
            // or, when nothing is backlogged, at the server virtual
            // time — so an idle period banks no catch-up credit.
            let backlog_floor = (0..self.tenant_pending.len())
                .filter(|&t| self.tenant_pending[t] > 0)
                .map(|t| self.vtime[t])
                .fold(f64::INFINITY, f64::min);
            let floor = if backlog_floor.is_finite() {
                backlog_floor
            } else {
                self.vfloor
            };
            self.vtime[tenant] = self.vtime[tenant].max(floor);
        }
        self.pending[req.model].push_back(Pending {
            req,
            enqueue_us: now_us,
        });
        self.tenant_pending[tenant] += 1;
        self.depth += 1;
        self.high_water = self.high_water.max(self.depth);
        Ok(self.depth)
    }

    /// The model whose batch should close at `now_us`, if any: a group
    /// at `max_batch`, or one whose oldest member has aged past
    /// `max_delay_us`. Among ready models, the one containing the
    /// smallest-virtual-time tenant wins (ties to the older group).
    pub fn ready(&self, now_us: f64) -> Option<usize> {
        let mut best: Option<(f64, f64, usize)> = None;
        for (model, group) in self.pending.iter().enumerate() {
            let Some(oldest) = group.front() else {
                continue;
            };
            // Compare against the same sum `next_expiry` hands the
            // dispatcher to park on: `now - enqueue >= delay` can round
            // the other way at the exact expiry instant and livelock
            // the park/poll loop.
            let aged = now_us >= oldest.enqueue_us + self.policy.max_delay_us;
            if group.len() < self.policy.max_batch && !aged {
                continue;
            }
            let min_vtime = group
                .iter()
                .map(|p| self.vtime[p.req.tenant])
                .fold(f64::INFINITY, f64::min);
            let key = (min_vtime, oldest.enqueue_us, model);
            let better = match best {
                None => true,
                Some(b) => key < b,
            };
            if better {
                best = Some(key);
            }
        }
        best.map(|(_, _, model)| model)
    }

    /// The earliest future instant at which some group ages past
    /// `max_delay_us` (the dispatcher's park deadline). `None` when
    /// nothing is pending.
    pub fn next_expiry(&self) -> Option<f64> {
        self.pending
            .iter()
            .filter_map(|g| g.front().map(|p| p.enqueue_us + self.policy.max_delay_us))
            .min_by(|a, b| a.partial_cmp(b).expect("finite expiry times"))
    }

    /// Closes the batch for `model` at `now_us`: up to `max_batch`
    /// picks, each going to the eligible tenant with minimal virtual
    /// time (ties to the lowest ordinal), each taking that tenant's
    /// oldest pending request for the model, each charging
    /// `1 / weight`.
    ///
    /// # Panics
    /// Panics if `model` has nothing pending (callers gate on
    /// [`Batcher::ready`]).
    pub fn form(&mut self, model: usize, now_us: f64) -> Batch {
        assert!(
            !self.pending[model].is_empty(),
            "form() on an empty model group"
        );
        let oldest_wait_us = now_us - self.pending[model].front().expect("non-empty").enqueue_us;
        let mut members = Vec::new();
        while members.len() < self.policy.max_batch {
            // The eligible tenant with minimal virtual time.
            let Some(&winner) = self.pending[model]
                .iter()
                .map(|p| p.req.tenant)
                .collect::<std::collections::BTreeSet<_>>()
                .iter()
                .min_by(|&&a, &&b| {
                    self.vtime[a]
                        .partial_cmp(&self.vtime[b])
                        .expect("finite vtime")
                        .then(a.cmp(&b))
                })
            else {
                break;
            };
            let pos = self.pending[model]
                .iter()
                .position(|p| p.req.tenant == winner)
                .expect("winner has a pending request");
            let picked = self.pending[model].remove(pos).expect("position valid");
            self.tenant_pending[winner] -= 1;
            self.depth -= 1;
            self.vfloor = self.vfloor.max(self.vtime[winner]);
            self.vtime[winner] += 1.0 / self.weights[winner];
            members.push(picked.req);
        }
        Batch {
            model,
            members,
            oldest_wait_us,
            vtime: self.vtime.clone(),
            backlogged: self.backlogged(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn req(id: u64, tenant: usize, model: usize, t: f64) -> Request {
        Request {
            id,
            tenant,
            model,
            arrival_us: t,
            deadline_us: None,
        }
    }

    #[test]
    fn batch_closes_at_max_batch_or_max_delay() {
        let policy = BatchPolicy {
            max_batch: 3,
            max_delay_us: 100.0,
        };
        let mut b = Batcher::new(policy, 64, &[1.0], 1);
        b.push(req(0, 0, 0, 0.0), 0.0).unwrap();
        assert_eq!(b.ready(50.0), None, "young and under-full");
        b.push(req(1, 0, 0, 60.0), 60.0).unwrap();
        b.push(req(2, 0, 0, 70.0), 70.0).unwrap();
        assert_eq!(b.ready(70.0), Some(0), "max_batch reached");
        let batch = b.form(0, 70.0);
        assert_eq!(batch.members.len(), 3);
        // A lone aged request closes by delay.
        b.push(req(3, 0, 0, 80.0), 80.0).unwrap();
        assert_eq!(b.ready(179.0), None);
        assert_eq!(b.ready(180.0), Some(0));
        assert_eq!(b.next_expiry(), Some(180.0));
    }

    #[test]
    fn capacity_bound_is_hard_and_high_water_tracked() {
        let mut b = Batcher::new(BatchPolicy::default(), 2, &[1.0], 1);
        b.push(req(0, 0, 0, 0.0), 0.0).unwrap();
        b.push(req(1, 0, 0, 0.0), 0.0).unwrap();
        assert!(b.push(req(2, 0, 0, 0.0), 0.0).is_err());
        assert_eq!(b.depth(), 2);
        assert_eq!(b.high_water(), 2);
        let _ = b.form(0, 10.0);
        assert_eq!(b.depth(), 0);
        assert_eq!(b.high_water(), 2, "high water survives drain");
    }

    /// Satellite proptest (a): one tenant's requests to one model are
    /// never reordered, under seeded adversarial arrivals.
    #[test]
    fn proptest_tenant_fifo_never_reorders() {
        for seed in 0..20u64 {
            let mut rng = StdRng::seed_from_u64(0xF1F0 ^ seed);
            let tenants = rng.gen_range(1..5usize);
            let models = rng.gen_range(1..4usize);
            let weights: Vec<f64> = (0..tenants).map(|_| rng.gen_range(0.5..4.5)).collect();
            let policy = BatchPolicy {
                max_batch: rng.gen_range(1..7usize),
                max_delay_us: 50.0,
            };
            let mut b = Batcher::new(policy, 1024, &weights, models);
            let mut dispatched: Vec<Vec<Vec<u64>>> = vec![vec![Vec::new(); models]; tenants];
            let mut now = 0.0;
            for id in 0..400u64 {
                now += rng.gen_range(0.0..20.0);
                let t = rng.gen_range(0..tenants);
                let m = rng.gen_range(0..models);
                b.push(req(id, t, m, now), now).unwrap();
                while let Some(model) = b.ready(now) {
                    for member in b.form(model, now).members {
                        dispatched[member.tenant][model].push(member.id);
                    }
                }
            }
            for per_model in &dispatched {
                for ids in per_model {
                    let mut sorted = ids.clone();
                    sorted.sort_unstable();
                    assert_eq!(ids, &sorted, "tenant requests reordered (seed {seed})");
                }
            }
        }
    }

    /// Satellite proptest (b): a pending request is never held past
    /// max_delay — whenever the batcher refuses to close a batch, every
    /// pending request is younger than max_delay; and an event-driven
    /// dispatcher polling `next_expiry` dispatches every request within
    /// max_delay of its enqueue.
    #[test]
    fn proptest_batch_formation_never_exceeds_max_delay() {
        for seed in 0..20u64 {
            let mut rng = StdRng::seed_from_u64(0xDE1A ^ seed);
            let models = rng.gen_range(1..4usize);
            let policy = BatchPolicy {
                max_batch: rng.gen_range(1..6usize),
                max_delay_us: rng.gen_range(10.0..210.0),
            };
            let mut b = Batcher::new(policy, 4096, &[1.0, 2.0], models);
            let mut enqueue_at: std::collections::HashMap<u64, f64> = Default::default();
            let mut arrivals: Vec<(f64, u64, usize, usize)> = Vec::new();
            let mut t = 0.0;
            for id in 0..300u64 {
                t += rng.gen_range(0.0..policy.max_delay_us / 2.0);
                arrivals.push((t, id, rng.gen_range(0..2usize), rng.gen_range(0..models)));
            }
            let mut i = 0;
            let mut now = 0.0;
            while i < arrivals.len() || b.depth() > 0 {
                // Advance to the next arrival or batch expiry, whichever
                // comes first — exactly what the dispatcher loop does.
                let next_arrival = arrivals.get(i).map(|a| a.0);
                let expiry = b.next_expiry();
                now = match (next_arrival, expiry) {
                    (Some(a), Some(e)) => a.min(e).max(now),
                    (Some(a), None) => a.max(now),
                    (None, Some(e)) => e.max(now),
                    (None, None) => break,
                };
                while i < arrivals.len() && arrivals[i].0 <= now {
                    let (at, id, tenant, model) = arrivals[i];
                    b.push(req(id, tenant, model, at), at).unwrap();
                    enqueue_at.insert(id, at);
                    i += 1;
                }
                while let Some(model) = b.ready(now) {
                    for member in b.form(model, now).members {
                        let waited = now - enqueue_at[&member.id];
                        assert!(
                            waited <= policy.max_delay_us + 1e-6,
                            "request {} waited {waited} > max_delay {} (seed {seed})",
                            member.id,
                            policy.max_delay_us
                        );
                    }
                }
            }
            assert_eq!(b.depth(), 0, "drained (seed {seed})");
        }
    }

    /// Satellite proptest (c): among tenants *continuously backlogged*
    /// on one model, normalized service (virtual time) never diverges
    /// by more than `1 / min_weight`, under adversarial weights and
    /// batch sizes. The closed-loop refill (every served request is
    /// immediately replaced before the next batch forms) guarantees the
    /// continuous backlog the bound is stated over.
    #[test]
    fn proptest_weighted_fairness_bound_holds() {
        for seed in 0..20u64 {
            let mut rng = StdRng::seed_from_u64(0xFA1B ^ seed);
            let tenants = rng.gen_range(2..6usize);
            let weights: Vec<f64> = (0..tenants).map(|_| rng.gen_range(0.25..4.25)).collect();
            let min_weight = weights.iter().copied().fold(f64::INFINITY, f64::min);
            let bound = 1.0 / min_weight + 1e-9;
            let policy = BatchPolicy {
                max_batch: rng.gen_range(1..7usize),
                max_delay_us: 1.0,
            };
            let mut b = Batcher::new(policy, 1 << 14, &weights, 1);
            // Standing backlog of max_batch + 1 per tenant: even if one
            // batch serves a single tenant exclusively, that tenant
            // still holds a pending request afterwards.
            let mut id = 0u64;
            for t in 0..tenants {
                for _ in 0..=policy.max_batch {
                    b.push(req(id, t, 0, 0.0), 0.0).unwrap();
                    id += 1;
                }
            }
            let mut served = vec![0usize; tenants];
            for round in 0..200u32 {
                let now = f64::from(round + 1) * 10.0;
                assert_eq!(b.ready(now), Some(0), "continuous backlog (seed {seed})");
                let batch = b.form(0, now);
                let spread_max = batch.vtime.iter().copied().fold(f64::MIN, f64::max);
                let spread_min = batch.vtime.iter().copied().fold(f64::MAX, f64::min);
                assert!(
                    spread_max - spread_min <= bound,
                    "fairness spread {} > bound {bound} (seed {seed}, round {round})",
                    spread_max - spread_min
                );
                for member in &batch.members {
                    served[member.tenant] += 1;
                    // Closed-loop refill before the next form: the
                    // tenant never idles across a form boundary.
                    b.push(req(id, member.tenant, 0, now), now).unwrap();
                    id += 1;
                }
            }
            // Long-run goodput tracks the weights: normalized service
            // (served / weight = virtual time) stays within the bound.
            for i in 0..tenants {
                for j in 0..tenants {
                    let ni = served[i] as f64 / weights[i];
                    let nj = served[j] as f64 / weights[j];
                    assert!(
                        (ni - nj).abs() <= 1.0 / min_weight + 1.0,
                        "long-run goodput diverged (seed {seed}): {ni} vs {nj}"
                    );
                }
            }
        }
    }

    #[test]
    fn reentry_banks_no_credit() {
        // Tenant 1 idles while tenant 0 is served heavily; when tenant 1
        // returns it resumes at the backlog floor, not at zero.
        let policy = BatchPolicy {
            max_batch: 2,
            max_delay_us: 0.0,
        };
        let mut b = Batcher::new(policy, 64, &[1.0, 1.0], 1);
        for id in 0..6u64 {
            b.push(req(id, 0, 0, 0.0), 0.0).unwrap();
        }
        while b.ready(1.0).is_some() {
            let _ = b.form(0, 1.0);
        }
        assert!(b.vtime()[0] >= 6.0 - 1e-9);
        b.push(req(10, 1, 0, 2.0), 2.0).unwrap();
        b.push(req(11, 0, 0, 2.0), 2.0).unwrap();
        // Tenant 1 re-entered at tenant 0's level: one batch serves one
        // request each instead of letting tenant 1 monopolize.
        let batch = b.form(0, 3.0);
        let tenants: Vec<usize> = batch.members.iter().map(|r| r.tenant).collect();
        assert_eq!(tenants, vec![1, 0]);
        assert!((b.vtime()[1] - b.vtime()[0]).abs() <= 1.0 + 1e-9);
    }
}
