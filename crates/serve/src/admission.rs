//! Per-tenant admission control: token-bucket rate limiting plus an
//! in-flight cap.
//!
//! Admission is the first decision a request meets, and the only one
//! taken *per tenant* rather than per queue: a tenant that exceeds its
//! sustained rate or already has its full allowance of admitted
//! requests outstanding is refused before it can occupy queue space
//! another tenant paid for. Every refusal is typed
//! ([`crate::events::RejectReason`]) and carries a `retry_after_us`
//! hint derived from the bucket's refill rate, so a well-behaved client
//! can back off precisely instead of hammering.
//!
//! The controller is clocked externally (`now_us`): the deterministic
//! siege feeds it virtual time, the real-time server feeds it wall
//! time. No wall-clock reads happen here, which is what makes the
//! admission decision sequence a pure function of the request stream —
//! and therefore replayable by the EC07x checker.

use crate::events::RejectReason;

/// A classic token bucket, refilled continuously at `rate_per_us`.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    tokens: f64,
    capacity: f64,
    rate_per_us: f64,
    last_us: f64,
}

impl TokenBucket {
    /// A bucket holding up to `burst` tokens, refilling at
    /// `rate_per_s` tokens per second, starting full at `t0_us`.
    pub fn new(rate_per_s: f64, burst: f64, t0_us: f64) -> Self {
        let burst = burst.max(1.0);
        TokenBucket {
            tokens: burst,
            capacity: burst,
            rate_per_us: (rate_per_s / 1e6).max(0.0),
            last_us: t0_us,
        }
    }

    fn refill(&mut self, now_us: f64) {
        let dt = (now_us - self.last_us).max(0.0);
        self.tokens = (self.tokens + dt * self.rate_per_us).min(self.capacity);
        self.last_us = self.last_us.max(now_us);
    }

    /// Takes one token, or reports how long until one is available.
    ///
    /// # Errors
    /// The deficit wait in microseconds when the bucket is empty.
    pub fn try_take(&mut self, now_us: f64) -> Result<(), f64> {
        self.refill(now_us);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            return Ok(());
        }
        let deficit = 1.0 - self.tokens;
        if self.rate_per_us <= 0.0 {
            return Err(f64::INFINITY);
        }
        Err(deficit / self.rate_per_us)
    }

    /// Tokens currently available (post-refill at `now_us`).
    pub fn available(&mut self, now_us: f64) -> f64 {
        self.refill(now_us);
        self.tokens
    }
}

/// One tenant's admission policy.
#[derive(Debug, Clone)]
pub struct TenantConfig {
    /// Display name (reports, JSON).
    pub name: String,
    /// Fair-share weight (relative goodput entitlement; must be > 0).
    pub weight: f64,
    /// Sustained admission rate (requests per second).
    pub rate_per_s: f64,
    /// Burst allowance (token-bucket capacity, requests).
    pub burst: f64,
    /// Maximum admitted-but-not-completed requests.
    pub max_in_flight: usize,
}

impl TenantConfig {
    /// A permissive config for tests and defaults.
    pub fn unlimited(name: impl Into<String>, weight: f64) -> Self {
        TenantConfig {
            name: name.into(),
            weight,
            rate_per_s: f64::INFINITY,
            burst: f64::MAX / 2.0,
            max_in_flight: usize::MAX,
        }
    }
}

struct TenantState {
    bucket: TokenBucket,
    in_flight: usize,
    cap: usize,
}

/// The admission controller: one token bucket and in-flight counter
/// per tenant.
pub struct AdmissionController {
    tenants: Vec<TenantState>,
}

impl AdmissionController {
    /// Builds the controller from per-tenant configs at clock `t0_us`.
    pub fn new(configs: &[TenantConfig], t0_us: f64) -> Self {
        AdmissionController {
            tenants: configs
                .iter()
                .map(|c| TenantState {
                    bucket: TokenBucket::new(c.rate_per_s, c.burst, t0_us),
                    in_flight: 0,
                    cap: c.max_in_flight,
                })
                .collect(),
        }
    }

    /// Decides admission for one request of `tenant` at `now_us`.
    /// On success the tenant's in-flight count is charged; the caller
    /// must balance every success with [`AdmissionController::release`]
    /// when the request completes or is shed.
    ///
    /// # Errors
    /// The typed reason plus a `retry_after_us` hint.
    ///
    /// # Panics
    /// Panics on an out-of-range tenant ordinal (a caller bug).
    pub fn admit(&mut self, tenant: usize, now_us: f64) -> Result<(), (RejectReason, f64)> {
        let state = &mut self.tenants[tenant];
        if state.in_flight >= state.cap {
            // An in-flight slot frees when a queued request drains; the
            // bucket's refill interval is the natural retry cadence.
            let hint = if state.bucket.rate_per_us > 0.0 {
                1.0 / state.bucket.rate_per_us
            } else {
                1_000.0
            };
            return Err((RejectReason::InFlightCap, hint));
        }
        match state.bucket.try_take(now_us) {
            Ok(()) => {
                state.in_flight += 1;
                Ok(())
            }
            Err(wait_us) => Err((RejectReason::RateLimited, wait_us)),
        }
    }

    /// Releases one in-flight slot of `tenant` (completion or shed).
    ///
    /// # Panics
    /// Panics on an out-of-range tenant ordinal (a caller bug).
    pub fn release(&mut self, tenant: usize) {
        let state = &mut self.tenants[tenant];
        state.in_flight = state.in_flight.saturating_sub(1);
    }

    /// Currently admitted-but-not-completed requests of `tenant`.
    pub fn in_flight(&self, tenant: usize) -> usize {
        self.tenants[tenant].in_flight
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_enforces_rate_and_burst() {
        // 2 tokens burst, 1000 req/s => 1 token per 1000 us.
        let mut bucket = TokenBucket::new(1000.0, 2.0, 0.0);
        assert!(bucket.try_take(0.0).is_ok());
        assert!(bucket.try_take(0.0).is_ok());
        let wait = bucket.try_take(0.0).unwrap_err();
        assert!((wait - 1000.0).abs() < 1e-6, "wait {wait}");
        // After exactly the hinted wait, the take succeeds.
        assert!(bucket.try_take(wait).is_ok());
    }

    #[test]
    fn bucket_never_exceeds_capacity() {
        let mut bucket = TokenBucket::new(1000.0, 2.0, 0.0);
        assert!((bucket.available(1e9) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn in_flight_cap_rejects_until_release() {
        let cfg = TenantConfig {
            name: "t".to_string(),
            weight: 1.0,
            rate_per_s: 1e6,
            burst: 100.0,
            max_in_flight: 2,
        };
        let mut ctl = AdmissionController::new(std::slice::from_ref(&cfg), 0.0);
        assert!(ctl.admit(0, 0.0).is_ok());
        assert!(ctl.admit(0, 0.0).is_ok());
        let (reason, _) = ctl.admit(0, 0.0).unwrap_err();
        assert_eq!(reason, RejectReason::InFlightCap);
        ctl.release(0);
        assert!(ctl.admit(0, 1.0).is_ok());
        assert_eq!(ctl.in_flight(0), 2);
    }

    #[test]
    fn rate_limit_reports_typed_reason_with_hint() {
        let cfg = TenantConfig {
            name: "t".to_string(),
            weight: 1.0,
            rate_per_s: 1.0, // one per second
            burst: 1.0,
            max_in_flight: 100,
        };
        let mut ctl = AdmissionController::new(std::slice::from_ref(&cfg), 0.0);
        assert!(ctl.admit(0, 0.0).is_ok());
        let (reason, retry) = ctl.admit(0, 0.0).unwrap_err();
        assert_eq!(reason, RejectReason::RateLimited);
        assert!((retry - 1e6).abs() < 1.0, "retry hint {retry}");
        // A hot tenant's rejections do not consume another tenant's
        // budget: the controller is strictly per-tenant.
        let mut two = AdmissionController::new(&[cfg.clone(), cfg], 0.0);
        assert!(two.admit(0, 0.0).is_ok());
        assert!(two.admit(0, 0.0).is_err());
        assert!(two.admit(1, 0.0).is_ok());
    }
}
