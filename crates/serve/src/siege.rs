//! `edgenn siege`: the deterministic, fault-injected load gate.
//!
//! A seeded closed+open-loop multi-tenant load generator drives the
//! full serving pipeline — admission, bounded pending set, weighted-
//! fair dynamic batching, SLO degradation — in **virtual time**: every
//! arrival gap, model pick, and fault plan comes from the seed, and the
//! engine is a single resource whose service time is the tuner's
//! analytic prediction scaled by batch size. The same `(config, seed)`
//! therefore always produces the identical admission log, which is what
//! lets the EC07x checker verify every decision after the fact and CI
//! diff runs across machines.
//!
//! What is *not* simulated: every formed batch also executes **for
//! real** on a tiny-scale twin of its model through
//! `Executor::batch_execute`, with the PR 4 fault injector armed from a
//! per-batch seed, and each output must reproduce the fault-free
//! reference **bitwise** (`approx_eq(_, 0.0)`). Survival is counted
//! over admitted requests: every one must either complete bitwise-
//! correct or be explicitly shed with a typed reason — anything else is
//! a lost request and fails the gate.
//!
//! Service-time model: a batch of `n` requests occupies the engine for
//! `predicted_us * (1 + 0.9 (n-1))` — near-linear cost with a 10%
//! coalescing saving per extra member, the pool-amortization benefit
//! `batch_execute` measures in `bench_serve`.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use edgenn_core::plan::{ExecutionConfig, ExecutionPlan};
use edgenn_core::runtime::functional::{self, Executor, FaultInjector};
use edgenn_core::runtime::Runtime;
use edgenn_core::tuner::Tuner;
use edgenn_nn::graph::Graph;
use edgenn_nn::models::{build, ModelKind, ModelScale};
use edgenn_obs::flight::{self, SpanKind};
use edgenn_obs::{EventSink, Recorder, SinkEvent};
use edgenn_sim::{FaultPlan, Platform};
use edgenn_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde_json::{Map, Value};

use crate::admission::{AdmissionController, TenantConfig};
use crate::batcher::{BatchPolicy, Batcher, PlanVariant, Request};
use crate::events::{AdmissionLog, RejectReason, ServeEventKind};

/// How many distinct input tensors each model's request stream cycles
/// through (slot = request id mod pool).
const INPUT_POOL: usize = 4;

/// How one tenant generates load.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LoadMode {
    /// Open loop: Poisson arrivals at a sustained rate, clients never
    /// wait for responses (the overload-generating mode).
    Open {
        /// Mean arrival rate (requests per second).
        rate_rps: f64,
    },
    /// Closed loop: a fixed number of clients, each issuing its next
    /// request `think_us` after the previous one resolves.
    Closed {
        /// Concurrent clients.
        concurrency: usize,
        /// Pause between a response and the next request (us).
        think_us: f64,
    },
}

/// One tenant's complete siege profile: admission policy plus load.
#[derive(Debug, Clone)]
pub struct TenantLoad {
    /// Admission policy and fair-share weight.
    pub tenant: TenantConfig,
    /// Load generation mode.
    pub mode: LoadMode,
    /// Relative SLO: each request's deadline is arrival + `slo_us`.
    pub slo_us: Option<f64>,
    /// Indices into [`SiegeConfig::models`] this tenant requests
    /// (uniformly at random); empty means the full catalog.
    pub models: Vec<usize>,
}

/// A complete siege scenario.
#[derive(Debug, Clone)]
pub struct SiegeConfig {
    /// Master seed: arrivals, model picks, inputs, and per-batch fault
    /// plans all derive from it.
    pub seed: u64,
    /// How long arrivals are generated (virtual us). Queued work drains
    /// past this horizon.
    pub duration_us: f64,
    /// The tenant population.
    pub tenants: Vec<TenantLoad>,
    /// The model catalog.
    pub models: Vec<ModelKind>,
    /// Bound on the pending set (requests); pushes beyond it are
    /// rejected with `queue_full`.
    pub queue_capacity: usize,
    /// Dynamic-batching policy.
    pub policy: BatchPolicy,
    /// Arm the PR 4 fault injector on every functional batch.
    pub faults: bool,
    /// Retry budget per injected kernel fault.
    pub max_retries: u32,
    /// The platform the tuner plans against.
    pub platform: Platform,
}

impl SiegeConfig {
    /// The CI scenario: two tenants (one open-loop, one closed-loop,
    /// 2:1 weights) over two models with faults armed and SLOs generous
    /// enough that a healthy pipeline sheds nothing.
    pub fn ci(seed: u64) -> Self {
        SiegeConfig {
            seed,
            duration_us: 60_000.0,
            tenants: vec![
                TenantLoad {
                    tenant: TenantConfig {
                        name: "open-a".to_string(),
                        weight: 2.0,
                        rate_per_s: 400.0,
                        burst: 8.0,
                        max_in_flight: 16,
                    },
                    mode: LoadMode::Open { rate_rps: 250.0 },
                    slo_us: Some(500_000.0),
                    models: Vec::new(),
                },
                TenantLoad {
                    tenant: TenantConfig {
                        name: "closed-b".to_string(),
                        weight: 1.0,
                        rate_per_s: 400.0,
                        burst: 8.0,
                        max_in_flight: 16,
                    },
                    mode: LoadMode::Closed {
                        concurrency: 3,
                        think_us: 2_000.0,
                    },
                    slo_us: Some(500_000.0),
                    models: Vec::new(),
                },
            ],
            models: vec![ModelKind::Fcnn, ModelKind::LeNet],
            queue_capacity: 64,
            policy: BatchPolicy {
                max_batch: 4,
                max_delay_us: 1_500.0,
            },
            faults: true,
            max_retries: 3,
            platform: edgenn_sim::platforms::jetson_agx_xavier(),
        }
    }
}

/// One plan variant's per-tenant outcome counters and latency tails.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantStats {
    /// Tenant display name.
    pub name: String,
    /// Fair-share weight.
    pub weight: f64,
    /// Requests that arrived at the front door.
    pub arrived: usize,
    /// Requests admission accepted.
    pub admitted: usize,
    /// Requests refused at admission (typed, never entered the queue).
    pub rejected: usize,
    /// Admitted requests dropped because no ladder variant could meet
    /// their deadline.
    pub shed: usize,
    /// Admitted requests that completed bitwise-correct.
    pub completed: usize,
    /// Admitted requests whose functional output diverged (gate
    /// failures).
    pub failed: usize,
    /// Completions that rode a degraded plan variant.
    pub degraded: usize,
    /// Median end-to-end latency (us; NaN with no completions).
    pub p50_us: f64,
    /// 99th-percentile latency (us).
    pub p99_us: f64,
    /// 99.9th-percentile latency (us).
    pub p999_us: f64,
    /// Completed requests per second of siege duration.
    pub goodput_rps: f64,
}

/// One catalog model's plan ladder as the tuner priced it.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelStats {
    /// Model name.
    pub name: String,
    /// `(variant name, paper-scale predicted latency us)` in ladder
    /// (quality) order — hybrid first.
    pub variants: Vec<(String, f64)>,
}

/// Everything one siege run produced.
#[derive(Debug, Clone)]
pub struct SiegeReport {
    /// Per-tenant outcomes in tenant order.
    pub tenants: Vec<TenantStats>,
    /// The plan ladder per catalog model.
    pub models: Vec<ModelStats>,
    /// Batches dispatched.
    pub batches: usize,
    /// Batches that ran a degraded variant.
    pub degraded_batches: usize,
    /// Completed-bitwise-correct over (admitted − shed). 1.0 when the
    /// denominator is zero.
    pub survival: f64,
    /// Shed over admitted (0.0 when nothing was admitted).
    pub shed_rate: f64,
    /// Max/min ratio of weight-normalized tenant goodput (1.0 when
    /// fewer than two tenants completed work).
    pub fairness_spread: f64,
    /// Deepest the bounded pending set ever got.
    pub high_water: usize,
    /// The configured bound it must stay under.
    pub queue_capacity: usize,
    /// Batching policy the run used (checker replay input).
    pub max_batch: usize,
    /// Tenant weights the run used (checker replay input).
    pub weights: Vec<f64>,
    /// Admitted requests that neither completed nor were shed.
    pub lost: usize,
    /// Bitwise-divergence descriptions (empty on a clean run).
    pub bitwise_failures: Vec<String>,
    /// The complete typed decision record.
    pub log: AdmissionLog,
}

impl SiegeReport {
    /// True when every admitted request was accounted for bitwise-
    /// correctly: the CI gate condition.
    pub fn gate_clean(&self) -> bool {
        self.bitwise_failures.is_empty()
            && self.lost == 0
            && self.survival >= 1.0
            && self.high_water <= self.queue_capacity
    }

    /// JSON form (archived under `target/siege/` by CI).
    pub fn to_value(&self) -> Value {
        let mut m = Map::new();
        m.insert(
            "tenants".to_string(),
            Value::Array(
                self.tenants
                    .iter()
                    .map(|t| {
                        let mut o = Map::new();
                        o.insert("name".to_string(), Value::String(t.name.clone()));
                        o.insert("weight".to_string(), Value::Number(t.weight));
                        o.insert("arrived".to_string(), Value::Number(t.arrived as f64));
                        o.insert("admitted".to_string(), Value::Number(t.admitted as f64));
                        o.insert("rejected".to_string(), Value::Number(t.rejected as f64));
                        o.insert("shed".to_string(), Value::Number(t.shed as f64));
                        o.insert("completed".to_string(), Value::Number(t.completed as f64));
                        o.insert("failed".to_string(), Value::Number(t.failed as f64));
                        o.insert("degraded".to_string(), Value::Number(t.degraded as f64));
                        o.insert("p50_us".to_string(), Value::Number(t.p50_us));
                        o.insert("p99_us".to_string(), Value::Number(t.p99_us));
                        o.insert("p999_us".to_string(), Value::Number(t.p999_us));
                        o.insert("goodput_rps".to_string(), Value::Number(t.goodput_rps));
                        Value::Object(o)
                    })
                    .collect(),
            ),
        );
        m.insert(
            "models".to_string(),
            Value::Array(
                self.models
                    .iter()
                    .map(|md| {
                        let mut o = Map::new();
                        o.insert("name".to_string(), Value::String(md.name.clone()));
                        o.insert(
                            "variants".to_string(),
                            Value::Array(
                                md.variants
                                    .iter()
                                    .map(|(name, pred)| {
                                        let mut v = Map::new();
                                        v.insert(
                                            "variant".to_string(),
                                            Value::String(name.clone()),
                                        );
                                        v.insert("predicted_us".to_string(), Value::Number(*pred));
                                        Value::Object(v)
                                    })
                                    .collect(),
                            ),
                        );
                        Value::Object(o)
                    })
                    .collect(),
            ),
        );
        m.insert("batches".to_string(), Value::Number(self.batches as f64));
        m.insert(
            "degraded_batches".to_string(),
            Value::Number(self.degraded_batches as f64),
        );
        m.insert("survival".to_string(), Value::Number(self.survival));
        m.insert("shed_rate".to_string(), Value::Number(self.shed_rate));
        m.insert(
            "fairness_spread".to_string(),
            Value::Number(self.fairness_spread),
        );
        m.insert(
            "high_water".to_string(),
            Value::Number(self.high_water as f64),
        );
        m.insert(
            "queue_capacity".to_string(),
            Value::Number(self.queue_capacity as f64),
        );
        m.insert("lost".to_string(), Value::Number(self.lost as f64));
        m.insert(
            "bitwise_failures".to_string(),
            Value::Array(
                self.bitwise_failures
                    .iter()
                    .map(|s| Value::String(s.clone()))
                    .collect(),
            ),
        );
        m.insert("events".to_string(), self.log.to_value());
        Value::Object(m)
    }
}

/// One executable rung of a model's plan ladder.
pub(crate) struct VariantTarget {
    pub(crate) variant: PlanVariant,
    pub(crate) tiny_plan: ExecutionPlan,
    /// Paper-scale analytic latency: the SLO-math currency.
    pub(crate) predicted_us: f64,
}

/// One catalog model: tiny functional twin, plan ladder, input pool,
/// and per-(variant, slot) fault-free references.
pub(crate) struct ModelTarget {
    pub(crate) kind: ModelKind,
    pub(crate) tiny: Graph,
    pub(crate) variants: Vec<VariantTarget>,
    pub(crate) inputs: Vec<Tensor>,
    pub(crate) refs: Vec<Vec<Tensor>>,
}

fn make_variant(
    runtime: &Runtime<'_>,
    paper: &Graph,
    tiny: &Graph,
    config: ExecutionConfig,
    variant: PlanVariant,
) -> Result<VariantTarget, String> {
    let tuner = Tuner::new(paper, runtime).map_err(|e| e.to_string())?;
    let plan = tuner
        .plan(paper, runtime, config)
        .map_err(|e| e.to_string())?;
    let predicted_us = runtime
        .simulate(paper, &plan)
        .map_err(|e| e.to_string())?
        .total_us;
    let tiny_tuner = Tuner::new(tiny, runtime).map_err(|e| e.to_string())?;
    let tiny_plan = tiny_tuner
        .plan(tiny, runtime, config)
        .map_err(|e| e.to_string())?;
    Ok(VariantTarget {
        variant,
        tiny_plan,
        predicted_us,
    })
}

pub(crate) fn build_targets(
    models: &[ModelKind],
    platform: &Platform,
    seed: u64,
) -> Result<Vec<ModelTarget>, String> {
    let runtime = Runtime::new(platform);
    let has_gpu = platform.has_gpu();
    let mut targets = Vec::with_capacity(models.len());
    for (ordinal, kind) in models.iter().enumerate() {
        let paper = build(*kind, ModelScale::Paper);
        let tiny = build(*kind, ModelScale::Tiny);
        let mut variants = Vec::new();
        let hybrid_cfg = if has_gpu {
            ExecutionConfig::edgenn()
        } else {
            ExecutionConfig::cpu_only()
        };
        variants.push(make_variant(
            &runtime,
            &paper,
            &tiny,
            hybrid_cfg,
            PlanVariant::Hybrid,
        )?);
        if has_gpu {
            // Single-processor rung: whichever of GPU-only / CPU-only
            // the analytic model prices faster for this model.
            let gpu = make_variant(
                &runtime,
                &paper,
                &tiny,
                ExecutionConfig::baseline_gpu(),
                PlanVariant::Single,
            )?;
            let cpu = make_variant(
                &runtime,
                &paper,
                &tiny,
                ExecutionConfig::cpu_only(),
                PlanVariant::Single,
            )?;
            variants.push(if gpu.predicted_us <= cpu.predicted_us {
                gpu
            } else {
                cpu
            });
            // Int8 rung: only where the model's layers make
            // quantization worthwhile (tiny shapes often do not).
            if tiny.nodes().iter().any(|n| n.layer().int8_worthwhile()) {
                variants.push(make_variant(
                    &runtime,
                    &paper,
                    &tiny,
                    ExecutionConfig::edgenn_int8(),
                    PlanVariant::Int8,
                )?);
            }
        }
        let inputs: Vec<Tensor> = (0..INPUT_POOL)
            .map(|slot| {
                Tensor::random(
                    tiny.input_shape().dims(),
                    1.0,
                    seed.wrapping_add((ordinal as u64) << 32)
                        .wrapping_add(slot as u64),
                )
            })
            .collect();
        let mut refs = Vec::with_capacity(variants.len());
        for vt in &variants {
            let mut per_slot = Vec::with_capacity(INPUT_POOL);
            for input in &inputs {
                let outcome = functional::execute(&tiny, &vt.tiny_plan, input)
                    .map_err(|e| format!("{kind} reference: {e}"))?;
                per_slot.push(outcome.output);
            }
            refs.push(per_slot);
        }
        targets.push(ModelTarget {
            kind: *kind,
            tiny,
            variants,
            inputs,
            refs,
        });
    }
    Ok(targets)
}

/// Batch service-time scaling: near-linear with a 10% coalescing
/// saving per member past the first.
pub(crate) fn batch_factor(n: usize) -> f64 {
    1.0 + 0.9 * (n as f64 - 1.0)
}

/// The SLO guard's per-batch decision.
pub(crate) struct BatchDecision {
    /// Ladder index of the rung the batch runs (0 = hybrid).
    pub(crate) chosen: usize,
    /// Members riding the batch.
    pub(crate) keep: Vec<Request>,
    /// Members no rung could save (shed with `deadline_unmeetable`).
    pub(crate) shed: Vec<Request>,
    /// Ids of kept members whose deadline the hybrid rung would miss —
    /// the requests that forced the downgrade.
    pub(crate) forced: Vec<u64>,
}

/// Decides which ladder rung a batch runs: the best-quality rung
/// meeting every surviving deadline, shedding only members even the
/// fastest rung cannot save. `preds` is the per-rung service estimate
/// in ladder (quality) order, hybrid first.
pub(crate) fn decide_batch(now: f64, members: &[Request], preds: &[f64]) -> BatchDecision {
    let factor = batch_factor(members.len());
    let fits = |variant: usize, m: &Request| {
        m.deadline_us
            .is_none_or(|d| now + preds[variant] * factor <= d)
    };
    let fastest = (0..preds.len())
        .min_by(|&a, &b| preds[a].total_cmp(&preds[b]))
        .expect("ladder non-empty");
    let (keep, shed): (Vec<Request>, Vec<Request>) =
        members.iter().cloned().partition(|m| fits(fastest, m));
    let chosen = (0..preds.len())
        .find(|&v| keep.iter().all(|m| fits(v, m)))
        .unwrap_or(fastest);
    let forced = if chosen == 0 {
        Vec::new()
    } else {
        keep.iter().filter(|m| !fits(0, m)).map(|m| m.id).collect()
    };
    BatchDecision {
        chosen,
        keep,
        shed,
        forced,
    }
}

/// Virtual-time event kinds.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Ev {
    Arrival { tenant: usize },
    EngineFree,
    BatchTimer,
}

/// A heap entry ordered by (time, sequence) — the sequence tiebreak
/// makes simultaneous events process in schedule order, which keeps the
/// whole run deterministic.
#[derive(Debug, Clone, Copy)]
struct QEv {
    t: f64,
    seq: u64,
    ev: Ev,
}

impl PartialEq for QEv {
    fn eq(&self, other: &Self) -> bool {
        self.t.to_bits() == other.t.to_bits() && self.seq == other.seq
    }
}
impl Eq for QEv {}
impl PartialOrd for QEv {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QEv {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.t.total_cmp(&other.t).then(self.seq.cmp(&other.seq))
    }
}

/// Per-tenant mutable run state.
struct TenantRun {
    rng: StdRng,
    latencies: Vec<f64>,
    arrived: usize,
    admitted: usize,
    rejected: usize,
    shed: usize,
    completed: usize,
    failed: usize,
    degraded: usize,
}

/// A dispatched batch occupying the engine until `finish`.
struct InFlight {
    done: Vec<(Request, bool)>,
    batch: u64,
    degraded: bool,
}

struct Sim<'a> {
    cfg: &'a SiegeConfig,
    targets: Vec<ModelTarget>,
    admission: AdmissionController,
    batcher: Batcher,
    log: AdmissionLog,
    heap: BinaryHeap<Reverse<QEv>>,
    seq: u64,
    next_req: u64,
    next_batch: u64,
    engine_free_at: f64,
    inflight: Option<InFlight>,
    runs: Vec<TenantRun>,
    bitwise_failures: Vec<String>,
    batches: usize,
    degraded_batches: usize,
    observer: Option<&'a Recorder>,
}

impl Sim<'_> {
    fn schedule(&mut self, t: f64, ev: Ev) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(QEv { t, seq, ev }));
    }

    fn sink(&self, decision: &'static str, tenant: usize, t_us: f64) {
        if let Some(obs) = self.observer {
            obs.emit(SinkEvent::Serve {
                decision,
                tenant: tenant as u32,
                t_us,
            });
        }
    }

    /// Exponential inter-arrival gap (us) for an open-loop tenant.
    fn poisson_gap(rng: &mut StdRng, rate_rps: f64) -> f64 {
        let u: f64 = rng.gen_range(0.0..1.0);
        -(1.0 - u).ln() * 1e6 / rate_rps.max(1e-9)
    }

    fn reject(&mut self, now: f64, id: u64, tenant: usize, reason: RejectReason, retry: f64) {
        self.log.push(
            now,
            ServeEventKind::Rejected {
                req: id,
                tenant,
                reason,
                retry_after_us: retry,
            },
        );
        self.sink("rejected", tenant, now);
        flight::instant(SpanKind::Admission, tenant as u32, 0);
        self.runs[tenant].rejected += 1;
    }

    /// Processes one request arrival; returns `(admitted, retry_hint)`.
    fn handle_arrival(&mut self, now: f64, tenant: usize) -> (bool, f64) {
        let load = &self.cfg.tenants[tenant];
        let model = {
            let rng = &mut self.runs[tenant].rng;
            if load.models.is_empty() {
                rng.gen_range(0..self.targets.len())
            } else {
                load.models[rng.gen_range(0..load.models.len())]
            }
        };
        let id = self.next_req;
        self.next_req += 1;
        self.runs[tenant].arrived += 1;
        let deadline = load.slo_us.map(|s| now + s);
        self.log.push(
            now,
            ServeEventKind::Arrived {
                req: id,
                tenant,
                model,
            },
        );

        let target = &self.targets[model];
        let hybrid_pred = target.variants[0].predicted_us;
        let fastest_pred = target
            .variants
            .iter()
            .map(|v| v.predicted_us)
            .fold(f64::INFINITY, f64::min);
        let depth = self.batcher.depth();

        // Decision order (the checker replays the same order):
        // queue bound, then deadline feasibility, then per-tenant
        // rate/in-flight. A full queue never charges the token bucket.
        if depth >= self.cfg.queue_capacity {
            let hint = hybrid_pred * depth as f64;
            self.reject(now, id, tenant, RejectReason::QueueFull, hint);
            return (false, hint);
        }
        let est_wait = (self.engine_free_at - now).max(0.0) + hybrid_pred * depth as f64;
        let unmeetable = deadline.is_some_and(|d| now + est_wait + fastest_pred > d);
        if unmeetable {
            self.reject(now, id, tenant, RejectReason::DeadlineUnmeetable, est_wait);
            return (false, est_wait);
        }
        if let Err((reason, retry)) = self.admission.admit(tenant, now) {
            self.reject(now, id, tenant, reason, retry);
            return (false, retry);
        }
        self.log
            .push(now, ServeEventKind::Admitted { req: id, tenant });
        self.sink("admitted", tenant, now);
        flight::instant(SpanKind::Admission, tenant as u32, 1);
        self.runs[tenant].admitted += 1;
        let req = Request {
            id,
            tenant,
            model,
            arrival_us: now,
            deadline_us: deadline,
        };
        let depth = self
            .batcher
            .push(req, now)
            .expect("depth checked against capacity above");
        self.log.push(
            now,
            ServeEventKind::Enqueued {
                req: id,
                tenant,
                model,
                depth,
            },
        );
        (true, 0.0)
    }

    /// Dispatches ready batches while the engine is free; otherwise
    /// parks a timer on the batcher's next max-delay expiry.
    fn try_dispatch(&mut self, now: f64) {
        while self.inflight.is_none() {
            let Some(model) = self.batcher.ready(now) else {
                if self.batcher.depth() > 0 {
                    if let Some(expiry) = self.batcher.next_expiry() {
                        self.schedule(expiry.max(now), Ev::BatchTimer);
                    }
                }
                return;
            };
            self.dispatch(now, model);
        }
    }

    fn dispatch(&mut self, now: f64, model: usize) {
        let span = flight::begin(SpanKind::BatchForm, model as u32);
        let batch = self.batcher.form(model, now);
        let batch_id = self.next_batch;
        self.next_batch += 1;

        let preds: Vec<f64> = self.targets[model]
            .variants
            .iter()
            .map(|v| v.predicted_us)
            .collect();
        let BatchDecision {
            chosen,
            keep,
            shed,
            forced,
        } = decide_batch(now, &batch.members, &preds);
        let variant = self.targets[model].variants[chosen].variant;
        let degraded = chosen != 0;

        self.log.push(
            now,
            ServeEventKind::BatchFormed {
                batch: batch_id,
                model,
                variant,
                members: batch.members.iter().map(|m| m.id).collect(),
                oldest_wait_us: batch.oldest_wait_us,
                vtime: batch.vtime.clone(),
                backlogged: batch.backlogged.clone(),
            },
        );
        self.batches += 1;
        if degraded {
            self.degraded_batches += 1;
            for m in keep.iter().filter(|m| forced.contains(&m.id)) {
                self.log.push(
                    now,
                    ServeEventKind::Degraded {
                        req: m.id,
                        tenant: m.tenant,
                        batch: batch_id,
                        from: PlanVariant::Hybrid,
                        to: variant,
                    },
                );
                self.sink("degraded", m.tenant, now);
                flight::instant(SpanKind::Degrade, m.tenant as u32, m.id);
                self.runs[m.tenant].degraded += 1;
            }
        }
        for m in &shed {
            self.log.push(
                now,
                ServeEventKind::Shed {
                    req: m.id,
                    tenant: m.tenant,
                    reason: RejectReason::DeadlineUnmeetable,
                },
            );
            self.sink("shed", m.tenant, now);
            flight::instant(SpanKind::Shed, m.tenant as u32, m.id);
            self.admission.release(m.tenant);
            self.runs[m.tenant].shed += 1;
            self.reissue_closed(now, m.tenant);
        }
        flight::end(span);
        if keep.is_empty() {
            return;
        }

        // The real execution: tiny twin, per-batch fault plan, bitwise
        // gate against the fault-free reference.
        let target = &self.targets[model];
        let inputs: Vec<Tensor> = keep
            .iter()
            .map(|m| target.inputs[(m.id % INPUT_POOL as u64) as usize].clone())
            .collect();
        let done: Vec<(Request, bool)> = match Executor::new(&target.tiny) {
            Ok(exec) => {
                let exec = if self.cfg.faults {
                    let plan = FaultPlan::from_seed(
                        self.cfg
                            .seed
                            .wrapping_add(batch_id.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                        target.tiny.len(),
                    );
                    exec.with_faults(FaultInjector::from_plan(
                        &plan,
                        target.tiny.len(),
                        self.cfg.max_retries,
                    ))
                } else {
                    exec
                };
                match exec.batch_execute(&target.variants[chosen].tiny_plan, &inputs) {
                    Ok(outcomes) => keep
                        .iter()
                        .zip(outcomes.iter())
                        .map(|(m, outcome)| {
                            let slot = (m.id % INPUT_POOL as u64) as usize;
                            let ok = outcome.output.approx_eq(&target.refs[chosen][slot], 0.0);
                            if !ok {
                                self.bitwise_failures.push(format!(
                                    "{} batch {batch_id} req {}: output diverged from the \
                                     fault-free {} reference",
                                    target.kind,
                                    m.id,
                                    variant.name()
                                ));
                            }
                            (m.clone(), ok)
                        })
                        .collect(),
                    Err(e) => {
                        self.bitwise_failures.push(format!(
                            "{} batch {batch_id}: functional execution failed: {e}",
                            target.kind
                        ));
                        keep.iter().map(|m| (m.clone(), false)).collect()
                    }
                }
            }
            Err(e) => {
                self.bitwise_failures
                    .push(format!("{} executor: {e}", target.kind));
                keep.iter().map(|m| (m.clone(), false)).collect()
            }
        };

        let service_us = preds[chosen] * batch_factor(done.len());
        self.engine_free_at = now + service_us;
        self.inflight = Some(InFlight {
            done,
            batch: batch_id,
            degraded,
        });
        self.sink("batch_dispatched", keep[0].tenant, now);
        self.schedule(self.engine_free_at, Ev::EngineFree);
    }

    /// A closed-loop tenant issues its next request after `think_us`.
    fn reissue_closed(&mut self, now: f64, tenant: usize) {
        if let LoadMode::Closed { think_us, .. } = self.cfg.tenants[tenant].mode {
            let next = now + think_us.max(1.0);
            if next <= self.cfg.duration_us {
                self.schedule(next, Ev::Arrival { tenant });
            }
        }
    }

    fn complete(&mut self, now: f64) {
        let Some(fl) = self.inflight.take() else {
            return;
        };
        for (req, ok) in fl.done {
            self.admission.release(req.tenant);
            if ok {
                let latency = now - req.arrival_us;
                self.log.push(
                    now,
                    ServeEventKind::Completed {
                        req: req.id,
                        tenant: req.tenant,
                        batch: fl.batch,
                        latency_us: latency,
                        deadline_us: req.deadline_us,
                        degraded: fl.degraded,
                    },
                );
                self.sink("completed", req.tenant, now);
                self.runs[req.tenant].completed += 1;
                self.runs[req.tenant].latencies.push(latency);
            } else {
                self.runs[req.tenant].failed += 1;
            }
            self.reissue_closed(now, req.tenant);
        }
    }
}

/// Nearest-rank percentile over an unsorted latency sample.
pub(crate) fn percentile_us(latencies: &[f64], p: f64) -> f64 {
    if latencies.is_empty() {
        return f64::NAN;
    }
    let mut sorted = latencies.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = ((sorted.len() as f64) * p).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Runs one deterministic siege. Same config (including seed), same
/// admission log — bit for bit.
///
/// Decisions stream into `observer` (when given) as
/// `SinkEvent::Serve` counters and into the flight recorder as
/// `admission` / `batch_form` / `degrade` / `shed` stages.
///
/// # Errors
/// Fails on scenario construction problems (empty tenant/model lists,
/// un-plannable models); load-induced failures are *reported*, not
/// errored, so the gate can print per-tenant evidence before exiting
/// non-zero.
pub fn run_siege(config: &SiegeConfig, observer: Option<&Recorder>) -> Result<SiegeReport, String> {
    if config.tenants.is_empty() {
        return Err("siege needs at least one tenant".to_string());
    }
    if config.models.is_empty() {
        return Err("siege needs at least one model".to_string());
    }
    for load in &config.tenants {
        if let Some(&bad) = load.models.iter().find(|&&m| m >= config.models.len()) {
            return Err(format!(
                "tenant {} references model index {bad} outside the catalog",
                load.tenant.name
            ));
        }
    }
    let targets = build_targets(&config.models, &config.platform, config.seed)?;
    let tenant_configs: Vec<TenantConfig> =
        config.tenants.iter().map(|l| l.tenant.clone()).collect();
    let weights: Vec<f64> = tenant_configs.iter().map(|t| t.weight).collect();
    let mut sim = Sim {
        cfg: config,
        admission: AdmissionController::new(&tenant_configs, 0.0),
        batcher: Batcher::new(
            config.policy,
            config.queue_capacity,
            &weights,
            config.models.len(),
        ),
        targets,
        log: AdmissionLog::default(),
        heap: BinaryHeap::new(),
        seq: 0,
        next_req: 0,
        next_batch: 0,
        engine_free_at: 0.0,
        inflight: None,
        runs: (0..config.tenants.len())
            .map(|t| TenantRun {
                rng: StdRng::seed_from_u64(config.seed.wrapping_add(0x51E6 + t as u64 * 7919)),
                latencies: Vec::new(),
                arrived: 0,
                admitted: 0,
                rejected: 0,
                shed: 0,
                completed: 0,
                failed: 0,
                degraded: 0,
            })
            .collect(),
        bitwise_failures: Vec::new(),
        batches: 0,
        degraded_batches: 0,
        observer,
    };

    // Seed the arrival processes.
    for (t, load) in config.tenants.iter().enumerate() {
        match load.mode {
            LoadMode::Open { rate_rps } => {
                let gap = Sim::poisson_gap(&mut sim.runs[t].rng, rate_rps);
                if gap <= config.duration_us {
                    sim.schedule(gap, Ev::Arrival { tenant: t });
                }
            }
            LoadMode::Closed { concurrency, .. } => {
                for k in 0..concurrency {
                    sim.schedule(k as f64 * 1.0, Ev::Arrival { tenant: t });
                }
            }
        }
    }

    // The virtual-time main loop: arrivals, batch timers, engine
    // completions — until everything drains.
    while let Some(Reverse(qe)) = sim.heap.pop() {
        let now = qe.t;
        match qe.ev {
            Ev::Arrival { tenant } => {
                let (admitted, retry_hint) = sim.handle_arrival(now, tenant);
                match sim.cfg.tenants[tenant].mode {
                    LoadMode::Open { rate_rps } => {
                        let gap = Sim::poisson_gap(&mut sim.runs[tenant].rng, rate_rps);
                        let next = now + gap;
                        if next <= sim.cfg.duration_us {
                            sim.schedule(next, Ev::Arrival { tenant });
                        }
                    }
                    LoadMode::Closed { .. } => {
                        if !admitted {
                            // A refused closed-loop client retries at the
                            // hinted backoff; an admitted one reissues at
                            // completion (or shed) plus think time.
                            let next = now + retry_hint.clamp(1.0, 50_000.0);
                            if next <= sim.cfg.duration_us {
                                sim.schedule(next, Ev::Arrival { tenant });
                            }
                        }
                    }
                }
            }
            Ev::EngineFree => sim.complete(now),
            Ev::BatchTimer => {}
        }
        sim.try_dispatch(now);
    }

    // Assemble the report.
    let duration_s = (config.duration_us / 1e6).max(1e-9);
    let tenants: Vec<TenantStats> = config
        .tenants
        .iter()
        .zip(sim.runs.iter())
        .map(|(load, run)| TenantStats {
            name: load.tenant.name.clone(),
            weight: load.tenant.weight,
            arrived: run.arrived,
            admitted: run.admitted,
            rejected: run.rejected,
            shed: run.shed,
            completed: run.completed,
            failed: run.failed,
            degraded: run.degraded,
            p50_us: percentile_us(&run.latencies, 0.50),
            p99_us: percentile_us(&run.latencies, 0.99),
            p999_us: percentile_us(&run.latencies, 0.999),
            goodput_rps: run.completed as f64 / duration_s,
        })
        .collect();
    let admitted: usize = tenants.iter().map(|t| t.admitted).sum();
    let shed: usize = tenants.iter().map(|t| t.shed).sum();
    let completed: usize = tenants.iter().map(|t| t.completed).sum();
    let servable = admitted.saturating_sub(shed);
    let survival = if servable == 0 {
        1.0
    } else {
        completed as f64 / servable as f64
    };
    let shed_rate = if admitted == 0 {
        0.0
    } else {
        shed as f64 / admitted as f64
    };
    let normalized: Vec<f64> = tenants
        .iter()
        .filter(|t| t.completed > 0)
        .map(|t| t.goodput_rps / t.weight)
        .collect();
    let fairness_spread = if normalized.len() < 2 {
        1.0
    } else {
        let max = normalized.iter().copied().fold(f64::MIN, f64::max);
        let min = normalized.iter().copied().fold(f64::MAX, f64::min);
        max / min
    };
    let models = sim
        .targets
        .iter()
        .map(|t| ModelStats {
            name: t.kind.to_string(),
            variants: t
                .variants
                .iter()
                .map(|v| (v.variant.name().to_string(), v.predicted_us))
                .collect(),
        })
        .collect();
    Ok(SiegeReport {
        tenants,
        models,
        batches: sim.batches,
        degraded_batches: sim.degraded_batches,
        survival,
        shed_rate,
        fairness_spread,
        high_water: sim.batcher.high_water(),
        queue_capacity: config.queue_capacity,
        max_batch: config.policy.max_batch,
        weights,
        lost: servable.saturating_sub(completed),
        bitwise_failures: sim.bitwise_failures,
        log: sim.log,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config(seed: u64) -> SiegeConfig {
        let mut cfg = SiegeConfig::ci(seed);
        cfg.duration_us = 20_000.0;
        cfg
    }

    #[test]
    fn siege_is_deterministic_and_admitted_requests_survive() {
        let cfg = quick_config(42);
        let a = run_siege(&cfg, None).unwrap();
        let b = run_siege(&cfg, None).unwrap();
        assert_eq!(a.log.events, b.log.events, "same seed, same decisions");
        assert!(a.bitwise_failures.is_empty(), "{:?}", a.bitwise_failures);
        assert_eq!(a.lost, 0);
        assert!((a.survival - 1.0).abs() < 1e-12);
        assert!(a.high_water <= a.queue_capacity, "queue bound violated");
        assert!(a.batches > 0, "the scenario actually dispatched work");
        assert!(
            a.tenants.iter().all(|t| t.completed > 0),
            "every tenant made progress: {:?}",
            a.tenants
        );
        assert!(a.gate_clean());
    }

    #[test]
    fn different_seeds_differ() {
        let a = run_siege(&quick_config(1), None).unwrap();
        let b = run_siege(&quick_config(2), None).unwrap();
        assert_ne!(a.log.events, b.log.events);
    }

    #[test]
    fn tight_slo_degrades_or_sheds_instead_of_losing_requests() {
        // Probe the ladder first, then set an SLO below the hybrid
        // rung's reach: the guard must degrade where a faster rung
        // exists and shed (typed) where none does — never lose.
        let mut probe = quick_config(7);
        probe.duration_us = 0.0;
        let ladder = run_siege(&probe, None).unwrap();
        let hybrid_max = ladder
            .models
            .iter()
            .map(|m| m.variants[0].1)
            .fold(f64::MIN, f64::max);
        let fastest_min = ladder
            .models
            .iter()
            .map(|m| m.variants.iter().map(|v| v.1).fold(f64::INFINITY, f64::min))
            .fold(f64::INFINITY, f64::min);

        let mut cfg = quick_config(7);
        cfg.duration_us = 15_000.0;
        // Deadline sits above the fastest rung's cost but below the
        // slowest hybrid's: some mix of degrade and shed must appear.
        let slo = (fastest_min * 1.2).max(hybrid_max * 0.5);
        for tenant in &mut cfg.tenants {
            tenant.slo_us = Some(slo);
        }
        let report = run_siege(&cfg, None).unwrap();
        assert!(report.bitwise_failures.is_empty());
        assert_eq!(report.lost, 0, "tight SLOs shed, they do not lose");
        assert!((report.survival - 1.0).abs() < 1e-12);
        let sheds: usize = report.tenants.iter().map(|t| t.shed).sum();
        let degrades: usize = report.tenants.iter().map(|t| t.degraded).sum();
        let deadline_rejects = report
            .log
            .events
            .iter()
            .filter(|e| {
                matches!(
                    e.kind,
                    ServeEventKind::Rejected {
                        reason: RejectReason::DeadlineUnmeetable,
                        ..
                    }
                )
            })
            .count();
        assert!(
            sheds + degrades + deadline_rejects > 0,
            "a sub-hybrid SLO must trigger the guard: {report:?}"
        );
    }

    #[test]
    fn observer_receives_serve_counters() {
        let recorder = Recorder::new();
        let cfg = quick_config(11);
        let report = run_siege(&cfg, Some(&recorder)).unwrap();
        let admitted: usize = report.tenants.iter().map(|t| t.admitted).sum();
        assert!(admitted > 0);
        assert_eq!(
            recorder
                .metrics()
                .counter_value("edgenn_serve_admitted_total"),
            Some(admitted as f64),
            "admitted counter tracks the report"
        );
    }
}
