//! Typed serving-layer decisions: the admission log.
//!
//! Every decision the front-end takes — admit, reject, enqueue, batch,
//! degrade, shed, complete — is appended to an [`AdmissionLog`] as a
//! [`ServeEvent`]. The log is the serving layer's equivalent of PR 4's
//! recovery log: a replayable record the `edgenn-check` EC07x tier can
//! verify *after the fact* (no post-shed completions, exact weighted-
//! fair pick order, bounded queue depth, admission accounting that adds
//! up), and the raw material for the siege report's per-tenant tails.

use serde_json::{Map, Value};

use crate::batcher::PlanVariant;

/// Why a request was refused (at admission) or shed (after admission).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The tenant's token bucket is empty (sustained rate exceeded).
    RateLimited,
    /// The tenant already has its maximum admitted requests in flight.
    InFlightCap,
    /// The bounded ingress queue is at capacity (global backpressure).
    QueueFull,
    /// Queue-wait estimate plus the fastest plan variant's predicted
    /// latency already exceeds the request's deadline.
    DeadlineUnmeetable,
}

impl RejectReason {
    /// Stable snake-case name (JSON, metrics, docs).
    pub fn name(self) -> &'static str {
        match self {
            RejectReason::RateLimited => "rate_limited",
            RejectReason::InFlightCap => "in_flight_cap",
            RejectReason::QueueFull => "queue_full",
            RejectReason::DeadlineUnmeetable => "deadline_unmeetable",
        }
    }

    /// Every reason, for docs-sync and exhaustive tests.
    pub const ALL: [RejectReason; 4] = [
        RejectReason::RateLimited,
        RejectReason::InFlightCap,
        RejectReason::QueueFull,
        RejectReason::DeadlineUnmeetable,
    ];
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One serving-layer decision, stamped with the clock it happened on
/// (virtual microseconds under `edgenn siege`, wall microseconds under
/// `edgenn serve`).
#[derive(Debug, Clone, PartialEq)]
pub struct ServeEvent {
    /// When the decision was taken (us).
    pub t_us: f64,
    /// What was decided.
    pub kind: ServeEventKind,
}

/// The decision itself.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeEventKind {
    /// A request arrived at the front door.
    Arrived {
        /// Request id (unique within one run).
        req: u64,
        /// Tenant ordinal.
        tenant: usize,
        /// Catalog model ordinal the request targets.
        model: usize,
    },
    /// Admission control accepted the request.
    Admitted {
        /// Request id.
        req: u64,
        /// Tenant ordinal.
        tenant: usize,
    },
    /// Admission control refused the request (never entered the queue).
    Rejected {
        /// Request id.
        req: u64,
        /// Tenant ordinal.
        tenant: usize,
        /// Why it was refused.
        reason: RejectReason,
        /// Backpressure hint: earliest worthwhile retry (us from now).
        retry_after_us: f64,
    },
    /// An admitted request entered the bounded pending set.
    Enqueued {
        /// Request id.
        req: u64,
        /// Tenant ordinal.
        tenant: usize,
        /// Catalog model ordinal.
        model: usize,
        /// Pending-set depth *after* this enqueue (bound check input).
        depth: usize,
    },
    /// The dynamic batcher closed a batch and dispatched it.
    BatchFormed {
        /// Batch id (unique within one run).
        batch: u64,
        /// Catalog model ordinal the batch executes.
        model: usize,
        /// The plan variant the whole batch runs under.
        variant: PlanVariant,
        /// Member request ids, in pick order (fairness replay input).
        members: Vec<u64>,
        /// Age of the oldest member at dispatch (us).
        oldest_wait_us: f64,
        /// Per-tenant virtual-time vector *after* charging this batch.
        vtime: Vec<f64>,
        /// Tenants still holding pending requests after this batch.
        backlogged: Vec<usize>,
    },
    /// The SLO guard downgraded a batch's plan variant to protect a
    /// member's deadline.
    Degraded {
        /// Request id whose deadline forced the downgrade.
        req: u64,
        /// Tenant ordinal.
        tenant: usize,
        /// Batch the request rides in.
        batch: u64,
        /// Variant the batch would have run.
        from: PlanVariant,
        /// Variant it runs instead.
        to: PlanVariant,
    },
    /// An admitted request was dropped because no ladder variant could
    /// meet its deadline.
    Shed {
        /// Request id.
        req: u64,
        /// Tenant ordinal.
        tenant: usize,
        /// Why it could not be saved.
        reason: RejectReason,
    },
    /// A request finished executing and its output passed verification.
    Completed {
        /// Request id.
        req: u64,
        /// Tenant ordinal.
        tenant: usize,
        /// Batch it executed in.
        batch: u64,
        /// End-to-end latency, arrival → completion (us).
        latency_us: f64,
        /// Absolute deadline, if the request carried one (us).
        deadline_us: Option<f64>,
        /// Whether the batch ran a degraded variant.
        degraded: bool,
    },
}

impl ServeEventKind {
    /// Stable snake-case name (JSON, metrics, docs-sync).
    pub fn name(&self) -> &'static str {
        match self {
            ServeEventKind::Arrived { .. } => "arrived",
            ServeEventKind::Admitted { .. } => "admitted",
            ServeEventKind::Rejected { .. } => "rejected",
            ServeEventKind::Enqueued { .. } => "enqueued",
            ServeEventKind::BatchFormed { .. } => "batch_formed",
            ServeEventKind::Degraded { .. } => "degraded",
            ServeEventKind::Shed { .. } => "shed",
            ServeEventKind::Completed { .. } => "completed",
        }
    }

    /// Every kind name, for the docs-sync test.
    pub const ALL_NAMES: [&'static str; 8] = [
        "arrived",
        "admitted",
        "rejected",
        "enqueued",
        "batch_formed",
        "degraded",
        "shed",
        "completed",
    ];
}

impl ServeEvent {
    /// JSON form (archived by `edgenn siege --out`).
    pub fn to_value(&self) -> Value {
        let mut m = Map::new();
        m.insert("t_us".to_string(), Value::Number(self.t_us));
        m.insert(
            "event".to_string(),
            Value::String(self.kind.name().to_string()),
        );
        match &self.kind {
            ServeEventKind::Arrived { req, tenant, model } => {
                m.insert("req".to_string(), Value::Number(*req as f64));
                m.insert("tenant".to_string(), Value::Number(*tenant as f64));
                m.insert("model".to_string(), Value::Number(*model as f64));
            }
            ServeEventKind::Admitted { req, tenant } => {
                m.insert("req".to_string(), Value::Number(*req as f64));
                m.insert("tenant".to_string(), Value::Number(*tenant as f64));
            }
            ServeEventKind::Rejected {
                req,
                tenant,
                reason,
                retry_after_us,
            } => {
                m.insert("req".to_string(), Value::Number(*req as f64));
                m.insert("tenant".to_string(), Value::Number(*tenant as f64));
                m.insert("reason".to_string(), Value::String(reason.name().into()));
                m.insert("retry_after_us".to_string(), Value::Number(*retry_after_us));
            }
            ServeEventKind::Enqueued {
                req,
                tenant,
                model,
                depth,
            } => {
                m.insert("req".to_string(), Value::Number(*req as f64));
                m.insert("tenant".to_string(), Value::Number(*tenant as f64));
                m.insert("model".to_string(), Value::Number(*model as f64));
                m.insert("depth".to_string(), Value::Number(*depth as f64));
            }
            ServeEventKind::BatchFormed {
                batch,
                model,
                variant,
                members,
                oldest_wait_us,
                vtime,
                backlogged,
            } => {
                m.insert("batch".to_string(), Value::Number(*batch as f64));
                m.insert("model".to_string(), Value::Number(*model as f64));
                m.insert("variant".to_string(), Value::String(variant.name().into()));
                m.insert(
                    "members".to_string(),
                    Value::Array(members.iter().map(|r| Value::Number(*r as f64)).collect()),
                );
                m.insert("oldest_wait_us".to_string(), Value::Number(*oldest_wait_us));
                m.insert(
                    "vtime".to_string(),
                    Value::Array(vtime.iter().map(|v| Value::Number(*v)).collect()),
                );
                m.insert(
                    "backlogged".to_string(),
                    Value::Array(
                        backlogged
                            .iter()
                            .map(|t| Value::Number(*t as f64))
                            .collect(),
                    ),
                );
            }
            ServeEventKind::Degraded {
                req,
                tenant,
                batch,
                from,
                to,
            } => {
                m.insert("req".to_string(), Value::Number(*req as f64));
                m.insert("tenant".to_string(), Value::Number(*tenant as f64));
                m.insert("batch".to_string(), Value::Number(*batch as f64));
                m.insert("from".to_string(), Value::String(from.name().into()));
                m.insert("to".to_string(), Value::String(to.name().into()));
            }
            ServeEventKind::Shed {
                req,
                tenant,
                reason,
            } => {
                m.insert("req".to_string(), Value::Number(*req as f64));
                m.insert("tenant".to_string(), Value::Number(*tenant as f64));
                m.insert("reason".to_string(), Value::String(reason.name().into()));
            }
            ServeEventKind::Completed {
                req,
                tenant,
                batch,
                latency_us,
                deadline_us,
                degraded,
            } => {
                m.insert("req".to_string(), Value::Number(*req as f64));
                m.insert("tenant".to_string(), Value::Number(*tenant as f64));
                m.insert("batch".to_string(), Value::Number(*batch as f64));
                m.insert("latency_us".to_string(), Value::Number(*latency_us));
                if let Some(d) = deadline_us {
                    m.insert("deadline_us".to_string(), Value::Number(*d));
                }
                m.insert("degraded".to_string(), Value::Bool(*degraded));
            }
        }
        Value::Object(m)
    }
}

/// The append-only decision record of one serving run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AdmissionLog {
    /// Events in decision order.
    pub events: Vec<ServeEvent>,
}

impl AdmissionLog {
    /// Appends one decision.
    pub fn push(&mut self, t_us: f64, kind: ServeEventKind) {
        self.events.push(ServeEvent { t_us, kind });
    }

    /// Count of events matching `name`.
    pub fn count(&self, name: &str) -> usize {
        self.events.iter().filter(|e| e.kind.name() == name).count()
    }

    /// JSON form: an array of event objects in decision order.
    pub fn to_value(&self) -> Value {
        Value::Array(self.events.iter().map(ServeEvent::to_value).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_names_are_stable_and_complete() {
        let samples = [
            ServeEventKind::Arrived {
                req: 1,
                tenant: 0,
                model: 0,
            },
            ServeEventKind::Admitted { req: 1, tenant: 0 },
            ServeEventKind::Rejected {
                req: 1,
                tenant: 0,
                reason: RejectReason::RateLimited,
                retry_after_us: 10.0,
            },
            ServeEventKind::Enqueued {
                req: 1,
                tenant: 0,
                model: 0,
                depth: 1,
            },
            ServeEventKind::BatchFormed {
                batch: 0,
                model: 0,
                variant: PlanVariant::Hybrid,
                members: vec![1],
                oldest_wait_us: 0.0,
                vtime: vec![1.0],
                backlogged: vec![],
            },
            ServeEventKind::Degraded {
                req: 1,
                tenant: 0,
                batch: 0,
                from: PlanVariant::Hybrid,
                to: PlanVariant::Int8,
            },
            ServeEventKind::Shed {
                req: 1,
                tenant: 0,
                reason: RejectReason::DeadlineUnmeetable,
            },
            ServeEventKind::Completed {
                req: 1,
                tenant: 0,
                batch: 0,
                latency_us: 5.0,
                deadline_us: None,
                degraded: false,
            },
        ];
        let names: Vec<&str> = samples.iter().map(ServeEventKind::name).collect();
        assert_eq!(names, ServeEventKind::ALL_NAMES);
    }

    #[test]
    fn log_round_trips_to_json() {
        let mut log = AdmissionLog::default();
        log.push(1.0, ServeEventKind::Admitted { req: 7, tenant: 2 });
        log.push(
            2.0,
            ServeEventKind::Completed {
                req: 7,
                tenant: 2,
                batch: 0,
                latency_us: 1.0,
                deadline_us: Some(100.0),
                degraded: true,
            },
        );
        let v = log.to_value();
        let text = serde_json::to_string(&v).unwrap();
        assert!(text.contains("\"admitted\""));
        assert!(text.contains("\"deadline_us\""));
        assert_eq!(log.count("completed"), 1);
    }

    #[test]
    fn docs_list_every_event_and_reason() {
        // Repo-standard doc-sync: docs/serving.md must name every event
        // kind and every reject reason, so a new decision type cannot
        // land undocumented.
        let docs = include_str!("../../../docs/serving.md");
        for name in ServeEventKind::ALL_NAMES {
            assert!(
                docs.contains(&format!("`{name}`")),
                "event {name} missing from docs/serving.md"
            );
        }
        for reason in RejectReason::ALL {
            assert!(
                docs.contains(&format!("`{}`", reason.name())),
                "reject reason {} missing from docs/serving.md",
                reason.name()
            );
        }
    }
}
