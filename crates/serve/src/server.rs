//! `edgenn serve`: the real-time serving loop.
//!
//! Where [`crate::siege`] drives the pipeline in virtual time to gate
//! it, this module runs the same pipeline against the wall clock:
//! seeded client threads push requests through admission into the
//! bounded condvar-parked ingress queue ([`crate::queue`]), and a
//! dispatcher thread parks on the queue with the batcher's next
//! max-delay expiry as its deadline, forms weighted-fair batches, runs
//! the SLO guard, and executes each batch for real through
//! `Executor::batch_execute` with a bitwise check against the
//! fault-free reference.
//!
//! Two intentional differences from the siege:
//!
//! * Service-time estimates are **measured**, not analytic: the hybrid
//!   rung is warmed once per model at startup and an EWMA tracks each
//!   rung thereafter (other rungs are seeded from the analytic ratio).
//!   Wall-clock SLO math against tiny twins needs wall-clock costs.
//! * The pending story is two-stage — ingress queue then batcher, each
//!   bounded by `queue_capacity` (combined outstanding is therefore at
//!   most twice the configured bound). `Enqueued` is logged at batcher
//!   insertion, which keeps the EC07x fairness replay exact.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use edgenn_core::runtime::functional::Executor;
use edgenn_nn::models::ModelKind;
use edgenn_obs::flight::{self, SpanKind};
use edgenn_obs::{EventSink, Recorder, SinkEvent};
use edgenn_sim::Platform;
use edgenn_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::admission::{AdmissionController, TenantConfig};
use crate::batcher::{BatchPolicy, Batcher, PlanVariant, Request};
use crate::events::{AdmissionLog, RejectReason, ServeEvent, ServeEventKind};
use crate::queue::{BoundedQueue, PushError};
use crate::siege::{
    batch_factor, build_targets, decide_batch, BatchDecision, LoadMode, ModelStats, SiegeReport,
    TenantLoad, TenantStats,
};

/// A real-time serving scenario.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Seed for client arrival processes and input selection.
    pub seed: u64,
    /// Wall-clock run length (ms).
    pub duration_ms: u64,
    /// The tenant population. Closed-loop tenants run semi-open here:
    /// each client paces by think time without waiting for responses.
    pub tenants: Vec<TenantLoad>,
    /// The model catalog.
    pub models: Vec<ModelKind>,
    /// Bound on the ingress queue AND the batcher pending set.
    pub queue_capacity: usize,
    /// Dynamic-batching policy.
    pub policy: BatchPolicy,
    /// The platform the tuner prices plans against.
    pub platform: Platform,
}

impl ServeConfig {
    /// A small two-tenant demo scenario.
    pub fn demo(seed: u64, duration_ms: u64) -> Self {
        ServeConfig {
            seed,
            duration_ms,
            tenants: vec![
                TenantLoad {
                    tenant: TenantConfig {
                        name: "tenant-a".to_string(),
                        weight: 2.0,
                        rate_per_s: 300.0,
                        burst: 8.0,
                        max_in_flight: 32,
                    },
                    mode: LoadMode::Open { rate_rps: 150.0 },
                    slo_us: None,
                    models: Vec::new(),
                },
                TenantLoad {
                    tenant: TenantConfig {
                        name: "tenant-b".to_string(),
                        weight: 1.0,
                        rate_per_s: 300.0,
                        burst: 8.0,
                        max_in_flight: 32,
                    },
                    mode: LoadMode::Open { rate_rps: 150.0 },
                    slo_us: None,
                    models: Vec::new(),
                },
            ],
            models: vec![ModelKind::Fcnn, ModelKind::LeNet],
            queue_capacity: 64,
            policy: BatchPolicy {
                max_batch: 4,
                max_delay_us: 2_000.0,
            },
            platform: edgenn_sim::platforms::jetson_agx_xavier(),
        }
    }
}

/// Shared wall-clock state between clients and the dispatcher.
struct Shared<'a> {
    queue: BoundedQueue<Request>,
    admission: Mutex<AdmissionController>,
    log: Mutex<AdmissionLog>,
    next_req: AtomicU64,
    stop: AtomicBool,
    observer: Option<&'a Recorder>,
}

impl Shared<'_> {
    fn push_log(&self, t_us: f64, kind: ServeEventKind) {
        self.log
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(t_us, kind);
    }

    fn sink(&self, decision: &'static str, tenant: usize, t_us: f64) {
        if let Some(obs) = self.observer {
            obs.emit(SinkEvent::Serve {
                decision,
                tenant: tenant as u32,
                t_us,
            });
        }
    }
}

/// One client thread: generates this tenant's arrivals against the
/// wall clock, runs admission, and pushes into the ingress queue.
#[allow(clippy::too_many_arguments)]
fn client_loop(
    shared: &Shared<'_>,
    config: &ServeConfig,
    tenant: usize,
    t0: Instant,
    hybrid_preds: &[f64],
) {
    let load = &config.tenants[tenant];
    let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(0xC11E + tenant as u64 * 7919));
    let (mean_gap_us, think) = match load.mode {
        LoadMode::Open { rate_rps } => (1e6 / rate_rps.max(1e-9), false),
        LoadMode::Closed {
            concurrency,
            think_us,
        } => (think_us.max(100.0) / concurrency.max(1) as f64, true),
    };
    loop {
        if shared.stop.load(Ordering::Relaxed) {
            return;
        }
        let gap_us = if think {
            mean_gap_us
        } else {
            let u: f64 = rng.gen_range(0.0..1.0);
            -(1.0 - u).ln() * mean_gap_us
        };
        std::thread::sleep(Duration::from_micros(gap_us.clamp(50.0, 100_000.0) as u64));
        if shared.stop.load(Ordering::Relaxed) {
            return;
        }
        let now = t0.elapsed().as_secs_f64() * 1e6;
        let model = if load.models.is_empty() {
            rng.gen_range(0..config.models.len())
        } else {
            load.models[rng.gen_range(0..load.models.len())]
        };
        let id = shared.next_req.fetch_add(1, Ordering::Relaxed);
        shared.push_log(
            now,
            ServeEventKind::Arrived {
                req: id,
                tenant,
                model,
            },
        );
        let decision = {
            let mut admission = shared
                .admission
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            admission.admit(tenant, now)
        };
        match decision {
            Err((reason, retry)) => {
                shared.push_log(
                    now,
                    ServeEventKind::Rejected {
                        req: id,
                        tenant,
                        reason,
                        retry_after_us: retry,
                    },
                );
                shared.sink("rejected", tenant, now);
                flight::instant(SpanKind::Admission, tenant as u32, 0);
            }
            Ok(()) => {
                let req = Request {
                    id,
                    tenant,
                    model,
                    arrival_us: now,
                    deadline_us: load.slo_us.map(|s| now + s),
                };
                // The log lock is held across the queue push so the
                // dispatcher cannot record this request's `Enqueued`
                // before its `Admitted`: the EC07x lifecycle replay
                // requires admitted -> enqueued order per request.
                let pushed = {
                    let mut log = shared
                        .log
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    let pushed = shared.queue.try_push(req, hybrid_preds[model]);
                    if pushed.is_ok() {
                        log.push(now, ServeEventKind::Admitted { req: id, tenant });
                    }
                    pushed
                };
                match pushed {
                    Ok(()) => {
                        shared.sink("admitted", tenant, now);
                        flight::instant(SpanKind::Admission, tenant as u32, 1);
                    }
                    Err(PushError::Full { retry_after_us }) => {
                        shared
                            .admission
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner)
                            .release(tenant);
                        shared.push_log(
                            now,
                            ServeEventKind::Rejected {
                                req: id,
                                tenant,
                                reason: RejectReason::QueueFull,
                                retry_after_us,
                            },
                        );
                        shared.sink("rejected", tenant, now);
                        flight::instant(SpanKind::Admission, tenant as u32, 0);
                    }
                    Err(PushError::Closed) => return,
                }
            }
        }
    }
}

/// Runs a real-time serving session for `config.duration_ms`, then
/// drains and reports. The report shape is shared with the siege so
/// `edgenn serve` and `edgenn siege` print identically and the EC07x
/// checker consumes either log.
///
/// # Errors
/// Fails on scenario construction problems (empty tenant/model lists,
/// un-plannable models, out-of-range model references).
pub fn run_server(
    config: &ServeConfig,
    observer: Option<&Recorder>,
) -> Result<SiegeReport, String> {
    if config.tenants.is_empty() {
        return Err("serve needs at least one tenant".to_string());
    }
    if config.models.is_empty() {
        return Err("serve needs at least one model".to_string());
    }
    for load in &config.tenants {
        if let Some(&bad) = load.models.iter().find(|&&m| m >= config.models.len()) {
            return Err(format!(
                "tenant {} references model index {bad} outside the catalog",
                load.tenant.name
            ));
        }
    }
    let targets = build_targets(&config.models, &config.platform, config.seed)?;
    let tenant_configs: Vec<TenantConfig> =
        config.tenants.iter().map(|l| l.tenant.clone()).collect();
    let weights: Vec<f64> = tenant_configs.iter().map(|t| t.weight).collect();

    // Warm the hybrid rung once per model for a measured wall-clock
    // estimate; other rungs start from the analytic ratio and converge
    // by EWMA as batches execute.
    let mut est: Vec<Vec<f64>> = Vec::with_capacity(targets.len());
    for target in &targets {
        let exec = Executor::new(&target.tiny).map_err(|e| e.to_string())?;
        let warm_start = Instant::now();
        exec.execute(&target.variants[0].tiny_plan, &target.inputs[0])
            .map_err(|e| format!("{} warm-up: {e}", target.kind))?;
        let hybrid_us = warm_start.elapsed().as_secs_f64() * 1e6;
        let hybrid_pred = target.variants[0].predicted_us;
        est.push(
            target
                .variants
                .iter()
                .map(|v| hybrid_us * (v.predicted_us / hybrid_pred))
                .collect(),
        );
    }
    let hybrid_ests: Vec<f64> = est.iter().map(|e| e[0]).collect();

    let shared = Shared {
        queue: BoundedQueue::new(config.queue_capacity),
        admission: Mutex::new(AdmissionController::new(&tenant_configs, 0.0)),
        log: Mutex::new(AdmissionLog::default()),
        next_req: AtomicU64::new(0),
        stop: AtomicBool::new(false),
        observer,
    };
    let t0 = Instant::now();
    let mut bitwise_failures: Vec<String> = Vec::new();
    let mut batches = 0usize;
    let mut degraded_batches = 0usize;
    let mut high_water_batcher = 0usize;

    std::thread::scope(|scope| {
        for tenant in 0..config.tenants.len() {
            let shared = &shared;
            let hybrid_ests = &hybrid_ests;
            scope.spawn(move || client_loop(shared, config, tenant, t0, hybrid_ests));
        }

        // The dispatcher runs inline on this thread: park on the queue
        // bounded by the batcher's next expiry, batch, guard, execute.
        let mut batcher = Batcher::new(
            config.policy,
            config.queue_capacity,
            &weights,
            config.models.len(),
        );
        let mut next_batch = 0u64;
        let deadline = t0 + Duration::from_millis(config.duration_ms);
        loop {
            let now_us = t0.elapsed().as_secs_f64() * 1e6;
            if Instant::now() >= deadline && !shared.stop.load(Ordering::Relaxed) {
                shared.stop.store(true, Ordering::Relaxed);
                shared.queue.close();
            }
            let stopping = shared.stop.load(Ordering::Relaxed);
            let park = batcher
                .next_expiry()
                .map_or(1_000.0, |e| (e - now_us).clamp(50.0, 5_000.0));
            if batcher.depth() < config.queue_capacity {
                if let Some(req) = shared.queue.pop_wait(Duration::from_micros(park as u64)) {
                    let t = t0.elapsed().as_secs_f64() * 1e6;
                    let (id, tenant, model) = (req.id, req.tenant, req.model);
                    let depth = batcher
                        .push(req, t)
                        .expect("dispatcher checked batcher capacity");
                    shared.push_log(
                        t,
                        ServeEventKind::Enqueued {
                            req: id,
                            tenant,
                            model,
                            depth,
                        },
                    );
                }
            } else {
                std::thread::sleep(Duration::from_micros(park as u64));
            }
            let now_us = t0.elapsed().as_secs_f64() * 1e6;
            while let Some(model) = batcher.ready(now_us) {
                let span = flight::begin(SpanKind::BatchForm, model as u32);
                let batch = batcher.form(model, now_us);
                let batch_id = next_batch;
                next_batch += 1;
                batches += 1;
                let preds = est[model].clone();
                let BatchDecision {
                    chosen,
                    keep,
                    shed,
                    forced,
                } = decide_batch(now_us, &batch.members, &preds);
                let target = &targets[model];
                let variant = target.variants[chosen].variant;
                shared.push_log(
                    now_us,
                    ServeEventKind::BatchFormed {
                        batch: batch_id,
                        model,
                        variant,
                        members: batch.members.iter().map(|m| m.id).collect(),
                        oldest_wait_us: batch.oldest_wait_us,
                        vtime: batch.vtime.clone(),
                        backlogged: batch.backlogged.clone(),
                    },
                );
                if chosen != 0 {
                    degraded_batches += 1;
                    for m in keep.iter().filter(|m| forced.contains(&m.id)) {
                        shared.push_log(
                            now_us,
                            ServeEventKind::Degraded {
                                req: m.id,
                                tenant: m.tenant,
                                batch: batch_id,
                                from: PlanVariant::Hybrid,
                                to: variant,
                            },
                        );
                        shared.sink("degraded", m.tenant, now_us);
                        flight::instant(SpanKind::Degrade, m.tenant as u32, m.id);
                    }
                }
                for m in &shed {
                    shared.push_log(
                        now_us,
                        ServeEventKind::Shed {
                            req: m.id,
                            tenant: m.tenant,
                            reason: RejectReason::DeadlineUnmeetable,
                        },
                    );
                    shared.sink("shed", m.tenant, now_us);
                    flight::instant(SpanKind::Shed, m.tenant as u32, m.id);
                    shared
                        .admission
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .release(m.tenant);
                }
                flight::end(span);
                if keep.is_empty() {
                    continue;
                }
                let inputs: Vec<Tensor> = keep
                    .iter()
                    .map(|m| target.inputs[(m.id % target.inputs.len() as u64) as usize].clone())
                    .collect();
                let exec_start = Instant::now();
                let result = Executor::new(&target.tiny)
                    .map_err(|e| e.to_string())
                    .and_then(|exec| {
                        exec.batch_execute(&target.variants[chosen].tiny_plan, &inputs)
                            .map_err(|e| e.to_string())
                    });
                let service_us = exec_start.elapsed().as_secs_f64() * 1e6;
                // EWMA the measured per-request cost into the estimate.
                let per_req = service_us / batch_factor(keep.len());
                est[model][chosen] = 0.7 * est[model][chosen] + 0.3 * per_req;
                shared.sink("batch_dispatched", keep[0].tenant, now_us);
                let done_us = t0.elapsed().as_secs_f64() * 1e6;
                match result {
                    Ok(outcomes) => {
                        for (m, outcome) in keep.iter().zip(outcomes.iter()) {
                            let slot = (m.id % target.inputs.len() as u64) as usize;
                            let ok = outcome.output.approx_eq(&target.refs[chosen][slot], 0.0);
                            shared
                                .admission
                                .lock()
                                .unwrap_or_else(std::sync::PoisonError::into_inner)
                                .release(m.tenant);
                            if ok {
                                shared.push_log(
                                    done_us,
                                    ServeEventKind::Completed {
                                        req: m.id,
                                        tenant: m.tenant,
                                        batch: batch_id,
                                        latency_us: done_us - m.arrival_us,
                                        deadline_us: m.deadline_us,
                                        degraded: chosen != 0,
                                    },
                                );
                                shared.sink("completed", m.tenant, done_us);
                            } else {
                                bitwise_failures.push(format!(
                                    "{} batch {batch_id} req {}: output diverged from the \
                                     fault-free {} reference",
                                    target.kind,
                                    m.id,
                                    variant.name()
                                ));
                            }
                        }
                    }
                    Err(e) => {
                        for m in &keep {
                            shared
                                .admission
                                .lock()
                                .unwrap_or_else(std::sync::PoisonError::into_inner)
                                .release(m.tenant);
                        }
                        bitwise_failures.push(format!("{} batch {batch_id}: {e}", target.kind));
                    }
                }
            }
            high_water_batcher = high_water_batcher.max(batcher.high_water());
            if stopping && shared.queue.is_empty() && batcher.depth() == 0 {
                break;
            }
        }
    });

    let log = shared
        .log
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let high_water = shared.queue.high_water().max(high_water_batcher);
    Ok(report_from_log(
        config,
        &targets,
        log,
        bitwise_failures,
        batches,
        degraded_batches,
        high_water,
        &weights,
    ))
}

/// Derives the shared report shape from a wall-clock admission log.
#[allow(clippy::too_many_arguments)]
fn report_from_log(
    config: &ServeConfig,
    targets: &[crate::siege::ModelTarget],
    log: AdmissionLog,
    bitwise_failures: Vec<String>,
    batches: usize,
    degraded_batches: usize,
    high_water: usize,
    weights: &[f64],
) -> SiegeReport {
    let n = config.tenants.len();
    let mut arrived = vec![0usize; n];
    let mut admitted = vec![0usize; n];
    let mut rejected = vec![0usize; n];
    let mut shed = vec![0usize; n];
    let mut completed = vec![0usize; n];
    let mut degraded = vec![0usize; n];
    let mut latencies: Vec<Vec<f64>> = vec![Vec::new(); n];
    for ServeEvent { kind, .. } in &log.events {
        match kind {
            ServeEventKind::Arrived { tenant, .. } => arrived[*tenant] += 1,
            ServeEventKind::Admitted { tenant, .. } => admitted[*tenant] += 1,
            ServeEventKind::Rejected { tenant, .. } => rejected[*tenant] += 1,
            ServeEventKind::Shed { tenant, .. } => shed[*tenant] += 1,
            ServeEventKind::Degraded { tenant, .. } => degraded[*tenant] += 1,
            ServeEventKind::Completed {
                tenant, latency_us, ..
            } => {
                completed[*tenant] += 1;
                latencies[*tenant].push(*latency_us);
            }
            _ => {}
        }
    }
    let duration_s = (config.duration_ms as f64 / 1e3).max(1e-9);
    let tenants: Vec<TenantStats> = (0..n)
        .map(|t| TenantStats {
            name: config.tenants[t].tenant.name.clone(),
            weight: weights[t],
            arrived: arrived[t],
            admitted: admitted[t],
            rejected: rejected[t],
            shed: shed[t],
            completed: completed[t],
            failed: admitted[t]
                .saturating_sub(shed[t])
                .saturating_sub(completed[t]),
            degraded: degraded[t],
            p50_us: crate::siege::percentile_us(&latencies[t], 0.50),
            p99_us: crate::siege::percentile_us(&latencies[t], 0.99),
            p999_us: crate::siege::percentile_us(&latencies[t], 0.999),
            goodput_rps: completed[t] as f64 / duration_s,
        })
        .collect();
    let admitted_total: usize = admitted.iter().sum();
    let shed_total: usize = shed.iter().sum();
    let completed_total: usize = completed.iter().sum();
    let servable = admitted_total.saturating_sub(shed_total);
    let normalized: Vec<f64> = tenants
        .iter()
        .filter(|t| t.completed > 0)
        .map(|t| t.goodput_rps / t.weight)
        .collect();
    SiegeReport {
        models: targets
            .iter()
            .map(|t| ModelStats {
                name: t.kind.to_string(),
                variants: t
                    .variants
                    .iter()
                    .map(|v| (v.variant.name().to_string(), v.predicted_us))
                    .collect(),
            })
            .collect(),
        tenants,
        batches,
        degraded_batches,
        survival: if servable == 0 {
            1.0
        } else {
            completed_total as f64 / servable as f64
        },
        shed_rate: if admitted_total == 0 {
            0.0
        } else {
            shed_total as f64 / admitted_total as f64
        },
        fairness_spread: if normalized.len() < 2 {
            1.0
        } else {
            normalized.iter().copied().fold(f64::MIN, f64::max)
                / normalized.iter().copied().fold(f64::MAX, f64::min)
        },
        high_water,
        queue_capacity: config.queue_capacity,
        max_batch: config.policy.max_batch,
        weights: weights.to_vec(),
        lost: servable.saturating_sub(completed_total),
        bitwise_failures,
        log,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_realtime_session_serves_and_accounts() {
        let mut cfg = ServeConfig::demo(42, 250);
        cfg.models = vec![ModelKind::Fcnn];
        let report = run_server(&cfg, None).unwrap();
        assert!(
            report.bitwise_failures.is_empty(),
            "{:?}",
            report.bitwise_failures
        );
        assert_eq!(report.lost, 0, "every admitted request accounted for");
        let admitted: usize = report.tenants.iter().map(|t| t.admitted).sum();
        assert!(admitted > 0, "the session admitted work: {report:?}");
        assert!((report.survival - 1.0).abs() < 1e-12);
        assert!(report.high_water <= report.queue_capacity);
    }
}
