//! # edgenn-core
//!
//! The paper's contribution: **EdgeNN**, an inference solution for CPU-GPU
//! integrated edge devices (Zhang et al., ICDE 2023), built from three
//! cooperating designs:
//!
//! 1. **Semantic-aware memory management** ([`semantics`], Section IV-B) —
//!    chooses, per array, between zero-copy managed allocation and regular
//!    explicit allocation based on how the array is produced and consumed.
//! 2. **Inter- and intra-kernel CPU-GPU hybrid execution** ([`partition`],
//!    [`assign`], Section IV-C) — co-runs the CPU with the GPU, splitting
//!    individual layers by output channels (intra-kernel) and assigning
//!    independent DAG branches to different processors (inter-kernel).
//! 3. **Fine-grained adaptive inference tuning** ([`tuner`], Section IV-D)
//!    — profiles sub-tasks, applies the paper's closed-form partition
//!    optimum (Equations 1-4), enumerates branch assignments, and adapts
//!    from execution feedback.
//!
//! The [`runtime`] executes a tuned [`plan::ExecutionPlan`] in two modes:
//! *analytic* (timing on the `edgenn-sim` device models — used for every
//! paper experiment) and *functional* (real tensor arithmetic with actual
//! multi-threaded partition/merge — used to prove the hybrid execution is
//! numerically lossless). [`baselines`] implements the comparison points
//! the paper evaluates against.
//!
//! ```
//! use edgenn_core::prelude::*;
//!
//! let platform = edgenn_sim::platforms::jetson_agx_xavier();
//! let graph = edgenn_nn::models::build(ModelKind::LeNet, ModelScale::Paper);
//! let report = EdgeNn::new(&platform).infer(&graph).unwrap();
//! let baseline = GpuOnly::new(&platform).infer(&graph).unwrap();
//! assert!(report.total_us < baseline.total_us, "EdgeNN beats GPU-only");
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod assign;
pub mod baselines;
mod error;
pub mod footprint;
pub mod metrics;
pub mod partition;
pub mod pipeline;
pub mod plan;
pub mod runtime;
pub mod semantics;
pub mod tuner;

pub use error::{CoreError, FaultKind, RecoveryAction, RecoveryCause};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, CoreError>;

/// Convenience re-exports for downstream users.
pub mod prelude {
    pub use crate::baselines::{CloudOffload, CpuOnly, EdgeNn, GpuOnly, InterKernelOnly};
    pub use crate::metrics::InferenceReport;
    pub use crate::plan::{
        Assignment, ExecutionConfig, ExecutionPlan, HybridMode, MemoryPolicy, Precision,
    };
    pub use crate::runtime::resilience::{ResilienceConfig, ResilientOutcome};
    pub use crate::runtime::Runtime;
    pub use crate::tuner::Tuner;
    pub use edgenn_nn::models::{build, ModelKind, ModelScale};
}
