//! Functional execution: runs a plan on **real tensors**, actually
//! splitting layers across OS threads and merging the parts.
//!
//! The analytic runtime proves EdgeNN's policies are *fast*; this module
//! proves they are *correct*: for any plan, the functional result must be
//! numerically identical (up to fp32 associativity) to the reference
//! single-threaded forward pass. Intra-kernel splits really compute the
//! two output ranges on different threads ("CPU" worker vs "GPU" worker)
//! and concatenate; inter-kernel branches really run concurrently.

use edgenn_nn::graph::{Graph, NodeId, Segment};
use edgenn_nn::layer::LayerClass;
use edgenn_tensor::Tensor;

use crate::plan::{Assignment, ExecutionPlan};
use crate::{CoreError, Result};

/// Statistics of one functional run.
#[derive(Debug, Clone)]
pub struct FunctionalOutcome {
    /// The network output.
    pub output: Tensor,
    /// Number of layers executed as genuine two-thread splits.
    pub corun_layers: usize,
    /// Number of layers executed wholly by the CPU-role worker.
    pub cpu_layers: usize,
    /// Number of fork-join regions whose branches ran on separate threads.
    pub parallel_regions: usize,
}

/// Executes `plan` functionally on `input`.
///
/// # Errors
/// Fails on plan/graph mismatch, shape errors, or if a worker thread
/// panics (surfaced as [`CoreError::Internal`]).
pub fn execute(graph: &Graph, plan: &ExecutionPlan, input: &Tensor) -> Result<FunctionalOutcome> {
    plan.validate(graph)?;
    if input.shape() != graph.input_shape() {
        return Err(CoreError::PlanMismatch {
            reason: format!(
                "input shape {} does not match graph input {}",
                input.shape(),
                graph.input_shape()
            ),
        });
    }
    let structure = graph.structure()?;
    let mut outputs: Vec<Option<Tensor>> = vec![None; graph.len()];
    outputs[0] = Some(input.clone());
    let mut outcome = FunctionalOutcome {
        output: Tensor::zeros(&[1]),
        corun_layers: 0,
        cpu_layers: 0,
        parallel_regions: 0,
    };

    for segment in structure.segments() {
        match segment {
            Segment::Chain(nodes) => {
                for &id in nodes {
                    exec_node(graph, plan, id, &mut outputs, &mut outcome)?;
                }
            }
            Segment::Parallel { branches, .. } => {
                exec_branches(graph, plan, branches, &mut outputs, &mut outcome)?;
            }
        }
    }

    outcome.output =
        outputs[graph.output_id().index()]
            .take()
            .ok_or_else(|| CoreError::Internal {
                reason: "output never computed".to_string(),
            })?;
    Ok(outcome)
}

/// Per-node branch result: `(id, output, was_corun, cpu_layer_count)`.
type BranchNodeResult = (NodeId, Tensor, bool, usize);

/// Executes the branches of one fork-join region on scoped threads.
fn exec_branches(
    graph: &Graph,
    plan: &ExecutionPlan,
    branches: &[Vec<NodeId>],
    outputs: &mut [Option<Tensor>],
    outcome: &mut FunctionalOutcome,
) -> Result<()> {
    let non_empty: Vec<&Vec<NodeId>> = branches.iter().filter(|b| !b.is_empty()).collect();
    if non_empty.len() < 2 {
        // Zero or one real branch: nothing to parallelize.
        for &id in non_empty.into_iter().flatten() {
            exec_node(graph, plan, id, outputs, outcome)?;
        }
        return Ok(());
    }
    outcome.parallel_regions += 1;

    // Each branch only reads already-computed outputs (the fork node and
    // earlier); branch interiors are disjoint, so each worker builds its
    // own local results and we merge afterwards.
    let snapshot: Vec<Option<Tensor>> = outputs.to_vec();
    let results: Vec<Result<Vec<BranchNodeResult>>> = std::thread::scope(|scope| {
        let handles: Vec<_> = non_empty
            .iter()
            .map(|branch| {
                let snapshot = &snapshot;
                scope.spawn(move || run_branch(graph, plan, branch, snapshot))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join().unwrap_or_else(|_| {
                    Err(CoreError::Internal {
                        reason: "branch worker panicked".to_string(),
                    })
                })
            })
            .collect()
    });

    for branch_result in results {
        for (id, tensor, corun, cpu) in branch_result? {
            outputs[id.index()] = Some(tensor);
            outcome.corun_layers += corun as usize;
            outcome.cpu_layers += cpu;
        }
    }
    Ok(())
}

/// Runs one branch against an immutable snapshot, returning its node
/// outputs and per-node counters `(id, output, was_corun, was_cpu)`.
fn run_branch(
    graph: &Graph,
    plan: &ExecutionPlan,
    branch: &[NodeId],
    snapshot: &[Option<Tensor>],
) -> Result<Vec<BranchNodeResult>> {
    let mut local: Vec<BranchNodeResult> = Vec::with_capacity(branch.len());
    let lookup = |id: NodeId, local: &[BranchNodeResult]| -> Option<Tensor> {
        local
            .iter()
            .find(|(lid, ..)| *lid == id)
            .map(|(_, t, ..)| t.clone())
            .or_else(|| snapshot[id.index()].clone())
    };
    for &id in branch {
        let node = graph.node(id)?;
        let inputs: Vec<Tensor> = node
            .inputs()
            .iter()
            .map(|i| {
                lookup(*i, &local).ok_or_else(|| CoreError::Internal {
                    reason: format!("branch input {i} unavailable"),
                })
            })
            .collect::<Result<_>>()?;
        let input_refs: Vec<&Tensor> = inputs.iter().collect();
        let (tensor, corun, cpu) = forward_assigned(graph, plan, id, &input_refs)?;
        local.push((id, tensor, corun, cpu));
    }
    Ok(local)
}

/// Executes one node into `outputs`.
fn exec_node(
    graph: &Graph,
    plan: &ExecutionPlan,
    id: NodeId,
    outputs: &mut [Option<Tensor>],
    outcome: &mut FunctionalOutcome,
) -> Result<()> {
    let node = graph.node(id)?;
    if node.layer().class() == LayerClass::Input {
        return Ok(()); // already seeded
    }
    let inputs: Vec<Tensor> = node
        .inputs()
        .iter()
        .map(|i| {
            outputs[i.index()]
                .clone()
                .ok_or_else(|| CoreError::Internal {
                    reason: format!("input {i} not computed before {id}"),
                })
        })
        .collect::<Result<_>>()?;
    let refs: Vec<&Tensor> = inputs.iter().collect();
    let (tensor, corun, cpu) = forward_assigned(graph, plan, id, &refs)?;
    outcome.corun_layers += corun as usize;
    outcome.cpu_layers += cpu;
    outputs[id.index()] = Some(tensor);
    Ok(())
}

/// Computes one node per its assignment; splits run on two scoped threads.
/// Returns `(output, was_corun, was_cpu as 0/1)`.
fn forward_assigned(
    graph: &Graph,
    plan: &ExecutionPlan,
    id: NodeId,
    inputs: &[&Tensor],
) -> Result<(Tensor, bool, usize)> {
    let node = graph.node(id)?;
    let layer = node.layer();
    match plan.nodes[id.index()].assignment {
        Assignment::Gpu => Ok((layer.forward(inputs)?, false, 0)),
        Assignment::Cpu => Ok((layer.forward(inputs)?, false, 1)),
        Assignment::SplitInput { cpu_fraction } => {
            let shapes: Vec<_> = inputs.iter().map(|t| t.shape()).collect();
            let channels = node.layer().input_channels(&shapes)?;
            if !node.layer().input_split_supported() || channels < 2 {
                return Ok((layer.forward(inputs)?, false, 0));
            }
            let cpu_channels =
                ((cpu_fraction * channels as f64).round() as usize).clamp(1, channels - 1);
            let gpu_channels = channels - cpu_channels;
            // The GPU takes the first channels (the paper's "first k input
            // channels"), the CPU the remainder; partial sums are added.
            let (gpu_part, cpu_part) = std::thread::scope(|scope| {
                let cpu_handle = scope
                    .spawn(move || layer.forward_partial_inputs(inputs, gpu_channels..channels));
                let gpu_part = layer.forward_partial_inputs(inputs, 0..gpu_channels);
                let cpu_part = cpu_handle.join().map_err(|_| CoreError::Internal {
                    reason: "cpu worker panicked".to_string(),
                });
                (gpu_part, cpu_part)
            });
            let merged = gpu_part?.add(&cpu_part??)?;
            Ok((merged, true, 0))
        }
        Assignment::Split { cpu_fraction } => {
            let shapes: Vec<_> = inputs.iter().map(|t| t.shape()).collect();
            let units = layer.partition_units(&shapes)?;
            let cpu_units =
                ((cpu_fraction * units as f64).round() as usize).clamp(1, units.saturating_sub(1));
            if units < 2 {
                return Ok((layer.forward(inputs)?, false, 0));
            }
            // The paper's convention: the GPU computes the first units,
            // the CPU the remainder (Section IV-D).
            let gpu_units = units - cpu_units;
            let (gpu_part, cpu_part) = std::thread::scope(|scope| {
                let cpu_handle =
                    scope.spawn(move || layer.forward_partial(inputs, gpu_units..units));
                let gpu_part = layer.forward_partial(inputs, 0..gpu_units);
                let cpu_part = cpu_handle.join().map_err(|_| CoreError::Internal {
                    reason: "cpu worker panicked".to_string(),
                });
                (gpu_part, cpu_part)
            });
            let (gpu_part, cpu_part) = (gpu_part?, cpu_part??);
            let merged = Tensor::concat_axis0(&[&gpu_part, &cpu_part])?;
            // Rank-restore: concat preserves rank but the layer's full
            // output shape is authoritative.
            let out = merged.reshape(node.output_shape().dims())?;
            Ok((out, true, 0))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::ExecutionConfig;
    use crate::runtime::Runtime;
    use crate::tuner::Tuner;
    use edgenn_nn::models::{build, ModelKind, ModelScale};
    use edgenn_sim::platforms::jetson_agx_xavier;

    fn edgenn_plan(graph: &Graph) -> ExecutionPlan {
        let platform = jetson_agx_xavier();
        let runtime = Runtime::new(&platform);
        let tuner = Tuner::new(graph, &runtime).unwrap();
        tuner
            .plan(graph, &runtime, ExecutionConfig::edgenn())
            .unwrap()
    }

    #[test]
    fn functional_execution_matches_reference_for_all_models() {
        for kind in ModelKind::ALL {
            let graph = build(kind, ModelScale::Tiny);
            let plan = edgenn_plan(&graph);
            let input = Tensor::random(graph.input_shape().dims(), 1.0, 7);
            let reference = graph.forward(&input).unwrap();
            let outcome = execute(&graph, &plan, &input).unwrap();
            assert!(
                outcome.output.approx_eq(&reference, 1e-4),
                "{kind}: max diff {}",
                outcome.output.max_abs_diff(&reference).unwrap_or(f32::NAN)
            );
        }
    }

    #[test]
    fn splits_actually_happen_on_fc_heavy_models() {
        // Paper-scale FCNN: its wide fc layers are memory-bound on the
        // GPU, so the tuned plan must co-run them; the functional engine
        // then really computes the two parts on separate threads.
        let graph = build(ModelKind::Fcnn, ModelScale::Paper);
        let plan = edgenn_plan(&graph);
        assert!(plan.corun_count() > 0, "paper-scale fc layers should split");
        let input = Tensor::random(graph.input_shape().dims(), 1.0, 3);
        let reference = graph.forward(&input).unwrap();
        let outcome = execute(&graph, &plan, &input).unwrap();
        assert!(outcome.corun_layers > 0);
        assert!(outcome.output.approx_eq(&reference, 1e-4));
    }

    #[test]
    fn branch_regions_run_in_parallel_for_squeezenet() {
        let graph = build(ModelKind::SqueezeNet, ModelScale::Tiny);
        let plan = edgenn_plan(&graph);
        let input = Tensor::random(graph.input_shape().dims(), 1.0, 5);
        let outcome = execute(&graph, &plan, &input).unwrap();
        assert!(outcome.parallel_regions > 0, "fire modules should fork");
        let reference = graph.forward(&input).unwrap();
        assert!(outcome.output.approx_eq(&reference, 1e-4));
    }

    #[test]
    fn forced_splits_on_every_partitionable_layer_stay_correct() {
        use crate::plan::{Assignment, NodePlan};
        use edgenn_sim::AllocStrategy;
        for kind in ModelKind::ALL {
            let graph = build(kind, ModelScale::Tiny);
            let mut nodes = vec![NodePlan::gpu_explicit(); graph.len()];
            for id in graph.topo_order() {
                let node = graph.node(id).unwrap();
                let shapes: Vec<_> = node
                    .inputs()
                    .iter()
                    .map(|i| graph.node(*i).unwrap().output_shape())
                    .collect();
                if node.layer().partitionable()
                    && node.layer().partition_units(&shapes).unwrap_or(1) >= 2
                {
                    nodes[id.index()] = NodePlan {
                        assignment: Assignment::Split { cpu_fraction: 0.5 },
                        output_alloc: AllocStrategy::Explicit,
                        prefetch_inputs: false,
                    };
                }
            }
            let plan = ExecutionPlan {
                config: ExecutionConfig::edgenn(),
                nodes,
            };
            let input = Tensor::random(graph.input_shape().dims(), 1.0, 11);
            let reference = graph.forward(&input).unwrap();
            let outcome = execute(&graph, &plan, &input).unwrap();
            assert!(outcome.corun_layers > 0, "{kind}");
            assert!(
                outcome.output.approx_eq(&reference, 1e-4),
                "{kind}: forced-split mismatch"
            );
        }
    }

    #[test]
    fn forced_input_splits_stay_correct() {
        use crate::plan::{Assignment, NodePlan};
        use edgenn_sim::AllocStrategy;
        for kind in ModelKind::ALL {
            let graph = build(kind, ModelScale::Tiny);
            let mut nodes = vec![NodePlan::gpu_explicit(); graph.len()];
            let mut forced = 0;
            for id in graph.topo_order() {
                let node = graph.node(id).unwrap();
                let shapes: Vec<_> = node
                    .inputs()
                    .iter()
                    .map(|i| graph.node(*i).unwrap().output_shape())
                    .collect();
                if node.layer().input_split_supported()
                    && node.layer().input_channels(&shapes).unwrap_or(1) >= 2
                {
                    nodes[id.index()] = NodePlan {
                        assignment: Assignment::SplitInput { cpu_fraction: 0.4 },
                        output_alloc: AllocStrategy::Explicit,
                        prefetch_inputs: false,
                    };
                    forced += 1;
                }
            }
            if forced == 0 {
                continue;
            }
            let plan = ExecutionPlan {
                config: ExecutionConfig::edgenn(),
                nodes,
            };
            let input = Tensor::random(graph.input_shape().dims(), 1.0, 17);
            let reference = graph.forward(&input).unwrap();
            let outcome = execute(&graph, &plan, &input).unwrap();
            assert!(outcome.corun_layers > 0, "{kind}");
            assert!(
                outcome.output.approx_eq(&reference, 1e-4),
                "{kind}: input-split plan diverged by {}",
                outcome.output.max_abs_diff(&reference).unwrap_or(f32::NAN)
            );
        }
    }

    #[test]
    fn rejects_wrong_input_shape() {
        let graph = build(ModelKind::LeNet, ModelScale::Tiny);
        let plan = edgenn_plan(&graph);
        let bad = Tensor::zeros(&[3, 3, 3]);
        assert!(matches!(
            execute(&graph, &plan, &bad),
            Err(CoreError::PlanMismatch { .. })
        ));
    }
}
